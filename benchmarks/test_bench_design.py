"""Benchmarks design / abl-depth — extension experiments.

* **design** — the integrator workflow the paper enables: analytically
  derive the minimum admissible d_min for a certified victim task set
  (Eq. 8 + Eq. 14 busy-window analysis), then confirm by simulation
  that no deadline is missed at exactly that condition.
* **abl-depth** — why the RTSS'12 monitor supports l > 1 tables: at a
  matched long-run admitted rate, the deep learned δ⁻[5] table
  tolerates the automotive trace's bursts that a single-d_min
  condition must deny, giving a lower average latency.
"""

import pytest

from repro.experiments.ablation import (
    render_depth_ablation,
    run_depth_ablation,
)
from repro.experiments.design import render_design, run_design


def test_design(benchmark, scale):
    result = benchmark.pedantic(
        run_design,
        kwargs={"irq_count": scale.design_irqs},
        rounds=1, iterations=1,
    )
    print()
    print(render_design(result))
    benchmark.extra_info["min_dmin_us"] = result.analytic_min_dmin_us
    benchmark.extra_info["misses_at_min"] = result.simulated_misses_at_min
    benchmark.extra_info["max_response_us"] = round(
        result.simulated_max_response_us, 1
    )
    benchmark.extra_info["response_bound_us"] = round(
        result.analytic_response_bound_us, 1
    )
    assert result.analytic_schedulable_at_min
    assert result.simulated_misses_at_min == 0
    assert result.simulation_confirms_analysis
    assert result.windows_opened > 0


def test_abl_depth(benchmark, scale):
    result = benchmark.pedantic(
        run_depth_ablation,
        kwargs={"activation_count": scale.ablation_depth_activations},
        rounds=1, iterations=1,
    )
    print()
    print(render_depth_ablation(result))
    benchmark.extra_info["deep_avg_us"] = round(result.deep.avg_latency_us, 1)
    benchmark.extra_info["shallow_avg_us"] = round(
        result.shallow.avg_latency_us, 1
    )
    assert result.deep_monitor_wins
    # the shallow monitor pushes burst IRQs back to delayed handling
    assert (result.shallow.mode_counts.get("delayed", 0)
            > result.deep.mode_counts.get("delayed", 0))
