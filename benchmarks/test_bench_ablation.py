"""Benchmarks abl-boost / abl-throttle — related-work ablations.

* abl-boost: a Xen-style boost scheduler matches the monitored
  mechanism's latency but breaks the Eq. 14 interference budget under
  bursts (the Section 2 critique motivating the monitor);
* abl-throttle: source-level throttling (Regehr & Duongsaa) protects
  against overload but leaves admitted IRQs on the slow delayed path
  and loses the suppressed ones.
"""

import pytest

from repro.experiments.ablation import (
    render_boost_ablation,
    render_throttle_ablation,
    run_boost_ablation,
    run_throttle_ablation,
)


def test_abl_boost(benchmark, scale):
    result = benchmark.pedantic(
        run_boost_ablation,
        kwargs={"irq_count": scale.ablation_irqs},
        rounds=1, iterations=1,
    )
    print()
    print(render_boost_ablation(result))
    benchmark.extra_info["bound_us"] = result.bound_us
    benchmark.extra_info["monitored_worst_us"] = (
        result.monitored_worst_interference_us
    )
    benchmark.extra_info["boosted_worst_us"] = (
        result.boosted_worst_interference_us
    )
    assert result.monitored_within_budget
    assert result.boost_breaks_budget
    assert (result.boosted_worst_interference_us
            > 2 * result.monitored_worst_interference_us)


def test_abl_throttle(benchmark, scale):
    result = benchmark.pedantic(
        run_throttle_ablation,
        kwargs={"irq_count": scale.ablation_irqs},
        rounds=1, iterations=1,
    )
    print()
    print(render_throttle_ablation(result))
    benchmark.extra_info["suppressed"] = result.suppressed_irqs
    benchmark.extra_info["throttled_avg_us"] = round(
        result.throttled.avg_latency_us, 1
    )
    benchmark.extra_info["monitored_avg_us"] = round(
        result.monitored.avg_latency_us, 1
    )
    assert result.suppressed_irqs > 0                      # IRQs lost
    assert len(result.monitored.records) > len(result.throttled.records)
    assert result.throttling_keeps_tdma_latency
