"""Micro-benchmarks of the simulation substrate.

Not a paper artifact — these track the cost of the building blocks so
regressions in simulator throughput (which gate how fast the paper
experiments run) are visible.
"""

import pytest

from repro.analysis.event_models import PeriodicEventModel
from repro.analysis.latency import classic_irq_latency
from repro.core.monitor import DeltaMinusMonitor
from repro.core.policy import MonitoredInterposing
from repro.hypervisor.config import CostModel
from repro.sim.engine import SimulationEngine

US = 200


def test_engine_event_throughput(benchmark):
    """Schedule+fire cost of the event core."""

    def run_events():
        engine = SimulationEngine()
        for i in range(5_000):
            engine.schedule(i, lambda: None)
        engine.run()
        return engine.events_executed

    assert benchmark(run_events) == 5_000


def test_monitor_check_cost(benchmark):
    """Per-IRQ cost of the l=5 monitoring condition."""
    monitor = DeltaMinusMonitor([100, 300, 700, 1_500, 3_100])

    def run_checks():
        monitor.reset()
        time = 0
        for _ in range(5_000):
            time += 137
            monitor.check_and_accept(time)
        return monitor.accepted_count + monitor.denied_count

    assert benchmark(run_checks) == 5_000


def test_busy_window_analysis_cost(benchmark):
    """Full Eq. 11/12 analysis of the paper system."""
    model = PeriodicEventModel(1_444 * US)
    costs = CostModel()

    def analyse():
        return classic_irq_latency(model, 2 * US, 40 * US,
                                   14_000 * US, 6_000 * US, costs=costs)

    bound = benchmark(analyse)
    assert bound.response_time_cycles > 0


def test_end_to_end_irq_throughput(benchmark):
    """Simulated IRQs per benchmark round through the full hypervisor
    path (top handler, monitor, interposed window, accounting)."""
    from repro.experiments.common import PaperSystemConfig, run_irq_scenario
    from repro.workloads.synthetic import exponential_interarrivals

    system = PaperSystemConfig()
    intervals = exponential_interarrivals(400, 288_800, seed=5)

    def run_scenario():
        policy = MonitoredInterposing(DeltaMinusMonitor.from_dmin(288_800))
        return run_irq_scenario(system, policy, intervals)

    result = benchmark(run_scenario)
    assert len(result.records) == 400
