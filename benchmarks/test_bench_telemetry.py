"""Benchmark guard — telemetry must be free when disabled.

The telemetry layer is pull-based by design: the dispatch loop and the
IRQ path maintain the same plain integer counters they always did, and
collectors sample them *after* a run.  This guard pins that overhead
contract:

* engine throughput with a disabled registry sampled around the run
  stays within 5 % of the plain measurement (interleaved A/B pairs in
  one process, best of three each, so machine noise and thermal drift
  largely cancel);
* the absolute events/sec floor of the engine benchmark still holds
  with telemetry in the build;
* disabled-registry instruments are the shared no-op object, register
  nothing, and a million no-op emits complete in trivial time.
"""

import time

from repro.sim.benchmark import measure_engine_throughput
from repro.sim.engine import SimulationEngine
from repro.telemetry import MetricsRegistry, collect_engine

_EVENTS = 80_000
_REPEATS = 2


def _interleaved_best_of(pairs):
    """Best plain and best guarded throughput from interleaved pairs.

    Interleaving matters: measuring all of one arm then all of the
    other lets thermal/load drift between the arms masquerade as
    telemetry overhead.  Alternating exposes both arms to the same
    conditions, and best-of-N discards transient stalls.
    """
    registry = MetricsRegistry(enabled=False)
    best_plain = 0.0
    best_guarded = 0.0
    for _ in range(pairs):
        plain = measure_engine_throughput(events=_EVENTS, repeats=_REPEATS)
        best_plain = max(best_plain, plain.events_per_second)
        guarded = measure_engine_throughput(events=_EVENTS, repeats=_REPEATS)
        # The collection an instrumented run would do, against a
        # disabled registry: must degrade to no-op attribute calls.
        collect_engine(registry, SimulationEngine(), run="bench")
        best_guarded = max(best_guarded, guarded.events_per_second)
    assert registry.snapshot() == {}       # nothing leaked into the registry
    return best_plain, best_guarded


def test_disabled_telemetry_within_five_percent(benchmark):
    plain, guarded = benchmark.pedantic(
        _interleaved_best_of, args=(3,), rounds=1, iterations=1)

    ratio = guarded / plain
    benchmark.extra_info["plain_events_per_second"] = round(plain)
    benchmark.extra_info["guarded_events_per_second"] = round(guarded)
    benchmark.extra_info["throughput_ratio"] = round(ratio, 4)

    assert ratio > 0.95, (
        f"telemetry-disabled run lost {(1 - ratio) * 100:.1f}% engine "
        f"throughput ({guarded:,.0f} vs {plain:,.0f} events/s)"
    )
    # same conservative absolute floor as the engine benchmark
    assert guarded > 150_000


def test_disabled_instruments_are_shared_noops():
    registry = MetricsRegistry(enabled=False)
    counter = registry.counter("a_total", "", ("k",))
    gauge = registry.gauge("b")
    histogram = registry.histogram("c_seconds")
    assert counter is gauge is histogram          # one shared no-op object
    assert counter.labels(k="v") is counter       # labels() allocates nothing
    assert registry.names() == []


def test_noop_emit_cost_is_trivial():
    registry = MetricsRegistry(enabled=False)
    counter = registry.counter("spam_total", "", ("k",))
    started = time.perf_counter()
    for _ in range(1_000_000):
        counter.labels(k="x").inc()
    elapsed = time.perf_counter() - started
    # ~2 attribute calls per emit; even a slow CI box does this in well
    # under a second.  Generous bound: only a collapse into real
    # bookkeeping on the disabled path can fail it.
    assert elapsed < 2.0
