#!/usr/bin/env python3
"""Diff the last two campaign runs in a ``BENCH_experiments.json``.

``python -m repro.experiments ... --bench-json BENCH_experiments.json``
appends one record per campaign run; this tool compares the newest
record against the previous one and flags per-experiment wall-time
regressions beyond a threshold (default 20 %), plus regressions in
every recorded microbenchmark section — engine throughput, the
queue-backend race (including the array backend's dispatch-storm
rate and its speedup over bucket), the
idle-skip and layered-fork A/B races, the subtree-vs-wave campaign
scheduling race (throughput, speedup, and retained-memory ratio), and
the run-artifact store's write overhead.  The sections share one table-driven checker
(:data:`CHECKS`): each section names the metrics to diff, whether
higher or lower is better, and how to flag — relative drop beyond the
threshold, or (for the store overhead, a number expected to hover
near zero, where relative growth is meaningless) an absolute cap.
Sections missing from either run are skipped with a note, so the tool
keeps working across histories that predate a field.

``--store-diff STORE_A STORE_B`` additionally prints per-scenario
latency deltas between two run-artifact store directories (a thin
client of :meth:`repro.store.RunStore.diff` — no simulation runs).

Usage::

    python benchmarks/compare_bench.py                       # report only
    python benchmarks/compare_bench.py --strict              # exit 1 on regression
    python benchmarks/compare_bench.py --threshold 0.10      # stricter knob
    python benchmarks/compare_bench.py --file BENCH_ci.json
    python benchmarks/compare_bench.py --store-diff a/ b/    # store deltas

Behaviour notes:

* With fewer than two recorded runs there is nothing to diff — the
  tool says so and exits 0, so it can sit in CI from the first run.
* The two runs are only comparable when they used the same scale and
  jobs count; otherwise the tool notes the mismatch and exits 0
  instead of reporting apples-to-oranges regressions.
* Experiments faster than ``--min-seconds`` in the baseline are
  reported but never flagged: at smoke scales the absolute times are
  dominated by scheduling noise.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Sequence

#: Baseline wall times below this are too noisy to flag (seconds).
DEFAULT_MIN_SECONDS = 0.05

#: Relative wall-time growth treated as a regression (0.20 = +20 %).
DEFAULT_THRESHOLD = 0.20

#: Absolute ceiling on the store capture overhead (0.05 = 5 % of the
#: campaign wall time — the acceptance bar, not a relative delta).
STORE_OVERHEAD_CAP = 0.05


def load_runs(path: Path) -> list:
    try:
        payload = json.loads(path.read_text())
    except FileNotFoundError:
        return []
    except ValueError as error:
        raise SystemExit(f"error: {path} is not valid JSON: {error}")
    runs = payload.get("runs") if isinstance(payload, dict) else None
    return runs if isinstance(runs, list) else []


def compare(previous: dict, latest: dict, *, threshold: float,
            min_seconds: float) -> "tuple[list[str], list[str]]":
    """Render the wall-time comparison; returns (lines, regressions)."""
    old_times = previous.get("experiment_wall_seconds", {})
    new_times = latest.get("experiment_wall_seconds", {})
    lines: "list[str]" = []
    regressions: "list[str]" = []
    names = [name for name in new_times if name in old_times]
    width = max((len(name) for name in names), default=4)
    for name in names:
        old = float(old_times[name])
        new = float(new_times[name])
        if old > 0.0:
            delta = (new - old) / old
            delta_text = f"{100 * delta:+.1f}%"
        else:
            delta = 0.0
            delta_text = "n/a"
        flag = ""
        if delta > threshold and old >= min_seconds:
            flag = f"  << regression (> {100 * threshold:.0f}%)"
            regressions.append(name)
        lines.append(f"  {name:<{width}}  {old:8.3f}s -> {new:8.3f}s  "
                     f"{delta_text:>8}{flag}")
    only_new = sorted(set(new_times) - set(old_times))
    if only_new:
        lines.append(f"  (not in previous run: {', '.join(only_new)})")
    old_total = float(previous.get("total_wall_seconds", 0.0))
    new_total = float(latest.get("total_wall_seconds", 0.0))
    if old_total > 0.0:
        lines.append(f"  {'total':<{width}}  {old_total:8.3f}s -> "
                     f"{new_total:8.3f}s  "
                     f"{100 * (new_total - old_total) / old_total:+8.1f}%")
    return lines, regressions


def _dig(section: dict, path: "Sequence[str]"):
    value = section
    for key in path:
        if not isinstance(value, dict):
            return None
        value = value.get(key)
    return value


@dataclass(frozen=True)
class MetricSpec:
    """One diffed number inside a bench-record section."""

    label: str                          #: report-line prefix
    path: "tuple[str, ...]"             #: keys into the section dict
    unit: str = ""                      #: e.g. "events/s", "x", ""
    higher_is_better: bool = True
    #: "relative": flag a drop/growth beyond the threshold.
    #: "cap": flag when the latest value exceeds ``cap`` (absolute).
    #: "info": display only, never flag.
    mode: str = "relative"
    cap: float = 0.0
    flag_text: str = "regression"
    percentish: bool = False            #: render values as percentages

    def _format(self, value: float) -> str:
        if self.percentish:
            return f"{100 * value:+.1f}%"
        if self.unit == "x":
            return f"{value:.1f}x"
        return f"{value:,.0f}"

    def check(self, old_section: dict, new_section: dict,
              threshold: float) -> "tuple[list[str], bool]":
        old_value = _dig(old_section, self.path)
        new_value = _dig(new_section, self.path)
        if new_value is None:
            return [], False
        if self.mode in ("cap", "info"):
            line = f"  {self.label}  {self._format(float(new_value))}"
            if old_value is not None:
                line = (f"  {self.label}  "
                        f"{self._format(float(old_value))} -> "
                        f"{self._format(float(new_value))}")
            over = self.mode == "cap" and float(new_value) > self.cap
            if over:
                line += (f"  << {self.flag_text} "
                         f"(cap {self._format(self.cap)})")
            return [line], over
        if old_value is None or not float(old_value):
            return [], False
        delta = (float(new_value) - float(old_value)) / float(old_value)
        unit = f" {self.unit}" if self.unit and self.unit != "x" else ""
        line = (f"  {self.label}  {self._format(float(old_value))} -> "
                f"{self._format(float(new_value))}{unit}  "
                f"{100 * delta:+.1f}%")
        worse = -delta if self.higher_is_better else delta
        regressed = worse > threshold
        if regressed:
            line += (f"  << {self.flag_text} "
                     f"(> {100 * threshold:.0f}% "
                     f"{'drop' if self.higher_is_better else 'growth'})")
        return [line], regressed


@dataclass(frozen=True)
class CheckSpec:
    """One bench-record section: where it lives and what to diff."""

    key: str                            #: record field (e.g. "engine_ab")
    title: str                          #: used in skip notes / warnings
    metrics: "tuple[MetricSpec, ...]"
    #: Optional comparability guard; returns a skip note or None.
    comparable: "Callable[[dict, dict], Optional[str]] | None" = None
    missing_note: str = "not recorded in both runs"

    def run(self, previous: dict, latest: dict,
            threshold: float) -> "tuple[list[str], bool]":
        old_section = previous.get(self.key) or {}
        new_section = latest.get(self.key) or {}
        if not old_section or not new_section:
            return [f"  {self.title}: {self.missing_note}, skipping."], False
        if self.comparable is not None:
            note = self.comparable(old_section, new_section)
            if note is not None:
                return [f"  {self.title}: {note}, skipping."], False
        lines: "list[str]" = []
        regressed = False
        for metric in self.metrics:
            metric_lines, metric_regressed = metric.check(
                old_section, new_section, threshold)
            lines.extend(metric_lines)
            regressed = regressed or metric_regressed
        return lines, regressed


def _same_backend(old_section: dict, new_section: dict) -> "Optional[str]":
    old_backend = old_section.get("backend")
    new_backend = new_section.get("backend")
    if old_backend != new_backend:
        return (f"backends differ ({old_backend} vs {new_backend}) "
                "— not comparable")
    return None


def _array_storm_recorded(old_section: dict,
                          new_section: dict) -> "Optional[str]":
    """Backend-aware guard for the array dispatch check.

    The storm phase and the array backend arrived together; history
    written before them has an ``engine_ab`` section without the storm
    rates (or without an ``array`` contender), and a relative diff
    against that would be meaningless rather than a regression.
    """
    for section, which in ((old_section, "previous"),
                           (new_section, "latest")):
        rates = section.get("storm_events_per_second")
        if not isinstance(rates, dict) or "array" not in rates:
            return (f"{which} run predates the array backend's "
                    "storm fields")
    return None


#: Every microbenchmark section the tool knows how to diff.
CHECKS: "tuple[CheckSpec, ...]" = (
    CheckSpec(
        key="engine", title="engine throughput",
        comparable=_same_backend,
        metrics=(
            MetricSpec("engine", ("events_per_second",), unit="events/s",
                       flag_text="throughput regression"),
        ),
    ),
    CheckSpec(
        key="engine_ab", title="queue-backend A/B",
        comparable=_array_storm_recorded,
        missing_note="not recorded in both runs "
                     "(older history predates engine_ab)",
        metrics=(
            MetricSpec("array storm",
                       ("storm_events_per_second", "array"),
                       unit="events/s",
                       flag_text="dispatch throughput regression"),
            MetricSpec("array dispatch speedup",
                       ("array_dispatch_speedup_vs_bucket",), unit="x",
                       flag_text="speedup regression"),
            MetricSpec("backend A/B improvement",
                       ("improvement_vs_legacy",), mode="info",
                       percentish=True),
        ),
    ),
    CheckSpec(
        key="engine_idle_ab", title="idle-skip A/B",
        missing_note="not recorded in both runs "
                     "(older history predates engine_idle_ab)",
        metrics=(
            MetricSpec("idle-skip", ("events_per_second", "skip"),
                       unit="events/s", flag_text="throughput regression"),
            MetricSpec("idle-skip speedup", ("speedup",), unit="x",
                       flag_text="speedup regression"),
        ),
    ),
    CheckSpec(
        key="engine_fork_ab", title="fork A/B",
        missing_note="not recorded in both runs "
                     "(older history predates engine_fork_ab)",
        metrics=(
            MetricSpec("layered forks", ("forks_per_second", "layered"),
                       unit="forks/s", flag_text="throughput regression"),
            MetricSpec("layered-fork speedup", ("speedup",), unit="x",
                       flag_text="speedup regression"),
        ),
    ),
    CheckSpec(
        key="engine_subtree_ab", title="subtree A/B",
        missing_note="not recorded in both runs "
                     "(older history predates engine_subtree_ab)",
        metrics=(
            MetricSpec("subtree schedule", ("nodes_per_second", "subtree"),
                       unit="nodes/s", flag_text="throughput regression"),
            MetricSpec("subtree speedup", ("speedup",), unit="x",
                       flag_text="speedup regression"),
            MetricSpec("subtree memory ratio", ("memory_ratio",), unit="x",
                       flag_text="retained-memory regression"),
        ),
    ),
    CheckSpec(
        key="store_ab", title="store write A/B",
        missing_note="not recorded in both runs "
                     "(older history predates store_ab)",
        metrics=(
            # The cap is enforced on the instrumented write ratio:
            # it hovers near zero (so a relative-growth check would
            # flag +0.1% -> +0.3% as a 200% regression) and, unlike
            # the whole-leg overhead, it is free of scheduler noise.
            MetricSpec("store write ratio", ("write_ratio",),
                       mode="cap", cap=STORE_OVERHEAD_CAP,
                       percentish=True,
                       flag_text="capture cost over budget"),
            MetricSpec("store A/B overhead", ("overhead",),
                       mode="info", percentish=True),
        ),
    ),
)


def store_diff(store_a: str, store_b: str) -> "tuple[list[str], bool]":
    """Per-scenario latency deltas between two store directories.

    A thin client of :meth:`repro.store.RunStore.diff`; imported
    lazily so the bench-history diff works without the package
    importable (e.g. a bare checkout without ``PYTHONPATH=src``).
    """
    from repro.store import RunStore

    result = RunStore(store_a).diff(RunStore(store_b))
    lines = [f"store diff: {store_b} minus {store_a}"]
    for delta in result.groups:
        experiment, scenario, load = delta.group
        where = f"{experiment}/{scenario}"
        if load is not None:
            where += f"@{load:g}"
        lines.append(
            f"  {where}  mean {delta.mean_a:,.1f} -> {delta.mean_b:,.1f} us"
            f"  (Δmean {delta.mean_delta:+,.1f}, Δp50 {delta.p50_delta:+,.1f},"
            f" Δp99 {delta.p99_delta:+,.1f}, Δmax {delta.max_delta:+,.1f})"
        )
    for group in result.only_in_a:
        lines.append(f"  only in {store_a}: {group}")
    for group in result.only_in_b:
        lines.append(f"  only in {store_b}: {group}")
    if not result.groups:
        lines.append("  no common (experiment, scenario, load) groups.")
    return lines, bool(result.groups)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        description="Compare the last two runs in a bench-json history.")
    parser.add_argument("--file", default="BENCH_experiments.json",
                        help="bench history file (default: "
                             "BENCH_experiments.json)")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="relative wall-time growth flagged as a "
                             "regression (default: 0.20 = +20%%)")
    parser.add_argument("--min-seconds", type=float,
                        default=DEFAULT_MIN_SECONDS,
                        help="ignore experiments whose baseline is shorter "
                             "than this (default: 0.05s)")
    parser.add_argument("--strict", action="store_true",
                        help="exit with status 1 when any experiment "
                             "regressed beyond the threshold")
    parser.add_argument("--store-diff", nargs=2, default=None,
                        metavar=("STORE_A", "STORE_B"),
                        help="also print per-scenario latency deltas "
                             "between two run-artifact store directories")
    args = parser.parse_args(argv)

    if args.store_diff is not None:
        diff_lines, _ = store_diff(*args.store_diff)
        for line in diff_lines:
            print(line)

    runs = load_runs(Path(args.file))
    if len(runs) < 2:
        print(f"compare_bench: {args.file} has {len(runs)} run(s); "
              "need two to diff — nothing to compare.")
        return 0
    previous, latest = runs[-2], runs[-1]
    prev_config = (previous.get("scale"), previous.get("jobs"))
    new_config = (latest.get("scale"), latest.get("jobs"))
    print(f"compare_bench: {args.file} — run {len(runs) - 1} "
          f"(scale={prev_config[0]}, jobs={prev_config[1]}, "
          f"{previous.get('timestamp', '?')}) vs run {len(runs)} "
          f"(scale={new_config[0]}, jobs={new_config[1]}, "
          f"{latest.get('timestamp', '?')})")
    if prev_config != new_config:
        print("  runs used different scale/jobs — not comparable, "
              "skipping regression check.")
        return 0
    lines, regressions = compare(previous, latest,
                                 threshold=args.threshold,
                                 min_seconds=args.min_seconds)
    failed = bool(regressions)
    warnings: "list[str]" = []
    if regressions:
        warnings.append(f"WARNING: wall-time regression > "
                        f"{100 * args.threshold:.0f}% in: "
                        f"{', '.join(regressions)}")
    for check in CHECKS:
        check_lines, check_regressed = check.run(previous, latest,
                                                 args.threshold)
        lines.extend(check_lines)
        if check_regressed:
            warnings.append(f"WARNING: {check.title} regressed")
            failed = True
    for line in lines:
        print(line)
    for warning in warnings:
        print(warning)
    if failed:
        return 1 if args.strict else 0
    print("  no regressions beyond threshold.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
