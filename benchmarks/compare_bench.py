#!/usr/bin/env python3
"""Diff the last two campaign runs in a ``BENCH_experiments.json``.

``python -m repro.experiments ... --bench-json BENCH_experiments.json``
appends one record per campaign run; this tool compares the newest
record against the previous one and flags per-experiment wall-time
regressions beyond a threshold (default 20 %), plus drops in the
engine microbenchmark's ``engine.events_per_second`` beyond the same
threshold (when both runs recorded it on the same queue backend), and
drops in the idle-skip A/B record (``engine_idle_ab``: skip-leg
events/s and skip/tick speedup) and in the layered-fork A/B record
(``engine_fork_ab``: layered-leg forks/s and layered/full speedup) —
each skipped with a note when either run predates its field.

Usage::

    python benchmarks/compare_bench.py                       # report only
    python benchmarks/compare_bench.py --strict              # exit 1 on regression
    python benchmarks/compare_bench.py --threshold 0.10      # stricter knob
    python benchmarks/compare_bench.py --file BENCH_ci.json

Behaviour notes:

* With fewer than two recorded runs there is nothing to diff — the
  tool says so and exits 0, so it can sit in CI from the first run.
* The two runs are only comparable when they used the same scale and
  jobs count; otherwise the tool notes the mismatch and exits 0
  instead of reporting apples-to-oranges regressions.
* Experiments faster than ``--min-seconds`` in the baseline are
  reported but never flagged: at smoke scales the absolute times are
  dominated by scheduling noise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Baseline wall times below this are too noisy to flag (seconds).
DEFAULT_MIN_SECONDS = 0.05

#: Relative wall-time growth treated as a regression (0.20 = +20 %).
DEFAULT_THRESHOLD = 0.20


def load_runs(path: Path) -> list:
    try:
        payload = json.loads(path.read_text())
    except FileNotFoundError:
        return []
    except ValueError as error:
        raise SystemExit(f"error: {path} is not valid JSON: {error}")
    runs = payload.get("runs") if isinstance(payload, dict) else None
    return runs if isinstance(runs, list) else []


def compare(previous: dict, latest: dict, *, threshold: float,
            min_seconds: float) -> "tuple[list[str], list[str]]":
    """Render comparison lines; returns (report_lines, regressions)."""
    old_times = previous.get("experiment_wall_seconds", {})
    new_times = latest.get("experiment_wall_seconds", {})
    lines: "list[str]" = []
    regressions: "list[str]" = []
    names = [name for name in new_times if name in old_times]
    width = max((len(name) for name in names), default=4)
    for name in names:
        old = float(old_times[name])
        new = float(new_times[name])
        if old > 0.0:
            delta = (new - old) / old
            delta_text = f"{100 * delta:+.1f}%"
        else:
            delta = 0.0
            delta_text = "n/a"
        flag = ""
        if delta > threshold and old >= min_seconds:
            flag = f"  << regression (> {100 * threshold:.0f}%)"
            regressions.append(name)
        lines.append(f"  {name:<{width}}  {old:8.3f}s -> {new:8.3f}s  "
                     f"{delta_text:>8}{flag}")
    only_new = sorted(set(new_times) - set(old_times))
    if only_new:
        lines.append(f"  (not in previous run: {', '.join(only_new)})")
    old_total = float(previous.get("total_wall_seconds", 0.0))
    new_total = float(latest.get("total_wall_seconds", 0.0))
    if old_total > 0.0:
        lines.append(f"  {'total':<{width}}  {old_total:8.3f}s -> "
                     f"{new_total:8.3f}s  "
                     f"{100 * (new_total - old_total) / old_total:+8.1f}%")
    return lines, regressions


def compare_engine(previous: dict, latest: dict, *,
                   threshold: float) -> "tuple[list[str], bool]":
    """Diff engine throughput; returns (report_lines, regressed).

    A *drop* in events/s beyond ``threshold`` is the regression (the
    wall-time check flags growth; throughput moves the other way).
    Skipped with a note when either run lacks the microbenchmark or
    the two runs measured different queue backends.
    """
    old_engine = previous.get("engine") or {}
    new_engine = latest.get("engine") or {}
    old_eps = old_engine.get("events_per_second")
    new_eps = new_engine.get("events_per_second")
    if not old_eps or not new_eps:
        return ["  engine throughput: not recorded in both runs, "
                "skipping."], False
    old_backend = old_engine.get("backend")
    new_backend = new_engine.get("backend")
    if old_backend != new_backend:
        return [f"  engine throughput: backends differ "
                f"({old_backend} vs {new_backend}) — not comparable, "
                "skipping."], False
    delta = (float(new_eps) - float(old_eps)) / float(old_eps)
    backend = f" [{new_backend}]" if new_backend else ""
    line = (f"  engine{backend}  {float(old_eps):,.0f} -> "
            f"{float(new_eps):,.0f} events/s  {100 * delta:+.1f}%")
    regressed = delta < -threshold
    if regressed:
        line += f"  << throughput regression (> {100 * threshold:.0f}% drop)"
    return [line], regressed


def compare_idle_ab(previous: dict, latest: dict, *,
                    threshold: float) -> "tuple[list[str], bool]":
    """Diff the idle-skip A/B microbenchmark; returns (lines, regressed).

    Flags a drop in the skip leg's events/s or in the skip/tick
    speedup beyond ``threshold``.  Skipped with a note when either run
    predates the ``engine_idle_ab`` field.
    """
    old_ab = previous.get("engine_idle_ab") or {}
    new_ab = latest.get("engine_idle_ab") or {}
    if not old_ab or not new_ab:
        return ["  idle-skip A/B: not recorded in both runs "
                "(older history predates engine_idle_ab), skipping."], False
    lines: "list[str]" = []
    regressed = False
    old_eps = (old_ab.get("events_per_second") or {}).get("skip")
    new_eps = (new_ab.get("events_per_second") or {}).get("skip")
    if old_eps and new_eps:
        delta = (float(new_eps) - float(old_eps)) / float(old_eps)
        line = (f"  idle-skip  {float(old_eps):,.0f} -> "
                f"{float(new_eps):,.0f} events/s  {100 * delta:+.1f}%")
        if delta < -threshold:
            line += (f"  << throughput regression "
                     f"(> {100 * threshold:.0f}% drop)")
            regressed = True
        lines.append(line)
    old_speedup = old_ab.get("speedup")
    new_speedup = new_ab.get("speedup")
    if old_speedup and new_speedup:
        delta = ((float(new_speedup) - float(old_speedup))
                 / float(old_speedup))
        line = (f"  idle-skip speedup  {float(old_speedup):.1f}x -> "
                f"{float(new_speedup):.1f}x  {100 * delta:+.1f}%")
        if delta < -threshold:
            line += (f"  << speedup regression "
                     f"(> {100 * threshold:.0f}% drop)")
            regressed = True
        lines.append(line)
    return lines, regressed


def compare_fork_ab(previous: dict, latest: dict, *,
                    threshold: float) -> "tuple[list[str], bool]":
    """Diff the layered-fork A/B microbenchmark; returns (lines, regressed).

    Flags a drop in the layered leg's forks/s or in the layered/full
    speedup beyond ``threshold``.  Skipped with a note when either run
    predates the ``engine_fork_ab`` field.
    """
    old_ab = previous.get("engine_fork_ab") or {}
    new_ab = latest.get("engine_fork_ab") or {}
    if not old_ab or not new_ab:
        return ["  fork A/B: not recorded in both runs "
                "(older history predates engine_fork_ab), skipping."], False
    lines: "list[str]" = []
    regressed = False
    old_fps = (old_ab.get("forks_per_second") or {}).get("layered")
    new_fps = (new_ab.get("forks_per_second") or {}).get("layered")
    if old_fps and new_fps:
        delta = (float(new_fps) - float(old_fps)) / float(old_fps)
        line = (f"  layered forks  {float(old_fps):,.0f} -> "
                f"{float(new_fps):,.0f} forks/s  {100 * delta:+.1f}%")
        if delta < -threshold:
            line += (f"  << throughput regression "
                     f"(> {100 * threshold:.0f}% drop)")
            regressed = True
        lines.append(line)
    old_speedup = old_ab.get("speedup")
    new_speedup = new_ab.get("speedup")
    if old_speedup and new_speedup:
        delta = ((float(new_speedup) - float(old_speedup))
                 / float(old_speedup))
        line = (f"  layered-fork speedup  {float(old_speedup):.1f}x -> "
                f"{float(new_speedup):.1f}x  {100 * delta:+.1f}%")
        if delta < -threshold:
            line += (f"  << speedup regression "
                     f"(> {100 * threshold:.0f}% drop)")
            regressed = True
        lines.append(line)
    return lines, regressed


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        description="Compare the last two runs in a bench-json history.")
    parser.add_argument("--file", default="BENCH_experiments.json",
                        help="bench history file (default: "
                             "BENCH_experiments.json)")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="relative wall-time growth flagged as a "
                             "regression (default: 0.20 = +20%%)")
    parser.add_argument("--min-seconds", type=float,
                        default=DEFAULT_MIN_SECONDS,
                        help="ignore experiments whose baseline is shorter "
                             "than this (default: 0.05s)")
    parser.add_argument("--strict", action="store_true",
                        help="exit with status 1 when any experiment "
                             "regressed beyond the threshold")
    args = parser.parse_args(argv)

    runs = load_runs(Path(args.file))
    if len(runs) < 2:
        print(f"compare_bench: {args.file} has {len(runs)} run(s); "
              "need two to diff — nothing to compare.")
        return 0
    previous, latest = runs[-2], runs[-1]
    prev_config = (previous.get("scale"), previous.get("jobs"))
    new_config = (latest.get("scale"), latest.get("jobs"))
    print(f"compare_bench: {args.file} — run {len(runs) - 1} "
          f"(scale={prev_config[0]}, jobs={prev_config[1]}, "
          f"{previous.get('timestamp', '?')}) vs run {len(runs)} "
          f"(scale={new_config[0]}, jobs={new_config[1]}, "
          f"{latest.get('timestamp', '?')})")
    if prev_config != new_config:
        print("  runs used different scale/jobs — not comparable, "
              "skipping regression check.")
        return 0
    lines, regressions = compare(previous, latest,
                                 threshold=args.threshold,
                                 min_seconds=args.min_seconds)
    engine_lines, engine_regressed = compare_engine(
        previous, latest, threshold=args.threshold)
    idle_lines, idle_regressed = compare_idle_ab(
        previous, latest, threshold=args.threshold)
    fork_lines, fork_regressed = compare_fork_ab(
        previous, latest, threshold=args.threshold)
    for line in lines + engine_lines + idle_lines + fork_lines:
        print(line)
    failed = False
    if regressions:
        print(f"WARNING: wall-time regression > "
              f"{100 * args.threshold:.0f}% in: {', '.join(regressions)}")
        failed = True
    if engine_regressed:
        print(f"WARNING: engine throughput dropped > "
              f"{100 * args.threshold:.0f}%")
        failed = True
    if idle_regressed:
        print(f"WARNING: idle-skip A/B regressed > "
              f"{100 * args.threshold:.0f}%")
        failed = True
    if fork_regressed:
        print(f"WARNING: layered-fork A/B regressed > "
              f"{100 * args.threshold:.0f}%")
        failed = True
    if failed:
        return 1 if args.strict else 0
    print("  no regressions beyond threshold.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
