"""Benchmark fig6 — regenerates the Fig. 6a/6b/6c latency histograms.

Paper reference (Section 6.1, 15000 IRQs, loads 1/5/10 %):

* 6a (monitoring disabled):  avg ~2500 us, ~40 % direct / ~60 % delayed
* 6b (monitoring enabled):   avg ~1200 us, ~40/40/20
* 6c (no d_min violations):  avg ~150 us (~16x better), no delayed IRQs,
  worst case no longer defined by the TDMA cycle length
"""

import pytest

from repro.experiments.fig6 import (
    Fig6Config,
    PAPER_REFERENCE,
    render_fig6,
    run_fig6,
)


def _config(scale) -> Fig6Config:
    return Fig6Config(irqs_per_load=scale.fig6_irqs_per_load)


def _record(benchmark, result):
    reference = PAPER_REFERENCE[result.scenario]
    benchmark.extra_info["avg_latency_us"] = round(result.avg_latency_us, 1)
    benchmark.extra_info["paper_avg_latency_us"] = reference["avg_us"]
    benchmark.extra_info["max_latency_us"] = round(result.max_latency_us, 1)
    benchmark.extra_info["mode_fractions"] = {
        mode: round(fraction, 3)
        for mode, fraction in result.mode_fractions().items()
    }
    benchmark.extra_info["irqs"] = len(result.latencies_us)
    print()
    print(render_fig6(result))


def test_fig6a(benchmark, scale):
    config = _config(scale)
    result = benchmark.pedantic(run_fig6, args=("a", config),
                                rounds=1, iterations=1)
    _record(benchmark, result)
    fractions = result.mode_fractions()
    assert fractions.get("interposed", 0) == 0
    assert 0.3 < fractions["direct"] < 0.55
    assert 1_800 < result.avg_latency_us < 3_200      # paper ~2500
    assert 7_000 < result.max_latency_us < 8_500      # T_TDMA - T_i bound


def test_fig6b(benchmark, scale):
    config = _config(scale)
    result = benchmark.pedantic(run_fig6, args=("b", config),
                                rounds=1, iterations=1)
    _record(benchmark, result)
    baseline = run_fig6("a", config)
    fractions = result.mode_fractions()
    assert fractions.get("interposed", 0) > 0.15
    assert fractions.get("delayed", 0) > 0.05
    # a significant average improvement, but the same worst case:
    assert result.avg_latency_us < 0.65 * baseline.avg_latency_us
    assert result.max_latency_us > 0.8 * baseline.max_latency_us


def test_fig6c(benchmark, scale):
    config = _config(scale)
    result = benchmark.pedantic(run_fig6, args=("c", config),
                                rounds=1, iterations=1)
    _record(benchmark, result)
    baseline = run_fig6("a", config)
    improvement = baseline.avg_latency_us / result.avg_latency_us
    benchmark.extra_info["improvement_over_fig6a"] = round(improvement, 1)
    benchmark.extra_info["paper_improvement"] = 16.0
    fractions = result.mode_fractions()
    assert fractions.get("delayed", 0) == 0            # paper: none delayed
    assert improvement > 8                             # paper: ~16x
    assert result.max_latency_us < 1_000               # TDMA-decoupled
