"""Benchmark abl-sweep — design-space sweeps.

* TDMA cycle sweep: the classic worst-case latency scales linearly
  with the cycle length while the interposed worst case is flat
  (observation 2 of Section 5.1) — the structural argument of the
  whole paper;
* d_min sweep: the latency/interference-budget trade-off a system
  integrator tunes (Eq. 2 vs average latency).
"""

import pytest

from repro.experiments.sweep import (
    render_cycle_sweep,
    render_dmin_sweep,
    run_cycle_sweep,
    run_dmin_sweep,
)


def test_abl_sweep_cycle(benchmark, scale):
    points = benchmark.pedantic(
        run_cycle_sweep,
        kwargs={"irq_count": scale.sweep_irqs},
        rounds=1, iterations=1,
    )
    print()
    print(render_cycle_sweep(points))
    benchmark.extra_info["classic_max_by_scale"] = {
        f"{p.scale:g}x": round(p.classic_measured_max_us, 1) for p in points
    }
    benchmark.extra_info["interposed_max_by_scale"] = {
        f"{p.scale:g}x": round(p.interposed_measured_max_us, 1) for p in points
    }
    classic = [p.classic_measured_max_us for p in points]
    interposed = [p.interposed_measured_max_us for p in points]
    assert classic == sorted(classic)
    assert classic[-1] > 4 * classic[0]
    assert max(interposed) - min(interposed) < 50
    for point in points:
        assert point.classic_measured_max_us <= point.classic_bound_us
        assert point.interposed_measured_max_us <= point.interposed_bound_us


def test_abl_sweep_dmin(benchmark, scale):
    points = benchmark.pedantic(
        run_dmin_sweep,
        kwargs={"irq_count": scale.sweep_irqs},
        rounds=1, iterations=1,
    )
    print()
    print(render_dmin_sweep(points))
    benchmark.extra_info["avg_latency_by_dmin"] = {
        f"{p.dmin_us:.0f}us": round(p.avg_latency_us, 1) for p in points
    }
    latencies = [p.avg_latency_us for p in points]
    budgets = [p.interference_budget_fraction for p in points]
    assert latencies == sorted(latencies)
    assert budgets == sorted(budgets, reverse=True)
