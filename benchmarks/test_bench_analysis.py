"""Benchmark eq-analysis — analysis-vs-simulation validation.

Regenerates the paper's correctness claims (Sections 4/5.1): the
busy-window bounds of Eqs. 11/12 and Eq. 16 dominate the measured
latencies, and the Eq. 14 interference bound holds on every victim
partition over arbitrary sliding windows.
"""

import pytest

from repro.analysis.benchmark import measure_analysis_speedup
from repro.experiments.validation import render_validation, run_validation


def test_eq_analysis(benchmark, scale):
    result = benchmark.pedantic(
        run_validation,
        kwargs={"irq_count": scale.validation_irqs},
        rounds=1, iterations=1,
    )
    print()
    print(render_validation(result))

    benchmark.extra_info["classic_bound_us"] = result.classic_bound_us
    benchmark.extra_info["classic_measured_max_us"] = result.classic_measured_max_us
    benchmark.extra_info["interposed_bound_us"] = result.interposed_bound_us
    benchmark.extra_info["interposed_measured_max_us"] = (
        result.interposed_measured_max_us
    )
    benchmark.extra_info["analytic_improvement"] = round(
        result.analytic_improvement, 1
    )
    benchmark.extra_info["eq14_worst_ratio"] = max(
        report.worst_ratio() for report in result.independence_reports
    )

    assert result.all_hold
    # the classic bound is TDMA-dominated and tight
    assert result.classic_bound_us > 8_000
    assert result.classic_measured_max_us > 0.9 * result.classic_bound_us
    # the interposed bound is TDMA-free
    assert result.interposed_bound_us < 200
    # Eq. 14 is tight (the monitor admits exactly the budgeted pattern)
    assert all(report.worst_ratio() <= 1.0
               for report in result.independence_reports)


def test_memoized_analysis_ab(benchmark):
    """A/B microbenchmark: memoized vs cold arrival-curve analysis.

    Runs the paper-shaped bound family + Eq. 14-style audit with
    memoization off and on (interleaved rounds, best-of per side) and
    asserts the memoized path computes *identical* bounds while being
    measurably faster — the property the incremental-campaign analysis
    layer depends on.
    """
    result = benchmark.pedantic(
        measure_analysis_speedup,
        kwargs={"repeats": 3},
        rounds=1, iterations=1,
    )

    benchmark.extra_info["cold_seconds"] = round(result.cold_seconds, 4)
    benchmark.extra_info["memoized_seconds"] = round(
        result.memoized_seconds, 4
    )
    benchmark.extra_info["speedup"] = round(result.speedup, 2)
    benchmark.extra_info["bounds_per_round"] = result.bounds_per_round
    benchmark.extra_info["identical_bounds"] = result.identical

    # memoization must be a pure cache: same bounds, same checksums
    assert result.identical
    assert len(result.cold_values) == result.bounds_per_round + 3
    # and it must actually pay for itself on the redundant-query shape
    # (measured ~2.5x here; 1.3x keeps headroom for noisy CI hosts)
    assert result.speedup > 1.3
