"""Benchmark fig7 — regenerates the Appendix-A self-learning curves.

Paper reference (Fig. 7, automotive trace, ~11000 activations, δ⁻[5]
learned on the first 10 %):

* learn phase:   avg ~2200 us (only direct/delayed active)
* run mode (a):  bound non-binding        -> avg ~120 us
* run mode (b):  25 % of recorded load    -> avg ~300 us
* run mode (c):  12.5 %                   -> avg ~900 us
* run mode (d):  6.25 %                   -> avg ~1600 us
"""

import pytest

from repro.experiments.fig7 import (
    Fig7Config,
    PAPER_REFERENCE,
    render_fig7,
    run_fig7,
)
from repro.workloads.automotive import AutomotiveTraceConfig


def test_fig7(benchmark, scale):
    config = Fig7Config(trace=AutomotiveTraceConfig(
        activation_count=scale.fig7_activations
    ))
    results = benchmark.pedantic(run_fig7, args=(config,),
                                 rounds=1, iterations=1)
    print()
    print(render_fig7(results))
    for label, result in results.items():
        benchmark.extra_info[f"run_avg_us_{label}"] = round(result.run_avg_us, 1)
        benchmark.extra_info[f"paper_run_avg_us_{label}"] = PAPER_REFERENCE[label]
    benchmark.extra_info["learn_avg_us"] = round(results["a"].learn_avg_us, 1)

    # learning phase sits at the unmonitored level
    assert results["a"].learn_avg_us > 1_500
    # strict ordering of the four bound cases
    assert (results["a"].run_avg_us < results["b"].run_avg_us
            < results["c"].run_avg_us < results["d"].run_avg_us)
    # entering run mode in case (a) drops the average by >10x
    assert results["a"].run_avg_us < results["a"].learn_avg_us / 10
    # tight bounds push IRQs back to delayed handling
    assert (results["d"].scenario.mode_counts.get("delayed", 0)
            > results["a"].scenario.mode_counts.get("delayed", 0))
