"""Benchmark engine — discrete-event hot-path throughput.

Not a paper artifact — this is the perf-regression harness for the
simulation core that every experiment runs on.  It tracks the
two-regime events/sec of :func:`repro.sim.benchmark
.measure_engine_throughput`:

* **chain** — a single self-rescheduling timer over a near-empty heap,
  the profile of replaying one interarrival trace (Fig. 6/7);
* **pool** — 64 outstanding events churning, the profile of scenarios
  with many concurrent timers, where heap sift costs dominate.

Any regression to the O(n) ``pending_events`` scan, per-event
``__dict__`` allocation, or Python-level heap comparisons shows up
here as a large events/sec drop.  The same measurement feeds the
``engine`` record of ``BENCH_experiments.json`` (CLI ``--bench-json``).

The A/B leg races every pluggable queue backend
(:mod:`repro.sim.queue`) against the frozen pre-backend heap loop,
interleaved in one process so host noise cancels out; the winner and
its improvement land in ``extra_info`` and in the ``engine_ab`` record
of ``BENCH_experiments.json``.  The race includes the
dispatch-dominated **storm** phase (dense same-cycle ``schedule_batch``
volleys — the fig6 low-load regime), which gates the columnar ``array``
backend at >=1.8x events/s over ``bucket``; a dedicated storm leg also
races the two backends head-to-head with idle-skip off.

The idle-skip leg races the analytic fast-forward engine
(:func:`repro.sim.benchmark.measure_idle_ab`) against tick-by-tick
execution on an idle-dominated scenario — sparse IRQ arrivals
separated by tens of quiescent TDMA cycles, the regime the skip layer
exists for.  Both legs must execute the identical event count (the
byte-identity contract); the speedup lands in the ``engine_idle_ab``
record of ``BENCH_experiments.json``.

The fork leg races the layered copy-on-write world store
(:func:`repro.sim.benchmark.measure_fork_ab`) against deep-copy forks
over an identical scenario tree — every branch node a policy variant
of one warm world.  Leaf digests must be byte-identical between the
legs (the harness raises otherwise); the speedup and retained-memory
ratio land in the ``engine_fork_ab`` record of
``BENCH_experiments.json``.

The subtree leg races subtree scheduling — one worker walking a whole
branch chain against a budget-bounded, disk-spilling world store —
against the wave-deep path that re-pickles the parent snapshot for
every child (:func:`repro.sim.benchmark.measure_subtree_ab`).  Leaf
digests must be byte-identical between the legs; the speedup and
peak-retained-memory ratio land in the ``engine_subtree_ab`` record of
``BENCH_experiments.json``.
"""

import pytest

from repro.sim.benchmark import (
    _run_volley_storm,
    measure_backend_ab,
    measure_engine_throughput,
    measure_fork_ab,
    measure_idle_ab,
    measure_subtree_ab,
)
from repro.sim.queue import QUEUE_BACKENDS


def test_engine_throughput(benchmark):
    result = benchmark.pedantic(
        measure_engine_throughput,
        kwargs={"events": 100_000, "repeats": 3},
        rounds=1, iterations=1,
    )
    benchmark.extra_info["events_per_second"] = round(result.events_per_second)
    benchmark.extra_info["chain_events_per_second"] = round(
        result.chain_events_per_second
    )
    benchmark.extra_info["pool_events_per_second"] = round(
        result.pool_events_per_second
    )
    benchmark.extra_info["events_executed"] = result.events_executed
    benchmark.extra_info["cancelled_events"] = result.cancelled_events

    assert result.events_executed >= 100_000
    assert result.cancelled_events > 0            # lazy cancellation exercised
    # Deliberately conservative floor (the tuned engine measures around
    # 1M events/s on a loaded single-core CI container): catching a
    # collapse back to O(n) scans, not CI noise.
    assert result.events_per_second > 150_000
    assert result.chain_events_per_second > 150_000
    assert result.pool_events_per_second > 150_000


def test_backend_ab_vs_legacy(benchmark):
    """Interleaved backend race: every backend beats the legacy loop.

    The floors are deliberately loose (the acceptance-grade ≥15% check
    runs at a larger event count outside CI): here we pin that the
    race measures every contender, that a backend — not the baseline —
    wins, and that no backend *lost* to the loop it replaced.
    """
    result = benchmark.pedantic(
        measure_backend_ab,
        kwargs={"events": 100_000, "repeats": 3},
        rounds=1, iterations=1,
    )
    assert set(result.results) == {"legacy", *QUEUE_BACKENDS}
    assert result.baseline == "legacy"
    assert result.winner in QUEUE_BACKENDS
    benchmark.extra_info["winner"] = result.winner
    benchmark.extra_info["improvement_vs_legacy"] = round(
        result.improvement(), 4)
    benchmark.extra_info["array_dispatch_speedup_vs_bucket"] = round(
        result.dispatch_speedup("array"), 3)
    for name, contender in result.results.items():
        benchmark.extra_info[f"{name}_events_per_second"] = round(
            contender.events_per_second)
        benchmark.extra_info[f"{name}_storm_events_per_second"] = round(
            contender.storm_events_per_second)
        assert contender.events_executed >= 90_000
    # Best-of-3 interleaved: a backend slower than legacy here is a
    # genuine hot-path regression, not noise.
    assert result.improvement() > 0.0
    for name in QUEUE_BACKENDS:
        assert result.improvement(name) > -0.10
    # The tentpole gate: on the dispatch-dominated storm phase the
    # columnar backend must clear 1.8x over the bucket backend.
    assert result.dispatch_speedup("array", over="bucket") >= 1.8


def test_dispatch_storm_fig6_low_load(benchmark):
    """Dispatch-dominated fig6 low-load leg: array vs bucket head-to-head.

    Dense same-cycle timer storms (32-wide volleys every 8 cycles) with
    idle-skip explicitly off, so nothing but the dispatch loop itself
    is measured.  Interleaved best-of-3 per backend; the columnar
    block path typically measures ~2.5-4x over bucket — 1.8x is the
    acceptance gate.
    """
    def race() -> dict:
        rates: dict[str, float] = {}
        for _ in range(3):
            for name in ("bucket", "array"):
                backend_cls = QUEUE_BACKENDS[name]
                executed, elapsed = _run_volley_storm(
                    100_000, width=32, period=8,
                    engine_factory=lambda: backend_cls(idle_skip=False))
                assert executed >= 100_000
                rate = executed / elapsed if elapsed > 0 else 0.0
                rates[name] = max(rates.get(name, 0.0), rate)
        return rates

    rates = benchmark.pedantic(race, rounds=1, iterations=1)
    speedup = rates["array"] / rates["bucket"]
    benchmark.extra_info["bucket_events_per_second"] = round(rates["bucket"])
    benchmark.extra_info["array_events_per_second"] = round(rates["array"])
    benchmark.extra_info["array_speedup_vs_bucket"] = round(speedup, 3)
    assert speedup >= 1.8


def test_idle_skip_ab(benchmark):
    """Idle-dominated A/B: skip-on must be >= 5x skip-off (tick).

    The 5x floor is the acceptance threshold; the measured speedup on
    this scenario is typically >= 10x.  The harness itself raises when
    the two legs disagree on executed-event counts, so a green run
    also re-pins the byte-identity contract at benchmark scale.
    """
    result = benchmark.pedantic(
        measure_idle_ab,
        kwargs={"arrivals": 30, "gap_tdma_cycles": 40, "repeats": 2},
        rounds=1, iterations=1,
    )
    benchmark.extra_info["speedup"] = round(result.speedup, 2)
    benchmark.extra_info["skip_spans"] = result.skip_spans
    benchmark.extra_info["skipped_events"] = result.skipped_events
    benchmark.extra_info["skipped_cycles"] = result.skipped_cycles
    for name, leg in result.results.items():
        benchmark.extra_info[f"{name}_events_per_second"] = round(
            leg.events_per_second)
    assert set(result.results) == {"skip", "tick"}
    assert result.skip_spans > 0
    assert result.skipped_events > 0
    assert (result.results["skip"].events_executed
            == result.results["tick"].events_executed)
    assert result.speedup >= 5.0


def test_fork_ab(benchmark):
    """Layered-fork A/B: layered forks must be >= 5x deep-copy forks.

    The 5x floor is the acceptance threshold; the measured speedup on
    the 100-branch tree is typically ~10x, with an order of magnitude
    less retained memory (O(changes) vs O(world) per branch).  The
    harness raises when any leaf digest differs between the legs, so a
    green run also re-pins byte-identity at benchmark scale.
    """
    result = benchmark.pedantic(
        measure_fork_ab,
        kwargs={"branching": (3, 4), "arrivals": 120, "repeats": 2},
        rounds=1, iterations=1,
    )
    benchmark.extra_info["speedup"] = round(result.speedup, 2)
    benchmark.extra_info["memory_ratio"] = round(result.memory_ratio, 2)
    benchmark.extra_info["branches"] = result.branches
    benchmark.extra_info["nodes"] = result.nodes
    for name, leg in result.results.items():
        benchmark.extra_info[f"{name}_forks_per_second"] = round(
            leg.forks_per_second)
        benchmark.extra_info[f"{name}_retained_bytes"] = leg.retained_bytes
    assert set(result.results) == {"layered", "full"}
    assert result.branches == 12
    assert result.nodes == 3 + 12
    assert result.results["layered"].forks == result.results["full"].forks
    assert result.speedup >= 5.0
    # Retained memory must be O(changes), not O(world) per branch; the
    # true ratio is ~10x — 3x is the noise-proof floor.
    assert result.memory_ratio >= 3.0


def test_subtree_ab(benchmark):
    """Subtree-vs-wave A/B: subtree scheduling must be >= 2x wave-deep.

    A small (4, 4) tree keeps the leg CI-sized; the acceptance-grade
    ~1k-branch measurement runs in the CLI bench step.  The harness
    raises when any leaf digest differs between the legs, so a green
    run also re-pins byte-identity — the spill tier included, since
    the subtree leg runs against a budget-bounded store.
    """
    result = benchmark.pedantic(
        measure_subtree_ab,
        kwargs={"branching": (4, 4), "arrivals": 64, "repeats": 2},
        rounds=1, iterations=1,
    )
    benchmark.extra_info["speedup"] = round(result.speedup, 2)
    benchmark.extra_info["memory_ratio"] = round(result.memory_ratio, 2)
    benchmark.extra_info["branches"] = result.branches
    benchmark.extra_info["spilled_fragments"] = result.spilled_fragments
    for name, leg in result.results.items():
        benchmark.extra_info[f"{name}_nodes_per_second"] = round(
            leg.nodes_per_second)
        benchmark.extra_info[f"{name}_peak_retained_bytes"] = (
            leg.peak_retained_bytes)
    assert set(result.results) == {"wave", "subtree"}
    assert result.branches == 16
    assert result.nodes == 4 + 16
    assert result.leaf_digest
    # The true speedup on the deep tree is ~5x; 1.5x is the noise-proof
    # floor for this small CI-sized tree.
    assert result.speedup >= 1.5
    assert result.memory_ratio >= 2.0


@pytest.mark.slow
def test_engine_throughput_paper_scale(benchmark):
    """Longer measurement for stable numbers; run via ``-m slow``."""
    result = benchmark.pedantic(
        measure_engine_throughput,
        kwargs={"events": 400_000, "repeats": 5},
        rounds=1, iterations=1,
    )
    benchmark.extra_info["events_per_second"] = round(result.events_per_second)
    benchmark.extra_info["chain_events_per_second"] = round(
        result.chain_events_per_second
    )
    benchmark.extra_info["pool_events_per_second"] = round(
        result.pool_events_per_second
    )
    assert result.events_per_second > 150_000
