"""Benchmark engine — discrete-event hot-path throughput.

Not a paper artifact — this is the perf-regression harness for the
simulation core that every experiment runs on.  It tracks the
two-regime events/sec of :func:`repro.sim.benchmark
.measure_engine_throughput`:

* **chain** — a single self-rescheduling timer over a near-empty heap,
  the profile of replaying one interarrival trace (Fig. 6/7);
* **pool** — 64 outstanding events churning, the profile of scenarios
  with many concurrent timers, where heap sift costs dominate.

Any regression to the O(n) ``pending_events`` scan, per-event
``__dict__`` allocation, or Python-level heap comparisons shows up
here as a large events/sec drop.  The same measurement feeds the
``engine`` record of ``BENCH_experiments.json`` (CLI ``--bench-json``).
"""

import pytest

from repro.sim.benchmark import measure_engine_throughput


def test_engine_throughput(benchmark):
    result = benchmark.pedantic(
        measure_engine_throughput,
        kwargs={"events": 100_000, "repeats": 3},
        rounds=1, iterations=1,
    )
    benchmark.extra_info["events_per_second"] = round(result.events_per_second)
    benchmark.extra_info["chain_events_per_second"] = round(
        result.chain_events_per_second
    )
    benchmark.extra_info["pool_events_per_second"] = round(
        result.pool_events_per_second
    )
    benchmark.extra_info["events_executed"] = result.events_executed
    benchmark.extra_info["cancelled_events"] = result.cancelled_events

    assert result.events_executed >= 100_000
    assert result.cancelled_events > 0            # lazy cancellation exercised
    # Deliberately conservative floor (the tuned engine measures around
    # 1M events/s on a loaded single-core CI container): catching a
    # collapse back to O(n) scans, not CI noise.
    assert result.events_per_second > 150_000
    assert result.chain_events_per_second > 150_000
    assert result.pool_events_per_second > 150_000


@pytest.mark.slow
def test_engine_throughput_paper_scale(benchmark):
    """Longer measurement for stable numbers; run via ``-m slow``."""
    result = benchmark.pedantic(
        measure_engine_throughput,
        kwargs={"events": 400_000, "repeats": 5},
        rounds=1, iterations=1,
    )
    benchmark.extra_info["events_per_second"] = round(result.events_per_second)
    benchmark.extra_info["chain_events_per_second"] = round(
        result.chain_events_per_second
    )
    benchmark.extra_info["pool_events_per_second"] = round(
        result.pool_events_per_second
    )
    assert result.events_per_second > 150_000
