"""Benchmark tab62 — regenerates the Section 6.2 overhead numbers.

Paper reference:

* code: 1120 bytes total (scheduler 392, top handler 456, monitor 272);
  data: 28 bytes (monitor state);
* runtime: C_Mon = 128 instr, C_sched = 877 instr, C_ctx ~ 10000 cycles
  (invalidation + writebacks);
* ~10 % increase in context switches in the d_min-adherent scenario
  (the measured increase depends strongly on the interrupt load; we
  report per-load values).
"""

import pytest

from repro.experiments.overhead import render_overhead, run_overhead


def test_tab62(benchmark, scale):
    result = benchmark.pedantic(
        run_overhead,
        kwargs={"irqs_per_load": scale.tab62_irqs_per_load},
        rounds=1, iterations=1,
    )
    print()
    print(render_overhead(result))

    benchmark.extra_info["paper_code_bytes"] = result.paper_code_bytes
    benchmark.extra_info["monitor_cycles"] = result.monitor_cycles
    benchmark.extra_info["scheduler_cycles"] = result.scheduler_cycles
    benchmark.extra_info["context_switch_cycles"] = result.context_switch_cycles
    benchmark.extra_info["ctx_increase_by_load"] = {
        f"{100 * c.load:.0f}%": round(c.increase, 3)
        for c in result.context_switch_comparisons
    }

    # static accounting reproduces the paper exactly
    assert result.paper_code_bytes == 1120
    assert result.paper_data_bytes == 28
    assert result.modelled_monitor_data_bytes == 28
    assert result.monitor_cycles == 128
    assert result.scheduler_cycles == 877
    assert result.context_switch_cycles == 10_000
    # monitoring adds context switches (2 per interposed window);
    # the increase grows with the interrupt load
    increases = [c.increase for c in result.context_switch_comparisons]
    assert all(value > 0 for value in increases)
    assert increases == sorted(increases)
