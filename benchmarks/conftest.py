"""Benchmark-suite configuration.

Each benchmark regenerates one paper artifact (see DESIGN.md §4) at a
reduced-but-representative size, records the headline numbers in
``benchmark.extra_info`` next to the paper's reference values, and
asserts the reproduction's shape properties.  Full paper-scale runs:
``python -m repro.experiments <id>``.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--paper-scale", action="store_true", default=False,
        help="run benchmarks at full paper-scale IRQ counts",
    )


@pytest.fixture
def paper_scale(request):
    return request.config.getoption("--paper-scale")
