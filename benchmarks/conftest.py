"""Benchmark-suite configuration.

Each benchmark regenerates one paper artifact (see DESIGN.md §4) at a
reduced-but-representative size, records the headline numbers in
``benchmark.extra_info`` next to the paper's reference values, and
asserts the reproduction's shape properties.

IRQ counts come from :mod:`repro.experiments.scale` — the same table
the CLI's ``--quick``/``--paper-scale`` flags resolve against — so the
benchmarks and ``python -m repro.experiments`` always agree on what
"quick" and "paper scale" mean.  Pass ``--paper-scale`` to run the
full counts; paper-scale-only benchmarks are additionally marked
``slow`` (deselect with ``-m "not slow"``).
"""

import pytest

from repro.experiments.scale import PAPER, QUICK


def pytest_addoption(parser):
    parser.addoption(
        "--paper-scale", action="store_true", default=False,
        help="run benchmarks at full paper-scale IRQ counts",
    )


@pytest.fixture
def scale(request):
    """The run's experiment scale: QUICK by default, PAPER on demand."""
    return PAPER if request.config.getoption("--paper-scale") else QUICK
