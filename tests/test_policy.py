"""Tests for interposing policies (Fig. 4b decision logic)."""

import pytest

from repro.baselines.boost import BoostPolicy
from repro.core.monitor import DeltaMinusMonitor
from repro.core.policy import (
    AlwaysInterpose,
    LearningPhase,
    MonitoredInterposing,
    NeverInterpose,
    SelfLearningInterposing,
)


class TestNeverInterpose:
    def test_always_denies(self):
        policy = NeverInterpose()
        assert not policy.request_interpose(0)
        assert not policy.request_interpose(10_000)

    def test_no_monitoring_cost(self):
        """The unmodified Fig. 4a top handler has no monitoring call."""
        assert not NeverInterpose().monitoring_cost_applies


class TestAlwaysInterpose:
    def test_always_grants(self):
        policy = AlwaysInterpose()
        assert policy.request_interpose(0)
        assert policy.request_interpose(1)

    def test_no_monitoring_cost(self):
        assert not AlwaysInterpose().monitoring_cost_applies


class TestBoostPolicy:
    def test_counts_boosts(self):
        policy = BoostPolicy()
        for t in range(5):
            assert policy.request_interpose(t)
        assert policy.boost_count == 5


class TestMonitoredInterposing:
    def test_follows_monitor(self):
        policy = MonitoredInterposing(DeltaMinusMonitor.from_dmin(100))
        assert policy.request_interpose(0)
        assert not policy.request_interpose(50)
        assert policy.request_interpose(100)

    def test_monitoring_cost_applies(self):
        policy = MonitoredInterposing(DeltaMinusMonitor.from_dmin(100))
        assert policy.monitoring_cost_applies


class TestSelfLearningInterposing:
    def test_denies_during_learning(self):
        policy = SelfLearningInterposing(depth=2, learn_count=5)
        for t in range(4):
            policy.observe_arrival(t * 100)
            assert not policy.request_interpose(t * 100)
        assert policy.phase is LearningPhase.LEARN

    def test_enters_run_mode_after_learn_count(self):
        policy = SelfLearningInterposing(depth=2, learn_count=5)
        for t in range(5):
            policy.observe_arrival(t * 100)
        assert policy.phase is LearningPhase.RUN
        assert policy.monitor is not None
        assert policy.monitor.table == [100, 200]

    def test_run_mode_uses_learned_table(self):
        policy = SelfLearningInterposing(depth=1, learn_count=4)
        for t in (0, 100, 250, 400):
            policy.observe_arrival(t)
        assert policy.request_interpose(500)      # 100 after nothing accepted
        assert not policy.request_interpose(550)  # 50 < learned 100

    def test_load_fraction_scales_bound(self):
        policy = SelfLearningInterposing(depth=1, learn_count=3,
                                         load_fraction=0.25)
        for t in (0, 100, 200):
            policy.observe_arrival(t)
        # learned d_min 100, 25% load => 400
        assert policy.monitor.table == [400]

    def test_explicit_bound(self):
        policy = SelfLearningInterposing(depth=1, learn_count=3, bound=[300])
        for t in (0, 100, 200):
            policy.observe_arrival(t)
        assert policy.monitor.table == [300]

    def test_bound_and_fraction_exclusive(self):
        with pytest.raises(ValueError):
            SelfLearningInterposing(depth=1, learn_count=3, bound=[300],
                                    load_fraction=0.5)

    def test_observe_after_run_mode_is_ignored(self):
        policy = SelfLearningInterposing(depth=1, learn_count=3)
        for t in (0, 100, 200):
            policy.observe_arrival(t)
        table_before = policy.monitor.table
        policy.observe_arrival(201)   # a 1-cycle gap would change the table
        assert policy.monitor.table == table_before
