"""Tests for the context-switch cost model."""

from repro.hypervisor.config import CostModel
from repro.hypervisor.context import ContextSwitchModel, SwitchReason


class TestContextSwitchModel:
    def test_paper_cost(self):
        model = ContextSwitchModel(CostModel())
        assert model.cost_cycles == 10_000   # 5000 instr + 5000 cycles

    def test_switch_returns_cost(self):
        model = ContextSwitchModel(CostModel())
        assert model.switch(SwitchReason.SLOT) == 10_000

    def test_counts_by_reason(self):
        model = ContextSwitchModel(CostModel())
        model.switch(SwitchReason.SLOT)
        model.switch(SwitchReason.SLOT)
        model.switch(SwitchReason.INTERPOSE_ENTER)
        model.switch(SwitchReason.INTERPOSE_EXIT)
        assert model.count(SwitchReason.SLOT) == 2
        assert model.count(SwitchReason.INTERPOSE_ENTER) == 1
        assert model.total == 4
        assert model.total_cycles == 40_000

    def test_counts_copy(self):
        model = ContextSwitchModel(CostModel())
        model.switch(SwitchReason.SLOT)
        counts = model.counts
        counts[SwitchReason.SLOT] = 99
        assert model.count(SwitchReason.SLOT) == 1

    def test_custom_cost_model(self):
        costs = CostModel(ctx_invalidate_instructions=100,
                          ctx_writeback_cycles=50)
        assert ContextSwitchModel(costs).cost_cycles == 150
