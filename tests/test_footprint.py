"""Tests for the Section 6.2 footprint model."""

import pytest

from repro.hypervisor.footprint import (
    PAPER_FOOTPRINT,
    monitor_data_bytes,
    render_footprint_table,
    total_paper_code_bytes,
    total_paper_data_bytes,
)


class TestPaperConstants:
    def test_total_code_bytes(self):
        """The paper: the entire implementation requires 1120 bytes."""
        assert total_paper_code_bytes() == 1120

    def test_total_data_bytes(self):
        assert total_paper_data_bytes() == 28

    def test_component_breakdown(self):
        by_name = {entry.name: entry for entry in PAPER_FOOTPRINT}
        assert by_name["TDMA scheduler modification"].paper_code_bytes == 392
        assert by_name["Modified top handler"].paper_code_bytes == 456
        assert by_name["Monitoring function"].paper_code_bytes == 272
        assert by_name["Monitoring function"].paper_data_bytes == 28

    def test_modules_resolve(self):
        for entry in PAPER_FOOTPRINT:
            size = entry.module_source_bytes()
            assert size is not None and size > 0


class TestMonitorDataModel:
    def test_depth_one_matches_paper(self):
        assert monitor_data_bytes(1) == 28

    def test_scales_with_depth(self):
        assert monitor_data_bytes(5) == 20 + 2 * 5 * 4

    def test_validation(self):
        with pytest.raises(ValueError):
            monitor_data_bytes(0)


class TestRendering:
    def test_table_contains_totals(self):
        text = render_footprint_table()
        assert "1120" in text
        assert "Monitoring function" in text
        assert "repro.core.monitor" in text
