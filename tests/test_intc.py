"""Tests for the interrupt controller (latching, masking, priorities)."""

import pytest

from repro.sim.engine import SimulationEngine
from repro.sim.intc import InterruptController
from repro.sim.trace import TraceKind, TraceRecorder


def make_intc(num_lines=8):
    engine = SimulationEngine()
    trace = TraceRecorder()
    intc = InterruptController(engine, num_lines=num_lines, trace=trace)
    return engine, intc, trace


class TestDelivery:
    def test_unmasked_raise_dispatches_immediately(self):
        _, intc, _ = make_intc()
        seen = []

        def dispatcher(line):
            intc.mask_all()
            intc.acknowledge(line)
            seen.append(line)

        intc.set_dispatcher(dispatcher)
        intc.raise_line(3)
        assert seen == [3]

    def test_masked_raise_is_latched(self):
        _, intc, _ = make_intc()
        seen = []

        def dispatcher(line):
            intc.mask_all()
            intc.acknowledge(line)
            seen.append(line)

        intc.set_dispatcher(dispatcher)
        intc.mask_all()
        intc.raise_line(2)
        assert seen == []
        assert intc.is_pending(2)
        intc.unmask_all()
        assert seen == [2]
        assert not intc.is_pending(2)

    def test_priority_lowest_line_first(self):
        _, intc, _ = make_intc()
        seen = []

        def dispatcher(line):
            intc.acknowledge(line)
            if not seen:
                # handle-and-return without masking: delivery loop
                # should pick the next pending line in priority order
                pass
            seen.append(line)
            if len(seen) == 2:
                intc.mask_all()

        intc.set_dispatcher(dispatcher)
        intc.mask_all()
        intc.raise_line(5)
        intc.raise_line(1)
        intc.unmask_all()
        assert seen == [1, 5]

    def test_coalescing_counts(self):
        _, intc, _ = make_intc()
        intc.set_dispatcher(lambda line: None)  # never called: masked
        intc.mask_all()
        intc.raise_line(4)
        intc.raise_line(4)
        intc.raise_line(4)
        assert intc.raise_count(4) == 3
        assert intc.coalesced_count(4) == 2

    def test_coalesced_trace_event(self):
        engine, intc, trace = make_intc()
        intc.mask_all()
        intc.raise_line(4)
        intc.raise_line(4)
        kinds = [event.kind for event in trace]
        assert kinds == [TraceKind.IRQ_RAISED, TraceKind.IRQ_COALESCED]

    def test_delivered_count(self):
        _, intc, _ = make_intc()

        def dispatcher(line):
            intc.mask_all()
            intc.acknowledge(line)

        intc.set_dispatcher(dispatcher)
        intc.raise_line(1)
        intc.unmask_all()
        intc.raise_line(1)
        assert intc.delivered_count(1) == 2


class TestLineControl:
    def test_disabled_line_stays_latched(self):
        _, intc, _ = make_intc()
        seen = []

        def dispatcher(line):
            intc.mask_all()
            intc.acknowledge(line)
            seen.append(line)

        intc.set_dispatcher(dispatcher)
        intc.disable_line(2)
        intc.raise_line(2)
        assert seen == []
        intc.enable_line(2)
        assert seen == [2]

    def test_line_out_of_range(self):
        _, intc, _ = make_intc(num_lines=4)
        with pytest.raises(ValueError):
            intc.raise_line(4)
        with pytest.raises(ValueError):
            intc.raise_line(-1)

    def test_needs_at_least_one_line(self):
        engine = SimulationEngine()
        with pytest.raises(ValueError):
            InterruptController(engine, num_lines=0)

    def test_livelock_detection(self):
        _, intc, _ = make_intc()
        # A dispatcher that neither acknowledges nor masks would spin.
        intc.set_dispatcher(lambda line: None)
        with pytest.raises(RuntimeError):
            intc.raise_line(1)

    def test_masked_property(self):
        _, intc, _ = make_intc()
        assert not intc.masked
        intc.mask_all()
        assert intc.masked
