"""Tests for IRQ sources, events and queues."""

import pytest

from repro.core.policy import HandlingMode
from repro.hypervisor.irq import IrqEvent, IrqQueue, IrqQueueOverflow, IrqSource


def make_source(**overrides):
    defaults = dict(name="irq", line=5, subscriber="P1",
                    top_handler_cycles=400, bottom_handler_cycles=8_000)
    defaults.update(overrides)
    return IrqSource(**defaults)


class TestIrqSource:
    def test_defaults(self):
        source = make_source()
        assert source.actual_bottom_cycles(0) == 8_000
        assert not source.policy.request_interpose(0)   # NeverInterpose

    def test_actual_bottom_handler_override(self):
        source = make_source(bottom_handler_actual=lambda seq: 1_000 * (seq + 1))
        assert source.actual_bottom_cycles(0) == 1_000
        assert source.actual_bottom_cycles(2) == 3_000

    def test_negative_actual_rejected(self):
        source = make_source(bottom_handler_actual=lambda seq: -1)
        with pytest.raises(ValueError):
            source.actual_bottom_cycles(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_source(line=-1)
        with pytest.raises(ValueError):
            make_source(top_handler_cycles=-1)
        with pytest.raises(ValueError):
            make_source(bottom_handler_cycles=-1)


class TestIrqEvent:
    def test_latency(self):
        event = IrqEvent(make_source(), seq=0, arrival=100, bh_remaining=500)
        assert event.latency is None
        event.completed_at = 900
        assert event.latency == 800

    def test_done(self):
        event = IrqEvent(make_source(), seq=0, arrival=0, bh_remaining=10)
        assert not event.done
        event.bh_remaining = 0
        assert event.done

    def test_repr_mentions_mode(self):
        event = IrqEvent(make_source(), seq=3, arrival=0, bh_remaining=10)
        event.mode = HandlingMode.DELAYED
        assert "delayed" in repr(event)


class TestIrqQueue:
    def test_fifo_order(self):
        queue = IrqQueue()
        events = [IrqEvent(make_source(), seq=i, arrival=i, bh_remaining=1)
                  for i in range(3)]
        for event in events:
            queue.push(event)
        assert queue.pop() is events[0]
        assert queue.pop() is events[1]
        assert queue.pop() is events[2]

    def test_head_peeks(self):
        queue = IrqQueue()
        event = IrqEvent(make_source(), seq=0, arrival=0, bh_remaining=1)
        queue.push(event)
        assert queue.head() is event
        assert len(queue) == 1

    def test_head_of_empty(self):
        assert IrqQueue().head() is None

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            IrqQueue().pop()

    def test_capacity_overflow(self):
        queue = IrqQueue(capacity=2)
        for i in range(2):
            queue.push(IrqEvent(make_source(), seq=i, arrival=i, bh_remaining=1))
        with pytest.raises(IrqQueueOverflow):
            queue.push(IrqEvent(make_source(), seq=2, arrival=2, bh_remaining=1))

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            IrqQueue(capacity=0)

    def test_statistics(self):
        queue = IrqQueue()
        for i in range(3):
            queue.push(IrqEvent(make_source(), seq=i, arrival=i, bh_remaining=1))
        queue.pop()
        assert queue.pushed_count == 3
        assert queue.max_depth == 3
        assert len(queue) == 2
