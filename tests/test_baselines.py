"""Tests for the boost and throttling baselines."""

import pytest

from conftest import build_system, run_system, us
from repro.baselines.boost import BoostPolicy
from repro.baselines.throttling import MinDistanceThrottle, TokenBucketThrottle
from repro.core.independence import DminInterferenceBound, InterferenceKind
from repro.core.monitor import DeltaMinusMonitor
from repro.core.policy import MonitoredInterposing


class TestMinDistanceThrottle:
    def test_admits_spaced_arrivals(self):
        throttle = MinDistanceThrottle(100)
        assert throttle.admit(0)
        assert throttle.admit(100)
        assert throttle.admit(250)
        assert throttle.suppressed_count == 0

    def test_suppresses_dense_arrivals(self):
        throttle = MinDistanceThrottle(100)
        assert throttle.admit(0)
        assert not throttle.admit(50)
        assert not throttle.admit(99)
        assert throttle.admit(100)
        assert throttle.suppressed_count == 2
        assert throttle.admitted_count == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            MinDistanceThrottle(0)


class TestTokenBucketThrottle:
    def test_burst_allowance(self):
        throttle = TokenBucketThrottle(burst=3, refill_period=100)
        assert all(throttle.admit(t) for t in (0, 1, 2))
        assert not throttle.admit(3)
        assert throttle.suppressed_count == 1

    def test_refill(self):
        throttle = TokenBucketThrottle(burst=1, refill_period=100)
        assert throttle.admit(0)
        assert not throttle.admit(50)
        assert throttle.admit(200)

    def test_monotone_required(self):
        throttle = TokenBucketThrottle(burst=1, refill_period=100)
        throttle.admit(100)
        with pytest.raises(ValueError):
            throttle.admit(50)

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucketThrottle(0, 100)
        with pytest.raises(ValueError):
            TokenBucketThrottle(1, 0)


class TestBoostInSystem:
    def test_boost_gives_low_latency(self):
        hv, timer = build_system(subscriber="P2", policy=BoostPolicy(),
                                 intervals=[us(100), us(300), us(300)])
        run_system(hv, timer, 3)
        assert all(record.latency < us(200)
                   for record in hv.latency_records)

    def test_boost_breaks_interference_budget_under_bursts(self):
        """The Section 2 critique: boost has no shaping, so dense
        arrivals inject unbounded interference into foreign slots."""
        gaps = [us(100)] + [us(150)] * 10
        hv, timer = build_system(subscriber="P2", policy=BoostPolicy(),
                                 intervals=gaps)
        run_system(hv, timer, len(gaps))
        dmin = us(1_000)
        bound = DminInterferenceBound(
            dmin, hv.config.costs.effective_bottom_handler_cycles(us(40))
        )
        width = us(2_000)
        measured = hv.ledger.max_window_interference(
            "P1", width, (InterferenceKind.INTERPOSED_BH,)
        )
        assert measured > bound.max_interference(width)

    def test_monitor_keeps_budget_on_same_bursts(self):
        gaps = [us(100)] + [us(150)] * 10
        dmin = us(1_000)
        policy = MonitoredInterposing(DeltaMinusMonitor.from_dmin(dmin))
        hv, timer = build_system(subscriber="P2", policy=policy,
                                 intervals=gaps)
        run_system(hv, timer, len(gaps))
        bound = DminInterferenceBound(
            dmin, hv.config.costs.effective_bottom_handler_cycles(us(40))
        )
        width = us(2_000)
        measured = hv.ledger.max_window_interference(
            "P1", width, (InterferenceKind.INTERPOSED_BH,)
        )
        assert measured <= bound.max_interference(width)


class TestThrottleInSystem:
    def test_throttled_irqs_are_suppressed(self):
        hv, timer = build_system(subscriber="P2",
                                 intervals=[us(100)] * 10)
        throttle = MinDistanceThrottle(us(500))
        hv.irq_source("irq").throttle = throttle
        run_system(hv, timer, 10, limit_us=50_000)
        assert hv.stats.irqs_throttled > 0
        assert (len(hv.latency_records) + hv.stats.irqs_throttled
                == 10)

    def test_throttle_does_not_reduce_latency(self):
        """Admitted IRQs still take the delayed TDMA path."""
        hv, timer = build_system(subscriber="P2",
                                 intervals=[us(100)] * 6)
        hv.irq_source("irq").throttle = MinDistanceThrottle(us(500))
        run_system(hv, timer, 6, limit_us=50_000)
        assert hv.latency_records
        assert max(record.latency for record in hv.latency_records) > us(500)
