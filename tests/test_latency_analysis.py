"""Tests for the worst-case IRQ latency analyses (Eqs. 11, 12, 16)."""

import pytest

from repro.analysis.event_models import PeriodicEventModel, sporadic
from repro.analysis.latency import (
    InterferingIrq,
    classic_irq_latency,
    interposed_irq_latency,
    latency_improvement_factor,
    violated_irq_latency,
)
from repro.hypervisor.config import CostModel

# The paper system at 200 MHz, in cycles.
US = 200
CYCLE = 14_000 * US
SLOT = 6_000 * US
C_TH = 2 * US
C_BH = 40 * US
COSTS = CostModel()


class TestClassicLatency:
    def test_dominated_by_tdma(self):
        """Eq. 11's bound is dominated by the TDMA cycle term:
        C_TH, C_BH << T_TDMA - T_i (Section 4)."""
        model = sporadic(1_444 * US)
        bound = classic_irq_latency(model, C_TH, C_BH, CYCLE, SLOT,
                                    costs=COSTS)
        foreign = CYCLE - SLOT
        assert bound.response_time_cycles >= foreign
        assert bound.response_time_cycles <= foreign + 20 * (C_TH + C_BH)
        assert bound.includes_tdma_term

    def test_exact_single_activation_value(self):
        # Sparse stream: one activation per busy window.
        # W(1) = C_BH + eta(W)*C_TH + ceil(W/T)*(T - T_i)
        model = sporadic(1_000_000 * US)
        bound = classic_irq_latency(model, C_TH, C_BH, CYCLE, SLOT,
                                    costs=COSTS)
        # W = 8000+40 us + C_TH with one TDMA cycle started:
        assert bound.q_max == 1
        assert bound.response_time_cycles == C_BH + C_TH + (CYCLE - SLOT)

    def test_interferers_add_top_handlers(self):
        model = sporadic(1_000_000 * US)
        other = InterferingIrq(model=sporadic(100_000 * US),
                               top_handler_cycles=5 * US)
        with_j = classic_irq_latency(model, C_TH, C_BH, CYCLE, SLOT,
                                     interferers=[other], costs=COSTS)
        without = classic_irq_latency(model, C_TH, C_BH, CYCLE, SLOT,
                                      costs=COSTS)
        assert with_j.response_time_cycles > without.response_time_cycles

    def test_monitored_interferer_pays_cmon(self):
        base = InterferingIrq(model=sporadic(10_000 * US),
                              top_handler_cycles=5 * US)
        monitored = InterferingIrq(model=sporadic(10_000 * US),
                                   top_handler_cycles=5 * US, monitored=True)
        assert (monitored.effective_top_cycles(COSTS)
                == base.effective_top_cycles(COSTS) + COSTS.monitor_cycles())


class TestInterposedLatency:
    def test_independent_of_tdma(self):
        """Observation 2 of Section 5.1: the Eq. 16 bound contains no
        TDMA term at all."""
        model = sporadic(1_444 * US)
        bound = interposed_irq_latency(model, C_TH, C_BH, costs=COSTS)
        assert not bound.includes_tdma_term
        assert bound.response_time_cycles < (CYCLE - SLOT) // 10

    def test_exact_value_sparse(self):
        model = sporadic(1_000_000 * US)
        bound = interposed_irq_latency(model, C_TH, C_BH, costs=COSTS)
        expected = (COSTS.effective_bottom_handler_cycles(C_BH)
                    + COSTS.effective_top_handler_cycles(C_TH))
        assert bound.response_time_cycles == expected

    def test_charged_costs_are_effective(self):
        model = sporadic(1_444 * US)
        bound = interposed_irq_latency(model, C_TH, C_BH, costs=COSTS)
        assert bound.charged_bottom_cycles == COSTS.effective_bottom_handler_cycles(C_BH)
        assert bound.charged_top_cycles == COSTS.effective_top_handler_cycles(C_TH)

    def test_improvement_factor(self):
        model = sporadic(1_444 * US)
        classic = classic_irq_latency(model, C_TH, C_BH, CYCLE, SLOT,
                                      costs=COSTS)
        interposed = interposed_irq_latency(model, C_TH, C_BH, costs=COSTS)
        factor = latency_improvement_factor(classic, interposed)
        assert factor > 10.0   # the paper reports ~16x on averages


class TestViolatedLatency:
    def test_keeps_tdma_term_and_adds_cmon(self):
        """Section 5.1 case 2: delayed processing with C'_TH."""
        model = sporadic(1_000_000 * US)
        violated = violated_irq_latency(model, C_TH, C_BH, CYCLE, SLOT,
                                        costs=COSTS)
        classic = classic_irq_latency(model, C_TH, C_BH, CYCLE, SLOT,
                                      costs=COSTS)
        assert violated.includes_tdma_term
        assert (violated.response_time_cycles
                == classic.response_time_cycles + COSTS.monitor_cycles())

    def test_monitoring_overhead_is_small(self):
        """The paper: monitoring overhead is ~order of 10 cycles per
        check [8] and therefore tolerable; our C_Mon is 128 cycles and
        still < 1 us at 200 MHz."""
        assert COSTS.monitor_cycles() < US


class TestBoundOrdering:
    def test_interposed_below_violated_below_classic_plus_cmon(self):
        model = sporadic(1_444 * US)
        interposed = interposed_irq_latency(model, C_TH, C_BH, costs=COSTS)
        violated = violated_irq_latency(model, C_TH, C_BH, CYCLE, SLOT,
                                        costs=COSTS)
        assert interposed.response_time_cycles < violated.response_time_cycles

    def test_denser_streams_have_larger_bounds(self):
        slow = interposed_irq_latency(sporadic(10_000 * US), C_TH, C_BH,
                                      costs=COSTS)
        c_bh_eff = COSTS.effective_bottom_handler_cycles(C_BH)
        fast = interposed_irq_latency(sporadic(2 * c_bh_eff), C_TH, C_BH,
                                      costs=COSTS)
        assert fast.response_time_cycles >= slow.response_time_cycles
