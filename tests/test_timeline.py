"""Tests for CPU segment recording and timeline rendering."""

import pytest

from conftest import us
from repro.core.monitor import DeltaMinusMonitor
from repro.core.policy import MonitoredInterposing
from repro.hypervisor.config import HypervisorConfig, SlotConfig
from repro.hypervisor.hypervisor import Hypervisor
from repro.hypervisor.irq import IrqSource
from repro.hypervisor.partition import Partition
from repro.metrics.timeline import (
    TimelineMark,
    lane_of,
    occupancy_by_lane,
    render_gantt,
    segments_between,
)
from repro.sim.cpu import Cpu, CpuSegment, Execution
from repro.sim.engine import SimulationEngine
from repro.sim.timers import IntervalSequenceTimer


class TestSegmentRecording:
    def test_execution_segments(self):
        engine = SimulationEngine()
        cpu = Cpu(engine, record_segments=True)
        cpu.assign(Execution("w", 100, category="task:P1"))
        engine.run()
        (segment,) = cpu.segments
        assert (segment.start, segment.end) == (0, 100)
        assert segment.category == "task:P1"

    def test_preemption_splits_segments(self):
        engine = SimulationEngine()
        cpu = Cpu(engine, record_segments=True)
        work = Execution("w", 100, category="x")
        cpu.assign(work)
        engine.run_until(30)
        cpu.preempt()
        engine.run_until(50)
        cpu.assign(work)
        engine.run()
        assert [(s.start, s.end) for s in cpu.segments] == [(0, 30), (50, 120)]

    def test_overhead_segments(self):
        engine = SimulationEngine()
        cpu = Cpu(engine, record_segments=True)
        engine.schedule(40, lambda: cpu.charge_overhead(40))
        engine.run()
        (segment,) = cpu.segments
        assert (segment.start, segment.end) == (0, 40)
        assert segment.category == "hypervisor"

    def test_recording_disabled_by_default(self):
        cpu = Cpu(SimulationEngine())
        assert cpu.segments is None

    def test_segments_cover_elapsed_time(self):
        """With recording on, segments partition the simulated time."""
        slots = [SlotConfig("P1", us(500)), SlotConfig("P2", us(500))]
        hv = Hypervisor(slots, HypervisorConfig(record_cpu_segments=True))
        hv.add_partition(Partition("P1"))
        hv.add_partition(Partition("P2"))
        source = IrqSource(
            name="irq", line=5, subscriber="P2",
            top_handler_cycles=us(2), bottom_handler_cycles=us(40),
            policy=MonitoredInterposing(DeltaMinusMonitor.from_dmin(us(100))),
        )
        hv.add_irq_source(source)
        timer = IntervalSequenceTimer(hv.engine, hv.intc, 5,
                                      [us(100), us(300), us(600)])
        source.on_top_handler = lambda event: timer.arm_next()
        hv.start()
        timer.arm_next()
        hv.run_until(us(3_000))
        hv.cpu.preempt()
        total = sum(segment.duration for segment in hv.cpu.segments)
        assert total == hv.engine.now
        # segments are contiguous and non-overlapping
        for a, b in zip(hv.cpu.segments, hv.cpu.segments[1:]):
            assert a.end == b.start


class TestLaneMapping:
    def test_lanes(self):
        assert lane_of("task:P1") == "P1"
        assert lane_of("idle:P2") == "P2"
        assert lane_of("bh:P2") == "P2 BH"
        assert lane_of("hypervisor") == "HV"
        assert lane_of("other") == "other"


class TestRenderGantt:
    def make_segments(self):
        return [
            CpuSegment(0, 50, "task:P1", "bg"),
            CpuSegment(50, 60, "hypervisor", "hv"),
            CpuSegment(60, 100, "bh:P2", "bh"),
        ]

    def test_render_contains_lanes(self):
        text = render_gantt(self.make_segments(), 0, 100, width=50)
        assert "P1" in text and "P2 BH" in text and "HV" in text
        assert "#" in text

    def test_marks(self):
        text = render_gantt(self.make_segments(), 0, 100, width=50,
                            marks=[TimelineMark(50, "v", "IRQ")])
        assert "v" in text
        assert "v=IRQ" in text

    def test_lane_order(self):
        text = render_gantt(self.make_segments(), 0, 100, width=50,
                            lane_order=["HV", "P1"])
        lines = [line for line in text.splitlines() if "|" in line]
        assert lines[0].startswith("HV")

    def test_window_clipping(self):
        text = render_gantt(self.make_segments(), 55, 90, width=40)
        assert "P1" not in text   # the task segment ends at 50

    def test_validation(self):
        with pytest.raises(ValueError):
            render_gantt([], 10, 10)
        with pytest.raises(ValueError):
            render_gantt([], 0, 10, width=0)


class TestSegmentQueries:
    def test_segments_between(self):
        segments = [CpuSegment(0, 10, "a", "a"), CpuSegment(20, 30, "b", "b")]
        assert len(segments_between(segments, 5, 25)) == 2
        assert len(segments_between(segments, 10, 20)) == 0

    def test_occupancy_by_lane(self):
        segments = [CpuSegment(0, 10, "task:P1", "x"),
                    CpuSegment(10, 30, "bh:P1", "y")]
        occupancy = occupancy_by_lane(segments, 5, 20)
        assert occupancy == {"P1": 5, "P1 BH": 10}
