"""Cross-validation: the simulated system's *interposed windows*
conform to the event model the analysis assumes.

The Eq. 14/Eq. 16 analyses model the monitor's output as a stream with
minimum distance d_min.  The monitor shapes *window openings* (one per
accepted activation); the events completed inside a window also include
older queue-drained IRQs whose arrivals may be closer together — that
is FIFO draining, not a shaping violation.  These tests therefore
extract window openings from the interference ledger and check them
against the analytic model.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import build_system, run_system, us
from repro.analysis.event_models import TraceEventModel, sporadic
from repro.core.independence import InterferenceKind
from repro.core.monitor import DeltaMinusMonitor
from repro.core.policy import MonitoredInterposing

#: Window openings start C_sched + C_ctx after the monitor decision,
#: and the decision itself can lag the accepted timestamp by the
#: masked top-handler section; consecutive openings can therefore
#: compress below d_min by at most this many cycles.
ENTRY_SLACK = us(2) + 128 + 877 + 10_000


def interposed_window_starts(hv, victim="P1", cluster_gap=None):
    """Start times of interposed windows, reconstructed from the ledger.

    A window's entry overhead, bottom-handler stints and exit switch
    are separated at most by preempting top-handler sections, so
    intervals closer than ``cluster_gap`` belong to the same window.
    """
    if cluster_gap is None:
        cluster_gap = us(100)   # far below any d_min used here
    intervals = sorted(
        hv.ledger.for_victim(victim, (InterferenceKind.INTERPOSED_BH,)),
        key=lambda iv: iv.start,
    )
    starts = []
    previous_end = None
    for interval in intervals:
        if previous_end is None or interval.start - previous_end > cluster_gap:
            starts.append(interval.start)
        previous_end = max(previous_end or 0, interval.end)
    return starts


class TestWindowOpeningConformance:
    def run(self, dmin_us=700):
        dmin = us(dmin_us)
        policy = MonitoredInterposing(DeltaMinusMonitor.from_dmin(dmin))
        gaps = [us(g % 900 + 50) for g in range(0, 40_000, 531)]
        hv, timer = build_system(subscriber="P2", policy=policy,
                                 intervals=gaps, trace=False)
        run_system(hv, timer, len(gaps))
        return hv, dmin

    def test_window_openings_respect_dmin(self):
        hv, dmin = self.run()
        starts = interposed_window_starts(hv)
        assert len(starts) >= 5
        for a, b in zip(starts, starts[1:]):
            assert b - a >= dmin - ENTRY_SLACK

    def test_window_openings_within_sporadic_model(self):
        hv, dmin = self.run()
        starts = interposed_window_starts(hv)
        empirical = TraceEventModel(starts)
        analytic = sporadic(dmin - ENTRY_SLACK)
        for q in range(2, min(12, len(starts) + 1)):
            assert empirical.delta_minus(q) >= analytic.delta_minus(q)

    def test_drained_events_may_arrive_closer_than_dmin(self):
        """Documented behaviour: an event denied by the monitor can
        still *complete* inside a later window (FIFO draining), so the
        arrival stream of interposed-completed events is denser than
        the window-opening stream."""
        hv, dmin = self.run()
        completed_arrivals = sorted(
            record.arrival for record in hv.latency_records
            if record.mode.value == "interposed"
        )
        window_count = len(interposed_window_starts(hv))
        assert len(completed_arrivals) >= window_count


@settings(max_examples=10, deadline=None)
@given(
    dmin_us=st.integers(min_value=300, max_value=1_500),
    seed_step=st.integers(min_value=31, max_value=977),
)
def test_property_window_spacing_respects_dmin(dmin_us, seed_step):
    """Consecutive interposed windows start at least d_min minus the
    bounded entry slack apart, for randomized arrival patterns."""
    dmin = us(dmin_us)
    policy = MonitoredInterposing(DeltaMinusMonitor.from_dmin(dmin))
    gaps = [us(g % 1_100 + 20) for g in range(0, 20_000, seed_step)]
    hv, timer = build_system(subscriber="P2", policy=policy,
                             intervals=gaps, trace=False)
    run_system(hv, timer, len(gaps))
    starts = interposed_window_starts(hv)
    for a, b in zip(starts, starts[1:]):
        assert b - a >= dmin - ENTRY_SLACK
