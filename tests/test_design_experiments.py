"""Tests for the design workflow and depth-ablation experiments."""

import pytest

from repro.experiments.ablation import (
    render_depth_ablation,
    run_depth_ablation,
)
from repro.experiments.design import render_design, run_design


class TestDesignWorkflow:
    @pytest.fixture(scope="class")
    def result(self):
        return run_design(irq_count=250)

    def test_analysis_finds_admissible_dmin(self, result):
        assert result.analytic_min_dmin_us > 0
        assert result.analytic_schedulable_at_min

    def test_simulation_confirms(self, result):
        assert result.simulated_misses_at_min == 0
        assert result.simulation_confirms_analysis

    def test_interposing_actually_happened(self, result):
        assert result.windows_opened > 0

    def test_bound_dominates_simulation(self, result):
        assert (result.simulated_max_response_us
                <= result.analytic_response_bound_us)

    def test_render(self, result):
        text = render_design(result)
        assert "minimum admissible d_min" in text
        assert "yes" in text


class TestDepthAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return run_depth_ablation(activation_count=1_200)

    def test_deep_table_wins_on_bursty_trace(self, result):
        assert result.deep_monitor_wins

    def test_same_irq_counts(self, result):
        assert len(result.deep.records) == len(result.shallow.records)

    def test_shallow_denies_bursts(self, result):
        assert (result.shallow.mode_counts.get("delayed", 0)
                > result.deep.mode_counts.get("delayed", 0))

    def test_table_structure(self, result):
        assert len(result.deep_table_us) == 5
        assert result.deep_table_us == sorted(result.deep_table_us)
        # the shallow d_min is the deep table's asymptotic rate
        assert result.shallow_dmin_us == pytest.approx(
            result.deep_table_us[-1] / 5, rel=0.01
        )

    def test_render(self, result):
        text = render_depth_ablation(result)
        assert "abl-depth" in text
