"""Compositionality of the interference bound: multiple interposing
sources add their Eq. 14 budgets (Eq. 2's sum over the interferer set)."""

import pytest

from conftest import us
from repro.core.independence import (
    InterferenceKind,
    verify_sufficient_independence,
)
from repro.core.monitor import DeltaMinusMonitor
from repro.core.policy import MonitoredInterposing
from repro.hypervisor.config import HypervisorConfig, SlotConfig
from repro.hypervisor.hypervisor import Hypervisor
from repro.hypervisor.irq import IrqSource
from repro.hypervisor.partition import Partition
from repro.sim.timers import IntervalSequenceTimer
from repro.workloads.synthetic import clip_to_dmin, exponential_interarrivals


def build_two_monitored_sources():
    """Three partitions; two monitored IRQ sources for different
    subscribers, both interposing into the victim's slots."""
    slots = [SlotConfig("VICTIM", us(2_000)), SlotConfig("A", us(1_000)),
             SlotConfig("B", us(1_000))]
    hv = Hypervisor(slots, HypervisorConfig(trace_enabled=False))
    for name in ("VICTIM", "A", "B"):
        hv.add_partition(Partition(name))
    configs = [("irq_a", 5, "A", us(1_000), us(30)),
               ("irq_b", 6, "B", us(1_500), us(50))]
    timers = []
    for name, line, subscriber, dmin, c_bh in configs:
        source = IrqSource(
            name=name, line=line, subscriber=subscriber,
            top_handler_cycles=us(2), bottom_handler_cycles=c_bh,
            policy=MonitoredInterposing(DeltaMinusMonitor.from_dmin(dmin)),
        )
        hv.add_irq_source(source)
        gaps = clip_to_dmin(
            exponential_interarrivals(200, dmin, seed=line), dmin
        )
        timer = IntervalSequenceTimer(hv.engine, hv.intc, line, gaps)
        source.on_top_handler = (
            lambda event, t=timer: t.arm_next()
        )
        timers.append(timer)
    return hv, timers, configs


class TestCompositeInterference:
    def test_sum_of_eq14_bounds_holds(self):
        hv, timers, configs = build_two_monitored_sources()
        hv.start()
        for timer in timers:
            timer.arm_next()
        hv.run_until_irq_count(400, limit_cycles=hv.clock.s_to_cycles(60))

        costs = hv.config.costs
        budgets = [
            (dmin, costs.effective_bottom_handler_cycles(c_bh))
            for _, _, _, dmin, c_bh in configs
        ]

        def composite_bound(dt: int) -> int:
            import math
            return sum(math.ceil(dt / dmin) * cost
                       for dmin, cost in budgets)

        report = verify_sufficient_independence(
            hv.ledger, "VICTIM", composite_bound,
            [us(w) for w in (200, 1_000, 4_000, 16_000, 60_000)],
            kinds=(InterferenceKind.INTERPOSED_BH,),
        )
        assert report.holds

    def test_both_sources_actually_interposed(self):
        hv, timers, configs = build_two_monitored_sources()
        hv.start()
        for timer in timers:
            timer.arm_next()
        hv.run_until_irq_count(400, limit_cycles=hv.clock.s_to_cycles(60))
        interposed_sources = {
            record.source for record in hv.latency_records
            if record.mode.value == "interposed"
        }
        assert interposed_sources == {"irq_a", "irq_b"}

    def test_per_source_fifo_with_two_sources(self):
        hv, timers, configs = build_two_monitored_sources()
        hv.start()
        for timer in timers:
            timer.arm_next()
        hv.run_until_irq_count(400, limit_cycles=hv.clock.s_to_cycles(60))
        for name in ("irq_a", "irq_b"):
            seqs = [record.seq for record in hv.latency_records
                    if record.source == name]
            assert seqs == sorted(seqs)
