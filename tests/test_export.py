"""Tests for measurement export/import."""

import csv

import pytest

from repro.core.policy import HandlingMode
from repro.hypervisor.hypervisor import LatencyRecord
from repro.metrics.export import (
    read_records_json,
    write_histogram_csv,
    write_latency_csv,
    write_records_json,
    write_series_csv,
)
from repro.metrics.histogram import LatencyHistogram
from repro.sim.clock import Clock


def sample_records():
    return [
        LatencyRecord("irq", 0, 100, 8500, HandlingMode.DIRECT, False),
        LatencyRecord("irq", 1, 9000, 180000, HandlingMode.DELAYED, False),
        LatencyRecord("irq", 2, 200000, 220000, HandlingMode.INTERPOSED, True),
    ]


class TestLatencyCsv:
    def test_roundtrip_rows(self, tmp_path):
        path = tmp_path / "lat.csv"
        assert write_latency_csv(path, sample_records()) == 3
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows[0][0] == "source"
        assert len(rows) == 4
        assert rows[1][5] == "direct"

    def test_with_clock_adds_us_column(self, tmp_path):
        path = tmp_path / "lat.csv"
        write_latency_csv(path, sample_records(), clock=Clock())
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert "latency_us" in rows[0]
        assert rows[1][rows[0].index("latency_us")] == "42.000"


class TestHistogramCsv:
    def test_writes_bins(self, tmp_path):
        histogram = LatencyHistogram(0, 100, 50)
        histogram.add_all([10, 60, 150])
        path = tmp_path / "hist.csv"
        assert write_histogram_csv(path, histogram) == 2
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert [float(rows[1][0]), float(rows[1][1]), int(rows[1][2])] == [0.0, 50.0, 1]
        assert rows[-2][0] == "overflow"
        assert rows[-2][2] == "1"


class TestSeriesCsv:
    def test_writes_indexed_values(self, tmp_path):
        path = tmp_path / "series.csv"
        assert write_series_csv(path, [1.5, 2.5], column="avg_us") == 2
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["index", "avg_us"]
        assert rows[2] == ["1", "2.5"]


class TestRecordsJson:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "records.json"
        records = sample_records()
        assert write_records_json(path, records,
                                  metadata={"seed": 1}) == 3
        loaded = read_records_json(path)
        assert loaded == records

    def test_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "other"}')
        with pytest.raises(ValueError):
            read_records_json(path)
