"""Tests for measurement export/import.

Alongside the example-based checks, the hypothesis classes pin the
round-trip contracts downstream tooling relies on:
``write_records_json``/``read_records_json`` must be lossless for any
records (including an empty list and non-ASCII source names), and
``write_latency_csv`` output must stay byte-identical to the golden
rendering — the CSV is an exported interface, so even a formatting
tweak is a breaking change.
"""

import csv

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.policy import HandlingMode
from repro.hypervisor.hypervisor import LatencyRecord
from repro.metrics.export import (
    read_records_json,
    write_histogram_csv,
    write_latency_csv,
    write_records_json,
    write_series_csv,
)
from repro.metrics.histogram import LatencyHistogram
from repro.sim.clock import Clock


def sample_records():
    return [
        LatencyRecord("irq", 0, 100, 8500, HandlingMode.DIRECT, False),
        LatencyRecord("irq", 1, 9000, 180000, HandlingMode.DELAYED, False),
        LatencyRecord("irq", 2, 200000, 220000, HandlingMode.INTERPOSED, True),
    ]


class TestLatencyCsv:
    def test_roundtrip_rows(self, tmp_path):
        path = tmp_path / "lat.csv"
        assert write_latency_csv(path, sample_records()) == 3
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows[0][0] == "source"
        assert len(rows) == 4
        assert rows[1][5] == "direct"

    def test_with_clock_adds_us_column(self, tmp_path):
        path = tmp_path / "lat.csv"
        write_latency_csv(path, sample_records(), clock=Clock())
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert "latency_us" in rows[0]
        assert rows[1][rows[0].index("latency_us")] == "42.000"


class TestHistogramCsv:
    def test_writes_bins(self, tmp_path):
        histogram = LatencyHistogram(0, 100, 50)
        histogram.add_all([10, 60, 150])
        path = tmp_path / "hist.csv"
        assert write_histogram_csv(path, histogram) == 2
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert [float(rows[1][0]), float(rows[1][1]), int(rows[1][2])] == [0.0, 50.0, 1]
        assert rows[-2][0] == "overflow"
        assert rows[-2][2] == "1"


class TestSeriesCsv:
    def test_writes_indexed_values(self, tmp_path):
        path = tmp_path / "series.csv"
        assert write_series_csv(path, [1.5, 2.5], column="avg_us") == 2
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["index", "avg_us"]
        assert rows[2] == ["1", "2.5"]


class TestRecordsJson:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "records.json"
        records = sample_records()
        assert write_records_json(path, records,
                                  metadata={"seed": 1}) == 3
        loaded = read_records_json(path)
        assert loaded == records

    def test_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "other"}')
        with pytest.raises(ValueError):
            read_records_json(path)

    def test_empty_record_list(self, tmp_path):
        path = tmp_path / "empty.json"
        assert write_records_json(path, []) == 0
        assert read_records_json(path) == []

    def test_non_ascii_source_names(self, tmp_path):
        records = [
            LatencyRecord("таймер", 0, 10, 20, HandlingMode.DIRECT, False),
            LatencyRecord("中断№7", 1, 30, 45, HandlingMode.DELAYED, True),
        ]
        path = tmp_path / "unicode.json"
        assert write_records_json(path, records) == 2
        assert read_records_json(path) == records


GOLDEN_CSV = (
    "source,seq,arrival,completed_at,latency_cycles,mode,enforced_cut\r\n"
    "irq,0,100,8500,8400,direct,0\r\n"
    "irq,1,9000,180000,171000,delayed,0\r\n"
    "irq,2,200000,220000,20000,interposed,1\r\n"
)

GOLDEN_CSV_WITH_CLOCK = (
    "source,seq,arrival,completed_at,latency_cycles,latency_us,"
    "mode,enforced_cut\r\n"
    "irq,0,100,8500,8400,42.000,direct,0\r\n"
    "irq,1,9000,180000,171000,855.000,delayed,0\r\n"
    "irq,2,200000,220000,20000,100.000,interposed,1\r\n"
)


class TestLatencyCsvGolden:
    """The CSV is an exported interface — pin the exact bytes."""

    def test_golden_bytes(self, tmp_path):
        path = tmp_path / "lat.csv"
        write_latency_csv(path, sample_records())
        assert path.read_bytes() == GOLDEN_CSV.encode()

    def test_golden_bytes_with_clock(self, tmp_path):
        path = tmp_path / "lat_us.csv"
        write_latency_csv(path, sample_records(), clock=Clock())
        assert path.read_bytes() == GOLDEN_CSV_WITH_CLOCK.encode()


_sources = st.text(min_size=1, max_size=12).filter(str.strip)
_cycles = st.integers(min_value=0, max_value=2**48)
_records = st.builds(
    lambda source, seq, arrival, span, mode, cut: LatencyRecord(
        source, seq, arrival, arrival + span, mode, cut),
    source=_sources,
    seq=st.integers(min_value=0, max_value=2**31),
    arrival=_cycles,
    span=_cycles,
    mode=st.sampled_from(list(HandlingMode)),
    cut=st.booleans(),
)


class TestExportProperties:
    # Each example overwrites the same file, so reusing one tmp_path
    # across examples is safe — suppress the fixture health check.
    @settings(deadline=None, max_examples=50,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(records=st.lists(_records, max_size=20),
           metadata=st.dictionaries(st.text(max_size=8),
                                    st.integers(), max_size=3))
    def test_json_roundtrip_lossless(self, tmp_path, records, metadata):
        path = tmp_path / "prop.json"
        assert write_records_json(path, records, metadata=metadata) \
            == len(records)
        assert read_records_json(path) == records

    @settings(deadline=None, max_examples=50,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(records=st.lists(_records, max_size=20))
    def test_csv_row_count_and_fields(self, tmp_path, records):
        path = tmp_path / "prop.csv"
        assert write_latency_csv(path, records) == len(records)
        with open(path, newline="") as handle:
            rows = list(csv.reader(handle))
        assert len(rows) == len(records) + 1
        for row, record in zip(rows[1:], records):
            assert row[0] == record.source
            assert int(row[1]) == record.seq
            assert int(row[4]) == record.latency
            assert row[5] == record.mode.value
            assert int(row[6]) == int(record.enforced_cut)
