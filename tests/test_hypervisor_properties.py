"""Property-based end-to-end tests of the hypervisor.

These are the paper's headline guarantees, checked over randomized
arrival patterns and monitor configurations:

* Eq. 14 — the interposing interference measured on every victim
  partition over sliding windows of many widths never exceeds
  ceil(Δt/d_min) * C'_BH;
* FIFO — bottom handlers of a source complete in arrival order;
* liveness — every IRQ eventually completes;
* time conservation — all simulated cycles are accounted for.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import build_system, run_system, us
from repro.core.independence import (
    DminInterferenceBound,
    InterferenceKind,
    verify_sufficient_independence,
)
from repro.core.monitor import DeltaMinusMonitor
from repro.core.policy import MonitoredInterposing

C_BH = us(40)

arrival_gaps = st.lists(
    st.integers(min_value=us(5), max_value=us(3_000)),
    min_size=5, max_size=40,
)


@settings(max_examples=40, deadline=None)
@given(gaps=arrival_gaps,
       dmin_us=st.integers(min_value=200, max_value=3_000))
def test_property_eq14_holds_for_all_victims(gaps, dmin_us):
    policy = MonitoredInterposing(DeltaMinusMonitor.from_dmin(us(dmin_us)))
    hv, timer = build_system(subscriber="P2", policy=policy,
                             intervals=gaps, trace=False)
    run_system(hv, timer, len(gaps))
    bound = DminInterferenceBound(
        us(dmin_us),
        hv.config.costs.effective_bottom_handler_cycles(C_BH),
    )
    widths = [us(w) for w in (50, 300, 1_000, 2_500, 10_000, 40_000)]
    report = verify_sufficient_independence(
        hv.ledger, "P1", bound.max_interference, widths,
        kinds=(InterferenceKind.INTERPOSED_BH,),
    )
    assert report.holds, (
        f"Eq.14 violated: measured {report.measured} vs bounds "
        f"{report.bounds} for widths {report.window_widths}"
    )


@settings(max_examples=40, deadline=None)
@given(gaps=arrival_gaps,
       dmin_us=st.integers(min_value=100, max_value=2_000))
def test_property_fifo_and_liveness(gaps, dmin_us):
    policy = MonitoredInterposing(DeltaMinusMonitor.from_dmin(us(dmin_us)))
    hv, timer = build_system(subscriber="P2", policy=policy,
                             intervals=gaps, trace=False)
    run_system(hv, timer, len(gaps))
    assert len(hv.latency_records) == len(gaps)           # liveness
    seqs = [record.seq for record in hv.latency_records]
    assert seqs == sorted(seqs)                           # FIFO
    for record in hv.latency_records:
        assert record.latency >= 0


@settings(max_examples=25, deadline=None)
@given(gaps=arrival_gaps,
       dmin_us=st.integers(min_value=100, max_value=2_000),
       defer=st.booleans())
def test_property_time_conservation(gaps, dmin_us, defer):
    policy = MonitoredInterposing(DeltaMinusMonitor.from_dmin(us(dmin_us)))
    hv, timer = build_system(subscriber="P2", policy=policy,
                             intervals=gaps, trace=False, defer=defer)
    run_system(hv, timer, len(gaps))
    hv.cpu.preempt()
    assert hv.cpu.total_consumed() == hv.engine.now


@settings(max_examples=25, deadline=None)
@given(gaps=arrival_gaps,
       actual_us=st.integers(min_value=1, max_value=200),
       dmin_us=st.integers(min_value=200, max_value=2_000))
def test_property_enforcement_with_misdeclared_handlers(gaps, actual_us,
                                                        dmin_us):
    """Even when actual bottom-handler demand exceeds the declared
    C_BH, the foreign-slot interference bound still holds (enforcement
    is what makes Eq. 14 independent of partition behaviour)."""
    policy = MonitoredInterposing(DeltaMinusMonitor.from_dmin(us(dmin_us)))
    hv, timer = build_system(
        subscriber="P2", policy=policy, intervals=gaps, trace=False,
        bottom_handler_actual=lambda seq: us(actual_us),
    )
    run_system(hv, timer, len(gaps))
    bound = DminInterferenceBound(
        us(dmin_us),
        hv.config.costs.effective_bottom_handler_cycles(C_BH),
    )
    widths = [us(w) for w in (100, 1_000, 5_000, 25_000)]
    report = verify_sufficient_independence(
        hv.ledger, "P1", bound.max_interference, widths,
        kinds=(InterferenceKind.INTERPOSED_BH,),
    )
    assert report.holds
    assert len(hv.latency_records) == len(gaps)
