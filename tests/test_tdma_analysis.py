"""Tests for the TDMA interference term (Eq. 8)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.tdma import (
    tdma_interference,
    tdma_service,
    worst_case_slot_wait,
)


class TestEq8:
    def test_paper_system_values(self):
        """T_TDMA = 14000, T_i = 6000: one started cycle costs 8000."""
        assert tdma_interference(1, 14_000, 6_000) == 8_000
        assert tdma_interference(14_000, 14_000, 6_000) == 8_000
        assert tdma_interference(14_001, 14_000, 6_000) == 16_000

    def test_zero_window(self):
        assert tdma_interference(0, 14_000, 6_000) == 0

    def test_full_slot_no_interference(self):
        assert tdma_interference(500, 1_000, 1_000) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            tdma_interference(10, 0, 0)
        with pytest.raises(ValueError):
            tdma_interference(10, 100, 0)
        with pytest.raises(ValueError):
            tdma_interference(10, 100, 200)
        with pytest.raises(ValueError):
            tdma_interference(-1, 100, 50)


class TestService:
    def test_service_complement(self):
        assert tdma_service(14_000, 14_000, 6_000) == 6_000

    def test_service_never_negative(self):
        assert tdma_service(1, 14_000, 6_000) == 0


class TestWorstCaseWait:
    def test_paper_value(self):
        """IRQ just after the slot ended waits T_TDMA - T_i = 8000 us."""
        assert worst_case_slot_wait(14_000, 6_000) == 8_000

    def test_validation(self):
        with pytest.raises(ValueError):
            worst_case_slot_wait(100, 0)


@settings(max_examples=200, deadline=None)
@given(
    dt=st.integers(min_value=0, max_value=100_000),
    slot=st.integers(min_value=1, max_value=1_000),
    rest=st.integers(min_value=0, max_value=1_000),
)
def test_property_interference_plus_service_covers_window(dt, slot, rest):
    cycle = slot + rest
    interference = tdma_interference(dt, cycle, slot)
    service = tdma_service(dt, cycle, slot)
    assert interference + service >= dt
    assert 0 <= service <= dt
