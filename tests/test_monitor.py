"""Tests for the δ⁻ activation monitor (Section 5 / RTSS'12 mechanism)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.monitor import (
    DeltaMinusMonitor,
    normalize_delta_table,
    verify_accepted_stream,
)


class TestNormalization:
    def test_already_monotone_unchanged(self):
        assert normalize_delta_table([10, 20, 30]) == [10, 20, 30]

    def test_non_monotone_raised_to_running_max(self):
        assert normalize_delta_table([10, 5, 30, 20]) == [10, 10, 30, 30]

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            normalize_delta_table([10, -1])

    def test_empty_is_empty(self):
        assert normalize_delta_table([]) == []


class TestDminMonitor:
    def test_first_event_always_accepted(self):
        monitor = DeltaMinusMonitor.from_dmin(1000)
        assert monitor.check_and_accept(12345)

    def test_dmin_violation_denied(self):
        monitor = DeltaMinusMonitor.from_dmin(1000)
        monitor.check_and_accept(0)
        assert not monitor.check_and_accept(999)

    def test_exact_dmin_accepted(self):
        monitor = DeltaMinusMonitor.from_dmin(1000)
        monitor.check_and_accept(0)
        assert monitor.check_and_accept(1000)

    def test_denied_event_not_recorded(self):
        """Acceptance is relative to the *accepted* history: a denied
        event does not push the window."""
        monitor = DeltaMinusMonitor.from_dmin(1000)
        monitor.check_and_accept(0)
        assert not monitor.check_and_accept(500)
        # 1000 after the last *accepted* event (t=0), not after t=500.
        assert monitor.check_and_accept(1000)

    def test_counters(self):
        monitor = DeltaMinusMonitor.from_dmin(1000)
        monitor.check_and_accept(0)
        monitor.check_and_accept(500)
        monitor.check_and_accept(1500)
        assert monitor.accepted_count == 2
        assert monitor.denied_count == 1

    def test_permits_does_not_mutate(self):
        monitor = DeltaMinusMonitor.from_dmin(1000)
        monitor.check_and_accept(0)
        assert monitor.permits(2000)
        assert monitor.permits(2000)
        assert monitor.accepted_count == 1

    def test_accept_nonconformant_raises(self):
        monitor = DeltaMinusMonitor.from_dmin(1000)
        monitor.accept(0)
        with pytest.raises(ValueError):
            monitor.accept(1)

    def test_non_monotone_time_rejected(self):
        monitor = DeltaMinusMonitor.from_dmin(1000)
        monitor.check_and_accept(5000)
        with pytest.raises(ValueError):
            monitor.permits(4000)

    def test_reset(self):
        monitor = DeltaMinusMonitor.from_dmin(1000)
        monitor.check_and_accept(0)
        monitor.reset()
        assert monitor.accepted_count == 0
        assert monitor.history == []
        assert monitor.check_and_accept(1)   # history cleared


class TestDeepTable:
    def test_depth_two_constraint(self):
        # consecutive >= 100, two-apart >= 500
        monitor = DeltaMinusMonitor([100, 500])
        assert monitor.check_and_accept(0)
        assert monitor.check_and_accept(100)
        # 200 is >= 100 after the last, but only 200 after the
        # second-to-last (< 500): denied.
        assert not monitor.check_and_accept(200)
        assert monitor.check_and_accept(500)

    def test_history_bounded_by_depth(self):
        monitor = DeltaMinusMonitor([10, 20, 30])
        for t in (0, 100, 200, 300, 400):
            monitor.check_and_accept(t)
        assert len(monitor.history) == 3
        assert monitor.history == [400, 300, 200]

    def test_empty_table_rejected(self):
        with pytest.raises(ValueError):
            DeltaMinusMonitor([])

    def test_dmin_property(self):
        assert DeltaMinusMonitor([100, 500]).dmin == 100


class TestVerifyAcceptedStream:
    def test_conformant_stream(self):
        assert verify_accepted_stream([0, 100, 250, 400], [100])

    def test_violating_stream(self):
        assert not verify_accepted_stream([0, 100, 150], [100])

    def test_deep_violation(self):
        # consecutive ok (>=100) but 2-apart span 300 < 500
        assert not verify_accepted_stream([0, 150, 300], [100, 500])


@settings(max_examples=200, deadline=None)
@given(
    gaps=st.lists(st.integers(min_value=0, max_value=5_000),
                  min_size=1, max_size=80),
    table=st.lists(st.integers(min_value=1, max_value=3_000),
                   min_size=1, max_size=5),
)
def test_property_accepted_stream_always_conformant(gaps, table):
    """Whatever arrives, the accepted sub-stream satisfies the δ⁻ table.

    This is the load-bearing property behind Eq. 14: the monitor's
    output stream is shaped, so the interference it can inject is
    bounded regardless of the input pattern.
    """
    monitor = DeltaMinusMonitor(table)
    time = 0
    accepted = []
    for gap in gaps:
        time += gap
        if monitor.check_and_accept(time):
            accepted.append(time)
    assert verify_accepted_stream(accepted, table)


@settings(max_examples=100, deadline=None)
@given(
    gaps=st.lists(st.integers(min_value=0, max_value=2_000),
                  min_size=1, max_size=60),
    dmin=st.integers(min_value=1, max_value=1_500),
)
def test_property_eta_plus_of_accepted_stream(gaps, dmin):
    """At most ceil(dt/dmin) accepted events fall in any window dt."""
    import math

    monitor = DeltaMinusMonitor.from_dmin(dmin)
    time = 0
    accepted = []
    for gap in gaps:
        time += gap
        if monitor.check_and_accept(time):
            accepted.append(time)
    for i in range(len(accepted)):
        for j in range(i, len(accepted)):
            window = accepted[j] - accepted[i] + 1
            count = j - i + 1
            assert count <= math.ceil(window / dmin)
