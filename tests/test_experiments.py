"""Smoke and shape tests for the experiment runners.

These run reduced-size versions of every paper experiment and assert
the *shape* results the reproduction must exhibit (who wins, rough
factors, orderings) — not absolute microsecond values.
"""

import pytest

from repro.experiments.ablation import (
    run_boost_ablation,
    run_throttle_ablation,
)
from repro.experiments.common import PaperSystemConfig
from repro.experiments.fig6 import Fig6Config, render_fig6, run_fig6
from repro.experiments.fig7 import (
    Fig7Config,
    render_fig7,
    run_fig7,
)
from repro.experiments.overhead import render_overhead, run_overhead
from repro.experiments.sweep import (
    render_cycle_sweep,
    render_dmin_sweep,
    run_cycle_sweep,
    run_dmin_sweep,
)
from repro.experiments.validation import render_validation, run_validation
from repro.workloads.automotive import AutomotiveTraceConfig


@pytest.fixture(scope="module")
def fig6_results():
    config = Fig6Config(irqs_per_load=600)
    return {scenario: run_fig6(scenario, config) for scenario in "abc"}


class TestPaperSystemConfig:
    def test_tdma_geometry(self):
        system = PaperSystemConfig()
        assert system.tdma_cycle_us == 14_000
        assert system.foreign_time_us == 8_000


class TestFig6(object):
    def test_scenario_a_shape(self, fig6_results):
        """Fig. 6a: ~40% direct / ~60% delayed, avg ~2500 us, delayed
        tail reaching toward T_TDMA - T_i = 8000 us."""
        result = fig6_results["a"]
        fractions = result.mode_fractions()
        assert 0.3 < fractions.get("direct", 0) < 0.55
        assert 0.45 < fractions.get("delayed", 0) < 0.7
        assert fractions.get("interposed", 0) == 0
        assert 1_800 < result.avg_latency_us < 3_200
        assert result.max_latency_us > 6_000

    def test_scenario_b_shape(self, fig6_results):
        """Fig. 6b: a large share of delayed IRQs becomes interposed;
        the average roughly halves; worst case stays TDMA-bound."""
        a, b = fig6_results["a"], fig6_results["b"]
        fractions = b.mode_fractions()
        assert fractions.get("interposed", 0) > 0.15
        assert b.avg_latency_us < 0.65 * a.avg_latency_us
        assert b.max_latency_us > 5_000

    def test_scenario_c_shape(self, fig6_results):
        """Fig. 6c: no delayed IRQs; large improvement (paper: ~16x);
        worst case decoupled from the TDMA cycle."""
        a, c = fig6_results["a"], fig6_results["c"]
        fractions = c.mode_fractions()
        assert fractions.get("delayed", 0) == 0
        assert a.avg_latency_us / c.avg_latency_us > 8
        assert c.max_latency_us < 1_000

    def test_histograms_complete(self, fig6_results):
        for result in fig6_results.values():
            assert result.histogram.total == len(result.latencies_us)

    def test_render(self, fig6_results):
        text = render_fig6(fig6_results["a"])
        assert "Fig. 6a" in text
        assert "avg latency" in text

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError):
            run_fig6("x")


class TestFig7:
    @pytest.fixture(scope="class")
    def results(self):
        config = Fig7Config(
            trace=AutomotiveTraceConfig(activation_count=2_500)
        )
        return run_fig7(config)

    def test_learning_phase_at_unmonitored_level(self, results):
        """During learning only direct/delayed handling is active, so
        the learn average sits at the unmonitored level (~2200 us in
        the paper's system)."""
        for result in results.values():
            assert result.learn_avg_us > 1_500

    def test_run_averages_strictly_ordered(self, results):
        """Fig. 7: a < b < c < d."""
        assert (results["a"].run_avg_us < results["b"].run_avg_us
                < results["c"].run_avg_us < results["d"].run_avg_us)

    def test_case_a_drops_an_order_of_magnitude(self, results):
        assert results["a"].run_avg_us < results["a"].learn_avg_us / 10

    def test_bounds_trade_latency_for_load(self, results):
        """Tighter load bounds mean fewer interposed, more delayed."""
        interposed = [results[k].scenario.mode_counts.get("interposed", 0)
                      for k in "abcd"]
        delayed = [results[k].scenario.mode_counts.get("delayed", 0)
                   for k in "abcd"]
        assert interposed == sorted(interposed, reverse=True)
        assert delayed == sorted(delayed)

    def test_monitor_tables_scale(self, results):
        assert results["b"].monitor_table[0] >= 4 * results["a"].monitor_table[0]

    def test_render(self, results):
        text = render_fig7(results)
        assert "Fig. 7" in text
        assert "unbounded" in text

    def test_unknown_case_rejected(self):
        from repro.experiments.fig7 import run_fig7_case
        with pytest.raises(ValueError):
            run_fig7_case("z")


class TestOverhead:
    @pytest.fixture(scope="class")
    def result(self):
        return run_overhead(irqs_per_load=300)

    def test_paper_constants(self, result):
        assert result.monitor_cycles == 128
        assert result.scheduler_cycles == 877
        assert result.context_switch_cycles == 10_000
        assert result.paper_code_bytes == 1120
        assert result.paper_data_bytes == 28
        assert result.modelled_monitor_data_bytes == 28

    def test_context_switches_increase_with_monitoring(self, result):
        for comparison in result.context_switch_comparisons:
            assert comparison.switches_with > comparison.switches_without
        assert result.overall_context_switch_increase > 0

    def test_increase_grows_with_load(self, result):
        increases = [c.increase for c in result.context_switch_comparisons]
        assert increases == sorted(increases)

    def test_render(self, result):
        text = render_overhead(result)
        assert "C_Mon" in text
        assert "1120" in text


class TestValidation:
    @pytest.fixture(scope="class")
    def result(self):
        return run_validation(irq_count=800)

    def test_all_bounds_hold(self, result):
        assert result.classic_holds
        assert result.interposed_holds
        assert result.independence_holds
        assert result.all_hold

    def test_classic_bound_is_tdma_dominated(self, result):
        assert result.classic_bound_us > 8_000

    def test_interposed_bound_is_tdma_free(self, result):
        assert result.interposed_bound_us < 200

    def test_bounds_are_reasonably_tight(self, result):
        assert result.classic_measured_max_us > 0.9 * result.classic_bound_us
        assert result.interposed_measured_max_us > 0.5 * result.interposed_bound_us

    def test_render(self, result):
        text = render_validation(result)
        assert "holds=True" in text


class TestAblations:
    def test_boost_ablation(self):
        result = run_boost_ablation(irq_count=400)
        assert result.monitored_within_budget
        assert result.boost_breaks_budget
        # boost is fast but unsafe; monitored is safe:
        assert result.boosted.avg_latency_us < result.monitored.avg_latency_us

    def test_throttle_ablation(self):
        result = run_throttle_ablation(irq_count=450)
        assert result.suppressed_irqs > 0
        assert len(result.monitored.records) == 450       # nothing lost
        assert len(result.throttled.records) < 450        # IRQs lost
        assert result.throttling_keeps_tdma_latency


class TestSweeps:
    def test_cycle_sweep_shapes(self):
        points = run_cycle_sweep(irq_count=200, scales=(1.0, 2.0, 4.0))
        classic = [p.classic_measured_max_us for p in points]
        interposed = [p.interposed_measured_max_us for p in points]
        # classic worst case grows with the cycle...
        assert classic[0] < classic[1] < classic[2]
        # ...the interposed worst case does not (observation 2, §5.1)
        assert max(interposed) - min(interposed) < 50
        # analytic bounds hold at every scale
        for point in points:
            assert point.classic_measured_max_us <= point.classic_bound_us
            assert point.interposed_measured_max_us <= point.interposed_bound_us

    def test_dmin_sweep_tradeoff(self):
        points = run_dmin_sweep(irq_count=200,
                                dmin_multipliers=(1.0, 4.0, 16.0))
        budgets = [p.interference_budget_fraction for p in points]
        latencies = [p.avg_latency_us for p in points]
        assert budgets == sorted(budgets, reverse=True)
        assert latencies == sorted(latencies)

    def test_renders(self):
        cycle = run_cycle_sweep(irq_count=100, scales=(1.0, 2.0))
        dmin = run_dmin_sweep(irq_count=100, dmin_multipliers=(1.0, 2.0))
        assert "T_TDMA" in render_cycle_sweep(cycle)
        assert "d_min" in render_dmin_sweep(dmin)
