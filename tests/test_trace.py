"""Tests for the trace recorder."""

from repro.sim.clock import Clock
from repro.sim.trace import TraceKind, TraceRecorder


class TestRecording:
    def test_records_in_order(self):
        trace = TraceRecorder()
        trace.emit(10, TraceKind.IRQ_RAISED, line=1)
        trace.emit(20, TraceKind.SLOT_SWITCH)
        assert [event.time for event in trace] == [10, 20]

    def test_disabled_recorder_drops_everything(self):
        trace = TraceRecorder(enabled=False)
        trace.emit(10, TraceKind.IRQ_RAISED)
        assert len(trace) == 0

    def test_capacity_evicts_oldest(self):
        trace = TraceRecorder(capacity=2)
        for t in range(5):
            trace.emit(t, TraceKind.CUSTOM)
        assert len(trace) == 2
        assert trace.dropped == 3
        assert [event.time for event in trace] == [3, 4]

    def test_of_kind(self):
        trace = TraceRecorder()
        trace.emit(1, TraceKind.IRQ_RAISED)
        trace.emit(2, TraceKind.SLOT_SWITCH)
        trace.emit(3, TraceKind.IRQ_RAISED)
        raised = trace.of_kind(TraceKind.IRQ_RAISED)
        assert [event.time for event in raised] == [1, 3]

    def test_between(self):
        trace = TraceRecorder()
        for t in (5, 10, 15, 20):
            trace.emit(t, TraceKind.CUSTOM)
        assert [e.time for e in trace.between(10, 20)] == [10, 15]

    def test_listener(self):
        trace = TraceRecorder()
        seen = []
        trace.add_listener(lambda event: seen.append(event.kind))
        trace.emit(1, TraceKind.IDLE)
        assert seen == [TraceKind.IDLE]

    def test_clear(self):
        trace = TraceRecorder()
        trace.emit(1, TraceKind.CUSTOM)
        trace.clear()
        assert len(trace) == 0

    def test_render_timeline(self):
        trace = TraceRecorder()
        trace.emit(200, TraceKind.IRQ_RAISED, line=5)
        text = trace.render_timeline(clock=Clock())
        assert "irq_raised" in text
        assert "1.00 us" in text

    def test_render_timeline_limit(self):
        trace = TraceRecorder()
        for t in range(10):
            trace.emit(t, TraceKind.CUSTOM)
        text = trace.render_timeline(limit=3)
        assert "7 more events" in text

    def test_empty_recorder_is_falsy_but_usable(self):
        """A recorder with no events must still record (len-based
        truthiness caught a real bug in the interrupt controller)."""
        trace = TraceRecorder()
        assert len(trace) == 0
        trace.emit(1, TraceKind.CUSTOM)
        assert len(trace) == 1
