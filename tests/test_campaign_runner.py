"""Tests of the parallel campaign runner and the experiments CLI.

The load-bearing guarantee: a campaign's results are **byte-identical**
for every ``--jobs`` count, because per-task seeds are derived
deterministically and merges consume task results in serial order.
The identity test runs the full ``all`` campaign at smoke scale twice —
serial and with a 4-worker pool — and diffs stdout and the exported
CSVs byte for byte.
"""

import json

import pytest

from repro.experiments.__main__ import EXPERIMENTS, main
from repro.experiments.runner import (
    CampaignTask,
    execute_task,
    plan_campaign,
    plan_experiment,
    plan_subtrees,
    run_campaign,
    write_bench_json,
)
from repro.experiments.scale import PAPER, QUICK, SMOKE, resolve_scale


# ---------------------------------------------------------------- plan

EXPECTED_TASK_COUNTS = {
    "fig6a": 3, "fig6b": 3, "fig6c": 3,     # one per interrupt load
    "fig7": 5,                              # learning prefix + cases a-d
    "tab62": 3,                             # one per interrupt load
    "validation": 2,                        # classic + monitored legs
    "ablation": 3,                          # boost / throttle / depth
    "sweep": 10,                            # 4 cycle + warmup + 5 d_min
    "design": 1,
}

EXPECTED_STRAIGHT_COUNTS = dict(EXPECTED_TASK_COUNTS, fig7=4, sweep=9)


def _count_by_experiment(tasks):
    by_experiment = {}
    for task in tasks:
        by_experiment[task.experiment] = by_experiment.get(task.experiment, 0) + 1
    return by_experiment


def test_plan_covers_every_experiment():
    tasks, merges = plan_campaign(EXPERIMENTS, SMOKE, seed=1)
    assert set(merges) == set(EXPERIMENTS)
    assert _count_by_experiment(tasks) == EXPECTED_TASK_COUNTS
    assert len(tasks) == sum(EXPECTED_TASK_COUNTS.values())


def test_plan_without_shared_prefix_has_no_dependency_tasks():
    tasks, merges = plan_campaign(EXPERIMENTS, SMOKE, seed=1,
                                  shared_prefix=False)
    assert set(merges) == set(EXPERIMENTS)
    assert _count_by_experiment(tasks) == EXPECTED_STRAIGHT_COUNTS
    assert all(not task.needs for task in tasks)


def test_plan_unknown_experiment_rejected():
    with pytest.raises(ValueError):
        plan_experiment("fig9", SMOKE, seed=1)


def test_tasks_are_picklable():
    import pickle

    tasks, _ = plan_campaign(EXPERIMENTS, SMOKE, seed=1)
    for task in tasks:
        clone = pickle.loads(pickle.dumps(task))
        assert clone == task


def test_execute_task_dispatches():
    task = CampaignTask("design", "design", {"irq_count": SMOKE.design_irqs})
    result = execute_task(task)
    assert result.simulated_misses_at_min == 0


def test_resolve_scale():
    assert resolve_scale() is PAPER
    assert resolve_scale(quick=True) is QUICK
    assert resolve_scale(smoke=True) is SMOKE
    assert resolve_scale(quick=True, smoke=True) is SMOKE
    # the paper's headline count: 3 loads x 5000 IRQs = 15000 per scenario
    assert PAPER.fig6_irqs_per_load * 3 == 15_000


def test_run_campaign_serial_equals_parallel_results():
    serial = run_campaign(("validation",), SMOKE, seed=1, jobs=1)
    parallel = run_campaign(("validation",), SMOKE, seed=1, jobs=2)
    assert (serial["validation"].classic_measured_max_us
            == parallel["validation"].classic_measured_max_us)
    assert (serial["validation"].interposed_result.latencies_us
            == parallel["validation"].interposed_result.latencies_us)


# ------------------------------------------------------------ subtrees

def _chain_task(experiment, kind, needs=(), feed=None):
    return CampaignTask(experiment, kind, {}, needs=tuple(needs), feed=feed)


def test_plan_subtrees_groups_dependency_chains():
    tasks = [
        _chain_task("a", "root"),                       # 0: chain head
        _chain_task("a", "child", needs=(0,), feed="snapshot"),   # 1
        _chain_task("b", "solo"),                       # 2: independent
        _chain_task("a", "grand", needs=(1,), feed="snapshot"),   # 3
        _chain_task("c", "root"),                       # 4: chain head
        _chain_task("c", "child", needs=(4,), feed="snapshot"),   # 5
    ]
    assert plan_subtrees(tasks) == [[0, 1, 3], [2], [4, 5]]
    # include narrows the members but keeps chains together.
    assert plan_subtrees(tasks, include=[1, 3, 2]) == [[1, 3], [2]]


def test_plan_subtrees_rejects_forward_dependencies():
    tasks = [
        _chain_task("a", "child", needs=(1,), feed="snapshot"),
        _chain_task("a", "root"),
    ]
    with pytest.raises(ValueError, match="earlier tasks"):
        plan_subtrees(tasks)


def test_run_campaign_rejects_unknown_schedule():
    with pytest.raises(ValueError, match="unknown schedule"):
        run_campaign(("design",), SMOKE, seed=1, jobs=1, schedule="bfs")


@pytest.mark.parametrize("jobs", [1, 2])
def test_subtree_schedule_equals_wave_schedule(jobs):
    """The tentpole property: schedules differ only in speed.

    fig7 and sweep both carry ``needs/feed`` chains (the learning
    prefix and the d_min warmup), so this exercises real forked
    subtrees, serial and across a pool.
    """
    wave = run_campaign(("validation",), SMOKE, seed=1, jobs=jobs,
                        schedule="wave")
    subtree = run_campaign(("validation",), SMOKE, seed=1, jobs=jobs,
                           schedule="subtree")
    assert (wave["validation"].interposed_result.latencies_us
            == subtree["validation"].interposed_result.latencies_us)

    wave = run_campaign(("fig7", "sweep"), SMOKE, seed=1, jobs=jobs,
                        schedule="wave")
    subtree = run_campaign(("fig7", "sweep"), SMOKE, seed=1, jobs=jobs,
                           schedule="subtree")
    assert set(wave["fig7"]) == set(subtree["fig7"])
    for case in wave["fig7"]:
        assert (wave["fig7"][case].series_us
                == subtree["fig7"][case].series_us)
        assert (wave["fig7"][case].learned_table
                == subtree["fig7"][case].learned_table)
    assert wave["sweep"] == subtree["sweep"]


def test_subtree_schedule_reuses_wave_cache(tmp_path):
    """Cache fingerprints are schedule-independent: a cache written by
    the wave path is fully warm for the subtree path (parent digests
    fold in identically on both sides)."""
    from repro.experiments.cache import ResultCache

    cache_dir = tmp_path / "cache"
    cold = ResultCache(cache_dir)
    run_campaign(("fig7",), SMOKE, seed=1, jobs=1, cache=cold,
                 schedule="wave")
    assert cold.stats.misses > 0 and cold.stats.hits == 0

    warm = ResultCache(cache_dir)
    run_campaign(("fig7",), SMOKE, seed=1, jobs=2, cache=warm,
                 schedule="subtree")
    assert warm.stats.misses == 0
    assert warm.stats.hits == cold.stats.misses


# ----------------------------------------------------------------- CLI

def _read_tree(directory):
    # manifest.json intentionally records run parameters (jobs, wall
    # times), so it is compared field-wise below, not byte-wise here.
    return {
        path.name: path.read_bytes()
        for path in sorted(directory.iterdir())
        if path.name != "manifest.json"
    }


def test_cli_outputs_byte_identical_across_jobs(tmp_path, capsys):
    """The acceptance property: serial and --jobs 4 runs diff clean."""
    import json

    export_serial = tmp_path / "serial"
    export_parallel = tmp_path / "parallel"

    assert main(["all", "--smoke", "--jobs", "1", "--no-cache",
                 "--export", str(export_serial)]) == 0
    serial_stdout = capsys.readouterr().out
    assert main(["all", "--smoke", "--jobs", "4", "--no-cache",
                 "--export", str(export_parallel)]) == 0
    parallel_stdout = capsys.readouterr().out

    assert serial_stdout == parallel_stdout
    assert _read_tree(export_serial) == _read_tree(export_parallel)
    # every experiment rendered something
    for name in EXPERIMENTS:
        assert f"=== {name} " in serial_stdout

    # the manifests agree on everything that describes the *results*
    serial_manifest = json.loads((export_serial / "manifest.json").read_text())
    parallel_manifest = json.loads(
        (export_parallel / "manifest.json").read_text())
    for key in ("format", "version", "experiments", "scale", "seed", "files"):
        assert serial_manifest[key] == parallel_manifest[key]
    assert serial_manifest["jobs"] == 1
    assert parallel_manifest["jobs"] == 4
    assert serial_manifest["files"] == sorted(
        path.name for path in export_serial.glob("*.csv"))


def test_cli_quick_smoke_target(capsys):
    """The documented CI smoke target runs the full quick campaign."""
    assert main(["all", "--quick", "--jobs", "2", "--no-cache"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert f"=== {name} " in out


def test_quick_campaign_warm_cache_speedup(tmp_path, capsys):
    """Acceptance: a warm re-run of the quick campaign is >= 5x faster
    than the cold run and byte-identical to it, with the wall times and
    cache counters recorded in the bench JSON history."""
    cache_dir = str(tmp_path / "cache")
    bench = tmp_path / "BENCH_experiments.json"
    argv = ["all", "--quick", "--jobs", "2",
            "--cache-dir", cache_dir, "--cache-stats",
            "--bench-json", str(bench)]

    assert main(argv) == 0
    cold_stdout = capsys.readouterr().out
    assert main(argv) == 0
    warm_stdout = capsys.readouterr().out

    assert warm_stdout == cold_stdout
    cold, warm = json.loads(bench.read_text())["runs"]
    assert cold["cache"]["hits"] == 0 and cold["cache"]["misses"] > 0
    assert warm["cache"]["misses"] == 0
    assert warm["cache"]["hits"] == cold["cache"]["misses"]
    assert cold["total_wall_seconds"] >= 5 * warm["total_wall_seconds"]


def test_cli_rejects_conflicting_scales(capsys):
    with pytest.raises(SystemExit):
        main(["fig6a", "--quick", "--smoke"])
    capsys.readouterr()


# ---------------------------------------------------------- bench json

def test_write_bench_json_appends_history(tmp_path):
    target = tmp_path / "BENCH_experiments.json"
    write_bench_json(target, scale_name="smoke", jobs=1,
                     experiment_seconds={"fig6a": 1.25})
    from repro.sim.benchmark import measure_engine_throughput

    engine = measure_engine_throughput(events=2_000, repeats=1)
    write_bench_json(target, scale_name="quick", jobs=4,
                     experiment_seconds={"fig6a": 0.5, "fig7": 1.0},
                     engine=engine)
    history = json.loads(target.read_text())
    assert [run["scale"] for run in history["runs"]] == ["smoke", "quick"]
    assert history["runs"][0]["experiment_wall_seconds"] == {"fig6a": 1.25}
    assert history["runs"][1]["total_wall_seconds"] == 1.5
    assert history["runs"][1]["engine"]["events_per_second"] > 0
    assert "engine" not in history["runs"][0]


def test_write_bench_json_records_host_and_backend_race(tmp_path):
    import os
    import platform

    from repro.sim.benchmark import measure_backend_ab
    from repro.sim.queue import QUEUE_BACKENDS

    target = tmp_path / "BENCH_experiments.json"
    ab = measure_backend_ab(events=3_000, repeats=1)
    write_bench_json(target, scale_name="smoke", jobs=1,
                     experiment_seconds={"fig6a": 0.1}, engine_ab=ab)
    run = json.loads(target.read_text())["runs"][0]
    host = run["host"]
    assert host["python"] == platform.python_version()
    assert host["cpu_count"] == os.cpu_count()
    assert host["platform"]
    record = run["engine_ab"]
    assert set(record["storm_events_per_second"]) == \
        {"legacy", *QUEUE_BACKENDS}
    assert record["array_dispatch_speedup_vs_bucket"] > 0
    assert record["winner"] in QUEUE_BACKENDS


def test_write_bench_json_survives_corrupt_history(tmp_path):
    target = tmp_path / "BENCH_experiments.json"
    target.write_text("{not json")
    write_bench_json(target, scale_name="smoke", jobs=1,
                     experiment_seconds={"design": 0.1})
    history = json.loads(target.read_text())
    assert len(history["runs"]) == 1
