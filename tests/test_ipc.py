"""Tests for hypervisor-mediated IPC."""

import pytest

from conftest import us
from repro.hypervisor.config import HypervisorConfig, SlotConfig
from repro.hypervisor.hypervisor import Hypervisor
from repro.hypervisor.ipc import IpcChannel, IpcChannelFull, IpcRouter
from repro.hypervisor.partition import Partition


def make_system():
    slots = [SlotConfig("P1", us(1000)), SlotConfig("P2", us(1000))]
    hv = Hypervisor(slots, HypervisorConfig(trace_enabled=False))
    p1 = hv.add_partition(Partition("P1"))
    p2 = hv.add_partition(Partition("P2"))
    router = IpcRouter()
    hv.attach_ipc_router(router)
    return hv, router, p1, p2


class TestChannel:
    def test_send_buffers(self):
        channel = IpcChannel("c", "P1", "P2", capacity=2)
        channel.send("hello", now=10)
        assert len(channel.in_transit) == 1

    def test_capacity(self):
        channel = IpcChannel("c", "P1", "P2", capacity=1)
        channel.send("a", now=0)
        with pytest.raises(IpcChannelFull):
            channel.send("b", now=1)

    def test_deliver_all(self):
        channel = IpcChannel("c", "P1", "P2")
        channel.send("a", now=0)
        channel.send("b", now=5)
        batch = channel.deliver_all(now=100)
        assert [m.payload for m in batch] == ["a", "b"]
        assert all(m.latency == 100 - m.sent_at for m in batch)
        assert not channel.in_transit

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            IpcChannel("c", "P1", "P2", capacity=0)


class TestRouter:
    def test_delivery_at_slot_entry(self):
        """Messages sent during P1's slot reach P2's mailbox exactly
        when P2's slot begins (time-partitioned communication)."""
        hv, router, p1, p2 = make_system()
        router.create_channel("c", "P1", "P2")
        hv.start()
        hv.engine.schedule(us(100),
                           lambda: router.channel("c").send("msg", hv.engine.now))
        hv.run_until(us(1200))
        assert len(p2.mailbox) == 1
        message = p2.mailbox[0]
        # Delivered when P2's slot began (boundary + context switch).
        assert message.delivered_at == us(1000) + 10_000
        assert message.latency == message.delivered_at - us(100)

    def test_no_delivery_to_wrong_partition(self):
        hv, router, p1, p2 = make_system()
        router.create_channel("c", "P1", "P2")
        hv.start()
        hv.engine.schedule(us(100),
                           lambda: router.channel("c").send("msg", hv.engine.now))
        hv.run_until(us(900))
        assert p2.mailbox == []
        assert p1.mailbox == []

    def test_notify_line_raises_virtual_irq(self):
        hv, router, p1, p2 = make_system()
        router.create_channel("c", "P1", "P2", notify_line=7)
        hv.start()
        hv.engine.schedule(us(100),
                           lambda: router.channel("c").send("msg", hv.engine.now))
        hv.run_until(us(1500))
        assert hv.intc.raise_count(7) == 1

    def test_delivered_latencies(self):
        hv, router, p1, p2 = make_system()
        router.create_channel("c", "P1", "P2")
        hv.start()
        hv.engine.schedule(us(100),
                           lambda: router.channel("c").send("m1", hv.engine.now))
        hv.engine.schedule(us(300),
                           lambda: router.channel("c").send("m2", hv.engine.now))
        hv.run_until(us(1500))
        latencies = router.delivered_latencies("c")
        assert len(latencies) == 2
        assert latencies[0] > latencies[1]   # earlier send waits longer

    def test_duplicate_channel_rejected(self):
        _, router, _, _ = make_system()
        router.create_channel("c", "P1", "P2")
        with pytest.raises(ValueError):
            router.create_channel("c", "P2", "P1")
