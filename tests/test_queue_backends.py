"""Queue-backend equivalence: every backend is observably identical.

The pluggable event-queue backends (:mod:`repro.sim.queue`) promise
that swapping implementations changes *only* wall-clock speed — the
``(time, seq)`` FIFO dispatch order, and therefore every downstream
artifact, is byte-identical.  Every suite below parametrizes over the
``QUEUE_BACKENDS`` registry, so a newly registered backend (such as
the columnar ``array`` engine) is covered with zero test edits.  The
promise is pinned at every layer:

* engine level — a hypothesis-driven random program (nested schedules,
  same-cycle reschedules, ``schedule_batch`` volleys, cancellations of
  both single events and whole volleys, stops, a bounded ``run_until``
  followed by a full drain) executed on every backend must produce the
  same callback log, clock, counters, batch count, snapshot state and
  surviving entries;
* scenario level — a full paper scenario run per backend, with
  idle-skip both on and off, must produce identical latency records,
  summaries, CSV bytes and trace digests, and world snapshots captured
  warm or mid-run must digest identically (including
  capture-on-one-backend / restore-on-the-other forks);
* resolution — explicit argument beats ``REPRO_QUEUE_BACKEND`` beats
  the default, and unknown names fail loudly;
* the cold out-of-band insert paths (stop sentinels, snapshot
  ``restore_event``) keep FIFO order on every backend.
"""

from __future__ import annotations

import dataclasses
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.monitor import DeltaMinusMonitor
from repro.core.policy import MonitoredInterposing
from repro.experiments.common import (
    PaperSystemConfig,
    build_warm_world,
    run_irq_scenario,
    run_irq_scenario_from,
)
from repro.metrics.export import write_series_csv
from repro.sim.engine import ENV_IDLE_SKIP, SimulationEngine, SimulationError
from repro.sim.queue import (
    DEFAULT_QUEUE_BACKEND,
    ENV_QUEUE_BACKEND,
    QUEUE_BACKENDS,
    BucketQueueEngine,
    HeapQueueEngine,
    resolve_backend_name,
)
from repro.sim.snapshot import settle
from repro.workloads.synthetic import clip_to_dmin, exponential_interarrivals

BACKENDS = sorted(QUEUE_BACKENDS)


# ------------------------------------------------------- engine-level A/B

#: One root op: (delay, reschedules, follow_delay, cancel_pick,
#: stop_pick, batch_width, batch_cancel_pick).  ``follow_delay`` may be
#: 0 — a same-cycle reschedule, the case a backend's batch drain must
#: order exactly like the heap.  ``batch_width`` > 0 lobs a
#: ``schedule_batch`` volley from inside the callback (width >= 2 takes
#: the columnar block path on the array backend), and
#: ``batch_cancel_pick`` cancels a previously scheduled volley — from
#: inside a draining bucket, possibly the volley's own.
_OP = st.tuples(
    st.integers(0, 60),
    st.integers(0, 3),
    st.integers(0, 20),
    st.one_of(st.none(), st.integers(0, 255)),
    st.integers(0, 9),
    st.integers(0, 4),
    st.one_of(st.none(), st.integers(0, 255)),
)


def _execute_program(backend: str, program, horizon: int) -> dict:
    """Run a scripted workload; return everything observable."""
    engine = SimulationEngine(backend=backend)
    assert engine.backend_name == backend
    log: list[tuple] = []
    handles: list = []
    batches: list = []

    def volley_member(tag: int, index: int, stop_mid: bool):
        def member() -> None:
            log.append((tag, "v", index, engine.now))
            if stop_mid and index == 1:
                # Stop from inside a draining volley: the undispatched
                # tail must survive suspension and resume on the next
                # run, identically on the wrapper and block paths.
                engine.stop()
        return member

    def spawn(tag: int, delay: int, repeats: int, follow_delay: int,
              cancel_pick, stop: bool, batch_width: int,
              batch_cancel_pick, stop_mid: bool) -> None:
        def callback() -> None:
            log.append((tag, repeats, engine.now))
            if repeats:
                spawn(tag, follow_delay, repeats - 1, follow_delay,
                      cancel_pick, stop, batch_width, batch_cancel_pick,
                      stop_mid)
            if batch_width:
                batches.append(engine.schedule_batch(
                    follow_delay,
                    [volley_member(tag, i, stop_mid)
                     for i in range(batch_width)]))
            if cancel_pick is not None and handles:
                handles[cancel_pick % len(handles)].cancel()
            if batch_cancel_pick is not None and batches:
                batches[batch_cancel_pick % len(batches)].cancel()
            if stop and not repeats:
                engine.stop()

        handles.append(engine.schedule(delay, callback))

    for tag, (delay, repeats, follow_delay, cancel_pick, stop_pick,
              batch_width, batch_cancel_pick) in enumerate(program):
        spawn(tag, delay, repeats, follow_delay, cancel_pick,
              stop_pick == 0, batch_width, batch_cancel_pick,
              stop_pick == 1)

    bounded = engine.run_until(horizon)
    mid = (engine.now, engine.events_executed, engine.pending_events,
           engine.peek_next_time())
    drained = engine.run()
    return {
        "log": log,
        "executed": (bounded, drained),
        "mid": mid,
        "now": engine.now,
        "counters": (engine.events_executed, engine.events_scheduled,
                     engine.events_cancelled, engine.pending_events,
                     engine.dispatch_batches),
        "batch_states": [(bh.count, bh.fired, bh.cancelled, bh.pending)
                         for bh in batches],
        "snapshot": engine.snapshot_state(),
        "live": [(time, seq) for time, seq, _ in engine.live_entries()],
    }


@settings(max_examples=60, deadline=None)
@given(program=st.lists(_OP, min_size=1, max_size=12),
       horizon=st.integers(0, 120))
def test_backends_execute_programs_identically(program, horizon):
    """Core A/B property: same program, same observable behaviour."""
    reference = _execute_program(BACKENDS[0], program, horizon)
    for backend in BACKENDS[1:]:
        assert _execute_program(backend, program, horizon) == reference


@pytest.mark.parametrize("backend", BACKENDS)
def test_simultaneous_events_fire_in_schedule_order(backend):
    engine = SimulationEngine(backend=backend)
    order: list[int] = []
    for tag in range(8):
        engine.schedule(100, lambda tag=tag: order.append(tag))
    engine.run()
    assert order == list(range(8))
    # The whole timestamp drained as one batch: a single clock write.
    assert engine.dispatch_batches == 1
    assert engine.now == 100


@pytest.mark.parametrize("backend", BACKENDS)
def test_stop_sentinel_fires_before_same_time_events(backend):
    """Negative-seq sentinels beat ordinary events at their timestamp."""
    engine = SimulationEngine(backend=backend)
    fired: list[str] = []
    engine.schedule(10, lambda: fired.append("ev10"))
    engine.schedule(5, lambda: fired.append("ev5"))
    engine.schedule_stop_at(10)
    engine.run()
    assert fired == ["ev5"]
    assert engine.now == 10
    assert engine.pending_events == 1
    engine.run()                       # resume past the spent sentinel
    assert fired == ["ev5", "ev10"]
    assert engine.pending_events == 0


@pytest.mark.parametrize("backend", BACKENDS)
def test_restore_event_out_of_order_keeps_fifo(backend):
    """The snapshot-restore insert path must re-sort by original seq."""
    engine = SimulationEngine(backend=backend)
    engine.restore_state({"now": 50, "seq": 10, "events_executed": 0,
                          "events_cancelled": 0, "pending": 3})
    order: list[int] = []
    # Restored in arrival order 7, 2, 5 — must fire as 2, 5, 7.
    for seq in (7, 2, 5):
        engine.restore_event(60, seq, lambda seq=seq: order.append(seq))
    assert [(t, s) for t, s, _ in engine.live_entries()] == \
        [(60, 2), (60, 5), (60, 7)]
    engine.run()
    assert order == [2, 5, 7]
    assert engine.now == 60


# ------------------------------------------------------- backend resolution

def test_resolution_explicit_beats_env_beats_default(monkeypatch):
    monkeypatch.delenv(ENV_QUEUE_BACKEND, raising=False)
    assert resolve_backend_name(None) == DEFAULT_QUEUE_BACKEND
    other = next(name for name in BACKENDS if name != DEFAULT_QUEUE_BACKEND)
    monkeypatch.setenv(ENV_QUEUE_BACKEND, other)
    assert resolve_backend_name(None) == other
    assert resolve_backend_name(DEFAULT_QUEUE_BACKEND) == \
        DEFAULT_QUEUE_BACKEND
    # An empty value means "unset", so shell-style FOO= does not break.
    monkeypatch.setenv(ENV_QUEUE_BACKEND, "")
    assert resolve_backend_name(None) == DEFAULT_QUEUE_BACKEND


def test_unknown_backend_fails_loudly(monkeypatch):
    with pytest.raises(SimulationError, match="unknown queue backend"):
        resolve_backend_name("btree")
    monkeypatch.setenv(ENV_QUEUE_BACKEND, "nonsense")
    with pytest.raises(SimulationError, match="unknown queue backend"):
        SimulationEngine()


def test_unknown_backend_error_names_source_and_valid_backends(monkeypatch):
    """The error says where the bad name came from and what is valid."""
    valid = ", ".join(sorted(QUEUE_BACKENDS))
    with pytest.raises(SimulationError,
                       match=f"explicit backend argument.*{valid}"):
        resolve_backend_name("btree")
    monkeypatch.setenv(ENV_QUEUE_BACKEND, "nonsense")
    with pytest.raises(SimulationError,
                       match=f"environment variable {ENV_QUEUE_BACKEND}"
                             f".*{valid}"):
        resolve_backend_name(None)


def test_constructor_dispatches_to_backend_class(monkeypatch):
    monkeypatch.delenv(ENV_QUEUE_BACKEND, raising=False)
    assert type(SimulationEngine(backend="heap")) is HeapQueueEngine
    assert type(SimulationEngine(backend="bucket")) is BucketQueueEngine
    assert type(SimulationEngine()) is QUEUE_BACKENDS[DEFAULT_QUEUE_BACKEND]
    # Direct backend instantiation bypasses resolution entirely.
    assert type(HeapQueueEngine()) is HeapQueueEngine


# ------------------------------------------------------- scenario-level A/B

def _scenario_setup(seed: int):
    system = PaperSystemConfig(trace_enabled=True)
    clock = system.clock()
    dmin = clock.us_to_cycles(1_444.0)
    intervals = clip_to_dmin(
        exponential_interarrivals(40, dmin, seed=seed), dmin
    )

    # Monitors accumulate history, so every run needs a fresh policy.
    def policy():
        return MonitoredInterposing(DeltaMinusMonitor.from_dmin(dmin))

    return system, policy, intervals


def _with_backend(backend: str, fn, idle_skip: str | None = None):
    """Run ``fn`` with the engine default forced to ``backend`` (and,
    optionally, idle-skip forced on or off)."""
    saved = {ENV_QUEUE_BACKEND: os.environ.get(ENV_QUEUE_BACKEND)}
    os.environ[ENV_QUEUE_BACKEND] = backend
    if idle_skip is not None:
        saved[ENV_IDLE_SKIP] = os.environ.get(ENV_IDLE_SKIP)
        os.environ[ENV_IDLE_SKIP] = idle_skip
    try:
        return fn()
    finally:
        for key, previous in saved.items():
            if previous is None:
                del os.environ[key]
            else:
                os.environ[key] = previous


def _scenario_artifacts(backend: str, seed: int, tmp_path,
                        idle_skip: str | None = None) -> dict:
    """Everything a scenario run produces, as comparable plain data."""
    system, policy, intervals = _scenario_setup(seed)

    def build_and_run():
        result = run_irq_scenario(system, policy(), intervals)
        assert result.hypervisor.engine.backend_name == backend
        return result

    result = _with_backend(backend, build_and_run, idle_skip)
    csv_path = tmp_path / f"latencies-{backend}.csv"
    write_series_csv(csv_path, result.latencies_us, column="latency_us")
    warm = _with_backend(
        backend, lambda: build_warm_world(system, policy(), intervals),
        idle_skip)

    def midrun_digest():
        hv, timer = system.build(policy(), intervals)
        hv.start()
        timer.arm_next()
        hv.run_until_irq_count(12)
        return settle(hv, {timer.name: timer}).digest()

    return {
        "records": list(result.records),
        "latencies_us": list(result.latencies_us),
        "summary": dataclasses.asdict(result.summary),
        "mode_counts": dict(result.mode_counts),
        "context_switches": dict(result.context_switch_counts),
        "trace_digest": result.hypervisor.trace.digest(),
        "csv_bytes": csv_path.read_bytes(),
        "warm_snapshot_digest": warm.digest(),
        "midrun_snapshot_digest": _with_backend(backend, midrun_digest,
                                                idle_skip),
        "engine": (result.hypervisor.engine.now,
                   result.hypervisor.engine.events_executed,
                   result.hypervisor.engine.events_scheduled,
                   result.hypervisor.engine.events_cancelled),
    }


@pytest.mark.parametrize("seed, idle_skip", [(1, "1"), (1, "0"), (23, None)])
def test_scenario_artifacts_identical_across_backends(tmp_path, seed,
                                                      idle_skip):
    """Records, stats, CSV bytes, trace and snapshot digests all match —
    with idle-skip forced on, forced off, and at its default."""
    reference = _scenario_artifacts(BACKENDS[0], seed, tmp_path, idle_skip)
    for backend in BACKENDS[1:]:
        assert _scenario_artifacts(backend, seed, tmp_path, idle_skip) == \
            reference


def test_fork_across_backends_is_byte_identical():
    """A world captured under one backend restores under the other.

    Snapshot state is backend-independent, so a mid-run capture on
    backend A forked onto backend B must finish exactly like the
    straight-line run.
    """
    system, policy, intervals = _scenario_setup(seed=7)
    straight = _with_backend(
        BACKENDS[0], lambda: run_irq_scenario(system, policy(), intervals))

    def capture():
        hv, timer = system.build(policy(), intervals)
        hv.start()
        timer.arm_next()
        hv.run_until_irq_count(15)
        return settle(hv, {timer.name: timer})

    snapshot = _with_backend(BACKENDS[0], capture)
    for backend in BACKENDS[1:]:
        forked = _with_backend(
            backend, lambda: run_irq_scenario_from(snapshot, system))
        assert forked.hypervisor.engine.backend_name == backend
        assert list(forked.records) == list(straight.records)
        assert list(forked.latencies_us) == list(straight.latencies_us)
        assert forked.summary == straight.summary
        assert forked.hypervisor.trace.digest() == \
            straight.hypervisor.trace.digest()
