"""Layered world store: O(changes) forks, byte-identical to deep copies.

The contract of :mod:`repro.sim.worldstore` is that nothing observable
changes — a layered capture has the same ``state`` and the same
``digest()`` as the flat :func:`repro.sim.snapshot.capture_world`, a
data-level fork equals restore → mutate → capture, and continuations
run from either produce identical traces.  These tests pin:

* the canonical-JSON assembly (a layer root digest equals the flat
  ``json.dumps`` digest, fragment by fragment, hypothesis-driven);
* fast captures (engine activity fingerprint + per-part change epochs)
  and their fallback to the full audit on a stale basis;
* data-level forks (:func:`fork_warm_variant`), sibling layer dedup,
  and pickling down to a plain :class:`WorldSnapshot`;
* the capture_world source-naming errors (world/device missing the
  protocol, capture attempted mid-dispatch);
* the fork-tree property: random fork points × mutation bursts ×
  queue backends × idle-skip produce digests and traces byte-identical
  to full-copy forks;
* the spill tier: a store squeezed under an artificially tiny
  resident-bytes budget produces digests byte-identical to the
  unlimited-RAM store (hypothesis-driven, across both queue backends ×
  idle-skip), cold fragments fault back transparently, corrupt or
  truncated spill records are misses repaired by re-derivation, and
  values whose Python identity JSON cannot round-trip stay pinned.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.independence import InterferenceKind, InterferenceLedger
from repro.core.monitor import DeltaMinusMonitor
from repro.core.policy import MonitoredInterposing, NeverInterpose
from repro.experiments.common import (
    IRQ_TIMER_DEVICE,
    PaperSystemConfig,
    build_warm_world,
    fork_warm_variant,
    run_irq_scenario_from,
)
from repro.sim.engine import ENV_IDLE_SKIP, SimulationEngine
from repro.sim.queue import ENV_QUEUE_BACKEND, QUEUE_BACKENDS
from repro.sim.snapshot import (
    SnapshotError,
    WorldSnapshot,
    capture_world,
    restore_world,
    settle,
)
from repro.sim.trace import TraceKind, TraceRecorder
from repro.sim.worldstore import (
    ENV_STORE_BUDGET,
    LayeredSnapshot,
    WorldStore,
    canonical_json,
    capture_world_layered,
    default_store,
    fork_snapshot,
    parse_store_budget,
    reset_default_store,
    resolve_store_budget,
    restore_world_layered,
)
from repro.workloads.synthetic import clip_to_dmin, exponential_interarrivals

BACKENDS = sorted(QUEUE_BACKENDS)


def _flat_digest(state: dict) -> str:
    payload = json.dumps(state, sort_keys=True, separators=(",", ":"),
                         ensure_ascii=False)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _warm_parts(seed: int = 3, count: int = 20):
    """A started paper world at its t=0 quiescent point."""
    system = PaperSystemConfig()
    clock = system.clock()
    dmin = clock.us_to_cycles(1_444.0)
    intervals = clip_to_dmin(
        exponential_interarrivals(count, dmin, seed=seed), dmin
    )
    hv, timer = system.build(NeverInterpose(), intervals)
    hv.start()
    timer.arm_next()
    return system, hv, timer, intervals, dmin


def scenario_fingerprint(result) -> dict:
    """Everything observable about one run, as comparable plain data."""
    hv = result.hypervisor
    return {
        "records": list(result.records),
        "latencies_us": list(result.latencies_us),
        "mode_counts": dict(result.mode_counts),
        "stats": dataclasses.asdict(hv.stats),
        "trace": list(hv.trace.events),
        "engine": (hv.engine.now, hv.engine.events_executed,
                   hv.engine.events_scheduled, hv.engine.events_cancelled),
    }


# ------------------------------------------------- canonical assembly

_JSON_SCALARS = st.one_of(
    st.none(), st.booleans(), st.integers(-2**40, 2**40),
    st.text(max_size=12))
_PART_VALUES = st.one_of(
    _JSON_SCALARS,
    st.lists(_JSON_SCALARS, max_size=4),
    st.dictionaries(st.text(max_size=8), _JSON_SCALARS, max_size=4))


@settings(max_examples=30, deadline=None)
@given(world=st.dictionaries(st.text(max_size=10), _PART_VALUES, max_size=5),
       devices=st.dictionaries(st.text(max_size=10), _PART_VALUES,
                               max_size=3),
       pending=st.integers(0, 99))
def test_layer_root_digest_matches_flat_json(world, devices, pending):
    """Fragment-by-fragment assembly == json.dumps, byte for byte."""
    state = {"format": 1, "world_class": "m:Cls", "pending": pending,
             "world": world, "devices": devices}
    store = WorldStore()
    delta = {key: store.put_fragment(state[key])
             for key in ("format", "world_class", "pending")}
    for name, value in world.items():
        delta[f"world.{name}"] = store.put_fragment(value)
    for name, value in devices.items():
        delta[f"devices.{name}"] = store.put_fragment(value)
    layer = store.make_layer(None, delta)
    assert store.layer_root_digest(layer) == _flat_digest(state)


# -------------------------------------------------- captures & digests

def test_layered_capture_matches_flat_capture():
    _system, hv, timer, _intervals, _dmin = _warm_parts()
    devices = {timer.name: timer}
    flat = capture_world(hv, devices)
    layered, _basis = capture_world_layered(hv, devices, WorldStore())
    assert isinstance(layered, LayeredSnapshot)
    assert layered.digest() == flat.digest()
    assert layered.state == flat.state


def test_layered_capture_midrun_with_trace_matches_flat():
    system = PaperSystemConfig(trace_enabled=True)
    clock = system.clock()
    dmin = clock.us_to_cycles(1_444.0)
    intervals = clip_to_dmin(
        exponential_interarrivals(20, dmin, seed=11), dmin
    )
    hv, timer = system.build(
        MonitoredInterposing(DeltaMinusMonitor.from_dmin(dmin)), intervals
    )
    hv.start()
    timer.arm_next()
    hv.run_until_irq_count(7)
    store = WorldStore()
    layered = settle(hv, {timer.name: timer}, store=store)
    assert isinstance(layered, LayeredSnapshot)
    # settle stepped to a quiescent point; the flat capture of the very
    # same world must agree byte for byte.
    flat = capture_world(hv, {timer.name: timer})
    assert layered.digest() == flat.digest()


def test_fast_capture_skips_unchanged_world():
    _system, hv, timer, _intervals, _dmin = _warm_parts()
    store = WorldStore()
    snapshot, basis = capture_world_layered(hv, {timer.name: timer}, store)
    assert store.stats.full_captures == 1
    again, _ = capture_world_layered(hv, {timer.name: timer}, store, basis)
    assert store.stats.fast_captures == 1
    # Nothing changed: the empty delta dedups to the very same layer.
    assert again.layer is snapshot.layer
    assert again.digest() == snapshot.digest()
    assert store.stats.parts_reused > 0


def test_fast_capture_isolates_policy_mutation():
    system, hv, timer, _intervals, dmin = _warm_parts()
    store = WorldStore()
    snapshot, _ = capture_world_layered(hv, {timer.name: timer}, store)
    world, devices, basis = restore_world_layered(snapshot)
    source = world.irq_source(system.irq_name)
    source.policy = MonitoredInterposing(DeltaMinusMonitor.from_dmin(dmin))
    child, _ = capture_world_layered(world, devices, store, basis)
    assert store.stats.fast_captures == 1
    # Only the sources part landed in the child layer — O(changes).
    assert set(child.layer.delta) == {"world.sources"}
    assert child.layer.parent is snapshot.layer
    # And the result is byte-identical to a flat capture of the world.
    assert child.digest() == capture_world(world, devices).digest()


def test_stale_basis_falls_back_to_full_capture():
    _system, hv, timer, _intervals, _dmin = _warm_parts()
    store = WorldStore()
    _snapshot, basis = capture_world_layered(hv, {timer.name: timer}, store)
    # Schedule-then-cancel keeps the world quiescent but moves the
    # engine activity fingerprint: the basis no longer proves anything.
    hv.engine.schedule(10, lambda: None, label="poke").cancel()
    child, _ = capture_world_layered(hv, {timer.name: timer}, store, basis)
    assert store.stats.fast_captures == 0
    assert store.stats.full_captures == 2
    assert child.digest() == capture_world(hv, {timer.name: timer}).digest()


def test_engine_activity_fingerprint_moves_on_schedule_and_cancel():
    engine = SimulationEngine()
    base = engine.activity_fingerprint
    handle = engine.schedule(5, lambda: None)
    after_schedule = engine.activity_fingerprint
    assert after_schedule != base
    handle.cancel()
    assert engine.activity_fingerprint != after_schedule


# ------------------------------------------------------ data-level forks

def test_fork_warm_variant_matches_restore_mutate_capture():
    system, hv, timer, intervals, dmin = _warm_parts()
    store = WorldStore()
    warm = build_warm_world(system, NeverInterpose(), intervals, store=store)
    policy = MonitoredInterposing(DeltaMinusMonitor.from_dmin(dmin))
    forked = fork_warm_variant(warm, policy=policy)
    assert set(forked.layer.delta) == {"world.sources"}

    world, devices = restore_world(warm)
    source = world.irq_source(system.irq_name)
    source.policy = MonitoredInterposing(DeltaMinusMonitor.from_dmin(dmin))
    flat = capture_world(world, devices)
    assert forked.digest() == flat.digest()
    assert forked.state == flat.state

    # The continuations are byte-identical too.
    from_fork = run_irq_scenario_from(forked, system)
    from_flat = run_irq_scenario_from(flat, system)
    assert (scenario_fingerprint(from_fork)
            == scenario_fingerprint(from_flat))


def test_sibling_forks_share_one_layer():
    system, _hv, _timer, intervals, dmin = _warm_parts()
    store = WorldStore()
    warm = build_warm_world(system, NeverInterpose(), intervals, store=store)
    policy = MonitoredInterposing(DeltaMinusMonitor.from_dmin(dmin))
    before = store.stats.layer_dedup_hits
    a = fork_warm_variant(warm, policy=policy)
    b = fork_warm_variant(warm, policy=policy)
    assert a.layer is b.layer
    assert store.stats.layer_dedup_hits > before
    assert a.digest() == b.digest()
    assert store.stats.data_forks == 2


def test_fork_snapshot_rejects_unknown_part():
    system, _hv, _timer, intervals, _dmin = _warm_parts()
    warm = build_warm_world(system, NeverInterpose(), intervals,
                            store=WorldStore())
    with pytest.raises(SnapshotError, match="unknown snapshot part"):
        fork_snapshot(warm, {"world.no_such_part": 1})


def test_layered_snapshot_pickles_to_plain_worldsnapshot():
    system, _hv, _timer, intervals, _dmin = _warm_parts()
    store = WorldStore()
    warm = build_warm_world(system, NeverInterpose(), intervals, store=store)
    clone = pickle.loads(pickle.dumps(warm))
    assert type(clone) is WorldSnapshot
    assert clone.state == warm.state
    assert clone.digest() == warm.digest()


# ------------------------------------------------------- change epochs

def test_trace_recorder_bumps_epoch_on_mutation():
    trace = TraceRecorder(enabled=True)
    start = trace.snapshot_epoch
    trace.emit(0, TraceKind.CUSTOM, note="x")
    assert trace.snapshot_epoch != start
    at_emit = trace.snapshot_epoch
    trace.enabled = False
    assert trace.snapshot_epoch != at_emit
    # A disabled emit is a no-op and must NOT bump the epoch.
    silent = trace.snapshot_epoch
    trace.emit(1, TraceKind.CUSTOM, note="y")
    assert trace.snapshot_epoch == silent
    trace.clear()
    assert trace.snapshot_epoch != silent


def test_ledger_bumps_epoch_on_record():
    ledger = InterferenceLedger()
    start = ledger.snapshot_epoch
    ledger.record(0, 5, "rt", "hk", InterferenceKind.INTERPOSED_BH)
    assert ledger.snapshot_epoch != start


def test_timer_bumps_epoch_on_program_and_cancel():
    _system, hv, timer, _intervals, _dmin = _warm_parts()
    start = timer.snapshot_epoch
    timer.arm_next()
    assert timer.snapshot_epoch != start


# ------------------------------------- capture_world source-naming errors

def test_capture_names_world_without_engine():
    class NotAWorld:
        pass

    with pytest.raises(SnapshotError, match=r"exposes no \.engine"):
        capture_world(NotAWorld())


def test_capture_names_world_missing_protocol():
    class HalfWorld:
        def __init__(self):
            self.engine = SimulationEngine()

        def snapshot_state(self, ctx):
            return {}

    with pytest.raises(SnapshotError) as excinfo:
        capture_world(HalfWorld())
    message = str(excinfo.value)
    assert "HalfWorld" in message
    assert "restore_from_snapshot" in message
    assert "rebind_hooks" in message
    assert "snapshot_state" not in message.split("missing")[1]


def test_capture_names_device_missing_protocol():
    _system, hv, timer, _intervals, _dmin = _warm_parts()

    class Gizmo:
        pass

    with pytest.raises(SnapshotError) as excinfo:
        capture_world(hv, {timer.name: timer, "gizmo": Gizmo()})
    message = str(excinfo.value)
    assert "device 'gizmo'" in message
    assert "Gizmo" in message
    assert "snapshot_state" in message


def test_capture_mid_dispatch_names_world_and_time():
    _system, hv, timer, _intervals, _dmin = _warm_parts()
    caught: list = []

    def try_capture():
        try:
            capture_world(hv, {timer.name: timer})
        except SnapshotError as error:
            caught.append(str(error))

    hv.engine.schedule(1, try_capture, label="capture-mid-dispatch")
    hv.engine.run_until(2)
    assert len(caught) == 1
    assert "is dispatching" in caught[0]
    assert type(hv).__qualname__ in caught[0]
    assert "capture only between runs" in caught[0]


# ------------------------------------------------- fork-tree property

def _with_env(backend: str, idle_skip: bool, fn):
    """Run ``fn`` with the engine defaults forced via the environment."""
    saved = {name: os.environ.get(name)
             for name in (ENV_QUEUE_BACKEND, ENV_IDLE_SKIP)}
    os.environ[ENV_QUEUE_BACKEND] = backend
    os.environ[ENV_IDLE_SKIP] = "1" if idle_skip else "0"
    try:
        return fn()
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 2**16),
       fork_at=st.integers(1, 12),
       multipliers=st.lists(st.sampled_from([0.5, 1.0, 2.0, 4.0]),
                            min_size=1, max_size=3, unique=True),
       backend=st.sampled_from(BACKENDS),
       idle_skip=st.booleans())
def test_fork_tree_is_byte_identical_to_full_copy_forks(
        seed, fork_at, multipliers, backend, idle_skip):
    """Random fork trees: layered forks == full-copy forks, everywhere.

    One warm world is captured mid-run at a random quiescent point,
    then a burst of policy-variant children is forked from it two ways
    — the O(changes) data-level fork and the deep restore → mutate →
    flat-capture path.  Digests must agree per child, and the
    continuations run from both must produce identical traces, under
    every queue backend with idle-skip both on and off.
    """
    def build_tree():
        system = PaperSystemConfig(trace_enabled=True)
        clock = system.clock()
        dmin = clock.us_to_cycles(1_444.0)
        intervals = clip_to_dmin(
            exponential_interarrivals(30, dmin, seed=seed), dmin
        )
        hv, timer = system.build(NeverInterpose(), intervals)
        hv.start()
        timer.arm_next()
        hv.run_until_irq_count(min(fork_at, len(intervals)))
        store = WorldStore()
        parent = settle(hv, {timer.name: timer}, store=store)
        assert isinstance(parent, LayeredSnapshot)

        fingerprints = []
        for multiplier in multipliers:
            policy = MonitoredInterposing(
                DeltaMinusMonitor.from_dmin(round(dmin * multiplier)))
            layered_child = fork_warm_variant(parent, policy=policy)

            world, devices = restore_world_layered(parent)[:2]
            source = world.irq_source(system.irq_name)
            source.policy = MonitoredInterposing(
                DeltaMinusMonitor.from_dmin(round(dmin * multiplier)))
            full_child = capture_world(world, devices)

            assert layered_child.digest() == full_child.digest()
            assert layered_child.state == full_child.state

            from_layered = run_irq_scenario_from(layered_child, system)
            from_full = run_irq_scenario_from(full_child, system)
            assert (scenario_fingerprint(from_layered)
                    == scenario_fingerprint(from_full))
            fingerprints.append(scenario_fingerprint(from_layered))
        return fingerprints

    build_tree.__name__ = f"tree_{backend}_{idle_skip}"
    _with_env(backend, idle_skip, build_tree)


# ------------------------------------------------- spill tier: budget

def test_parse_store_budget_accepts_sizes_and_none():
    assert parse_store_budget("262144") == 262144
    assert parse_store_budget("256k") == 256 * 1024
    assert parse_store_budget("16M") == 16 * 1024 ** 2
    assert parse_store_budget("1g") == 1024 ** 3
    assert parse_store_budget("") is None
    assert parse_store_budget("none") is None
    assert parse_store_budget("unlimited") is None
    for bad in ("nope", "-1", "3.5k", "1kb"):
        with pytest.raises(SnapshotError, match="invalid store budget"):
            parse_store_budget(bad)


def test_resolve_store_budget_explicit_beats_env(monkeypatch):
    monkeypatch.setenv(ENV_STORE_BUDGET, "4k")
    assert resolve_store_budget() == 4096
    assert resolve_store_budget(explicit=128) == 128
    monkeypatch.setenv(ENV_STORE_BUDGET, "")
    assert resolve_store_budget() is None
    monkeypatch.delenv(ENV_STORE_BUDGET)
    assert resolve_store_budget() is None


def test_default_store_picks_up_env_budget(monkeypatch):
    reset_default_store()
    try:
        monkeypatch.setenv(ENV_STORE_BUDGET, "2k")
        store = default_store()
        assert store.budget_bytes == 2048
        assert default_store() is store
    finally:
        reset_default_store()
    assert default_store() is not store
    reset_default_store()


def _fill(store: WorldStore, count: int = 30,
          width: int = 64) -> "list[tuple[str, dict]]":
    """Put ``count`` distinct fragments; returns (digest, value) pairs."""
    pairs = []
    for index in range(count):
        value = {"part": index, "payload": "x" * width}
        pairs.append((store.put_fragment(value), value))
    return pairs


def test_lru_eviction_spills_cold_fragments_and_faults_back():
    store = WorldStore(budget_bytes=256)
    pairs = _fill(store)
    assert store.spilled_count > 0
    assert store.resident_bytes <= max(256, len(
        canonical_json(pairs[-1][1])))
    assert store.stats.fragments_spilled == store.spilled_count
    assert store.stats.spill_bytes_written > 0
    assert store.spill_path is not None and store.spill_path.exists()
    # Every fragment — resident or spilled — resolves byte-identically.
    for digest, value in pairs:
        assert store.fragment_text(digest) == canonical_json(value)
        assert store.fragment_value(digest) == value
    assert store.stats.spill_faults > 0
    assert store.stats.spill_bytes_read > 0
    store.clear()


def test_repeated_put_of_spilled_fragment_readmits_without_disk_read():
    store = WorldStore(budget_bytes=256)
    pairs = _fill(store)
    digest, value = pairs[0]
    faults = store.stats.spill_faults
    assert store.put_fragment(value) == digest
    # The dedup hit re-admitted from the caller's copy — no disk fault.
    assert store.stats.spill_faults == faults
    assert store.fragment_value(digest) == value
    store.clear()


def test_spill_corruption_is_a_miss_repaired_by_rederivation():
    store = WorldStore(budget_bytes=256)
    pairs = _fill(store)
    digest, value = next((d, v) for d, v in pairs if d in store._spilled)
    offset, _nbytes = store._spilled[digest]
    with open(store.spill_path, "r+b") as handle:
        handle.seek(offset)
        handle.write(b"\x00garbage\x00")
    with pytest.raises(SnapshotError, match="corrupt or truncated"):
        store.fragment_value(digest)
    assert store.stats.spill_corrupt_records == 1
    # Re-deriving (re-putting) the fragment repairs the store.
    assert store.put_fragment(value) == digest
    assert store.fragment_value(digest) == value
    store.clear()


def test_spill_truncation_is_a_miss():
    store = WorldStore(budget_bytes=256)
    pairs = _fill(store)
    # Truncate mid-way through the newest spill record.
    last_digest = max(store._spilled, key=lambda d: store._spilled[d][0])
    offset, nbytes = store._spilled[last_digest]
    os.truncate(store.spill_path, offset + nbytes // 2)
    with pytest.raises(SnapshotError, match="corrupt or truncated"):
        store.fragment_text(last_digest)
    assert store.stats.spill_corrupt_records == 1
    assert last_digest not in store._spilled
    store.clear()


def test_unfaithful_values_stay_pinned_in_ram():
    store = WorldStore(budget_bytes=64)
    # Tuples serialize as JSON arrays but json.loads gives lists back:
    # spilling would silently change the resolved Python identity.
    digest = store.put_fragment({"point": (1, 2), "pad": "y" * 80})
    _fill(store, count=10)
    assert store.pinned_count == 1
    assert store.stats.fragments_pinned == 1
    assert store.fragment_value(digest) == {"point": (1, 2), "pad": "y" * 80}
    store.clear()


def test_clear_removes_spill_file_and_keeps_store_usable():
    store = WorldStore(budget_bytes=256)
    _fill(store)
    path = store.spill_path
    assert path is not None and path.exists()
    store.clear()
    assert not path.exists()
    assert store.resident_bytes == 0 and store.spilled_count == 0
    # The store keeps working (and re-creates a spill file on demand).
    pairs = _fill(store)
    assert store.fragment_value(pairs[0][0]) == pairs[0][1]
    store.clear()


def test_unlimited_store_never_spills():
    store = WorldStore(budget_bytes=None)
    _fill(store, count=50)
    assert store.spilled_count == 0
    assert store.stats.fragments_spilled == 0
    assert store.spill_path is None


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 2**16),
       fork_at=st.integers(1, 10),
       multipliers=st.lists(st.sampled_from([0.5, 1.0, 2.0, 4.0]),
                            min_size=1, max_size=3, unique=True),
       backend=st.sampled_from(BACKENDS),
       idle_skip=st.booleans())
def test_tiny_spill_budget_is_byte_identical_to_unlimited_store(
        seed, fork_at, multipliers, backend, idle_skip):
    """Random fork trees under a tiny budget == the unlimited store.

    The same deterministic world is captured twice — once into a store
    squeezed under an artificially tiny resident-bytes budget (so
    almost every fragment round-trips through the spill file) and once
    into an unlimited store — then the same burst of policy-variant
    children and grandchildren is forked in both.  Every snapshot's
    digest and materialized state must agree byte for byte, under
    every queue backend with idle-skip both on and off.
    """
    def build(store: WorldStore) -> "list[tuple[str, dict]]":
        system = PaperSystemConfig()
        clock = system.clock()
        dmin = clock.us_to_cycles(1_444.0)
        intervals = clip_to_dmin(
            exponential_interarrivals(24, dmin, seed=seed), dmin
        )
        hv, timer = system.build(NeverInterpose(), intervals)
        hv.start()
        timer.arm_next()
        hv.run_until_irq_count(min(fork_at, len(intervals)))
        parent = settle(hv, {timer.name: timer}, store=store)
        observed = [(parent.digest(), parent.state)]
        for multiplier in multipliers:
            policy = MonitoredInterposing(
                DeltaMinusMonitor.from_dmin(round(dmin * multiplier)))
            child = fork_warm_variant(parent, policy=policy)
            grandchild = fork_warm_variant(
                child, policy=MonitoredInterposing(
                    DeltaMinusMonitor.from_dmin(round(dmin * 2))))
            observed.append((child.digest(), child.state))
            observed.append((grandchild.digest(), grandchild.state))
        return observed

    def run_both():
        tiny = WorldStore(budget_bytes=1024)
        unlimited = WorldStore(budget_bytes=None)
        try:
            squeezed = build(tiny)
            assert tiny.stats.fragments_spilled > 0
            assert build(unlimited) == squeezed
        finally:
            tiny.clear()

    run_both.__name__ = f"spill_{backend}_{idle_skip}"
    _with_env(backend, idle_skip, run_both)
