"""Layered world store: O(changes) forks, byte-identical to deep copies.

The contract of :mod:`repro.sim.worldstore` is that nothing observable
changes — a layered capture has the same ``state`` and the same
``digest()`` as the flat :func:`repro.sim.snapshot.capture_world`, a
data-level fork equals restore → mutate → capture, and continuations
run from either produce identical traces.  These tests pin:

* the canonical-JSON assembly (a layer root digest equals the flat
  ``json.dumps`` digest, fragment by fragment, hypothesis-driven);
* fast captures (engine activity fingerprint + per-part change epochs)
  and their fallback to the full audit on a stale basis;
* data-level forks (:func:`fork_warm_variant`), sibling layer dedup,
  and pickling down to a plain :class:`WorldSnapshot`;
* the capture_world source-naming errors (world/device missing the
  protocol, capture attempted mid-dispatch);
* the fork-tree property: random fork points × mutation bursts ×
  queue backends × idle-skip produce digests and traces byte-identical
  to full-copy forks.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.independence import InterferenceKind, InterferenceLedger
from repro.core.monitor import DeltaMinusMonitor
from repro.core.policy import MonitoredInterposing, NeverInterpose
from repro.experiments.common import (
    IRQ_TIMER_DEVICE,
    PaperSystemConfig,
    build_warm_world,
    fork_warm_variant,
    run_irq_scenario_from,
)
from repro.sim.engine import ENV_IDLE_SKIP, SimulationEngine
from repro.sim.queue import ENV_QUEUE_BACKEND, QUEUE_BACKENDS
from repro.sim.snapshot import (
    SnapshotError,
    WorldSnapshot,
    capture_world,
    restore_world,
    settle,
)
from repro.sim.trace import TraceKind, TraceRecorder
from repro.sim.worldstore import (
    LayeredSnapshot,
    WorldStore,
    canonical_json,
    capture_world_layered,
    fork_snapshot,
    restore_world_layered,
)
from repro.workloads.synthetic import clip_to_dmin, exponential_interarrivals

BACKENDS = sorted(QUEUE_BACKENDS)


def _flat_digest(state: dict) -> str:
    payload = json.dumps(state, sort_keys=True, separators=(",", ":"),
                         ensure_ascii=False)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _warm_parts(seed: int = 3, count: int = 20):
    """A started paper world at its t=0 quiescent point."""
    system = PaperSystemConfig()
    clock = system.clock()
    dmin = clock.us_to_cycles(1_444.0)
    intervals = clip_to_dmin(
        exponential_interarrivals(count, dmin, seed=seed), dmin
    )
    hv, timer = system.build(NeverInterpose(), intervals)
    hv.start()
    timer.arm_next()
    return system, hv, timer, intervals, dmin


def scenario_fingerprint(result) -> dict:
    """Everything observable about one run, as comparable plain data."""
    hv = result.hypervisor
    return {
        "records": list(result.records),
        "latencies_us": list(result.latencies_us),
        "mode_counts": dict(result.mode_counts),
        "stats": dataclasses.asdict(hv.stats),
        "trace": list(hv.trace.events),
        "engine": (hv.engine.now, hv.engine.events_executed,
                   hv.engine.events_scheduled, hv.engine.events_cancelled),
    }


# ------------------------------------------------- canonical assembly

_JSON_SCALARS = st.one_of(
    st.none(), st.booleans(), st.integers(-2**40, 2**40),
    st.text(max_size=12))
_PART_VALUES = st.one_of(
    _JSON_SCALARS,
    st.lists(_JSON_SCALARS, max_size=4),
    st.dictionaries(st.text(max_size=8), _JSON_SCALARS, max_size=4))


@settings(max_examples=30, deadline=None)
@given(world=st.dictionaries(st.text(max_size=10), _PART_VALUES, max_size=5),
       devices=st.dictionaries(st.text(max_size=10), _PART_VALUES,
                               max_size=3),
       pending=st.integers(0, 99))
def test_layer_root_digest_matches_flat_json(world, devices, pending):
    """Fragment-by-fragment assembly == json.dumps, byte for byte."""
    state = {"format": 1, "world_class": "m:Cls", "pending": pending,
             "world": world, "devices": devices}
    store = WorldStore()
    delta = {key: store.put_fragment(state[key])
             for key in ("format", "world_class", "pending")}
    for name, value in world.items():
        delta[f"world.{name}"] = store.put_fragment(value)
    for name, value in devices.items():
        delta[f"devices.{name}"] = store.put_fragment(value)
    layer = store.make_layer(None, delta)
    assert store.layer_root_digest(layer) == _flat_digest(state)


# -------------------------------------------------- captures & digests

def test_layered_capture_matches_flat_capture():
    _system, hv, timer, _intervals, _dmin = _warm_parts()
    devices = {timer.name: timer}
    flat = capture_world(hv, devices)
    layered, _basis = capture_world_layered(hv, devices, WorldStore())
    assert isinstance(layered, LayeredSnapshot)
    assert layered.digest() == flat.digest()
    assert layered.state == flat.state


def test_layered_capture_midrun_with_trace_matches_flat():
    system = PaperSystemConfig(trace_enabled=True)
    clock = system.clock()
    dmin = clock.us_to_cycles(1_444.0)
    intervals = clip_to_dmin(
        exponential_interarrivals(20, dmin, seed=11), dmin
    )
    hv, timer = system.build(
        MonitoredInterposing(DeltaMinusMonitor.from_dmin(dmin)), intervals
    )
    hv.start()
    timer.arm_next()
    hv.run_until_irq_count(7)
    store = WorldStore()
    layered = settle(hv, {timer.name: timer}, store=store)
    assert isinstance(layered, LayeredSnapshot)
    # settle stepped to a quiescent point; the flat capture of the very
    # same world must agree byte for byte.
    flat = capture_world(hv, {timer.name: timer})
    assert layered.digest() == flat.digest()


def test_fast_capture_skips_unchanged_world():
    _system, hv, timer, _intervals, _dmin = _warm_parts()
    store = WorldStore()
    snapshot, basis = capture_world_layered(hv, {timer.name: timer}, store)
    assert store.stats.full_captures == 1
    again, _ = capture_world_layered(hv, {timer.name: timer}, store, basis)
    assert store.stats.fast_captures == 1
    # Nothing changed: the empty delta dedups to the very same layer.
    assert again.layer is snapshot.layer
    assert again.digest() == snapshot.digest()
    assert store.stats.parts_reused > 0


def test_fast_capture_isolates_policy_mutation():
    system, hv, timer, _intervals, dmin = _warm_parts()
    store = WorldStore()
    snapshot, _ = capture_world_layered(hv, {timer.name: timer}, store)
    world, devices, basis = restore_world_layered(snapshot)
    source = world.irq_source(system.irq_name)
    source.policy = MonitoredInterposing(DeltaMinusMonitor.from_dmin(dmin))
    child, _ = capture_world_layered(world, devices, store, basis)
    assert store.stats.fast_captures == 1
    # Only the sources part landed in the child layer — O(changes).
    assert set(child.layer.delta) == {"world.sources"}
    assert child.layer.parent is snapshot.layer
    # And the result is byte-identical to a flat capture of the world.
    assert child.digest() == capture_world(world, devices).digest()


def test_stale_basis_falls_back_to_full_capture():
    _system, hv, timer, _intervals, _dmin = _warm_parts()
    store = WorldStore()
    _snapshot, basis = capture_world_layered(hv, {timer.name: timer}, store)
    # Schedule-then-cancel keeps the world quiescent but moves the
    # engine activity fingerprint: the basis no longer proves anything.
    hv.engine.schedule(10, lambda: None, label="poke").cancel()
    child, _ = capture_world_layered(hv, {timer.name: timer}, store, basis)
    assert store.stats.fast_captures == 0
    assert store.stats.full_captures == 2
    assert child.digest() == capture_world(hv, {timer.name: timer}).digest()


def test_engine_activity_fingerprint_moves_on_schedule_and_cancel():
    engine = SimulationEngine()
    base = engine.activity_fingerprint
    handle = engine.schedule(5, lambda: None)
    after_schedule = engine.activity_fingerprint
    assert after_schedule != base
    handle.cancel()
    assert engine.activity_fingerprint != after_schedule


# ------------------------------------------------------ data-level forks

def test_fork_warm_variant_matches_restore_mutate_capture():
    system, hv, timer, intervals, dmin = _warm_parts()
    store = WorldStore()
    warm = build_warm_world(system, NeverInterpose(), intervals, store=store)
    policy = MonitoredInterposing(DeltaMinusMonitor.from_dmin(dmin))
    forked = fork_warm_variant(warm, policy=policy)
    assert set(forked.layer.delta) == {"world.sources"}

    world, devices = restore_world(warm)
    source = world.irq_source(system.irq_name)
    source.policy = MonitoredInterposing(DeltaMinusMonitor.from_dmin(dmin))
    flat = capture_world(world, devices)
    assert forked.digest() == flat.digest()
    assert forked.state == flat.state

    # The continuations are byte-identical too.
    from_fork = run_irq_scenario_from(forked, system)
    from_flat = run_irq_scenario_from(flat, system)
    assert (scenario_fingerprint(from_fork)
            == scenario_fingerprint(from_flat))


def test_sibling_forks_share_one_layer():
    system, _hv, _timer, intervals, dmin = _warm_parts()
    store = WorldStore()
    warm = build_warm_world(system, NeverInterpose(), intervals, store=store)
    policy = MonitoredInterposing(DeltaMinusMonitor.from_dmin(dmin))
    before = store.stats.layer_dedup_hits
    a = fork_warm_variant(warm, policy=policy)
    b = fork_warm_variant(warm, policy=policy)
    assert a.layer is b.layer
    assert store.stats.layer_dedup_hits > before
    assert a.digest() == b.digest()
    assert store.stats.data_forks == 2


def test_fork_snapshot_rejects_unknown_part():
    system, _hv, _timer, intervals, _dmin = _warm_parts()
    warm = build_warm_world(system, NeverInterpose(), intervals,
                            store=WorldStore())
    with pytest.raises(SnapshotError, match="unknown snapshot part"):
        fork_snapshot(warm, {"world.no_such_part": 1})


def test_layered_snapshot_pickles_to_plain_worldsnapshot():
    system, _hv, _timer, intervals, _dmin = _warm_parts()
    store = WorldStore()
    warm = build_warm_world(system, NeverInterpose(), intervals, store=store)
    clone = pickle.loads(pickle.dumps(warm))
    assert type(clone) is WorldSnapshot
    assert clone.state == warm.state
    assert clone.digest() == warm.digest()


# ------------------------------------------------------- change epochs

def test_trace_recorder_bumps_epoch_on_mutation():
    trace = TraceRecorder(enabled=True)
    start = trace.snapshot_epoch
    trace.emit(0, TraceKind.CUSTOM, note="x")
    assert trace.snapshot_epoch != start
    at_emit = trace.snapshot_epoch
    trace.enabled = False
    assert trace.snapshot_epoch != at_emit
    # A disabled emit is a no-op and must NOT bump the epoch.
    silent = trace.snapshot_epoch
    trace.emit(1, TraceKind.CUSTOM, note="y")
    assert trace.snapshot_epoch == silent
    trace.clear()
    assert trace.snapshot_epoch != silent


def test_ledger_bumps_epoch_on_record():
    ledger = InterferenceLedger()
    start = ledger.snapshot_epoch
    ledger.record(0, 5, "rt", "hk", InterferenceKind.INTERPOSED_BH)
    assert ledger.snapshot_epoch != start


def test_timer_bumps_epoch_on_program_and_cancel():
    _system, hv, timer, _intervals, _dmin = _warm_parts()
    start = timer.snapshot_epoch
    timer.arm_next()
    assert timer.snapshot_epoch != start


# ------------------------------------- capture_world source-naming errors

def test_capture_names_world_without_engine():
    class NotAWorld:
        pass

    with pytest.raises(SnapshotError, match=r"exposes no \.engine"):
        capture_world(NotAWorld())


def test_capture_names_world_missing_protocol():
    class HalfWorld:
        def __init__(self):
            self.engine = SimulationEngine()

        def snapshot_state(self, ctx):
            return {}

    with pytest.raises(SnapshotError) as excinfo:
        capture_world(HalfWorld())
    message = str(excinfo.value)
    assert "HalfWorld" in message
    assert "restore_from_snapshot" in message
    assert "rebind_hooks" in message
    assert "snapshot_state" not in message.split("missing")[1]


def test_capture_names_device_missing_protocol():
    _system, hv, timer, _intervals, _dmin = _warm_parts()

    class Gizmo:
        pass

    with pytest.raises(SnapshotError) as excinfo:
        capture_world(hv, {timer.name: timer, "gizmo": Gizmo()})
    message = str(excinfo.value)
    assert "device 'gizmo'" in message
    assert "Gizmo" in message
    assert "snapshot_state" in message


def test_capture_mid_dispatch_names_world_and_time():
    _system, hv, timer, _intervals, _dmin = _warm_parts()
    caught: list = []

    def try_capture():
        try:
            capture_world(hv, {timer.name: timer})
        except SnapshotError as error:
            caught.append(str(error))

    hv.engine.schedule(1, try_capture, label="capture-mid-dispatch")
    hv.engine.run_until(2)
    assert len(caught) == 1
    assert "is dispatching" in caught[0]
    assert type(hv).__qualname__ in caught[0]
    assert "capture only between runs" in caught[0]


# ------------------------------------------------- fork-tree property

def _with_env(backend: str, idle_skip: bool, fn):
    """Run ``fn`` with the engine defaults forced via the environment."""
    saved = {name: os.environ.get(name)
             for name in (ENV_QUEUE_BACKEND, ENV_IDLE_SKIP)}
    os.environ[ENV_QUEUE_BACKEND] = backend
    os.environ[ENV_IDLE_SKIP] = "1" if idle_skip else "0"
    try:
        return fn()
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 2**16),
       fork_at=st.integers(1, 12),
       multipliers=st.lists(st.sampled_from([0.5, 1.0, 2.0, 4.0]),
                            min_size=1, max_size=3, unique=True),
       backend=st.sampled_from(BACKENDS),
       idle_skip=st.booleans())
def test_fork_tree_is_byte_identical_to_full_copy_forks(
        seed, fork_at, multipliers, backend, idle_skip):
    """Random fork trees: layered forks == full-copy forks, everywhere.

    One warm world is captured mid-run at a random quiescent point,
    then a burst of policy-variant children is forked from it two ways
    — the O(changes) data-level fork and the deep restore → mutate →
    flat-capture path.  Digests must agree per child, and the
    continuations run from both must produce identical traces, under
    every queue backend with idle-skip both on and off.
    """
    def build_tree():
        system = PaperSystemConfig(trace_enabled=True)
        clock = system.clock()
        dmin = clock.us_to_cycles(1_444.0)
        intervals = clip_to_dmin(
            exponential_interarrivals(30, dmin, seed=seed), dmin
        )
        hv, timer = system.build(NeverInterpose(), intervals)
        hv.start()
        timer.arm_next()
        hv.run_until_irq_count(min(fork_at, len(intervals)))
        store = WorldStore()
        parent = settle(hv, {timer.name: timer}, store=store)
        assert isinstance(parent, LayeredSnapshot)

        fingerprints = []
        for multiplier in multipliers:
            policy = MonitoredInterposing(
                DeltaMinusMonitor.from_dmin(round(dmin * multiplier)))
            layered_child = fork_warm_variant(parent, policy=policy)

            world, devices = restore_world_layered(parent)[:2]
            source = world.irq_source(system.irq_name)
            source.policy = MonitoredInterposing(
                DeltaMinusMonitor.from_dmin(round(dmin * multiplier)))
            full_child = capture_world(world, devices)

            assert layered_child.digest() == full_child.digest()
            assert layered_child.state == full_child.state

            from_layered = run_irq_scenario_from(layered_child, system)
            from_full = run_irq_scenario_from(full_child, system)
            assert (scenario_fingerprint(from_layered)
                    == scenario_fingerprint(from_full))
            fingerprints.append(scenario_fingerprint(from_layered))
        return fingerprints

    build_tree.__name__ = f"tree_{backend}_{idle_skip}"
    _with_env(backend, idle_skip, build_tree)
