"""Array backend internals: storage recycling and the numpy fallback.

Observable equivalence with the other backends is pinned by
``tests/test_queue_backends.py`` (the whole suite parametrizes over the
registry).  What that suite cannot see is the columnar machinery
itself, which is this file's job:

* slot recycling — steady-state scheduling must reuse freed rows
  instead of growing the columns;
* volley-block recycling — equal-width volleys must reuse the same
  contiguous block, and compaction must fold idle blocks back into the
  single-slot freelist so capacity is shared across volley widths;
* cancellation plumbing — handle cancels must land in the cancelled
  column, batch cancels must account the whole undispatched remainder,
  and compaction must actually reclaim the dead rows;
* the numpy-optional contract — with ``arrayqueue._np`` forced to
  ``None`` (and, in a subprocess, with the numpy import itself
  blocked) the backend must behave identically.
"""

from __future__ import annotations

import subprocess
import sys
from array import array
from pathlib import Path

import pytest

import repro.sim.arrayqueue as arrayqueue
from repro.sim.arrayqueue import (ArrayBatchHandle, ArrayEventHandle,
                                  ArrayQueueEngine)
from repro.sim.engine import COMPACTION_FLOOR, SimulationError

SRC = str(Path(__file__).resolve().parent.parent / "src")


def _capacity(engine: ArrayQueueEngine) -> int:
    return len(engine._cbs)


def _free_slots(engine: ArrayQueueEngine) -> int:
    blocks = sum(count * len(starts)
                 for count, starts in engine._free_blocks.items())
    return len(engine._free) + blocks


# ------------------------------------------------------------ recycling

def test_steady_state_chain_recycles_one_slot():
    """A self-rescheduling chain reuses the slot it just freed."""
    engine = ArrayQueueEngine()
    remaining = [500]

    def tick() -> None:
        if remaining[0]:
            remaining[0] -= 1
            engine.schedule(3, tick)

    engine.schedule(1, tick)
    engine.run()
    assert engine.events_executed == 501
    # One live chain event at a time: the columns never grew past the
    # handful of rows the warmup touched.
    assert _capacity(engine) <= 4


def test_steady_state_volleys_reuse_one_block():
    """Equal-width volleys recycle the same contiguous block."""
    engine = ArrayQueueEngine()
    fired = [0]

    def member() -> None:
        fired[0] += 1

    volley = [member] * 16
    remaining = [200]

    def driver() -> None:
        engine.schedule_batch(0, volley, "storm")
        if remaining[0]:
            remaining[0] -= 1
            engine.schedule(5, driver)

    engine.schedule(1, driver)
    engine.run()
    assert fired[0] == 16 * 201
    # 16 block rows + the driver's slot, not 201 blocks.
    assert _capacity(engine) <= 20
    assert engine._free_blocks.get(16) is not None


def test_compaction_folds_idle_blocks_into_freelist():
    """Idle volley blocks become ordinary free slots at compaction."""
    engine = ArrayQueueEngine()
    engine.schedule_batch(1, [lambda: None] * 8, "v")
    engine.run()
    assert engine._free_blocks.get(8)
    engine._compact()
    assert not engine._free_blocks
    assert len(engine._free) == 8
    # Reclaimed rows hold no references to dead callbacks.
    assert all(engine._cbs[slot] is None for slot in engine._free)


def test_column_data_exports_typed_arrays():
    engine = ArrayQueueEngine()
    engine.schedule(5, lambda: None, "a")
    engine.schedule_batch(7, [lambda: None] * 3, "b")
    data = engine.column_data()
    assert isinstance(data["time"], array) and data["time"].typecode == "q"
    assert isinstance(data["seq"], array) and data["seq"].typecode == "q"
    assert isinstance(data["cancelled"], (bytes, bytearray))
    assert data["capacity"] == 4
    assert data["free_slots"] == 0
    assert sorted(data["time"]) == [5, 7, 7, 7]
    assert sorted(data["seq"]) == [0, 1, 2, 3]


# --------------------------------------------------------- cancellation

def test_cancel_writes_cancelled_column_and_compact_reclaims():
    engine = ArrayQueueEngine()
    keep = engine.schedule(50, lambda: None, "keep")
    handles = [engine.schedule(10 + i, lambda: None, "dead")
               for i in range(COMPACTION_FLOOR + 40)]
    for handle in handles[:-1]:
        assert isinstance(handle, ArrayEventHandle)
        handle.cancel()
        assert engine._flags[handle._slot] in (0, 1)  # may be compacted
    # Dead now outnumber pending: the threshold compaction fired.
    assert engine.compactions >= 1
    assert engine._dead_hint < COMPACTION_FLOOR
    assert keep.pending
    live = [(t, s) for t, s, _ in engine.live_entries()]
    assert (50, 0) in live


def test_batch_cancel_before_dispatch_accounts_whole_volley():
    engine = ArrayQueueEngine()
    log: list[int] = []
    bh = engine.schedule_batch(5, [lambda i=i: log.append(i)
                                   for i in range(6)], "v")
    assert isinstance(bh, ArrayBatchHandle)
    bh.cancel()
    bh.cancel()  # idempotent
    assert engine.pending_events == 0
    assert engine.events_cancelled == 6
    engine.run()
    assert log == []
    assert engine.now == 0  # an all-cancelled bucket never advances time
    assert not bh.fired and bh.cancelled


def test_sentinel_cancel_reaches_cancelled_column():
    """schedule_stop_at hands out column-wired handles via _make_handle."""
    engine = ArrayQueueEngine()
    fired: list[str] = []
    engine.schedule(10, lambda: fired.append("ev"))
    sentinel = engine.schedule_stop_at(10)
    assert isinstance(sentinel, ArrayEventHandle)
    sentinel.cancel()
    assert engine._flags[sentinel._slot] == 1
    engine.run()
    assert fired == ["ev"]  # the cancelled sentinel did not stop the run
    assert engine.now == 10


def test_insert_into_dispatching_timestamp_refused():
    engine = ArrayQueueEngine()
    failures: list[str] = []

    def offender() -> None:
        try:
            engine.restore_event(engine.now, 99, lambda: None)
        except SimulationError:
            failures.append("refused")

    engine.schedule(5, offender)
    engine.schedule(5, lambda: None)
    engine.run()
    assert failures == ["refused"]


# ------------------------------------------------------- numpy fallback

def test_numpy_absent_fallback_is_identical(monkeypatch):
    """Forcing the pure-python compaction path changes nothing observable."""

    def scenario() -> tuple:
        engine = ArrayQueueEngine()
        log: list[tuple] = []
        dead = [engine.schedule(20 + (i % 7), lambda: None, "dead")
                for i in range(COMPACTION_FLOOR + 50)]
        bh = engine.schedule_batch(9, [lambda i=i: log.append(("v", i))
                                       for i in range(4)], "v")
        live = engine.schedule(30, lambda: log.append(("live", engine.now)))
        doomed = engine.schedule_batch(11, [lambda: None] * 5, "doomed")
        doomed.cancel()
        for handle in dead:
            handle.cancel()
        engine.run()
        return (tuple(log), engine.activity_fingerprint,
                engine.now, bh.fired, live.fired)

    with_numpy = scenario() if arrayqueue._np is not None else None
    monkeypatch.setattr(arrayqueue, "_np", None)
    without_numpy = scenario()
    if with_numpy is not None:
        assert without_numpy == with_numpy
    assert without_numpy[3] and without_numpy[4]


@pytest.mark.parametrize("accelerated", [True, False])
def test_numpy_accelerated_property(monkeypatch, accelerated):
    if not accelerated:
        monkeypatch.setattr(arrayqueue, "_np", None)
    engine = ArrayQueueEngine()
    if arrayqueue._np is None:
        assert engine.numpy_accelerated is False
    else:
        assert engine.numpy_accelerated is accelerated


def test_import_works_with_numpy_blocked():
    """The module imports and runs with numpy missing from the host."""
    code = """
import sys
sys.modules["numpy"] = None  # any import attempt raises ImportError
import importlib
for name in [m for m in list(sys.modules) if m.startswith("repro")]:
    del sys.modules[name]
import repro.sim.arrayqueue as aq
assert aq._np is None
from repro.sim.engine import SimulationEngine
engine = SimulationEngine(backend="array")
order = []
for tag in range(4):
    engine.schedule(10, lambda tag=tag: order.append(tag))
engine.schedule_batch(10, [lambda: order.append("b0"), lambda: order.append("b1")])
dead = [engine.schedule(20, lambda: order.append("dead")) for _ in range(200)]
for h in dead:
    h.cancel()
engine.run()
assert order == [0, 1, 2, 3, "b0", "b1"], order
assert engine.now == 10
assert not engine.numpy_accelerated
print("OK")
"""
    result = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True, text=True,
        env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip() == "OK"


# ----------------------------------------------------------- edge paths

def test_mid_volley_stop_keeps_block_tail():
    engine = ArrayQueueEngine()
    order: list[int] = []

    def member(i: int):
        def cb() -> None:
            order.append(i)
            if i == 1:
                engine.stop()
        return cb

    bh = engine.schedule_batch(5, [member(i) for i in range(5)], "v")
    engine.run()
    assert order == [0, 1]
    assert bh.pending and not bh.fired
    assert engine.pending_events == 3
    engine.run()
    assert order == [0, 1, 2, 3, 4]
    assert bh.fired


def test_volley_self_cancel_frees_remainder():
    engine = ArrayQueueEngine()
    order: list[int] = []

    def member(i: int):
        def cb() -> None:
            order.append(i)
            if i == 2:
                bh.cancel()
        return cb

    bh = engine.schedule_batch(5, [member(i) for i in range(6)], "v")
    engine.run()
    assert order == [0, 1, 2]
    assert bh.cancelled and not bh.fired
    assert engine.pending_events == 0
    assert engine.events_cancelled == 3
    # The block went back on the freelist for the next equal-width volley.
    assert engine._free_blocks.get(6) == [0]
