"""Hand-computed end-to-end latency tests for the hypervisor.

Every test uses the 200 MHz clock with a two-partition system
(P1 and P2, 1000 µs slots each), C_TH = 2 µs (400 cycles),
C_BH = 40 µs (8000 cycles), and the Section 6.2 cost model:
C_Mon = 128, C_sched = 877, C_ctx = 10000 cycles.
"""

import pytest

from conftest import build_system, run_system, us
from repro.core.monitor import DeltaMinusMonitor
from repro.core.policy import HandlingMode, MonitoredInterposing, NeverInterpose

C_TH = us(2)          # 400
C_BH = us(40)         # 8000
C_MON = 128
C_SCHED = 877
C_CTX = 10_000


class TestDirectHandling:
    def test_latency_is_th_plus_bh(self):
        """IRQ in the subscriber's own slot: latency = C_TH + C_BH."""
        hv, timer = build_system(subscriber="P1", intervals=[us(100)])
        run_system(hv, timer, 1)
        (record,) = hv.latency_records
        assert record.mode is HandlingMode.DIRECT
        assert record.arrival == us(100)
        assert record.latency == C_TH + C_BH

    def test_direct_preempts_background_task(self):
        hv, timer = build_system(subscriber="P1", intervals=[us(100)])
        run_system(hv, timer, 1)
        # Background work of P1 ran before and after the handler.
        assert hv.cpu.consumed("task:P1") > 0
        assert hv.cpu.consumed("bh:P1") == C_BH


class TestDelayedHandling:
    def test_waits_for_home_slot(self):
        """IRQ for P2 arriving in P1's slot waits for P2's slot start
        plus the slot context switch: completion at 1000 us + C_ctx
        + C_BH."""
        hv, timer = build_system(subscriber="P2", intervals=[us(100)])
        run_system(hv, timer, 1)
        (record,) = hv.latency_records
        assert record.mode is HandlingMode.DELAYED
        expected_completion = us(1000) + C_CTX + C_BH
        assert record.completed_at == expected_completion
        assert record.latency == expected_completion - us(100)

    def test_worst_case_is_foreign_time_bound(self):
        """The delayed latency never exceeds T_TDMA - T_i plus handler
        processing and switch overhead."""
        hv, timer = build_system(subscriber="P2", intervals=[us(100)])
        run_system(hv, timer, 1)
        (record,) = hv.latency_records
        foreign_time = us(1000)   # the other partition's slot
        assert record.latency <= foreign_time + C_CTX + C_BH + C_TH


class TestInterposedHandling:
    def test_latency_breakdown(self):
        """Interposed latency = C_TH + C_Mon + C_sched + C_ctx + C_BH
        (the switch back happens after the bottom handler finished and
        is not part of the measured latency)."""
        policy = MonitoredInterposing(DeltaMinusMonitor.from_dmin(us(500)))
        hv, timer = build_system(subscriber="P2", policy=policy,
                                 intervals=[us(100)])
        run_system(hv, timer, 1)
        (record,) = hv.latency_records
        assert record.mode is HandlingMode.INTERPOSED
        assert record.latency == C_TH + C_MON + C_SCHED + C_CTX + C_BH

    def test_interposed_much_faster_than_delayed(self):
        policy = MonitoredInterposing(DeltaMinusMonitor.from_dmin(us(500)))
        hv_i, timer_i = build_system(subscriber="P2", policy=policy,
                                     intervals=[us(100)])
        run_system(hv_i, timer_i, 1)
        hv_d, timer_d = build_system(subscriber="P2",
                                     intervals=[us(100)])
        run_system(hv_d, timer_d, 1)
        assert (hv_i.latency_records[0].latency
                < hv_d.latency_records[0].latency / 5)

    def test_denied_irq_falls_back_to_delayed(self):
        """Two foreign IRQs 100 us apart with d_min = 500 us: the
        second violates the condition and is delayed."""
        policy = MonitoredInterposing(DeltaMinusMonitor.from_dmin(us(500)))
        hv, timer = build_system(subscriber="P2", policy=policy,
                                 intervals=[us(100), us(100)])
        run_system(hv, timer, 2)
        modes = [record.mode for record in hv.latency_records]
        assert modes == [HandlingMode.INTERPOSED, HandlingMode.DELAYED]

    def test_monitoring_cost_charged_even_when_denied(self):
        """Section 5.1 case 2: C'_TH applies to violating IRQs too."""
        policy = MonitoredInterposing(DeltaMinusMonitor.from_dmin(us(500)))
        hv, timer = build_system(subscriber="P2", policy=policy,
                                 intervals=[us(100), us(100)])
        run_system(hv, timer, 2)
        assert hv.stats.monitor_consultations == 2

    def test_no_monitor_cost_for_direct(self):
        policy = MonitoredInterposing(DeltaMinusMonitor.from_dmin(us(500)))
        hv, timer = build_system(subscriber="P1", policy=policy,
                                 intervals=[us(100)])
        run_system(hv, timer, 1)
        assert hv.stats.monitor_consultations == 0

    def test_context_switch_counts(self):
        policy = MonitoredInterposing(DeltaMinusMonitor.from_dmin(us(500)))
        hv, timer = build_system(subscriber="P2", policy=policy,
                                 intervals=[us(100)])
        run_system(hv, timer, 1)
        from repro.hypervisor.context import SwitchReason
        assert hv.context_switches.count(SwitchReason.INTERPOSE_ENTER) == 1
        assert hv.context_switches.count(SwitchReason.INTERPOSE_EXIT) == 1


class TestBudgetEnforcement:
    def test_misbehaving_handler_is_cut(self):
        """A bottom handler declaring C_BH = 40 us but running 120 us is
        cut at the budget in a foreign slot; the remainder completes in
        the home slot."""
        policy = MonitoredInterposing(DeltaMinusMonitor.from_dmin(us(500)))
        hv, timer = build_system(
            subscriber="P2", policy=policy, intervals=[us(100)],
            bottom_handler_actual=lambda seq: us(120),
        )
        run_system(hv, timer, 1)
        (record,) = hv.latency_records
        assert record.enforced_cut
        assert record.mode is HandlingMode.DELAYED   # finished at home
        assert hv.stats.budget_exhausted == 1
        # It completed in P2's slot: 1000 us + C_ctx + remaining 80 us.
        assert record.completed_at == us(1000) + C_CTX + us(80)

    def test_enforcement_bounds_foreign_slot_usage(self):
        """Even the misbehaving handler consumed at most C_BH inside
        the foreign slot (plus the fixed overheads of Eq. 13)."""
        from repro.core.independence import InterferenceKind
        policy = MonitoredInterposing(DeltaMinusMonitor.from_dmin(us(500)))
        hv, timer = build_system(
            subscriber="P2", policy=policy, intervals=[us(100)],
            bottom_handler_actual=lambda seq: us(10_000),
        )
        run_system(hv, timer, 1, limit_us=100_000)
        interference = hv.ledger.total(
            "P1", kinds=(InterferenceKind.INTERPOSED_BH,)
        )
        c_bh_eff = hv.config.costs.effective_bottom_handler_cycles(C_BH)
        assert interference <= c_bh_eff

    def test_well_behaved_handler_not_cut(self):
        policy = MonitoredInterposing(DeltaMinusMonitor.from_dmin(us(500)))
        hv, timer = build_system(
            subscriber="P2", policy=policy, intervals=[us(100)],
            bottom_handler_actual=lambda seq: us(25),   # under budget
        )
        run_system(hv, timer, 1)
        (record,) = hv.latency_records
        assert not record.enforced_cut
        assert record.mode is HandlingMode.INTERPOSED
        assert hv.stats.budget_exhausted == 0
