"""Tests for the simulated clock and unit conversions."""

import pytest

from repro.sim.clock import Clock, DEFAULT_FREQUENCY_HZ


class TestClockConstruction:
    def test_default_frequency_is_200mhz(self):
        assert Clock().frequency_hz == 200_000_000
        assert DEFAULT_FREQUENCY_HZ == 200_000_000

    def test_cycles_per_us(self):
        assert Clock().cycles_per_us == 200
        assert Clock(1_000_000).cycles_per_us == 1

    def test_rejects_zero_frequency(self):
        with pytest.raises(ValueError):
            Clock(0)

    def test_rejects_negative_frequency(self):
        with pytest.raises(ValueError):
            Clock(-5)

    def test_rejects_non_mhz_multiple(self):
        with pytest.raises(ValueError):
            Clock(1_500_000_123)


class TestConversions:
    def test_us_to_cycles(self):
        assert Clock().us_to_cycles(1) == 200
        assert Clock().us_to_cycles(6000) == 1_200_000

    def test_us_to_cycles_fractional(self):
        assert Clock().us_to_cycles(0.5) == 100

    def test_ms_to_cycles(self):
        assert Clock().ms_to_cycles(1) == 200_000

    def test_s_to_cycles(self):
        assert Clock().s_to_cycles(1) == 200_000_000

    def test_cycles_to_us_roundtrip(self):
        clock = Clock()
        for value in (0, 1, 17, 6000, 123456):
            assert clock.cycles_to_us(clock.us_to_cycles(value)) == value

    def test_cycles_to_ms(self):
        assert Clock().cycles_to_ms(200_000) == 1.0

    def test_instructions_to_cycles_unit_cpi(self):
        assert Clock().instructions_to_cycles(877) == 877

    def test_instructions_to_cycles_custom_cpi(self):
        assert Clock().instructions_to_cycles(100, cpi=1.5) == 150

    def test_instructions_to_cycles_rejects_negative(self):
        with pytest.raises(ValueError):
            Clock().instructions_to_cycles(-1)

    def test_repr_mentions_mhz(self):
        assert "200 MHz" in repr(Clock())
