"""Tests for workload generators and trace containers."""

import pytest

from repro.hypervisor.config import CostModel
from repro.sim.clock import Clock
from repro.workloads.automotive import (
    AutomotiveTraceConfig,
    generate_automotive_trace,
)
from repro.workloads.synthetic import (
    bursty_interarrivals,
    clip_to_dmin,
    exponential_interarrivals,
    exponential_trace,
    lambda_for_load,
)
from repro.workloads.traces import ActivationTrace


class TestActivationTrace:
    def test_from_interarrivals_roundtrip(self):
        trace = ActivationTrace.from_interarrivals([10, 20, 30], start=5)
        assert trace.times == [5, 15, 35, 65]
        assert trace.distance_array() == [10, 20, 30]

    def test_monotonicity_enforced(self):
        with pytest.raises(ValueError):
            ActivationTrace([10, 5])

    def test_stats(self):
        trace = ActivationTrace([0, 10, 40, 45])
        assert trace.min_distance() == 5
        assert trace.max_distance() == 30
        assert trace.mean_distance() == 15
        assert trace.duration == 45

    def test_split(self):
        trace = ActivationTrace(list(range(0, 100, 10)))
        learn, run = trace.split(0.3)
        assert len(learn) == 3
        assert len(run) == 7
        assert learn.times + run.times == trace.times

    def test_split_validation(self):
        with pytest.raises(ValueError):
            ActivationTrace([0, 1]).split(1.0)

    def test_save_load(self, tmp_path):
        trace = ActivationTrace([0, 100, 250])
        path = tmp_path / "trace.json"
        trace.save(path)
        loaded = ActivationTrace.load(path)
        assert loaded.times == trace.times

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"something": "else"}')
        with pytest.raises(ValueError):
            ActivationTrace.load(path)


class TestExponential:
    def test_eq17_lambda_for_load(self):
        costs = CostModel()
        c_bh = 8_000
        lam = lambda_for_load(c_bh, 0.10, costs)
        assert lam == round(costs.effective_bottom_handler_cycles(c_bh) / 0.10)

    def test_lambda_validation(self):
        with pytest.raises(ValueError):
            lambda_for_load(8_000, 0.0)
        with pytest.raises(ValueError):
            lambda_for_load(8_000, 1.5)

    def test_deterministic_for_seed(self):
        a = exponential_interarrivals(100, 10_000, seed=42)
        b = exponential_interarrivals(100, 10_000, seed=42)
        c = exponential_interarrivals(100, 10_000, seed=43)
        assert a == b
        assert a != c

    def test_mean_roughly_matches(self):
        values = exponential_interarrivals(20_000, 10_000, seed=1)
        mean = sum(values) / len(values)
        assert 0.95 * 10_000 < mean < 1.05 * 10_000

    def test_minimum_floor(self):
        values = exponential_interarrivals(1_000, 5, seed=1, minimum=3)
        assert min(values) >= 3

    def test_clip_to_dmin(self):
        assert clip_to_dmin([5, 100, 50], 60) == [60, 100, 60]

    def test_clip_validation(self):
        with pytest.raises(ValueError):
            clip_to_dmin([5], 0)

    def test_exponential_trace_with_dmin(self):
        trace = exponential_trace(200, 1_000, seed=2, dmin=900)
        assert trace.min_distance() >= 900


class TestBursty:
    def test_structure(self):
        values = bursty_interarrivals(50, burst_length=5, intra_burst=10,
                                      inter_burst=10_000, seed=3)
        assert len(values) == 50
        assert values.count(10) >= 30   # most gaps are intra-burst

    def test_validation(self):
        with pytest.raises(ValueError):
            bursty_interarrivals(10, 0, 10, 100, seed=1)
        with pytest.raises(ValueError):
            bursty_interarrivals(10, 5, 0, 100, seed=1)


class TestAutomotiveTrace:
    def test_default_size(self):
        trace = generate_automotive_trace(
            AutomotiveTraceConfig(activation_count=2_000)
        )
        assert len(trace) == 2_000

    def test_deterministic(self):
        config = AutomotiveTraceConfig(activation_count=500)
        assert (generate_automotive_trace(config).times
                == generate_automotive_trace(config).times)

    def test_seed_changes_trace(self):
        a = generate_automotive_trace(AutomotiveTraceConfig(
            activation_count=500, seed=1))
        b = generate_automotive_trace(AutomotiveTraceConfig(
            activation_count=500, seed=2))
        assert a.times != b.times

    def test_min_separation_respected(self):
        config = AutomotiveTraceConfig(activation_count=1_000)
        trace = generate_automotive_trace(config)
        clock = Clock()
        assert trace.min_distance() >= clock.us_to_cycles(
            config.min_separation_us) - 1

    def test_bursty_but_not_poisson(self):
        """The trace must have a small learned d_min relative to its
        mean gap — that's the structure Appendix A's learning needs."""
        trace = generate_automotive_trace(
            AutomotiveTraceConfig(activation_count=2_000)
        )
        assert trace.min_distance() < trace.mean_distance() / 5

    def test_too_few_activations_rejected(self):
        with pytest.raises(ValueError):
            generate_automotive_trace(AutomotiveTraceConfig(activation_count=1))
