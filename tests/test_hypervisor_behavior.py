"""Behavioral tests: FIFO ordering, window draining, slot deferral,
classification and accounting invariants."""

import pytest

from conftest import build_system, run_system, us
from repro.core.monitor import DeltaMinusMonitor
from repro.core.policy import HandlingMode, MonitoredInterposing, NeverInterpose
from repro.hypervisor.config import HypervisorConfig, SlotConfig
from repro.hypervisor.hypervisor import Hypervisor
from repro.hypervisor.irq import IrqSource
from repro.hypervisor.partition import Partition
from repro.sim.timers import IntervalSequenceTimer

C_TH = us(2)
C_BH = us(40)
C_CTX = 10_000


class TestFifoOrdering:
    def test_bottom_handlers_complete_in_arrival_order(self):
        """Section 5: the queues prevent out-of-order BH execution."""
        policy = MonitoredInterposing(DeltaMinusMonitor.from_dmin(us(300)))
        gaps = [us(g) for g in (100, 50, 400, 20, 900, 10, 10, 700)]
        hv, timer = build_system(subscriber="P2", policy=policy,
                                 intervals=gaps)
        run_system(hv, timer, len(gaps))
        seqs = [record.seq for record in hv.latency_records]
        assert seqs == sorted(seqs)
        completions = [record.completed_at for record in hv.latency_records]
        assert completions == sorted(completions)

    def test_window_drains_older_delayed_event_first(self):
        """An interposed window runs the queue head — an older delayed
        event — before the accepted one (FIFO), so the delayed event
        completes inside the window and is classified interposed."""
        policy = MonitoredInterposing(DeltaMinusMonitor.from_dmin(us(500)))
        # IRQ1 at 1100 us (P2's slot is 1000-2000: that's P2's own? No:
        # subscriber P2, slots P1=[0,1000), P2=[1000,2000). Put both
        # IRQs in P1's second slot [2000, 3000): first denied (450 gap
        # after an accepted one at 2050), second accepted.
        hv, timer = build_system(subscriber="P2", policy=policy,
                                 intervals=[us(2050), us(100), us(500)])
        run_system(hv, timer, 3)
        records = hv.latency_records
        assert records[0].mode is HandlingMode.INTERPOSED   # t=2050
        # Event #1 (denied at t=2150) is drained head-first by the
        # window that event #2 opened at t=2650; the window's budget
        # (one C_BH) is then spent, so event #2 itself is delayed.
        assert records[1].mode is HandlingMode.INTERPOSED
        assert records[2].mode is HandlingMode.DELAYED
        assert [r.seq for r in records] == [0, 1, 2]


class TestSlotDeferral:
    def test_window_straddling_boundary_is_deferred(self):
        """A window opened just before the boundary finishes its budget
        before the slot switch happens (default deferral config)."""
        policy = MonitoredInterposing(DeltaMinusMonitor.from_dmin(us(100)))
        # IRQ at 990 us in P1's slot for P2: window runs 990..~1087.
        hv, timer = build_system(subscriber="P2", policy=policy,
                                 intervals=[us(990)])
        run_system(hv, timer, 1)
        (record,) = hv.latency_records
        assert record.mode is HandlingMode.INTERPOSED
        assert not record.enforced_cut
        assert hv.stats.slot_switches_deferred == 1

    def test_suspension_without_deferral(self):
        policy = MonitoredInterposing(DeltaMinusMonitor.from_dmin(us(100)))
        hv, timer = build_system(subscriber="P2", policy=policy,
                                 intervals=[us(990)], defer=False)
        run_system(hv, timer, 1)
        (record,) = hv.latency_records
        assert hv.stats.windows_suspended == 1
        # remainder completed in P2's own slot right after the switch
        assert record.completed_at >= us(1000)

    def test_home_bh_straddling_boundary_is_deferred(self):
        """A direct bottom handler started just before the slot end
        completes within its C_BH deferral instead of waiting a full
        TDMA rotation."""
        hv, timer = build_system(subscriber="P1", intervals=[us(980)])
        run_system(hv, timer, 1)
        (record,) = hv.latency_records
        assert record.mode is HandlingMode.DIRECT
        assert record.latency == C_TH + C_BH
        assert hv.stats.slot_switches_deferred == 1

    def test_home_bh_without_deferral_waits_full_rotation(self):
        hv, timer = build_system(subscriber="P1", intervals=[us(980)],
                                 defer=False)
        run_system(hv, timer, 1)
        (record,) = hv.latency_records
        # remainder processed at P1's next slot (t=2000) + C_ctx
        assert record.completed_at > us(2000)

    def test_deferral_is_bounded_by_budget(self):
        """Slot start jitter from deferral never exceeds C'_BH: the
        following slot's partition still gets its slot minus a bounded
        perturbation."""
        policy = MonitoredInterposing(DeltaMinusMonitor.from_dmin(us(100)))
        hv, timer = build_system(subscriber="P2", policy=policy,
                                 intervals=[us(995)])
        run_system(hv, timer, 1)
        hv.run_until(us(1500))   # let the deferred switch happen
        from repro.sim.trace import TraceKind
        slot_switches = hv.trace.of_kind(TraceKind.SLOT_SWITCH)
        # the deferred boundary fired late, but by less than C'_BH
        first = slot_switches[0]
        c_bh_eff = hv.config.costs.effective_bottom_handler_cycles(C_BH)
        assert us(1000) <= first.time <= us(1000) + c_bh_eff


class TestClassification:
    def test_mode_counts_sum_to_records(self):
        policy = MonitoredInterposing(DeltaMinusMonitor.from_dmin(us(300)))
        gaps = [us(137)] * 20
        hv, timer = build_system(subscriber="P2", policy=policy,
                                 intervals=gaps)
        run_system(hv, timer, len(gaps))
        counts = hv.mode_counts()
        assert sum(counts.values()) == len(hv.latency_records) == len(gaps)

    def test_latencies_us_filtering(self):
        policy = MonitoredInterposing(DeltaMinusMonitor.from_dmin(us(300)))
        gaps = [us(137)] * 10
        hv, timer = build_system(subscriber="P2", policy=policy,
                                 intervals=gaps)
        run_system(hv, timer, len(gaps))
        total = len(hv.latencies_us())
        by_mode = sum(len(hv.latencies_us(mode=mode)) for mode in HandlingMode)
        assert total == by_mode == 10


class TestAccountingInvariants:
    def test_cpu_time_conservation(self):
        """Every cycle of simulated time is charged to exactly one
        accounting category."""
        policy = MonitoredInterposing(DeltaMinusMonitor.from_dmin(us(300)))
        gaps = [us(g) for g in (100, 250, 400, 80, 600, 313)]
        hv, timer = build_system(subscriber="P2", policy=policy,
                                 intervals=gaps)
        run_system(hv, timer, len(gaps))
        # Charge the execution currently on the CPU, then compare.
        hv.cpu.preempt()
        assert hv.cpu.total_consumed() == hv.engine.now

    def test_no_irq_lost(self):
        policy = MonitoredInterposing(DeltaMinusMonitor.from_dmin(us(300)))
        gaps = [us(g % 700 + 13) for g in range(0, 3000, 97)]
        hv, timer = build_system(subscriber="P2", policy=policy,
                                 intervals=gaps)
        run_system(hv, timer, len(gaps))
        assert len(hv.latency_records) == len(gaps)
        assert hv.partition("P2").irq_queue.empty

    def test_slot_time_within_bounded_interference(self):
        """Over a long run, the victim partition's execution time stays
        within its nominal share minus the bounded interference."""
        policy = MonitoredInterposing(DeltaMinusMonitor.from_dmin(us(500)))
        gaps = [us(167)] * 60
        hv, timer = build_system(subscriber="P2", policy=policy,
                                 intervals=gaps)
        run_system(hv, timer, len(gaps))
        hv.cpu.preempt()
        elapsed = hv.engine.now
        p1_share = hv.cpu.consumed("task:P1") + hv.cpu.consumed("bh:P1")
        # Nominal share is 1/2; interference budget is C'_BH per dmin
        # plus slot-switch and top-handler overheads.
        assert p1_share >= 0.35 * elapsed


class TestMultipleSources:
    def make_two_source_system(self):
        clock_us = us
        slots = [SlotConfig("P1", clock_us(1000)), SlotConfig("P2", clock_us(1000))]
        hv = Hypervisor(slots, HypervisorConfig(trace_enabled=False))
        hv.add_partition(Partition("P1"))
        hv.add_partition(Partition("P2"))
        src1 = IrqSource(name="a", line=5, subscriber="P2",
                         top_handler_cycles=C_TH, bottom_handler_cycles=C_BH,
                         policy=MonitoredInterposing(
                             DeltaMinusMonitor.from_dmin(us(500))))
        src2 = IrqSource(name="b", line=6, subscriber="P1",
                         top_handler_cycles=C_TH, bottom_handler_cycles=C_BH,
                         policy=NeverInterpose())
        hv.add_irq_source(src1)
        hv.add_irq_source(src2)
        t1 = IntervalSequenceTimer(hv.engine, hv.intc, 5,
                                   [us(100), us(700), us(900)])
        t2 = IntervalSequenceTimer(hv.engine, hv.intc, 6,
                                   [us(150), us(650), us(950)])
        src1.on_top_handler = lambda event: t1.arm_next()
        src2.on_top_handler = lambda event: t2.arm_next()
        return hv, t1, t2

    def test_independent_sources_complete(self):
        hv, t1, t2 = self.make_two_source_system()
        hv.start()
        t1.arm_next()
        t2.arm_next()
        hv.run_until_irq_count(6, limit_cycles=us(100_000))
        assert len([r for r in hv.latency_records if r.source == "a"]) == 3
        assert len([r for r in hv.latency_records if r.source == "b"]) == 3

    def test_per_source_fifo(self):
        hv, t1, t2 = self.make_two_source_system()
        hv.start()
        t1.arm_next()
        t2.arm_next()
        hv.run_until_irq_count(6, limit_cycles=us(100_000))
        for name in ("a", "b"):
            seqs = [r.seq for r in hv.latency_records if r.source == name]
            assert seqs == sorted(seqs)

    def test_line_priority_breaks_simultaneous_ties(self):
        """Lower line number is delivered first on simultaneous raises."""
        slots = [SlotConfig("P1", us(1000))]
        hv = Hypervisor(slots, HypervisorConfig(trace_enabled=True))
        hv.add_partition(Partition("P1"))
        order = []
        for name, line in (("hi", 2), ("lo", 9)):
            source = IrqSource(name=name, line=line, subscriber="P1",
                               top_handler_cycles=C_TH,
                               bottom_handler_cycles=us(1))
            source.on_top_handler = (
                lambda event, n=name: order.append(n)
            )
            hv.add_irq_source(source)
        hv.start()

        def raise_both_latched():
            # Latch both lines while masked so they are truly
            # simultaneous from the CPU's perspective.
            hv.intc.mask_all()
            hv.intc.raise_line(9)
            hv.intc.raise_line(2)
            hv.intc.unmask_all()

        hv.engine.schedule(us(10), raise_both_latched)
        hv.run_until_irq_count(2, limit_cycles=us(10_000))
        assert order == ["hi", "lo"]


class TestConstructionValidation:
    def test_unknown_subscriber_rejected(self):
        hv = Hypervisor([SlotConfig("P1", us(100))])
        hv.add_partition(Partition("P1"))
        with pytest.raises(ValueError):
            hv.add_irq_source(IrqSource(name="x", line=5, subscriber="NOPE",
                                        top_handler_cycles=1,
                                        bottom_handler_cycles=1))

    def test_slot_timer_line_reserved(self):
        hv = Hypervisor([SlotConfig("P1", us(100))])
        hv.add_partition(Partition("P1"))
        with pytest.raises(ValueError):
            hv.add_irq_source(IrqSource(name="x", line=0, subscriber="P1",
                                        top_handler_cycles=1,
                                        bottom_handler_cycles=1))

    def test_partition_without_slot_rejected(self):
        hv = Hypervisor([SlotConfig("P1", us(100))])
        with pytest.raises(ValueError):
            hv.add_partition(Partition("P2"))

    def test_start_requires_all_partitions(self):
        hv = Hypervisor([SlotConfig("P1", us(100)), SlotConfig("P2", us(100))])
        hv.add_partition(Partition("P1"))
        with pytest.raises(RuntimeError):
            hv.start()

    def test_double_start_rejected(self):
        hv = Hypervisor([SlotConfig("P1", us(100))])
        hv.add_partition(Partition("P1"))
        hv.start()
        with pytest.raises(RuntimeError):
            hv.start()

    def test_run_before_start_rejected(self):
        hv = Hypervisor([SlotConfig("P1", us(100))])
        hv.add_partition(Partition("P1"))
        with pytest.raises(RuntimeError):
            hv.run_until(1000)

    def test_duplicate_line_rejected(self):
        hv = Hypervisor([SlotConfig("P1", us(100))])
        hv.add_partition(Partition("P1"))
        hv.add_irq_source(IrqSource(name="x", line=5, subscriber="P1",
                                    top_handler_cycles=1,
                                    bottom_handler_cycles=1))
        with pytest.raises(ValueError):
            hv.add_irq_source(IrqSource(name="y", line=5, subscriber="P1",
                                        top_handler_cycles=1,
                                        bottom_handler_cycles=1))
