"""Tests for trace transformations."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.traces import ActivationTrace
from repro.workloads.transforms import (
    add_jitter,
    merge,
    offset,
    scale,
    thin,
    window,
)


def trace(*times):
    return ActivationTrace(list(times))


class TestMerge:
    def test_sorted_union(self):
        merged = merge(trace(0, 100, 200), trace(50, 150))
        assert merged.times == [0, 50, 100, 150, 200]

    def test_min_separation_serializes(self):
        merged = merge(trace(0, 100), trace(100, 200), min_separation=10)
        assert merged.times == [0, 100, 110, 200]

    def test_requires_a_trace(self):
        with pytest.raises(ValueError):
            merge()

    def test_negative_separation_rejected(self):
        with pytest.raises(ValueError):
            merge(trace(0, 1), min_separation=-1)


class TestScale:
    def test_halving_doubles_rate(self):
        scaled = scale(trace(0, 100, 200), 0.5)
        assert scaled.times == [0, 50, 100]

    def test_identity(self):
        assert scale(trace(0, 7, 19), 1.0).times == [0, 7, 19]

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            scale(trace(0, 1), 0)


class TestOffset:
    def test_shift(self):
        assert offset(trace(0, 10), 5).times == [5, 15]

    def test_negative_shift_ok_if_nonnegative(self):
        assert offset(trace(10, 20), -10).times == [0, 10]

    def test_below_zero_rejected(self):
        with pytest.raises(ValueError):
            offset(trace(0, 10), -1)


class TestJitter:
    def test_zero_jitter_identity(self):
        assert add_jitter(trace(0, 100), 0, seed=1).times == [0, 100]

    def test_deterministic(self):
        a = add_jitter(trace(0, 100, 200), 50, seed=7).times
        b = add_jitter(trace(0, 100, 200), 50, seed=7).times
        assert a == b

    def test_stays_monotone(self):
        jittered = add_jitter(trace(*range(0, 1000, 10)), 100, seed=3)
        assert jittered.times == sorted(jittered.times)


class TestWindow:
    def test_keeps_range(self):
        assert window(trace(0, 50, 100, 150), 40, 140).times == [50, 100]

    def test_rebase(self):
        assert window(trace(0, 50, 100, 150), 40, 140,
                      rebase=True).times == [10, 60]

    def test_too_small_window_rejected(self):
        with pytest.raises(ValueError):
            window(trace(0, 50, 100), 40, 60)

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            window(trace(0, 1), 10, 10)


class TestThin:
    def test_keep_every_second(self):
        assert thin(trace(0, 10, 20, 30), 2).times == [0, 20]

    def test_identity(self):
        assert thin(trace(0, 10, 20), 1).times == [0, 10, 20]

    def test_over_thinning_rejected(self):
        with pytest.raises(ValueError):
            thin(trace(0, 10, 20), 3)

    def test_invalid_step(self):
        with pytest.raises(ValueError):
            thin(trace(0, 10), 0)


@settings(max_examples=100, deadline=None)
@given(
    gaps_a=st.lists(st.integers(min_value=1, max_value=1_000),
                    min_size=1, max_size=30),
    gaps_b=st.lists(st.integers(min_value=1, max_value=1_000),
                    min_size=1, max_size=30),
    separation=st.integers(min_value=0, max_value=50),
)
def test_property_merge_preserves_count_and_order(gaps_a, gaps_b, separation):
    a = ActivationTrace.from_interarrivals(gaps_a)
    b = ActivationTrace.from_interarrivals(gaps_b)
    merged = merge(a, b, min_separation=separation)
    assert len(merged) == len(a) + len(b)
    assert merged.times == sorted(merged.times)
    if separation and len(merged) > 1:
        assert merged.min_distance() >= separation


@settings(max_examples=100, deadline=None)
@given(gaps=st.lists(st.integers(min_value=1, max_value=1_000),
                     min_size=2, max_size=40),
       factor=st.sampled_from([0.25, 0.5, 2.0, 3.0]))
def test_property_scale_preserves_event_count(gaps, factor):
    original = ActivationTrace.from_interarrivals(gaps)
    scaled = scale(original, factor)
    assert len(scaled) == len(original)
