"""Tests for the CPU execution model (charging, preemption, accounting)."""

import pytest

from repro.sim.cpu import Cpu, CpuBusyError, Execution
from repro.sim.engine import SimulationEngine


def make_cpu():
    engine = SimulationEngine()
    return engine, Cpu(engine)


class TestExecutionLifecycle:
    def test_bounded_execution_completes(self):
        engine, cpu = make_cpu()
        done = []
        cpu.assign(Execution("work", 100, on_complete=lambda: done.append(engine.now)))
        engine.run()
        assert done == [100]
        assert cpu.current is None

    def test_unbounded_execution_never_completes(self):
        engine, cpu = make_cpu()
        cpu.assign(Execution("idle", None))
        engine.run()
        assert cpu.busy

    def test_assign_while_busy_raises(self):
        _, cpu = make_cpu()
        cpu.assign(Execution("a", None))
        with pytest.raises(CpuBusyError):
            cpu.assign(Execution("b", None))

    def test_zero_budget_completes_immediately(self):
        engine, cpu = make_cpu()
        done = []
        cpu.assign(Execution("empty", 0, on_complete=lambda: done.append(True)))
        assert done == [True]
        assert not cpu.busy

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            Execution("bad", -1)


class TestPreemption:
    def test_preempt_charges_elapsed(self):
        engine, cpu = make_cpu()
        work = Execution("work", 100)
        cpu.assign(work)
        engine.schedule(30, lambda: None)
        engine.run_until(30)
        preempted = cpu.preempt()
        assert preempted is work
        assert work.remaining == 70
        assert work.executed == 30

    def test_preempt_idle_returns_none(self):
        _, cpu = make_cpu()
        assert cpu.preempt() is None

    def test_preempt_cancels_completion(self):
        engine, cpu = make_cpu()
        done = []
        work = Execution("work", 100, on_complete=lambda: done.append(True))
        cpu.assign(work)
        engine.schedule(30, lambda: None)
        engine.run_until(30)
        cpu.preempt()
        engine.run()
        assert done == []

    def test_resume_after_preempt(self):
        engine, cpu = make_cpu()
        done = []
        work = Execution("work", 100, on_complete=lambda: done.append(engine.now))
        cpu.assign(work)
        engine.run_until(30)
        cpu.preempt()
        engine.run_until(50)
        cpu.assign(work)
        engine.run()
        assert done == [120]   # 30 executed + 20 paused + 70 remaining
        assert work.executed == 100

    def test_preempt_at_exact_completion_instant(self):
        engine, cpu = make_cpu()
        done = []
        work = Execution("work", 100, on_complete=lambda: done.append(True))
        cpu.assign(work)
        engine.run_until(100)   # completion event fires at t=100
        assert done == [True]


class TestAccounting:
    def test_category_accounting(self):
        engine, cpu = make_cpu()
        work = Execution("w", 100, category="task:P1")
        cpu.assign(work)
        engine.run()
        assert cpu.consumed("task:P1") == 100

    def test_overhead_accounting(self):
        _, cpu = make_cpu()
        cpu.charge_overhead(50)
        cpu.charge_overhead(25, category="hypervisor")
        assert cpu.consumed("hypervisor") == 75

    def test_overhead_while_busy_raises(self):
        _, cpu = make_cpu()
        cpu.assign(Execution("w", None))
        with pytest.raises(CpuBusyError):
            cpu.charge_overhead(10)

    def test_negative_overhead_rejected(self):
        _, cpu = make_cpu()
        with pytest.raises(ValueError):
            cpu.charge_overhead(-1)

    def test_total_consumed_conservation(self):
        engine, cpu = make_cpu()
        cpu.assign(Execution("a", 40, category="x"))
        engine.run()
        cpu.charge_overhead(10)
        cpu.assign(Execution("b", 50, category="y"))
        engine.run()
        assert cpu.total_consumed() == 100
        assert engine.now == 90   # overhead is accounted, not simulated here

    def test_consumed_by_category_is_copy(self):
        _, cpu = make_cpu()
        cpu.charge_overhead(10)
        table = cpu.consumed_by_category
        table["hypervisor"] = 0
        assert cpu.consumed("hypervisor") == 10
