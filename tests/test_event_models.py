"""Tests for arrival curves and minimum-distance functions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.event_models import (
    DeltaTableEventModel,
    PeriodicEventModel,
    TraceEventModel,
    check_duality,
    sporadic,
)


class TestPeriodicEventModel:
    def test_strictly_periodic_eta(self):
        model = PeriodicEventModel(100)
        assert model.eta_plus(0) == 0
        assert model.eta_plus(1) == 1
        assert model.eta_plus(100) == 1
        assert model.eta_plus(101) == 2
        assert model.eta_plus(1000) == 10

    def test_strictly_periodic_delta(self):
        model = PeriodicEventModel(100)
        assert model.delta_minus(0) == 0
        assert model.delta_minus(1) == 0
        assert model.delta_minus(2) == 100
        assert model.delta_minus(11) == 1000

    def test_jitter_increases_eta(self):
        base = PeriodicEventModel(100)
        jittered = PeriodicEventModel(100, jitter=50)
        for dt in (1, 99, 100, 250, 1000):
            assert jittered.eta_plus(dt) >= base.eta_plus(dt)

    def test_jitter_decreases_delta(self):
        jittered = PeriodicEventModel(100, jitter=30)
        assert jittered.delta_minus(2) == 70

    def test_dmin_caps_burst(self):
        model = PeriodicEventModel(100, jitter=1_000, dmin=10)
        # without dmin: ceil((5+1000)/100) = 11; dmin caps at ceil(5/10)=1
        assert model.eta_plus(5) == 1
        assert model.delta_minus(3) == 20

    def test_sporadic_helper(self):
        model = sporadic(500)
        assert model.eta_plus(500) == 1
        assert model.eta_plus(501) == 2
        assert model.delta_minus(4) == 1500

    def test_validation(self):
        with pytest.raises(ValueError):
            PeriodicEventModel(0)
        with pytest.raises(ValueError):
            PeriodicEventModel(100, jitter=-1)
        with pytest.raises(ValueError):
            PeriodicEventModel(100, dmin=0)
        with pytest.raises(ValueError):
            PeriodicEventModel(100, dmin=200)
        with pytest.raises(ValueError):
            PeriodicEventModel(100).eta_plus(-1)
        with pytest.raises(ValueError):
            PeriodicEventModel(100).delta_minus(-1)


class TestDeltaTableModel:
    def test_l1_table_is_sporadic(self):
        table = DeltaTableEventModel([100])
        reference = sporadic(100)
        for q in range(1, 20):
            assert table.delta_minus(q) == reference.delta_minus(q)
        for dt in (1, 50, 100, 101, 999, 1000):
            assert table.eta_plus(dt) == reference.eta_plus(dt)

    def test_superadditive_extension(self):
        # δ(2)=10, δ(3)=100 -> δ(4) >= δ(3)+δ(2) = 110, δ(5) >= 200
        model = DeltaTableEventModel([10, 100])
        assert model.delta_minus(4) == 110
        assert model.delta_minus(5) == 200
        assert model.delta_minus(7) == 300

    def test_extension_monotone(self):
        model = DeltaTableEventModel([10, 100, 150])
        values = [model.delta_minus(q) for q in range(1, 40)]
        assert values == sorted(values)

    def test_eta_from_table(self):
        model = DeltaTableEventModel([10, 100])
        # in a window of 100: δ(3)=100 not < 100 -> 2 events max
        assert model.eta_plus(100) == 2
        assert model.eta_plus(101) == 3

    def test_zero_dmin_table_has_unbounded_eta(self):
        model = DeltaTableEventModel([0, 100])
        with pytest.raises(ValueError):
            model.eta_plus(50)

    def test_normalizes_non_monotone(self):
        # [100, 50] is normalized to [100, 100] and then closed:
        # two consecutive 100-gaps imply δ(3) >= 200.
        model = DeltaTableEventModel([100, 50])
        assert model.delta_minus(2) == 100
        assert model.delta_minus(3) == 200

    def test_empty_table_rejected(self):
        with pytest.raises(ValueError):
            DeltaTableEventModel([])


class TestTraceEventModel:
    def test_delta_from_trace(self):
        model = TraceEventModel([0, 100, 150, 400])
        assert model.delta_minus(2) == 50
        assert model.delta_minus(3) == 150
        assert model.delta_minus(4) == 400

    def test_eta_from_trace(self):
        model = TraceEventModel([0, 100, 150, 400])
        assert model.eta_plus(51) == 2
        assert model.eta_plus(151) == 3
        assert model.eta_plus(50) == 1

    def test_span_exceeding_trace(self):
        model = TraceEventModel([0, 100])
        with pytest.raises(ValueError):
            model.delta_minus(3)

    def test_interarrivals(self):
        model = TraceEventModel([0, 100, 150])
        assert model.interarrivals() == [100, 50]

    def test_learned_delta_table_matches_learner(self):
        from repro.core.learning import DeltaLearner
        times = [0, 30, 100, 160, 300, 320]
        model = TraceEventModel(times)
        learner = DeltaLearner(3)
        for t in times:
            learner.observe(t)
        assert model.learned_delta_table(3) == learner.table()

    def test_too_short(self):
        with pytest.raises(ValueError):
            TraceEventModel([5])


class TestDuality:
    def test_periodic_duality(self):
        assert check_duality(PeriodicEventModel(100))
        assert check_duality(PeriodicEventModel(100, jitter=40))
        assert check_duality(PeriodicEventModel(100, jitter=250, dmin=20))

    def test_table_duality(self):
        assert check_duality(DeltaTableEventModel([10, 100, 300]))


@settings(max_examples=100, deadline=None)
@given(
    period=st.integers(min_value=1, max_value=1_000),
    jitter=st.integers(min_value=0, max_value=2_000),
    dt=st.integers(min_value=0, max_value=10_000),
)
def test_property_periodic_eta_delta_consistency(period, jitter, dt):
    """η⁺(δ⁻(q)) <= q for all models (no window holds more than its span
    allows)."""
    model = PeriodicEventModel(period, jitter=jitter)
    q = model.eta_plus(dt)
    if q >= 2:
        assert model.delta_minus(q) < max(dt, 1)


@settings(max_examples=100, deadline=None)
@given(table=st.lists(st.integers(min_value=1, max_value=500),
                      min_size=1, max_size=4),
       a=st.integers(min_value=2, max_value=12),
       b=st.integers(min_value=2, max_value=12))
def test_property_table_extension_superadditive(table, a, b):
    """δ(a+b-1) >= δ(a) + δ(b) — the defining property of the extension."""
    model = DeltaTableEventModel(table)
    assert (model.delta_minus(a + b - 1)
            >= model.delta_minus(a) + model.delta_minus(b))
