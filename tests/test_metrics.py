"""Tests for histograms, statistics and report rendering."""

import pytest

from repro.metrics.histogram import LatencyHistogram, fig6_histogram
from repro.metrics.report import (
    render_mode_breakdown,
    render_series,
    render_table,
)
from repro.metrics.stats import (
    improvement_factor,
    percentile,
    running_average,
    summarize,
)


class TestHistogram:
    def test_binning(self):
        histogram = LatencyHistogram(0, 100, 25)
        histogram.add_all([0, 10, 30, 55, 99])
        assert histogram.counts() == [2, 1, 1, 1]

    def test_overflow_and_underflow(self):
        histogram = LatencyHistogram(10, 100, 10)
        histogram.add(5)
        histogram.add(150)
        assert histogram.underflow == 1
        assert histogram.overflow == 1
        assert histogram.total == 2

    def test_value_at_upper_edge_overflows(self):
        histogram = LatencyHistogram(0, 100, 10)
        histogram.add(100)
        assert histogram.overflow == 1

    def test_statistics(self):
        histogram = LatencyHistogram(0, 100, 10)
        histogram.add_all([10, 20, 30])
        assert histogram.mean == 20
        assert histogram.min_value == 10
        assert histogram.max_value == 30

    def test_empty_statistics_raise(self):
        with pytest.raises(ValueError):
            LatencyHistogram(0, 10, 1).mean

    def test_fraction_below(self):
        histogram = LatencyHistogram(0, 100, 10)
        histogram.add_all([5, 15, 25, 95])
        assert histogram.fraction_below(30) == pytest.approx(0.75)

    def test_bins_metadata(self):
        histogram = LatencyHistogram(0, 30, 10)
        bins = histogram.bins()
        assert [(b.low, b.high) for b in bins] == [(0, 10), (10, 20), (20, 30)]

    def test_render(self):
        histogram = LatencyHistogram(0, 20, 10)
        histogram.add_all([1, 2, 3, 15])
        text = histogram.render(width=10)
        assert "3" in text and "#" in text

    def test_render_log_scale(self):
        histogram = LatencyHistogram(0, 20, 10)
        histogram.add_all([1] * 1000 + [15])
        text = histogram.render(width=10, log_scale=True)
        # log scale keeps the single-count bin visible
        lines = text.splitlines()
        assert "#" in lines[1]

    def test_fig6_histogram_axis(self):
        histogram = fig6_histogram([100.0, 7999.0], tdma_cycle_us=14_000.0)
        assert histogram.high == 14_000.0
        assert histogram.total == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyHistogram(10, 10, 1)
        with pytest.raises(ValueError):
            LatencyHistogram(0, 10, 0)


class TestStats:
    def test_summarize(self):
        summary = summarize([1, 2, 3, 4, 5])
        assert summary.count == 5
        assert summary.mean == 3
        assert summary.minimum == 1
        assert summary.maximum == 5
        assert summary.p50 == 3

    def test_summarize_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_percentile_interpolation(self):
        assert percentile([0, 10], 0.5) == 5
        assert percentile([0, 10, 20], 0.25) == 5

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)
        with pytest.raises(ValueError):
            percentile([1], 1.5)

    def test_running_average_cumulative(self):
        assert running_average([2, 4, 6]) == [2, 3, 4]

    def test_running_average_windowed(self):
        assert running_average([2, 4, 6, 8], window=2) == [2, 3, 5, 7]

    def test_running_average_validation(self):
        with pytest.raises(ValueError):
            running_average([1], window=0)

    def test_improvement_factor(self):
        assert improvement_factor(2400, 150) == 16
        with pytest.raises(ValueError):
            improvement_factor(100, 0)


class TestReport:
    def test_render_table_alignment(self):
        text = render_table(["name", "value"], [["a", 1], ["bb", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "name" in lines[0]

    def test_render_table_row_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only-one"]])

    def test_render_table_title(self):
        text = render_table(["x"], [[1]], title="My Table")
        assert text.startswith("My Table")

    def test_mode_breakdown(self):
        text = render_mode_breakdown(
            {"direct": 40, "interposed": 40, "delayed": 20}
        )
        assert "direct 40.0% (40)" in text
        assert "delayed 20.0% (20)" in text

    def test_mode_breakdown_empty(self):
        assert "no IRQs" in render_mode_breakdown({})

    def test_render_series(self):
        text = render_series([1.0, 5.0, 2.0, 8.0], width=20, height=5,
                             label="latency")
        assert "latency" in text
        assert "*" in text

    def test_render_series_empty(self):
        assert "empty" in render_series([])
