"""Golden-value and property tests for :mod:`repro.metrics.stats`.

The columnar-latency refactor gave :func:`summarize` a single-sort
fast path for ``array('d')`` samples; this file pins that the fast
path is bit-identical to the generic one, that :func:`percentile`
matches known closed-form values, and — via hypothesis — that the
linear-interpolation percentiles agree with the standard library's
``statistics.quantiles(..., method='inclusive')``, which implements
the same interpolation rule.
"""

from __future__ import annotations

import dataclasses
import math
import statistics
from array import array

import pytest
from hypothesis import given, settings, strategies as st

from repro.metrics.stats import (
    LatencySummary,
    percentile,
    sample_array,
    summarize,
)


# ----------------------------------------------------------- golden values

class TestPercentileGolden:
    def test_quartiles_of_0_to_100(self):
        values = list(range(101))           # 0..100: position == percentile
        assert percentile(values, 0.00) == 0.0
        assert percentile(values, 0.25) == 25.0
        assert percentile(values, 0.50) == 50.0
        assert percentile(values, 0.95) == 95.0
        assert percentile(values, 1.00) == 100.0

    def test_interpolation_between_elements(self):
        assert percentile([10.0, 20.0], 0.75) == 17.5
        assert percentile([0.0, 1.0, 100.0], 0.5) == 1.0
        assert percentile([0.0, 1.0, 100.0], 0.75) == 50.5

    def test_single_element_is_every_percentile(self):
        for fraction in (0.0, 0.37, 0.5, 0.99, 1.0):
            assert percentile([42.0], fraction) == 42.0

    def test_validation(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)
        with pytest.raises(ValueError):
            percentile([1.0], -0.01)
        with pytest.raises(ValueError):
            percentile([1.0], 1.01)


class TestSummarizeGolden:
    def test_known_sample(self):
        summary = summarize([4.0, 1.0, 3.0, 2.0, 5.0])
        assert summary == LatencySummary(
            count=5, mean=3.0, minimum=1.0, maximum=5.0,
            p50=3.0, p95=4.8, p99=4.96,
            stddev=math.sqrt(2.0),
        )

    def test_constant_sample_has_zero_spread(self):
        summary = summarize([7.0] * 10)
        assert summary.mean == 7.0
        assert summary.p50 == summary.p95 == summary.p99 == 7.0
        assert summary.stddev == 0.0

    def test_empty_sample_raises(self):
        with pytest.raises(ValueError):
            summarize([])
        with pytest.raises(ValueError):
            summarize(array("d"))


def test_sample_array_passthrough_and_conversion():
    columnar = array("d", [1.0, 2.0])
    assert sample_array(columnar) is columnar          # no copy
    converted = sample_array([1, 2, 3])
    assert isinstance(converted, array)
    assert converted.typecode == "d"
    assert list(converted) == [1.0, 2.0, 3.0]
    # Non-double arrays are converted, not passed through.
    floats = array("f", [1.0])
    assert sample_array(floats) is not floats


# ------------------------------------------------------------- properties

_SAMPLES = st.lists(
    st.floats(min_value=-1e9, max_value=1e9,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=200,
)


@settings(max_examples=200, deadline=None)
@given(values=_SAMPLES)
def test_array_fast_path_is_bit_identical(values):
    """summarize(array('d', xs)) takes the single-sort fast path; the
    result must be indistinguishable from the generic iterable path."""
    generic = summarize(values)
    columnar = summarize(array("d", values))
    assert dataclasses.astuple(columnar) == dataclasses.astuple(generic)


@settings(max_examples=200, deadline=None)
@given(values=st.lists(
    st.floats(min_value=-1e9, max_value=1e9,
              allow_nan=False, allow_infinity=False),
    min_size=2, max_size=200,
))
def test_percentiles_match_statistics_quantiles(values):
    """The linear-interpolation rule is exactly ``method='inclusive'``:
    cut point k of n=100 is the k-th percentile."""
    cuts = statistics.quantiles(values, n=100, method="inclusive")
    summary = summarize(values)
    assert summary.p50 == pytest.approx(cuts[49], rel=1e-12, abs=1e-9)
    assert summary.p95 == pytest.approx(cuts[94], rel=1e-12, abs=1e-9)
    assert summary.p99 == pytest.approx(cuts[98], rel=1e-12, abs=1e-9)


@settings(max_examples=100, deadline=None)
@given(values=_SAMPLES)
def test_summary_invariants(values):
    summary = summarize(values)
    assert summary.count == len(values)

    # Float rounding can push an interpolated percentile (or the
    # summed mean) a few ulp past its neighbours, so the ordering
    # invariants only hold to rounding error.
    def leq(a: float, b: float) -> bool:
        return a <= b or math.isclose(a, b, rel_tol=1e-12, abs_tol=1e-300)

    for value in (summary.p50, summary.p95, summary.p99, summary.mean):
        assert leq(summary.minimum, value)
        assert leq(value, summary.maximum)
    assert leq(summary.p50, summary.p95)
    assert leq(summary.p95, summary.p99)
    assert summary.stddev >= 0.0
