"""Miscellaneous API-surface tests (small helpers and conveniences)."""

import pytest

from conftest import build_system, run_system, us
from repro.core.monitor import DeltaMinusMonitor
from repro.core.policy import HandlingMode, MonitoredInterposing


class TestRunHelpers:
    def test_run_for_us(self):
        hv, timer = build_system(subscriber="P1", intervals=[us(100)])
        hv.start()
        timer.arm_next()
        hv.run_for_us(500.0)
        assert hv.engine.now == us(500)

    def test_run_until_irq_count_with_source_filter(self):
        hv, timer = build_system(subscriber="P1",
                                 intervals=[us(100), us(100)])
        hv.start()
        timer.arm_next()
        completed = hv.run_until_irq_count(2, source="irq",
                                           limit_cycles=us(50_000))
        assert completed == 2

    def test_run_until_irq_count_limit(self):
        hv, timer = build_system(subscriber="P2", intervals=[us(100)])
        hv.start()
        timer.arm_next()
        # The limit is reached before the delayed BH completes.
        completed = hv.run_until_irq_count(1, limit_cycles=us(200))
        assert completed == 0

    def test_latencies_us_source_filter(self):
        hv, timer = build_system(subscriber="P1", intervals=[us(100)])
        run_system(hv, timer, 1)
        assert hv.latencies_us(source="irq") == hv.latencies_us()
        assert hv.latencies_us(source="other") == []

    def test_repr_smoke(self):
        hv, timer = build_system(subscriber="P1", intervals=[us(100)])
        run_system(hv, timer, 1)
        assert "Hypervisor" in repr(hv)
        assert "Cpu" in repr(hv.cpu)
        assert "TdmaScheduler" in repr(hv.scheduler)
        assert "SimulationEngine" in repr(hv.engine)


class TestMonitorConveniences:
    def test_deny_count_reset_keeps_history(self):
        monitor = DeltaMinusMonitor.from_dmin(100)
        monitor.check_and_accept(0)
        monitor.check_and_accept(50)
        monitor.deny_count_reset()
        assert monitor.accepted_count == 0
        assert monitor.denied_count == 0
        # history is preserved: 50 after the accepted event at 0 is
        # still a violation
        assert not monitor.check_and_accept(50)

    def test_policy_repr(self):
        policy = MonitoredInterposing(DeltaMinusMonitor.from_dmin(100))
        assert "MonitoredInterposing" in repr(policy)


class TestPartitionStats:
    def test_slots_entered_counts(self):
        hv, timer = build_system(subscriber="P1", intervals=[us(100)])
        hv.start()
        timer.arm_next()
        hv.run_until(us(4_500))
        # P1: initial dispatch + slots at 2000 and 4000 us
        assert hv.partition("P1").slots_entered == 3
        assert hv.partition("P2").slots_entered == 2

    def test_bottom_handlers_completed(self):
        hv, timer = build_system(subscriber="P1",
                                 intervals=[us(100), us(100)])
        run_system(hv, timer, 2)
        assert hv.partition("P1").bottom_handlers_completed == 2


class TestModeFractionHelper:
    def test_fractions_sum_to_one(self):
        from repro.experiments.common import PaperSystemConfig, run_irq_scenario
        from repro.core.policy import NeverInterpose
        result = run_irq_scenario(PaperSystemConfig(), NeverInterpose(),
                                  [us(1_000)] * 20)
        total = sum(result.mode_fraction(mode) for mode in HandlingMode)
        assert total == pytest.approx(1.0)


class TestReportFormatting:
    def test_format_cell_variants(self):
        from repro.metrics.report import render_table
        text = render_table(
            ["x"], [[0.0], [12345.6], [42.5], [0.123456], [7]]
        )
        assert "12,346" in text
        assert "42.5" in text
        assert "0.123" in text
