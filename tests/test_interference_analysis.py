"""Tests for the analytical interference bounds (Eqs. 13–15, Eq. 14)."""

import pytest

from repro.analysis.interference import (
    dmin_for_budget_fraction,
    interference_budget_fraction,
    interposed_interference_dmin,
    interposed_interference_table,
    slot_interference_fits,
)
from repro.hypervisor.config import CostModel

COSTS = CostModel()


class TestEq14:
    def test_values(self):
        assert interposed_interference_dmin(0, 1000, 150) == 0
        assert interposed_interference_dmin(1, 1000, 150) == 150
        assert interposed_interference_dmin(2500, 1000, 150) == 450

    def test_validation(self):
        with pytest.raises(ValueError):
            interposed_interference_dmin(10, 0, 150)
        with pytest.raises(ValueError):
            interposed_interference_dmin(-1, 1000, 150)
        with pytest.raises(ValueError):
            interposed_interference_dmin(10, 1000, -1)


class TestTableBound:
    def test_l1_table_matches_eq14(self):
        bound = interposed_interference_table([1000], 150)
        for dt in (1, 999, 1000, 1001, 2500, 10_000):
            assert bound(dt) == interposed_interference_dmin(dt, 1000, 150)

    def test_deeper_table_is_tighter(self):
        """A table [d, 10d] admits far fewer events long-run than [d]."""
        loose = interposed_interference_table([1000], 150)
        tight = interposed_interference_table([1000, 10_000], 150)
        assert tight(100_000) < loose(100_000)
        assert tight(500) <= loose(500)

    def test_zero_window(self):
        bound = interposed_interference_table([1000, 5000], 150)
        assert bound(0) == 0


class TestCostModelEqs:
    def test_eq13(self):
        c_bh = 8_000
        expected = (c_bh + COSTS.scheduler_cycles()
                    + 2 * COSTS.context_switch_cycles())
        assert COSTS.effective_bottom_handler_cycles(c_bh) == expected

    def test_eq15(self):
        c_th = 400
        assert (COSTS.effective_top_handler_cycles(c_th)
                == c_th + COSTS.monitor_cycles())

    def test_paper_section62_values(self):
        assert COSTS.monitor_cycles() == 128
        assert COSTS.scheduler_cycles() == 877
        assert COSTS.context_switch_cycles() == 10_000

    def test_negative_costs_rejected(self):
        with pytest.raises(ValueError):
            COSTS.effective_bottom_handler_cycles(-1)
        with pytest.raises(ValueError):
            COSTS.effective_top_handler_cycles(-1)


class TestBudgetHelpers:
    def test_budget_fraction(self):
        c_bh = 8_000
        effective = COSTS.effective_bottom_handler_cycles(c_bh)
        dmin = 10 * effective
        assert interference_budget_fraction(dmin, c_bh, COSTS) == pytest.approx(0.1)

    def test_dmin_for_budget_roundtrip(self):
        c_bh = 8_000
        dmin = dmin_for_budget_fraction(0.05, c_bh, COSTS)
        assert interference_budget_fraction(dmin, c_bh, COSTS) <= 0.05

    def test_dmin_for_budget_validation(self):
        with pytest.raises(ValueError):
            dmin_for_budget_fraction(0.0, 100)
        with pytest.raises(ValueError):
            dmin_for_budget_fraction(1.5, 100)

    def test_slot_interference_fits(self):
        c_bh = 8_000
        effective = COSTS.effective_bottom_handler_cycles(c_bh)
        slot = 1_200_000   # 6000 us
        generous_dmin = 20 * effective
        assert slot_interference_fits(slot, generous_dmin, c_bh, 0.10, COSTS)
        tiny_dmin = effective
        assert not slot_interference_fits(slot, tiny_dmin, c_bh, 0.10, COSTS)
