"""Determinism regression tests.

The simulator's claim of bit-exact reproducibility is itself tested:
identical seeds give identical results, different seeds differ, and a
pinned snapshot of headline numbers for seed 1 guards against silent
behavioural drift (update the snapshot deliberately when semantics
change — the EXPERIMENTS.md numbers must move with it).
"""

import pytest

from repro.experiments.fig6 import Fig6Config, run_fig6


def run_snapshot():
    config = Fig6Config(irqs_per_load=400, seed=1)
    return {scenario: run_fig6(scenario, config) for scenario in "abc"}


class TestReproducibility:
    def test_same_seed_same_results(self):
        config = Fig6Config(irqs_per_load=200, seed=9)
        first = run_fig6("b", config)
        second = run_fig6("b", config)
        assert first.latencies_us == second.latencies_us
        assert first.mode_counts == second.mode_counts

    def test_different_seed_different_results(self):
        a = run_fig6("b", Fig6Config(irqs_per_load=200, seed=9))
        b = run_fig6("b", Fig6Config(irqs_per_load=200, seed=10))
        assert a.latencies_us != b.latencies_us


class TestPinnedSnapshot:
    """Exact headline numbers for seed 1, 400 IRQs/load.

    These are behavioural checksums: any change to scheduling,
    costs, classification or generators moves them.
    """

    @pytest.fixture(scope="class")
    def results(self):
        return run_snapshot()

    def test_scenario_a_checksum(self, results):
        result = results["a"]
        assert len(result.latencies_us) == 1200
        assert result.mode_counts.get("interposed", 0) == 0
        assert result.avg_latency_us == pytest.approx(2352.04, abs=0.5)
        assert result.max_latency_us == pytest.approx(8040.0, abs=0.5)

    def test_scenario_b_checksum(self, results):
        result = results["b"]
        assert result.avg_latency_us == pytest.approx(1006.26, abs=0.5)
        assert result.mode_counts.get("interposed", 0) == 384

    def test_scenario_c_checksum(self, results):
        result = results["c"]
        assert result.mode_counts.get("delayed", 0) == 0
        assert result.avg_latency_us == pytest.approx(73.41, abs=0.5)
        assert result.max_latency_us == pytest.approx(97.03, abs=0.1)
