"""Integration tests for the *generalized* analysis pieces:

* the l > 1 table interference bound (generalized Eq. 14) against a
  measured ledger from a deep-table monitored run;
* the Σ_j interfering-top-handler term of Eq. 11 against a
  two-source simulation.
"""

import pytest

from conftest import us
from repro.analysis.event_models import PeriodicEventModel
from repro.analysis.interference import interposed_interference_table
from repro.analysis.latency import InterferingIrq, classic_irq_latency
from repro.core.independence import InterferenceKind, verify_sufficient_independence
from repro.core.monitor import DeltaMinusMonitor
from repro.core.policy import MonitoredInterposing, NeverInterpose
from repro.hypervisor.config import CostModel, HypervisorConfig, SlotConfig
from repro.hypervisor.hypervisor import Hypervisor
from repro.hypervisor.irq import IrqSource
from repro.hypervisor.partition import Partition
from repro.sim.timers import IntervalSequenceTimer
from repro.workloads.synthetic import bursty_interarrivals


class TestTableBoundOnMeasuredRun:
    def run_deep_monitored(self):
        """Bursty arrivals through an l = 3 table monitor."""
        table = [us(150), us(800), us(2_500)]
        slots = [SlotConfig("P1", us(1_000)), SlotConfig("P2", us(1_000))]
        hv = Hypervisor(slots, HypervisorConfig(trace_enabled=False))
        hv.add_partition(Partition("P1"))
        hv.add_partition(Partition("P2"))
        source = IrqSource(
            name="bursty", line=5, subscriber="P2",
            top_handler_cycles=us(2), bottom_handler_cycles=us(40),
            policy=MonitoredInterposing(DeltaMinusMonitor(table)),
        )
        hv.add_irq_source(source)
        gaps = bursty_interarrivals(300, burst_length=5,
                                    intra_burst=us(170),
                                    inter_burst=us(6_000), seed=31)
        timer = IntervalSequenceTimer(hv.engine, hv.intc, 5, gaps)
        source.on_top_handler = lambda event: timer.arm_next()
        hv.start()
        timer.arm_next()
        hv.run_until_irq_count(len(gaps),
                               limit_cycles=hv.clock.s_to_cycles(60))
        return hv, table

    def test_generalized_eq14_holds(self):
        hv, table = self.run_deep_monitored()
        c_bh_eff = hv.config.costs.effective_bottom_handler_cycles(us(40))
        bound = interposed_interference_table(table, c_bh_eff)
        report = verify_sufficient_independence(
            hv.ledger, "P1", bound,
            [us(w) for w in (100, 500, 1_000, 3_000, 10_000, 40_000)],
            kinds=(InterferenceKind.INTERPOSED_BH,),
        )
        assert report.holds, (
            f"generalized Eq.14 violated: {report.measured} vs {report.bounds}"
        )

    def test_deep_table_admits_bursts(self):
        hv, _ = self.run_deep_monitored()
        # burst spacing 170us > table[0]=150us, so burst members can be
        # admitted back-to-back (an l=1 condition with the same
        # long-run rate could not).
        assert hv.stats.windows_opened > 50


class TestMultiSourceTopHandlerInterference:
    def test_eq11_with_interferers_dominates_simulation(self):
        """Two IRQ sources; the analysed one is delayed-handled and
        suffers the other's top handlers (the Σ_j term of Eq. 11)."""
        clock_cycle, slot = us(2_000), us(1_000)
        costs = CostModel()
        slots = [SlotConfig("P1", slot), SlotConfig("P2", slot)]
        hv = Hypervisor(slots, HypervisorConfig(trace_enabled=False))
        hv.add_partition(Partition("P1"))
        hv.add_partition(Partition("P2"))
        analysed = IrqSource(name="a", line=5, subscriber="P2",
                             top_handler_cycles=us(2),
                             bottom_handler_cycles=us(40),
                             policy=NeverInterpose())
        noisy = IrqSource(name="b", line=6, subscriber="P1",
                          top_handler_cycles=us(10),
                          bottom_handler_cycles=us(5),
                          policy=NeverInterpose())
        hv.add_irq_source(analysed)
        hv.add_irq_source(noisy)
        gaps_a = [us(2_500)] * 40
        gaps_b = [us(400)] * 250
        timer_a = IntervalSequenceTimer(hv.engine, hv.intc, 5, gaps_a)
        timer_b = IntervalSequenceTimer(hv.engine, hv.intc, 6, gaps_b)
        analysed.on_top_handler = lambda event: timer_a.arm_next()
        noisy.on_top_handler = lambda event: timer_b.arm_next()
        hv.start()
        timer_a.arm_next()
        timer_b.arm_next()
        hv.run_until_irq_count(40, source="a",
                               limit_cycles=hv.clock.s_to_cycles(60))

        bound = classic_irq_latency(
            PeriodicEventModel(us(2_500)), us(2), us(40),
            clock_cycle, slot,
            interferers=[InterferingIrq(model=PeriodicEventModel(us(400)),
                                        top_handler_cycles=us(10))],
            costs=costs,
        )
        measured = max(rec.latency for rec in hv.latency_records
                       if rec.source == "a")
        assert measured <= bound.response_time_cycles
        # the interferer's top handlers show up in the ledger
        th = hv.ledger.total("P2", kinds=(InterferenceKind.TOP_HANDLER,))
        assert th > 0
