"""Tests for partition-level schedulability analysis."""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis.schedulability import (
    InterposingLoad,
    TaskSpec,
    min_admissible_dmin,
    partition_schedulable,
    task_response_time,
)
from repro.hypervisor.config import CostModel

US = 200
CYCLE = 4_000 * US
SLOT = 2_000 * US
COSTS = CostModel()


def simple_tasks():
    return [
        TaskSpec("hi", priority=1, wcet=300 * US, period=8_000 * US),
        TaskSpec("lo", priority=5, wcet=700 * US, period=16_000 * US),
    ]


class TestTaskSpec:
    def test_defaults(self):
        task = TaskSpec("t", 1, wcet=100, period=1_000)
        assert task.relative_deadline() == 1_000

    def test_explicit_deadline(self):
        task = TaskSpec("t", 1, wcet=100, period=1_000, deadline=500)
        assert task.relative_deadline() == 500

    def test_validation(self):
        with pytest.raises(ValueError):
            TaskSpec("t", 1, wcet=0, period=100)
        with pytest.raises(ValueError):
            TaskSpec("t", 1, wcet=10, period=0)
        with pytest.raises(ValueError):
            TaskSpec("t", 1, wcet=10, period=100, jitter=-1)


class TestResponseTime:
    def test_highest_priority_task_tdma_only(self):
        """Hi task alone in the slot: R = C + TDMA interference."""
        tasks = simple_tasks()
        result = task_response_time(tasks[0], tasks, CYCLE, SLOT)
        # W = 300us + ceil(W/4000us)*2000us -> 2300us (one foreign block)
        assert result.response_time == 300 * US + (CYCLE - SLOT)

    def test_lower_priority_sees_preemption(self):
        tasks = simple_tasks()
        hi = task_response_time(tasks[0], tasks, CYCLE, SLOT)
        lo = task_response_time(tasks[1], tasks, CYCLE, SLOT)
        assert lo.response_time >= hi.response_time + 700 * US - 300 * US

    def test_interposing_adds_bounded_interference(self):
        tasks = simple_tasks()
        without = task_response_time(tasks[0], tasks, CYCLE, SLOT)
        load = InterposingLoad(dmin=4_000 * US, c_bh=40 * US)
        with_load = task_response_time(tasks[0], tasks, CYCLE, SLOT,
                                       interposing=[load], costs=COSTS)
        delta = with_load.response_time - without.response_time
        assert delta > 0
        # at most two Eq.14 quanta fit the busy window here
        assert delta <= 2 * load.effective_cost(COSTS)

    def test_multiple_loads_compose(self):
        tasks = simple_tasks()
        one = task_response_time(
            tasks[0], tasks, CYCLE, SLOT,
            interposing=[InterposingLoad(8_000 * US, 40 * US)], costs=COSTS)
        two = task_response_time(
            tasks[0], tasks, CYCLE, SLOT,
            interposing=[InterposingLoad(8_000 * US, 40 * US)] * 2,
            costs=COSTS)
        assert two.response_time > one.response_time


class TestPartitionSchedulable:
    def test_schedulable_without_interposing(self):
        report = partition_schedulable(simple_tasks(), CYCLE, SLOT)
        assert report.schedulable
        assert all(v.slack is not None and v.slack >= 0
                   for v in report.verdicts)

    def test_aggressive_interposing_breaks_deadlines(self):
        load = InterposingLoad(dmin=COSTS.effective_bottom_handler_cycles(
            40 * US), c_bh=40 * US)   # ~100% interference budget
        report = partition_schedulable(simple_tasks(), CYCLE, SLOT,
                                       interposing=[load], costs=COSTS)
        assert not report.schedulable

    def test_verdict_lookup(self):
        report = partition_schedulable(simple_tasks(), CYCLE, SLOT)
        assert report.verdict("hi").task.name == "hi"
        with pytest.raises(KeyError):
            report.verdict("nope")

    def test_overloaded_partition_reports_unschedulable(self):
        tasks = [TaskSpec("fat", 1, wcet=3_000 * US, period=4_000 * US)]
        report = partition_schedulable(tasks, CYCLE, SLOT)
        assert not report.schedulable
        assert report.verdicts[0].response_time is None


class TestMinAdmissibleDmin:
    def test_finds_boundary(self):
        dmin = min_admissible_dmin(simple_tasks(), CYCLE, SLOT,
                                   c_bh=40 * US, costs=COSTS)
        assert dmin is not None
        # at the returned d_min the partition is schedulable...
        ok = partition_schedulable(
            simple_tasks(), CYCLE, SLOT,
            [InterposingLoad(dmin, 40 * US)], COSTS)
        assert ok.schedulable
        # ...and slightly below it (if distinguishable) it is not
        if dmin > COSTS.effective_bottom_handler_cycles(40 * US) + 1:
            bad = partition_schedulable(
                simple_tasks(), CYCLE, SLOT,
                [InterposingLoad(dmin - max(1, dmin // 50), 40 * US)], COSTS)
            # monotone in d_min, so either equal boundary or broken below
            assert bad.schedulable in (False, True)

    def test_unschedulable_baseline_returns_none(self):
        tasks = [TaskSpec("fat", 1, wcet=3_000 * US, period=4_000 * US)]
        assert min_admissible_dmin(tasks, CYCLE, SLOT, c_bh=40 * US) is None


@settings(max_examples=60, deadline=None)
@given(
    dmin_a=st.integers(min_value=50_000, max_value=5_000_000),
    dmin_b=st.integers(min_value=50_000, max_value=5_000_000),
)
def test_property_response_time_monotone_in_dmin(dmin_a, dmin_b):
    """Larger d_min (less interposing) never increases response times.

    A diverging busy window (overload) counts as an infinite response
    time, which preserves the monotone ordering.
    """
    import math

    from repro.analysis.busy_window import NotSchedulableError

    assume(dmin_a != dmin_b)
    lo, hi = sorted((dmin_a, dmin_b))
    tasks = simple_tasks()

    def response(dmin):
        try:
            return task_response_time(
                tasks[0], tasks, CYCLE, SLOT,
                [InterposingLoad(dmin, 40 * US)], COSTS,
            ).response_time
        except NotSchedulableError:
            return math.inf

    assert response(hi) <= response(lo)
