"""Tests for the discrete-event simulation engine."""

import pytest

from repro.sim.engine import SimulationEngine, SimulationError


class TestScheduling:
    def test_initial_time_is_zero(self):
        assert SimulationEngine().now == 0

    def test_events_fire_in_time_order(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(30, lambda: fired.append("c"))
        engine.schedule(10, lambda: fired.append("a"))
        engine.schedule(20, lambda: fired.append("b"))
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_simultaneous_events_fire_fifo(self):
        engine = SimulationEngine()
        fired = []
        for label in "abcde":
            engine.schedule(5, lambda l=label: fired.append(l))
        engine.run()
        assert fired == list("abcde")

    def test_now_advances_to_event_time(self):
        engine = SimulationEngine()
        seen = []
        engine.schedule(42, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [42]
        assert engine.now == 42

    def test_schedule_at_absolute(self):
        engine = SimulationEngine()
        engine.schedule(10, lambda: None)
        engine.run()
        handle = engine.schedule_at(100, lambda: None)
        assert handle.time == 100

    def test_schedule_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            SimulationEngine().schedule(-1, lambda: None)

    def test_schedule_at_past_rejected(self):
        engine = SimulationEngine()
        engine.schedule(50, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.schedule_at(10, lambda: None)

    def test_events_scheduled_during_event_fire(self):
        engine = SimulationEngine()
        fired = []

        def first():
            fired.append("first")
            engine.schedule(5, lambda: fired.append("second"))

        engine.schedule(10, first)
        engine.run()
        assert fired == ["first", "second"]
        assert engine.now == 15


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        engine = SimulationEngine()
        fired = []
        handle = engine.schedule(10, lambda: fired.append("x"))
        handle.cancel()
        engine.run()
        assert fired == []

    def test_handle_states(self):
        engine = SimulationEngine()
        handle = engine.schedule(10, lambda: None)
        assert handle.pending and not handle.fired and not handle.cancelled
        engine.run()
        assert handle.fired and not handle.pending

    def test_cancel_after_fire_is_noop(self):
        engine = SimulationEngine()
        handle = engine.schedule(10, lambda: None)
        engine.run()
        handle.cancel()
        assert handle.fired

    def test_pending_events_excludes_cancelled(self):
        engine = SimulationEngine()
        keep = engine.schedule(10, lambda: None)
        drop = engine.schedule(20, lambda: None)
        drop.cancel()
        assert engine.pending_events == 1
        assert keep.pending


class TestRunModes:
    def test_run_until_executes_only_due_events(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(10, lambda: fired.append("early"))
        engine.schedule(100, lambda: fired.append("late"))
        engine.run_until(50)
        assert fired == ["early"]
        assert engine.now == 50

    def test_run_until_includes_boundary(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(50, lambda: fired.append("edge"))
        engine.run_until(50)
        assert fired == ["edge"]

    def test_run_until_backwards_rejected(self):
        engine = SimulationEngine()
        engine.schedule(100, lambda: None)
        engine.run_until(100)
        with pytest.raises(SimulationError):
            engine.run_until(50)

    def test_run_max_events(self):
        engine = SimulationEngine()
        for _ in range(10):
            engine.schedule(1, lambda: None)
        executed = engine.run(max_events=3)
        assert executed == 3
        assert engine.pending_events == 7

    def test_stop_from_within_event(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(1, lambda: (fired.append(1), engine.stop()))
        engine.schedule(2, lambda: fired.append(2))
        engine.run()
        assert fired == [1]

    def test_step_returns_false_when_empty(self):
        assert SimulationEngine().step() is False

    def test_events_executed_counter(self):
        engine = SimulationEngine()
        for _ in range(5):
            engine.schedule(1, lambda: None)
        engine.run()
        assert engine.events_executed == 5

    def test_peek_next_time(self):
        engine = SimulationEngine()
        assert engine.peek_next_time() is None
        engine.schedule(17, lambda: None)
        assert engine.peek_next_time() == 17

    def test_peek_skips_cancelled(self):
        engine = SimulationEngine()
        first = engine.schedule(5, lambda: None)
        engine.schedule(10, lambda: None)
        first.cancel()
        assert engine.peek_next_time() == 10
