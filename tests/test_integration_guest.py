"""Integration tests: guest OS tasks running inside TDMA partitions,
with and without interposed interrupts — the temporal-independence
story end to end."""

import pytest

from conftest import us
from repro.core.monitor import DeltaMinusMonitor
from repro.core.policy import MonitoredInterposing, NeverInterpose
from repro.guestos.kernel import GuestKernel
from repro.guestos.tasks import GuestTask
from repro.hypervisor.config import HypervisorConfig, SlotConfig
from repro.hypervisor.hypervisor import Hypervisor
from repro.hypervisor.irq import IrqSource
from repro.hypervisor.partition import Partition
from repro.sim.timers import IntervalSequenceTimer


def make_guest_system(policy, irq_gaps):
    """P1 runs two periodic guest tasks; P2 subscribes to an IRQ source
    whose bottom handlers may interpose into P1's slots."""
    slots = [SlotConfig("P1", us(2_000)), SlotConfig("P2", us(2_000))]
    hv = Hypervisor(slots, HypervisorConfig(trace_enabled=False))
    kernel = GuestKernel("victim")
    # Periods are multiples of the 4000 us TDMA cycle so every job gets
    # a full P1 slot per period; WCETs leave slack for interference.
    kernel.add_task(GuestTask("control", priority=1, wcet_cycles=us(400),
                              period_cycles=us(4_000)))
    kernel.add_task(GuestTask("logging", priority=5, wcet_cycles=us(700),
                              period_cycles=us(8_000)))
    hv.add_partition(Partition("P1", guest=kernel, busy_background=False))
    hv.add_partition(Partition("P2"))
    source = IrqSource(name="net", line=5, subscriber="P2",
                       top_handler_cycles=us(2),
                       bottom_handler_cycles=us(40),
                       policy=policy)
    hv.add_irq_source(source)
    timer = IntervalSequenceTimer(hv.engine, hv.intc, 5, irq_gaps)
    source.on_top_handler = lambda event: timer.arm_next()
    hv.start()
    timer.arm_next()
    return hv, kernel


class TestGuestTasksUnderInterference:
    def test_guest_tasks_meet_deadlines_without_interposing(self):
        hv, kernel = make_guest_system(NeverInterpose(), [us(500)] * 40)
        hv.run_until(us(100_000))
        assert kernel.total_deadline_misses() == 0
        assert kernel.stats("control").completed >= 20

    def test_guest_tasks_meet_deadlines_with_monitored_interposing(self):
        """Sufficient temporal independence in action: the bounded
        interference of d_min-shaped interposing fits the guest tasks'
        slack, so deadlines keep being met."""
        policy = MonitoredInterposing(DeltaMinusMonitor.from_dmin(us(1_000)))
        hv, kernel = make_guest_system(policy, [us(500)] * 40)
        hv.run_until(us(100_000))
        assert kernel.total_deadline_misses() == 0
        assert hv.stats.windows_opened > 0   # interposing really happened

    def test_guest_response_time_degradation_is_bounded(self):
        baseline_hv, baseline_kernel = make_guest_system(
            NeverInterpose(), [us(500)] * 40
        )
        baseline_hv.run_until(us(100_000))
        policy = MonitoredInterposing(DeltaMinusMonitor.from_dmin(us(1_000)))
        monitored_hv, monitored_kernel = make_guest_system(
            policy, [us(500)] * 40
        )
        monitored_hv.run_until(us(100_000))
        base = baseline_kernel.stats("control").max_response
        monitored = monitored_kernel.stats("control").max_response
        c_bh_eff = monitored_hv.config.costs.effective_bottom_handler_cycles(
            us(40)
        )
        # Per period at most one window fits the Eq. 14 budget here
        # (d_min = 1000 us, slot = 2000 us => at most 2 + edge effects).
        assert monitored <= base + 3 * c_bh_eff

    def test_priority_preemption_inside_partition(self):
        hv, kernel = make_guest_system(NeverInterpose(), [us(100_000)])
        hv.run_until(us(50_000))
        control = kernel.stats("control")
        logging = kernel.stats("logging")
        assert control.completed > 0 and logging.completed > 0
        # The high-priority task's responses are short despite the
        # long-running low-priority task.
        assert control.max_response <= us(4_100)


class TestIdlePartition:
    def test_unused_capacity_stays_unused(self):
        """Section 3: unused slot capacity is left unused, never
        donated — the idle category absorbs it."""
        slots = [SlotConfig("P1", us(1_000)), SlotConfig("P2", us(1_000))]
        hv = Hypervisor(slots, HypervisorConfig(trace_enabled=False))
        hv.add_partition(Partition("P1", busy_background=False))
        hv.add_partition(Partition("P2"))
        hv.start()
        hv.run_until(us(10_000))
        hv.cpu.preempt()
        assert hv.cpu.consumed("idle:P1") > 0
        # P2 never ran during P1's idle slots:
        assert hv.cpu.consumed("task:P2") <= us(5 * 1_000)
