"""Property-based tests of the discrete-event engine's invariants.

The engine's hot paths are aggressively tuned (tuple queue entries,
inlined dispatch loops, an O(1) pending counter maintained across lazy
cancellation) and pluggable (heap and bucket queue backends, see
:mod:`repro.sim.queue`), so these hypothesis tests pin down the
semantics every backend must preserve:

* events fire in (time, insertion order) — FIFO among simultaneous
  events — for *any* schedule;
* cancelled events never fire, no matter how cancellation interleaves
  with scheduling and execution;
* ``pending_events`` always equals the brute-force count of live
  handles, even though cancelled entries linger in storage until
  drained or compacted.

Each test runs against every registered backend.  The deeper
cross-backend equivalence (identical traces, CSVs, snapshot digests)
lives in ``tests/test_queue_backends.py``.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.engine import SimulationEngine
from repro.sim.queue import QUEUE_BACKENDS

pytestmark = pytest.mark.parametrize("backend", sorted(QUEUE_BACKENDS))


def _live_entry_count(engine: SimulationEngine) -> int:
    """Brute-force ground truth the O(1) counter must match."""
    return len(engine.live_entries())


@settings(deadline=None)
@given(delays=st.lists(st.integers(min_value=0, max_value=20),
                       min_size=1, max_size=60))
def test_fifo_ordering_for_any_schedule(backend, delays):
    """Execution order is (time, insertion seq) — stable FIFO."""
    engine = SimulationEngine(backend=backend)
    fired = []
    expected = []
    for index, delay in enumerate(delays):
        engine.schedule(delay, lambda i=index: fired.append(i))
        expected.append((delay, index))
    engine.run()
    expected.sort()                       # stable: seq breaks time ties
    assert fired == [index for _, index in expected]
    assert engine.events_executed == len(delays)
    assert engine.pending_events == 0


@settings(deadline=None)
@given(plan=st.lists(
    st.tuples(st.integers(min_value=0, max_value=20), st.booleans()),
    min_size=1, max_size=60,
))
def test_cancelled_events_never_fire(backend, plan):
    """Lazy cancellation: cancelled handles are skipped, order kept."""
    engine = SimulationEngine(backend=backend)
    fired = []
    handles = []
    for index, (delay, _) in enumerate(plan):
        handles.append(
            engine.schedule(delay, lambda i=index: fired.append(i))
        )
    for handle, (_, cancel) in zip(handles, plan):
        if cancel:
            handle.cancel()
            handle.cancel()               # cancel is idempotent
    engine.run()
    survivors = sorted(
        (delay, index) for index, (delay, cancel) in enumerate(plan)
        if not cancel
    )
    assert fired == [index for _, index in survivors]
    assert engine.events_executed == len(survivors)
    assert engine.pending_events == 0


#: One mutation step of the pending-counter state machine: a delay
#: schedules a new event, "cancel" cancels a pseudo-randomly chosen
#: live handle, "step" executes the next pending event.
_OPS = st.one_of(
    st.integers(min_value=0, max_value=20),
    st.just("cancel"),
    st.just("step"),
)


@settings(deadline=None)
@given(ops=st.lists(_OPS, min_size=1, max_size=80))
def test_pending_counter_matches_brute_force(backend, ops):
    """The O(1) counter tracks interleaved schedule/cancel/step exactly.

    Regression test for the heap-scan elimination: the seed engine
    recomputed ``pending_events`` by scanning the heap on every access,
    and the counter replacing the scan must stay consistent while
    cancelled entries are still sitting in backend storage.
    """
    engine = SimulationEngine(backend=backend)
    live = []
    for op in ops:
        if op == "cancel":
            if live:
                # deterministic pseudo-random pick, seeded by the counter
                victim = live.pop(engine.pending_events % len(live))
                victim.cancel()
        elif op == "step":
            engine.step()
            live = [handle for handle in live if handle.pending]
        else:
            live.append(engine.schedule(op, lambda: None))
        assert engine.pending_events == len(live)
        assert engine.pending_events == _live_entry_count(engine)
    engine.run()
    assert engine.pending_events == 0
    assert engine.heap_depth == 0
