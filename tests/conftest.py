"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.monitor import DeltaMinusMonitor
from repro.core.policy import MonitoredInterposing, NeverInterpose
from repro.hypervisor.config import HypervisorConfig, SlotConfig
from repro.hypervisor.hypervisor import Hypervisor
from repro.hypervisor.irq import IrqSource
from repro.hypervisor.partition import Partition
from repro.sim.clock import Clock
from repro.sim.timers import IntervalSequenceTimer


@pytest.fixture
def clock() -> Clock:
    """The paper's 200 MHz clock (200 cycles per microsecond)."""
    return Clock()


def us(microseconds: float) -> int:
    """Microseconds to cycles at 200 MHz (module-level test helper)."""
    return Clock().us_to_cycles(microseconds)


def build_system(subscriber: str = "P1",
                 policy=None,
                 intervals=(),
                 slot_us: float = 1_000.0,
                 c_th_us: float = 2.0,
                 c_bh_us: float = 40.0,
                 partitions: tuple = ("P1", "P2"),
                 defer: bool = True,
                 trace: bool = True,
                 bottom_handler_actual=None,
                 busy_background: bool = True):
    """Construct a small two-partition system with one IRQ source.

    Returns ``(hypervisor, timer)``; the caller starts both.
    """
    clock = Clock()
    slots = [SlotConfig(name, clock.us_to_cycles(slot_us)) for name in partitions]
    config = HypervisorConfig(trace_enabled=trace,
                              defer_slot_switch_for_window=defer)
    hv = Hypervisor(slots, config)
    for name in partitions:
        hv.add_partition(Partition(name, busy_background=busy_background))
    source = IrqSource(
        name="irq",
        line=5,
        subscriber=subscriber,
        top_handler_cycles=clock.us_to_cycles(c_th_us),
        bottom_handler_cycles=clock.us_to_cycles(c_bh_us),
        policy=policy if policy is not None else NeverInterpose(),
        bottom_handler_actual=bottom_handler_actual,
    )
    hv.add_irq_source(source)
    timer = IntervalSequenceTimer(hv.engine, hv.intc, line=5,
                                  intervals=list(intervals))
    source.on_top_handler = lambda event: timer.arm_next()
    return hv, timer


def run_system(hv, timer, expected_irqs: int, limit_us: float = 1_000_000.0):
    """Start and run a built system until all IRQs completed."""
    hv.start()
    timer.arm_next()
    hv.run_until_irq_count(expected_irqs,
                           limit_cycles=hv.clock.us_to_cycles(limit_us))
    return hv


@pytest.fixture
def monitored_policy():
    """A d_min = 500 us monitoring policy."""
    return MonitoredInterposing(DeltaMinusMonitor.from_dmin(us(500)))
