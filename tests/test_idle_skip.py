"""Idle-skip engine: analytic fast-forward is observably invisible.

The idle-skip layer (:meth:`repro.hypervisor.Hypervisor._boundary_dispatch`
plus the engine's ``fast_forward``/``skip_window`` protocol) promises
that fast-forwarding across quiescent TDMA gaps changes *only*
wall-clock speed — every trace record, latency column, accounting
counter and snapshot digest is byte-identical to tick-by-tick
execution.  These tests pin that promise:

* property level — hypothesis-driven random sparse schedules (random
  gap lengths in TDMA cycles plus sub-cycle jitter, both interposing
  regimes, trace on and off) run with the skip on and off must produce
  identical artifacts at every observable layer;
* fork level — a world snapshot captured from *inside* a skipped span
  digests identically to one captured mid-gap under tick-by-tick
  execution, and continuations restored from it finish identically
  under either mode;
* resolution — explicit constructor argument beats ``REPRO_IDLE_SKIP``
  beats the default, invalid spellings fail loudly listing the
  accepted values, and an empty value means "unset";
* telemetry — the skip counters move only when spans were elided, and
  stay at zero when the skip is disabled.
"""

from __future__ import annotations

import dataclasses
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.policy import AlwaysInterpose, NeverInterpose
from repro.experiments.common import (
    PaperSystemConfig,
    run_irq_scenario,
    run_irq_scenario_from,
)
from repro.sim.engine import (
    DEFAULT_IDLE_SKIP,
    ENV_IDLE_SKIP,
    SimulationEngine,
    SimulationError,
    resolve_idle_skip,
)
from repro.sim.snapshot import settle

#: One paper TDMA cycle (14 000 us at 200 cycles/us).
TDMA_CYCLE = 2_800_000


def _with_idle_skip(enabled: bool, fn):
    """Run ``fn`` with the engine default forced to ``enabled``."""
    previous = os.environ.get(ENV_IDLE_SKIP)
    os.environ[ENV_IDLE_SKIP] = "1" if enabled else "0"
    try:
        return fn()
    finally:
        if previous is None:
            del os.environ[ENV_IDLE_SKIP]
        else:
            os.environ[ENV_IDLE_SKIP] = previous


def _scenario_artifacts(idle_skip: bool, intervals, *, interpose: bool,
                        traced: bool) -> dict:
    """Everything a scenario run produces, as comparable plain data."""
    system = PaperSystemConfig(trace_enabled=traced)
    policy = AlwaysInterpose() if interpose else NeverInterpose()
    result = _with_idle_skip(
        idle_skip, lambda: run_irq_scenario(system, policy, intervals))
    hv = result.hypervisor
    assert hv.engine.idle_skip_enabled is idle_skip
    artifacts = {
        "records": list(result.records),
        "latencies_us": list(result.latencies_us),
        "summary": dataclasses.asdict(result.summary),
        "mode_counts": dict(result.mode_counts),
        "context_switches": dict(result.context_switch_counts),
        "stats": dataclasses.asdict(hv.stats),
        "cpu_consumed": dict(hv.cpu.consumed_by_category),
        "cpu_preemptions": hv.cpu.preemptions,
        "slots_entered": {name: partition.slots_entered
                          for name, partition in hv.partitions.items()},
        "intc": hv.intc.snapshot_state(),
        "scheduler": hv.scheduler.snapshot_state(),
        # snapshot_state deliberately excludes the skip counters (and
        # dispatch_batches is not part of it) — this is the exact dict
        # WorldSnapshot digests.
        "engine": hv.engine.snapshot_state(),
    }
    if traced:
        artifacts["trace_digest"] = hv.trace.digest()
    # The skip leg must actually have skipped; the tick leg never does.
    if idle_skip:
        assert hv.engine.skip_spans > 0
        assert hv.engine.skipped_events > 0
    else:
        assert hv.engine.skip_spans == 0
        assert hv.engine.skipped_events == 0
        assert hv.engine.skipped_cycles == 0
    return artifacts


#: One arrival gap: whole TDMA cycles of quiescence plus sub-cycle
#: jitter, so boundaries land mid-slot as often as on-grid.
_GAP = st.tuples(st.integers(2, 25), st.integers(0, TDMA_CYCLE - 1))


@settings(max_examples=15, deadline=None)
@given(gaps=st.lists(_GAP, min_size=3, max_size=6),
       interpose=st.booleans(),
       traced=st.booleans())
def test_skip_is_byte_identical_on_random_sparse_schedules(
        gaps, interpose, traced):
    """Core property: skip on vs off, same artifacts at every layer.

    ``traced=True`` exercises the per-slot (trace-safe) tier;
    ``traced=False`` exercises the closed-form bulk tier.
    """
    intervals = [cycles * TDMA_CYCLE + jitter for cycles, jitter in gaps]
    reference = _scenario_artifacts(False, intervals, interpose=interpose,
                                    traced=traced)
    skipped = _scenario_artifacts(True, intervals, interpose=interpose,
                                  traced=traced)
    assert skipped == reference


def _capture_mid_gap(idle_skip: bool, system, policy, intervals):
    """Capture a world snapshot from inside a long quiescent gap."""
    def capture():
        hv, timer = system.build(policy, intervals)
        hv.start()
        timer.arm_next()
        hv.run_until_irq_count(2)
        # Park the clock deep inside the following idle gap: with the
        # skip enabled this lands inside a fast-forwarded span.
        hv.engine.run_until(hv.engine.now + 10 * TDMA_CYCLE)
        return settle(hv, {timer.name: timer})
    return _with_idle_skip(idle_skip, capture)


def test_fork_from_inside_skipped_span_is_byte_identical():
    """Snapshots taken mid-skip digest and continue identically.

    A ``run_until`` bound that lands inside a quiescent gap makes the
    skip layer fast-forward part of the gap and stop at the bound; the
    captured world must digest exactly like a tick-by-tick capture at
    the same instant, and continuations restored from it must finish
    identically whether the continuation itself skips or ticks.
    """
    system = PaperSystemConfig(trace_enabled=True)
    intervals = [20 * TDMA_CYCLE + 123_457] * 6
    straight = _with_idle_skip(False, lambda: run_irq_scenario(
        system, NeverInterpose(), intervals))

    tick_snap = _capture_mid_gap(False, system, NeverInterpose(), intervals)
    skip_snap = _capture_mid_gap(True, system, NeverInterpose(), intervals)
    assert skip_snap.digest() == tick_snap.digest()

    for continuation_skip in (False, True):
        forked = _with_idle_skip(continuation_skip, lambda: (
            run_irq_scenario_from(skip_snap, system)))
        assert forked.hypervisor.engine.idle_skip_enabled is continuation_skip
        assert list(forked.records) == list(straight.records)
        assert list(forked.latencies_us) == list(straight.latencies_us)
        assert forked.summary == straight.summary
        assert forked.hypervisor.trace.digest() == \
            straight.hypervisor.trace.digest()


# ------------------------------------------------------- resolution

def test_resolution_explicit_beats_env_beats_default(monkeypatch):
    monkeypatch.delenv(ENV_IDLE_SKIP, raising=False)
    assert resolve_idle_skip(None) is DEFAULT_IDLE_SKIP
    assert resolve_idle_skip(False) is False
    monkeypatch.setenv(ENV_IDLE_SKIP, "off")
    assert resolve_idle_skip(None) is False
    assert resolve_idle_skip(True) is True          # explicit beats env
    # An empty value means "unset", so shell-style FOO= does not break.
    monkeypatch.setenv(ENV_IDLE_SKIP, "")
    assert resolve_idle_skip(None) is DEFAULT_IDLE_SKIP


@pytest.mark.parametrize("spelling,expected", [
    ("1", True), ("true", True), ("on", True), ("yes", True),
    ("0", False), ("false", False), ("off", False), ("no", False),
    ("TRUE", True), ("Off", False),                 # case-insensitive
])
def test_env_spellings(monkeypatch, spelling, expected):
    monkeypatch.setenv(ENV_IDLE_SKIP, spelling)
    assert resolve_idle_skip(None) is expected


def test_invalid_env_value_fails_loudly_listing_valid_values(monkeypatch):
    monkeypatch.setenv(ENV_IDLE_SKIP, "maybe")
    with pytest.raises(SimulationError, match="valid values"):
        resolve_idle_skip(None)
    with pytest.raises(SimulationError, match="invalid REPRO_IDLE_SKIP"):
        SimulationEngine()
    # The explicit argument never consults the (invalid) environment.
    assert SimulationEngine(idle_skip=True).idle_skip_enabled is True
    assert SimulationEngine(idle_skip=False).idle_skip_enabled is False


def test_engine_constructor_reflects_resolution(monkeypatch):
    monkeypatch.setenv(ENV_IDLE_SKIP, "0")
    engine = SimulationEngine()
    assert engine.idle_skip_enabled is False
    assert SimulationEngine(idle_skip=True).idle_skip_enabled is True


# ------------------------------------------------------- skip telemetry

def test_skip_counters_stay_zero_when_disabled():
    intervals = [15 * TDMA_CYCLE] * 3
    result = _with_idle_skip(False, lambda: run_irq_scenario(
        PaperSystemConfig(), NeverInterpose(), intervals))
    engine = result.hypervisor.engine
    assert engine.skip_spans == 0
    assert engine.skipped_events == 0
    assert engine.skipped_cycles == 0
    assert engine.skip_span_log == []


def test_skip_span_log_matches_counters():
    intervals = [15 * TDMA_CYCLE] * 3
    result = _with_idle_skip(True, lambda: run_irq_scenario(
        PaperSystemConfig(), NeverInterpose(), intervals))
    engine = result.hypervisor.engine
    log = engine.skip_span_log
    assert len(log) == engine.skip_spans
    assert sum(elided for _, _, elided in log) == engine.skipped_events
    assert sum(end - start for start, end, _ in log) == \
        engine.skipped_cycles
    for start, end, elided in log:
        assert end > start
        assert elided >= 1
