"""Failure-injection and edge-case tests for the full system."""

import pytest

from conftest import build_system, run_system, us
from repro.core.monitor import DeltaMinusMonitor
from repro.core.policy import MonitoredInterposing, NeverInterpose
from repro.hypervisor.config import HypervisorConfig, SlotConfig
from repro.hypervisor.hypervisor import Hypervisor
from repro.hypervisor.irq import IrqQueueOverflow, IrqSource
from repro.hypervisor.partition import Partition
from repro.sim.timers import IntervalSequenceTimer


class TestQueueOverflow:
    def test_bounded_queue_overflows_under_flood(self):
        """A bounded IRQ queue refuses pushes past its capacity —
        surfaced as an explicit error, never silent loss."""
        slots = [SlotConfig("P1", us(1_000)), SlotConfig("P2", us(1_000))]
        hv = Hypervisor(slots, HypervisorConfig(trace_enabled=False))
        hv.add_partition(Partition("P1"))
        hv.add_partition(Partition("P2", irq_queue_capacity=3))
        source = IrqSource(name="flood", line=5, subscriber="P2",
                           top_handler_cycles=us(1),
                           bottom_handler_cycles=us(40))
        hv.add_irq_source(source)
        timer = IntervalSequenceTimer(hv.engine, hv.intc, 5, [us(50)] * 10)
        source.on_top_handler = lambda event: timer.arm_next()
        hv.start()
        timer.arm_next()
        with pytest.raises(IrqQueueOverflow):
            hv.run_until(us(5_000))

    def test_unbounded_queue_absorbs_flood(self):
        hv, timer = build_system(subscriber="P2", intervals=[us(50)] * 10)
        run_system(hv, timer, 10, limit_us=100_000)
        assert len(hv.latency_records) == 10


class TestSpuriousIrqs:
    def test_unregistered_line_is_counted_and_survived(self):
        hv, timer = build_system(subscriber="P1", intervals=[us(100)])
        hv.start()
        timer.arm_next()
        hv.engine.schedule(us(50), lambda: hv.intc.raise_line(9))
        hv.run_until_irq_count(1, limit_cycles=us(50_000))
        assert hv.stats.spurious_irqs == 1
        assert len(hv.latency_records) == 1   # real IRQ unaffected


class TestDegenerateCosts:
    def test_zero_top_handler_cost(self):
        hv, timer = build_system(subscriber="P1", intervals=[us(100)],
                                 c_th_us=0.0)
        run_system(hv, timer, 1)
        (record,) = hv.latency_records
        assert record.latency == us(40)

    def test_zero_bottom_handler_cost(self):
        hv, timer = build_system(subscriber="P1", intervals=[us(100)],
                                 c_bh_us=0.0)
        run_system(hv, timer, 1, limit_us=50_000)
        (record,) = hv.latency_records
        assert record.latency == us(2)

    def test_zero_bottom_handler_foreign_interposed(self):
        policy = MonitoredInterposing(DeltaMinusMonitor.from_dmin(us(500)))
        hv, timer = build_system(subscriber="P2", policy=policy,
                                 intervals=[us(100)], c_bh_us=0.0)
        run_system(hv, timer, 1, limit_us=50_000)
        assert len(hv.latency_records) == 1


class TestSlotSkipping:
    def test_huge_bottom_handler_skips_whole_slots(self):
        """A home bottom handler longer than the following slot defers
        the boundary past it entirely; the schedule catches up on the
        nominal grid instead of drifting."""
        hv, timer = build_system(subscriber="P1", intervals=[us(900)],
                                 c_bh_us=1_500.0)
        run_system(hv, timer, 1, limit_us=100_000)
        (record,) = hv.latency_records
        assert record.latency == us(2) + us(1_500)
        assert hv.scheduler.slots_skipped >= 1
        # After catching up, slot ownership matches the nominal grid.
        hv.run_until(us(10_000))
        hv.engine.run_until(hv.engine.now)   # settle
        owner_now = hv.scheduler.current_owner
        assert owner_now in ("P1", "P2")

    def test_nominal_grid_preserved_after_deferral(self):
        policy = MonitoredInterposing(DeltaMinusMonitor.from_dmin(us(200)))
        hv, timer = build_system(subscriber="P2", policy=policy,
                                 intervals=[us(990), us(990)])
        run_system(hv, timer, 2, limit_us=100_000)
        hv.run_until(us(20_000))
        from repro.sim.trace import TraceKind
        switches = hv.trace.of_kind(TraceKind.SLOT_SWITCH)
        # Boundaries stay near the nominal 1000us grid (within C'_BH).
        c_bh_eff = hv.config.costs.effective_bottom_handler_cycles(us(40))
        for event in switches:
            offset = event.time % us(1_000)
            assert offset <= c_bh_eff or offset >= us(1_000) - 1


class TestTraceCapacity:
    def test_capacity_bound_respected_in_system(self):
        slots = [SlotConfig("P1", us(500)), SlotConfig("P2", us(500))]
        config = HypervisorConfig(trace_enabled=True, trace_capacity=50)
        hv = Hypervisor(slots, config)
        hv.add_partition(Partition("P1"))
        hv.add_partition(Partition("P2"))
        source = IrqSource(name="irq", line=5, subscriber="P1",
                           top_handler_cycles=us(2),
                           bottom_handler_cycles=us(10))
        hv.add_irq_source(source)
        timer = IntervalSequenceTimer(hv.engine, hv.intc, 5, [us(100)] * 50)
        source.on_top_handler = lambda event: timer.arm_next()
        hv.start()
        timer.arm_next()
        hv.run_until(us(10_000))
        assert len(hv.trace) <= 50
        assert hv.trace.dropped > 0


class TestExhaustedWorkload:
    def test_system_idles_gracefully_after_last_irq(self):
        hv, timer = build_system(subscriber="P1", intervals=[us(100)])
        run_system(hv, timer, 1)
        before = len(hv.latency_records)
        hv.run_until(us(50_000))
        assert len(hv.latency_records) == before
        assert hv.engine.now >= us(50_000)
