"""Tests for the telemetry layer: registry, collectors, reconciliation.

The load-bearing property is the metrics <-> trace contract: the
hypervisor bumps its stats counters at exactly the sites that emit the
corresponding :class:`~repro.sim.trace.TraceKind`, so for any traced
run the collected metric values equal the recorder's per-kind counts.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments.cache import CacheStats
from repro.experiments.runner import (
    CampaignTelemetry,
    TaskTelemetry,
    run_campaign,
    write_bench_json,
)
from repro.experiments.scale import SMOKE
from repro.sim.trace import TraceKind
from repro.telemetry import (
    MetricsRegistry,
    collect_cache,
    collect_campaign,
    collect_hypervisor,
    load_metrics_json,
    run_traced_fig6,
)

#: metric name -> the TraceKind its value must reconcile with, 1:1.
RECONCILED = {
    "hv_irqs_raised_total": TraceKind.IRQ_RAISED,
    "hv_top_handler_runs_total": TraceKind.TOP_HANDLER_START,
    "hv_top_handler_completions_total": TraceKind.TOP_HANDLER_END,
    "hv_bottom_handler_runs_total": TraceKind.BOTTOM_HANDLER_START,
    "hv_bottom_handler_completions_total": TraceKind.BOTTOM_HANDLER_END,
    "hv_bottom_handler_preemptions_total":
        TraceKind.BOTTOM_HANDLER_PREEMPTED,
    "hv_budget_exhaustions_total":
        TraceKind.BOTTOM_HANDLER_BUDGET_EXHAUSTED,
    "hv_monitor_accepts_total": TraceKind.MONITOR_ACCEPT,
    "hv_monitor_denies_total": TraceKind.MONITOR_DENY,
    "hv_interposed_windows_total": TraceKind.INTERPOSE_START,
    "hv_interpose_ends_total": TraceKind.INTERPOSE_END,
    "hv_slot_switches_total": TraceKind.SLOT_SWITCH,
    "hv_context_switches_total": TraceKind.CONTEXT_SWITCH,
}


# ------------------------------------------------------------- registry

def test_counter_inc_and_value():
    registry = MetricsRegistry()
    counter = registry.counter("requests_total", "Requests served")
    counter.inc()
    counter.inc(4)
    assert registry.value("requests_total") == 5


def test_counter_rejects_negative_increment():
    registry = MetricsRegistry()
    counter = registry.counter("events_total")
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_labelled_series_are_independent_and_memoized():
    registry = MetricsRegistry()
    counter = registry.counter("hits_total", "", ("shard",))
    counter.labels(shard="a").inc(2)
    counter.labels(shard="b").inc(3)
    assert registry.value("hits_total", shard="a") == 2
    assert registry.value("hits_total", shard="b") == 3
    assert counter.labels(shard="a") is counter.labels(shard="a")


def test_get_or_create_checks_type_and_labels():
    registry = MetricsRegistry()
    registry.counter("thing_total", "", ("x",))
    assert registry.counter("thing_total", "", ("x",)) is registry.get(
        "thing_total")
    with pytest.raises(ValueError):
        registry.gauge("thing_total", "", ("x",))
    with pytest.raises(ValueError):
        registry.counter("thing_total", "", ("y",))


def test_gauge_set_and_histogram_observe():
    registry = MetricsRegistry()
    registry.gauge("depth").set(7)
    assert registry.value("depth") == 7
    histogram = registry.histogram("latency_seconds",
                                   buckets=(0.1, 1.0))
    histogram.observe(0.05)
    histogram.observe(0.5)
    histogram.observe(5.0)
    snap = registry.snapshot()["latency_seconds"]["values"][0]
    assert snap["count"] == 3
    assert snap["sum"] == pytest.approx(5.55)
    assert snap["buckets"] == [{"le": 0.1, "count": 1},
                               {"le": 1.0, "count": 2}]


def test_disabled_registry_is_noop_and_registers_nothing():
    registry = MetricsRegistry(enabled=False)
    counter = registry.counter("anything_total", "", ("k",))
    counter.labels(k="v").inc()
    counter.inc(10)
    registry.gauge("g").set(1)
    registry.histogram("h").observe(1.0)
    assert registry.names() == []
    assert registry.snapshot() == {}


def test_prometheus_rendering_includes_help_type_and_series():
    registry = MetricsRegistry()
    registry.counter("irqs_total", "IRQs seen", ("line",)).labels(
        line="5").inc(3)
    registry.histogram("wait_seconds", "Wait", buckets=(1.0,)).observe(0.5)
    text = registry.render_prometheus()
    assert "# HELP irqs_total IRQs seen" in text
    assert "# TYPE irqs_total counter" in text
    assert 'irqs_total{line="5"} 3' in text
    assert 'wait_seconds_bucket{le="1"} 1' in text
    assert "wait_seconds_count 1" in text


def test_json_snapshot_round_trips(tmp_path):
    registry = MetricsRegistry()
    registry.counter("a_total").inc(2)
    path = registry.write_json(tmp_path / "m.json", metadata={"run": "t"})
    payload = load_metrics_json(path)
    assert payload["metadata"] == {"run": "t"}
    assert payload["metrics"]["a_total"]["values"][0]["value"] == 2
    with pytest.raises(ValueError):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"nope": 1}))
        load_metrics_json(bad)


# ----------------------------------------------------------- collectors

def _value(registry, name, **labels):
    return registry.value(name, **labels)


def test_collect_hypervisor_reconciles_with_trace():
    replay = run_traced_fig6(irqs=120, seed=3)
    registry = MetricsRegistry()
    collect_hypervisor(registry, replay.hypervisor, run="r")
    trace = replay.trace
    for name, kind in RECONCILED.items():
        assert _value(registry, name, run="r") == len(trace.of_kind(kind)), \
            f"{name} does not match {kind}"
    # engine counters ride along
    engine = replay.hypervisor.engine
    assert _value(registry, "sim_events_executed_total",
                  run="r") == engine.events_executed
    assert _value(registry, "sim_events_scheduled_total",
                  run="r") == engine.events_scheduled
    # one latency record per completed bottom handler
    assert _value(registry, "hv_bottom_handler_completions_total",
                  run="r") == len(replay.hypervisor.latency_records)


def test_collect_hypervisor_per_source_monitor_decisions():
    replay = run_traced_fig6(irqs=80, seed=1)
    registry = MetricsRegistry()
    collect_hypervisor(registry, replay.hypervisor, run="r")
    source = replay.hypervisor.irq_source("irq0")
    stats = source.policy.monitor.stats()
    assert _value(registry, "hv_source_monitor_decisions_total",
                  run="r", source="irq0",
                  decision="accepted") == stats["accepted"]
    assert _value(registry, "hv_source_monitor_decisions_total",
                  run="r", source="irq0",
                  decision="denied") == stats["denied"]


def test_collect_cache_stats():
    stats = CacheStats(hits=3, misses=2, stores=2, invalidations=1,
                       bytes_read=100, bytes_written=200,
                       saved_seconds=1.5)
    registry = MetricsRegistry()
    collect_cache(registry, stats)
    assert registry.value("cache_hits_total") == 3
    assert registry.value("cache_misses_total") == 2
    assert registry.value("cache_invalidations_total") == 1
    assert registry.value("cache_saved_seconds") == 1.5


def test_collect_campaign_histograms_skip_cached_tasks():
    telemetry = CampaignTelemetry(jobs=2, wall_seconds=1.0, tasks=[
        TaskTelemetry("fig6a", "fig6-load", 0, False, 0.4, 0.01, 0.01, 11),
        TaskTelemetry("fig6a", "fig6-load", 1, True, 0.0, 0.0, 0.02, 10),
    ])
    registry = MetricsRegistry()
    collect_campaign(registry, telemetry)
    assert registry.value("campaign_tasks_total", experiment="fig6a",
                          outcome="computed") == 1
    assert registry.value("campaign_tasks_total", experiment="fig6a",
                          outcome="cached") == 1
    snap = registry.snapshot()["campaign_task_seconds"]["values"]
    assert len(snap) == 1 and snap[0]["count"] == 1
    assert registry.value("campaign_worker_utilization") == 0.2


# --------------------------------------------- instrumented campaigns

def test_instrumented_campaign_matches_plain_run():
    plain = run_campaign(("fig6b",), SMOKE, seed=1, jobs=1)
    telemetry = CampaignTelemetry()
    seen = []
    instrumented = run_campaign(
        ("fig6b",), SMOKE, seed=1, jobs=2, telemetry=telemetry,
        progress=lambda done, total, task: seen.append((done, total)),
    )
    assert instrumented["fig6b"].latencies_us == plain["fig6b"].latencies_us
    assert len(telemetry.tasks) == 3
    assert telemetry.jobs == 2
    assert telemetry.wall_seconds > 0
    assert all(not task.cached for task in telemetry.tasks)
    assert [index for index in seen] == [(1, 3), (2, 3), (3, 3)]
    assert 0.0 <= telemetry.worker_utilization <= 1.0


def test_shared_telemetry_offsets_monotone_across_campaigns():
    """One CampaignTelemetry fed by several run_campaign calls (the CLI
    pattern) keeps per-worker started offsets monotone — otherwise the
    Perfetto worker tracks would go back in time between experiments."""
    telemetry = CampaignTelemetry()
    run_campaign(("fig6a",), SMOKE, seed=1, jobs=1, telemetry=telemetry)
    run_campaign(("fig6b",), SMOKE, seed=1, jobs=1, telemetry=telemetry)
    assert telemetry.epoch is not None
    per_worker: "dict[int, list[float]]" = {}
    for task in telemetry.tasks:
        per_worker.setdefault(task.worker_pid, []).append(
            task.started_offset_seconds)
    assert len(telemetry.tasks) == 6
    for offsets in per_worker.values():
        assert offsets == sorted(offsets)


def test_instrumented_cached_campaign_records_hits(tmp_path):
    from repro.experiments.cache import ResultCache

    cache = ResultCache(tmp_path / "cache")
    cold = CampaignTelemetry()
    run_campaign(("fig6a",), SMOKE, seed=1, jobs=1, cache=cache,
                 telemetry=cold)
    assert all(not task.cached for task in cold.tasks)
    warm = CampaignTelemetry()
    warm_results = run_campaign(("fig6a",), SMOKE, seed=1, jobs=1,
                                cache=cache, telemetry=warm)
    assert all(task.cached for task in warm.tasks)
    assert warm.busy_seconds == 0.0
    plain = run_campaign(("fig6a",), SMOKE, seed=1, jobs=1)
    assert warm_results["fig6a"].latencies_us == plain["fig6a"].latencies_us


def test_bench_json_includes_campaign_record(tmp_path):
    telemetry = CampaignTelemetry(jobs=3, wall_seconds=2.0, tasks=[
        TaskTelemetry("fig7", "fig7-case", 0, False, 1.5, 0.1, 0.1, 42),
    ])
    record = write_bench_json(
        tmp_path / "bench.json", scale_name="smoke", jobs=3,
        experiment_seconds={"fig7": 2.0}, telemetry=telemetry,
    )
    assert record["campaign"]["jobs"] == 3
    assert record["campaign"]["tasks_computed"] == 1
    assert record["campaign"]["max_task_seconds"] == 1.5
    history = json.loads((tmp_path / "bench.json").read_text())
    assert history["runs"][-1]["campaign"]["busy_seconds"] == 1.5


# ------------------------------------------------- property: reconcile

@settings(max_examples=12, deadline=None)
@given(
    irqs=st.integers(min_value=5, max_value=40),
    seed=st.integers(min_value=0, max_value=1_000),
    scenario=st.sampled_from(("a", "b", "c")),
)
def test_metrics_reconcile_with_trace_on_random_scenarios(
        irqs, seed, scenario):
    """For any small random scenario, every reconciled counter equals
    the recorder's count of its TraceKind — the observational layer
    can never drift from the trace stream."""
    replay = run_traced_fig6(irqs=irqs, seed=seed, scenario=scenario)
    registry = MetricsRegistry()
    collect_hypervisor(registry, replay.hypervisor, run="p")
    trace = replay.trace
    assert trace.dropped == 0
    for name, kind in RECONCILED.items():
        assert registry.value(name, run="p") == len(trace.of_kind(kind)), \
            f"{name} vs {kind} (irqs={irqs}, seed={seed}, {scenario!r})"
