"""Tests of the content-addressed campaign result cache.

The load-bearing guarantees:

* **byte-identity** — a warm run replays pickled results and renders
  exactly what a cold (or uncached) run renders;
* **exact invalidation** — changing task kwargs, the seed, the scale
  or the source of a transitively imported module changes the
  fingerprint of exactly the affected tasks and no others;
* **robustness** — corrupt/truncated entries read as misses, entries
  land atomically, and concurrent ``write_bench_json`` appends cannot
  drop records.
"""

import json
import pickle
import textwrap
import threading

import pytest

from repro.experiments.__main__ import EXPERIMENTS, main
from repro.experiments.cache import (
    CACHE_FORMAT,
    ResultCache,
    canonicalize,
    clear_source_caches,
    default_cache_dir,
    source_fingerprint,
    task_fingerprint,
)
from repro.experiments.runner import (
    CampaignTask,
    plan_campaign,
    run_campaign,
    write_bench_json,
)
from repro.experiments.scale import QUICK, SMOKE


# -------------------------------------------------------- canonicalize

def test_canonicalize_primitives_and_containers():
    assert canonicalize({"b": 2, "a": (1, True, None)}) == \
        {"a": [1, True, None], "b": 2}
    # floats are encoded exactly — 0.1 + 0.2 must not alias 0.3
    assert canonicalize(0.1 + 0.2) != canonicalize(0.3)
    assert canonicalize(1.0) == {"__float__": (1.0).hex()}


def test_canonicalize_dataclasses_tagged_by_class():
    from repro.experiments.fig6 import Fig6Config

    one = canonicalize(Fig6Config(seed=1))
    same = canonicalize(Fig6Config(seed=1))
    other = canonicalize(Fig6Config(seed=2))
    assert one == same
    assert one != other
    assert one["__dataclass__"].endswith("Fig6Config")


def test_canonicalize_rejects_unknown_objects():
    with pytest.raises(TypeError):
        canonicalize(object())
    with pytest.raises(TypeError):
        canonicalize({1: "non-string key"})


# -------------------------------------------------------- fingerprints

def _keys(names, scale, seed):
    tasks, _ = plan_campaign(names, scale, seed)
    return tasks, [task_fingerprint(task) for task in tasks]


def test_fingerprints_are_stable_across_plans():
    _, first = _keys(EXPERIMENTS, SMOKE, seed=1)
    _, second = _keys(EXPERIMENTS, SMOKE, seed=1)
    assert first == second


def test_seed_change_invalidates_exactly_seeded_tasks():
    tasks, base = _keys(EXPERIMENTS, SMOKE, seed=1)
    _, reseeded = _keys(EXPERIMENTS, SMOKE, seed=2)
    unchanged = {task.kind for task, a, b in zip(tasks, base, reseeded)
                 if a == b}
    # the only tasks whose kwargs carry no seed survive a --seed change
    assert unchanged == {"design", "ablation-depth"}


def test_scale_change_invalidates_every_task():
    tasks, base = _keys(EXPERIMENTS, SMOKE, seed=1)
    _, rescaled = _keys(EXPERIMENTS, QUICK, seed=1)
    assert all(a != b for a, b in zip(base, rescaled))
    assert len(tasks) == len(base)


def test_kwargs_change_invalidates_single_task():
    task = CampaignTask("design", "design", {"irq_count": 60})
    changed = CampaignTask("design", "design", {"irq_count": 61})
    assert task_fingerprint(task) != task_fingerprint(changed)
    assert task_fingerprint(task) == task_fingerprint(
        CampaignTask("design", "design", {"irq_count": 60})
    )


# ------------------------------------------------- source fingerprints

def _write_package(root, **sources):
    package = root / "fpdemo"
    package.mkdir(exist_ok=True)
    (package / "__init__.py").write_text("")
    for name, body in sources.items():
        (package / f"{name}.py").write_text(textwrap.dedent(body))


@pytest.fixture
def fake_package(tmp_path, monkeypatch):
    _write_package(
        tmp_path,
        a="from fpdemo.b import helper\nimport fpdemo.c\n",
        b="def helper():\n    return 1\n",
        c="VALUE = 1\n",
        unrelated="OTHER = 1\n",
    )
    monkeypatch.syspath_prepend(str(tmp_path))
    clear_source_caches()
    yield tmp_path
    clear_source_caches()


def test_source_fingerprint_follows_transitive_imports(fake_package):
    base = source_fingerprint("fpdemo.a", root_package="fpdemo")
    assert base == source_fingerprint("fpdemo.a", root_package="fpdemo")

    # editing a transitively imported module invalidates...
    _write_package(fake_package, b="def helper():\n    return 2\n")
    clear_source_caches()
    assert source_fingerprint("fpdemo.a", root_package="fpdemo") != base


def test_source_fingerprint_ignores_unrelated_modules(fake_package):
    base = source_fingerprint("fpdemo.a", root_package="fpdemo")
    # ...while editing a module outside the import closure does not
    _write_package(fake_package, unrelated="OTHER = 2\n")
    clear_source_caches()
    assert source_fingerprint("fpdemo.a", root_package="fpdemo") == base


def test_task_fingerprint_covers_task_module_source():
    """Every campaign task's fingerprint embeds a source closure hash."""
    task = CampaignTask("design", "design", {"irq_count": 60})
    fingerprint = source_fingerprint("repro.experiments.design")
    assert fingerprint            # non-empty closure over repro.*
    # the engine is in the closure of every simulation experiment
    clear_source_caches()
    assert source_fingerprint("repro.experiments.design") == fingerprint
    assert task_fingerprint(task) == task_fingerprint(task)


# ---------------------------------------------------------- the cache

def test_result_cache_round_trip(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    task = CampaignTask("design", "design", {"irq_count": 60})
    key = task_fingerprint(task)

    assert cache.load(key) is None
    cache.store(key, task, {"payload": [1, 2, 3]}, elapsed_seconds=1.5)
    entry = cache.load(key)
    assert entry is not None
    assert entry.result == {"payload": [1, 2, 3]}
    assert entry.kind == "design"
    assert entry.elapsed_seconds == 1.5
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1
    assert cache.stats.stores == 1
    assert cache.stats.saved_seconds == 1.5
    assert cache.stats.bytes_written > 0
    # no stray temp files after atomic writes
    assert not list((tmp_path / "cache").rglob("*.tmp"))


def test_result_cache_corrupt_entry_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path)
    task = CampaignTask("design", "design", {"irq_count": 60})
    key = task_fingerprint(task)
    cache.store(key, task, "result", elapsed_seconds=0.1)

    path = cache._path(key)
    path.write_bytes(b"\x80corrupt")
    assert cache.load(key) is None

    # wrong format version also misses
    path.write_bytes(pickle.dumps({"format": CACHE_FORMAT + 1, "key": key,
                                   "result": "stale"}))
    assert cache.load(key) is None


def test_default_cache_dir_env_override(monkeypatch):
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    assert str(default_cache_dir()) == ".repro-cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", "/tmp/elsewhere")
    assert str(default_cache_dir()) == "/tmp/elsewhere"


# --------------------------------------------------------- campaigns

def test_campaign_cold_warm_and_uncached_results_identical(tmp_path):
    cache_dir = tmp_path / "cache"
    cold_cache = ResultCache(cache_dir)
    cold = run_campaign(("validation",), SMOKE, seed=1, jobs=1,
                        cache=cold_cache)
    assert cold_cache.stats.misses == 2 and cold_cache.stats.hits == 0

    warm_cache = ResultCache(cache_dir)
    warm = run_campaign(("validation",), SMOKE, seed=1, jobs=1,
                        cache=warm_cache)
    assert warm_cache.stats.hits == 2 and warm_cache.stats.misses == 0

    plain = run_campaign(("validation",), SMOKE, seed=1, jobs=1)
    for result in (cold, warm):
        assert (result["validation"].interposed_result.latencies_us
                == plain["validation"].interposed_result.latencies_us)
        assert (result["validation"].classic_measured_max_us
                == plain["validation"].classic_measured_max_us)


def test_campaign_partial_warm_runs_only_misses(tmp_path):
    cache_dir = tmp_path / "cache"
    run_campaign(("design",), SMOKE, seed=1, jobs=1,
                 cache=ResultCache(cache_dir))
    both = ResultCache(cache_dir)
    run_campaign(("design", "ablation"), SMOKE, seed=1, jobs=1, cache=both)
    assert both.stats.hits == 1             # design replayed
    assert both.stats.misses == 3           # ablation computed


def test_cli_no_cache_and_cached_stdout_identical(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    assert main(["validation", "--smoke", "--jobs", "1",
                 "--no-cache"]) == 0
    uncached = capsys.readouterr().out
    assert main(["validation", "--smoke", "--jobs", "1",
                 "--cache-dir", cache_dir]) == 0
    cold = capsys.readouterr().out
    assert main(["validation", "--smoke", "--jobs", "1",
                 "--cache-dir", cache_dir]) == 0
    warm = capsys.readouterr().out
    assert uncached == cold == warm


def test_cli_cache_stats_reports_hits(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    argv = ["design", "--smoke", "--jobs", "1",
            "--cache-dir", cache_dir, "--cache-stats"]
    assert main(argv) == 0
    cold_err = capsys.readouterr().err
    assert "[cache] hits=0 misses=1" in cold_err
    assert main(argv) == 0
    warm_err = capsys.readouterr().err
    assert "[cache] hits=1 misses=0" in warm_err


# --------------------------------------------------------- bench json

def test_write_bench_json_records_cache_stats(tmp_path):
    target = tmp_path / "BENCH.json"
    cache = ResultCache(tmp_path / "cache")
    task = CampaignTask("design", "design", {"irq_count": 60})
    key = task_fingerprint(task)
    cache.load(key)
    cache.store(key, task, "result", elapsed_seconds=2.0)
    cache.load(key)

    write_bench_json(target, scale_name="smoke", jobs=1,
                     experiment_seconds={"design": 0.1},
                     cache=cache.stats)
    record = json.loads(target.read_text())["runs"][0]
    assert record["cache"]["hits"] == 1
    assert record["cache"]["misses"] == 1
    assert record["cache"]["saved_seconds"] == 2.0
    assert record["cache"]["bytes_written"] > 0


def test_write_bench_json_concurrent_appends_keep_every_record(tmp_path):
    target = tmp_path / "BENCH.json"

    def append(index):
        write_bench_json(target, scale_name=f"s{index}", jobs=1,
                         experiment_seconds={"design": 0.1})

    threads = [threading.Thread(target=append, args=(i,)) for i in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    history = json.loads(target.read_text())
    assert len(history["runs"]) == 8
    assert {run["scale"] for run in history["runs"]} == \
        {f"s{i}" for i in range(8)}
    assert not list(tmp_path.glob("*.tmp"))
