"""Property tests: memoized event models are observably identical.

:class:`repro.analysis.memo.MemoizedEventModel` must be a pure
transparent cache: for any model and any interleaving of η⁺/δ⁻
queries (repeats included, so the cached path is actually exercised)
the wrapper returns exactly what the raw model returns, preserves the
η⁺/δ⁻ duality and monotonicity, raises on the same invalid inputs,
and never re-evaluates a cached point.  The busy-window solver's
``memoize`` flag must likewise never change a response-time result.
"""

from itertools import accumulate

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.busy_window import NotSchedulableError, response_time
from repro.analysis.event_models import (
    DeltaTableEventModel,
    PeriodicEventModel,
    TraceEventModel,
    check_duality,
)
from repro.analysis.memo import MemoizedEventModel, memoize_model


@st.composite
def periodic_models(draw):
    period = draw(st.integers(1, 500))
    jitter = draw(st.integers(0, 1_000))
    dmin = draw(st.integers(1, period))
    return PeriodicEventModel(period, jitter, dmin)


@st.composite
def delta_table_models(draw):
    # first entry >= 1 keeps η⁺ bounded
    table = draw(st.lists(st.integers(1, 300), min_size=1, max_size=6))
    return DeltaTableEventModel(table)


@st.composite
def trace_models(draw):
    gaps = draw(st.lists(st.integers(1, 200), min_size=1, max_size=40))
    return TraceEventModel([0] + list(accumulate(gaps)))


event_models = st.one_of(periodic_models(), delta_table_models(),
                         trace_models())


@given(model=event_models,
       dts=st.lists(st.integers(0, 5_000), min_size=1, max_size=30),
       qs=st.lists(st.integers(0, 40), min_size=1, max_size=30))
@settings(max_examples=150, deadline=None)
def test_memoized_model_is_observably_identical(model, dts, qs):
    memoized = memoize_model(model)
    max_q = model.count if isinstance(model, TraceEventModel) else None
    # interleave and repeat every query so both cold and cached paths run
    for dt in dts + dts:
        assert memoized.eta_plus(dt) == model.eta_plus(dt)
    for q in qs + qs:
        if max_q is not None and q > max_q:
            with pytest.raises(ValueError):
                memoized.delta_minus(q)
            continue
        assert memoized.delta_minus(q) == model.delta_minus(q)


@given(model=event_models)
@settings(max_examples=100, deadline=None)
def test_memoized_model_duality_and_monotonicity(model):
    memoized = memoize_model(model)
    max_q = model.count if isinstance(model, TraceEventModel) else 30
    deltas = [memoized.delta_minus(q) for q in range(1, max_q + 1)]
    assert deltas == sorted(deltas)                 # δ⁻ non-decreasing
    etas = [memoized.eta_plus(dt) for dt in range(0, 600, 7)]
    assert etas == sorted(etas)                     # η⁺ non-decreasing
    assert check_duality(memoized, max_q=max_q)


class _CountingModel:
    """Minimal event model that counts raw evaluations."""

    def __init__(self):
        self.eta_calls = 0
        self.delta_calls = 0

    def eta_plus(self, dt):
        if dt < 0:
            raise ValueError("negative window")
        self.eta_calls += 1
        return dt // 10

    def delta_minus(self, q):
        if q < 0:
            raise ValueError("negative count")
        self.delta_calls += 1
        return 0 if q <= 1 else (q - 1) * 10


def test_memoized_model_evaluates_each_point_once():
    raw = _CountingModel()
    memoized = memoize_model(raw)
    for _ in range(5):
        assert memoized.eta_plus(100) == 10
        assert memoized.delta_minus(3) == 20
    assert raw.eta_calls == 1
    assert raw.delta_calls == 1
    assert memoized.cache_info() == {"eta_entries": 1, "delta_entries": 1}


def test_memoized_model_does_not_cache_errors():
    raw = _CountingModel()
    memoized = memoize_model(raw)
    for _ in range(2):
        with pytest.raises(ValueError):
            memoized.eta_plus(-1)
        with pytest.raises(ValueError):
            memoized.delta_minus(-1)
    assert raw.eta_calls == 0               # raised before counting


def test_memoize_model_is_idempotent():
    wrapped = memoize_model(PeriodicEventModel(10))
    assert memoize_model(wrapped) is wrapped
    assert isinstance(wrapped, MemoizedEventModel)


@given(model=periodic_models(),
       own_cost=st.integers(1, 50),
       top_cost=st.integers(0, 10))
@settings(max_examples=100, deadline=None)
def test_response_time_memoize_flag_is_observably_identical(
        model, own_cost, top_cost):
    """Eqs. 3–5 give the same result with and without memoization."""

    def interference(window):
        return model.eta_plus(window) * top_cost

    outcomes = []
    for memoize in (False, True):
        try:
            result = response_time(own_cost, model, interference,
                                   q_limit=500, memoize=memoize)
            outcomes.append(("ok", result.response_time, result.q_max,
                             result.busy_times, result.critical_q))
        except NotSchedulableError:
            outcomes.append(("not-schedulable",))
    assert outcomes[0] == outcomes[1]


@given(times=st.lists(st.integers(0, 10_000), min_size=2, max_size=60,
                      unique=True))
@settings(max_examples=100, deadline=None)
def test_trace_delta_prefix_table_matches_point_queries(times):
    """The reusable δ⁻ prefix table equals fresh per-q scans."""
    cached = TraceEventModel(times)
    table = cached.delta_prefix_table(cached.count)
    assert len(table) == cached.count - 1
    for q in range(2, cached.count + 1):
        fresh = TraceEventModel(times)     # no prefix table filled yet
        assert table[q - 2] == fresh.delta_minus(q) == cached.delta_minus(q)
    assert cached.delta_prefix_table(1) == ()
