"""Tests for the Chrome trace-event (Perfetto) exporter and CLI wiring.

Round-trips a deterministic traced run through the exporter and pins
the format invariants: the file loads as JSON, every non-metadata
event sits on a named track, timestamps are monotone within each
track, CPU lanes use the same names as
:func:`repro.metrics.timeline.lane_of`, and per-kind instant counts
equal the recorder's ``of_kind`` counts (one instant per TraceEvent,
nothing dropped, nothing invented).
"""

from __future__ import annotations

import json
from collections import Counter as TallyCounter

import pytest

from repro.metrics.timeline import lane_of
from repro.sim.trace import TraceKind, TraceRecorder
from repro.telemetry import (
    chrome_trace_events,
    load_chrome_trace,
    load_metrics_json,
    run_traced_fig6,
    write_chrome_trace,
)
from repro.telemetry.perfetto import (
    KIND_FAMILIES,
    PID_CAMPAIGN,
    PID_CPU,
    PID_TRACE,
    write_chrome_trace as write_trace,
)


@pytest.fixture(scope="module")
def replay():
    """One deterministic traced fig6b run shared by the module."""
    return run_traced_fig6(irqs=100, seed=7)


@pytest.fixture()
def trace_doc(replay, tmp_path):
    path = tmp_path / "trace.json"
    write_chrome_trace(path, replay.trace, clock=replay.clock,
                       cpu_segments=replay.cpu_segments)
    with open(path) as handle:
        return json.load(handle)


def _thread_names(events, pid):
    return {
        event["tid"]: event["args"]["name"]
        for event in events
        if event["ph"] == "M" and event["pid"] == pid
        and event["name"] == "thread_name"
    }


def test_trace_file_loads_and_validates(replay, tmp_path):
    path = tmp_path / "trace.json"
    count = write_chrome_trace(path, replay.trace, clock=replay.clock,
                               cpu_segments=replay.cpu_segments)
    document = load_chrome_trace(path)   # raises on any violation
    assert len(document["traceEvents"]) == count
    assert document["otherData"]["format"] == "repro-chrome-trace-v1"


def test_process_and_thread_tracks_are_named(trace_doc):
    events = trace_doc["traceEvents"]
    process_names = {
        event["pid"]: event["args"]["name"]
        for event in events
        if event["ph"] == "M" and event["name"] == "process_name"
    }
    assert process_names[PID_CPU] == "Simulation CPU"
    assert process_names[PID_TRACE] == "Hypervisor trace"
    # every non-metadata event's (pid, tid) resolves to a named thread
    named = {
        (event["pid"], event["tid"])
        for event in events
        if event["ph"] == "M" and event["name"] == "thread_name"
    }
    for event in events:
        if event["ph"] != "M":
            assert (event["pid"], event["tid"]) in named


def test_timestamps_monotone_per_track(trace_doc):
    last = {}
    for event in trace_doc["traceEvents"]:
        if event["ph"] == "M":
            continue
        track = (event["pid"], event["tid"])
        assert event["ts"] >= last.get(track, float("-inf"))
        last[track] = event["ts"]


def test_cpu_lane_names_match_lane_of(replay, trace_doc):
    events = trace_doc["traceEvents"]
    lane_names = set(_thread_names(events, PID_CPU).values())
    expected = {lane_of(segment.category)
                for segment in replay.cpu_segments}
    assert lane_names == expected
    # and every segment became exactly one complete event
    complete = [event for event in events
                if event["ph"] == "X" and event["pid"] == PID_CPU]
    assert len(complete) == len(replay.cpu_segments)


def test_instant_counts_match_of_kind(replay, trace_doc):
    instants = TallyCounter(
        event["name"] for event in trace_doc["traceEvents"]
        if event["ph"] == "i" and event["pid"] == PID_TRACE
    )
    recorder = replay.trace
    assert sum(instants.values()) == len(recorder)
    for kind in TraceKind:
        assert instants.get(kind.value, 0) == len(recorder.of_kind(kind)), \
            f"instant count diverges for {kind}"


def test_every_kind_has_a_family():
    assert set(KIND_FAMILIES) == set(TraceKind)


def test_instants_carry_event_data(replay, trace_doc):
    first_raise = next(
        event for event in trace_doc["traceEvents"]
        if event["ph"] == "i" and event["name"] == "irq_raised"
    )
    assert first_raise["args"]["line"] == 5
    assert first_raise["s"] == "t"


def test_campaign_spans(tmp_path):
    from repro.experiments.runner import CampaignTelemetry, TaskTelemetry

    telemetry = CampaignTelemetry(jobs=2, wall_seconds=1.0, tasks=[
        TaskTelemetry("fig6a", "fig6-load", 0, False, 0.5, 0.01, 0.01, 11),
        TaskTelemetry("fig6a", "fig6-load", 1, False, 0.2, 0.02, 0.02, 12),
    ])
    events = chrome_trace_events(campaign=telemetry)
    spans = [event for event in events
             if event["ph"] == "X" and event["pid"] == PID_CAMPAIGN]
    assert len(spans) == 2
    assert spans[0]["name"] == "fig6a/fig6-load[0]"
    assert spans[0]["dur"] == pytest.approx(0.5e6)
    workers = _thread_names(events, PID_CAMPAIGN)
    assert set(workers.values()) == {"worker 11", "worker 12"}


def test_write_is_atomic_and_creates_directories(replay, tmp_path):
    nested = tmp_path / "deep" / "dir" / "trace.json"
    write_trace(nested, replay.trace, clock=replay.clock)
    assert nested.exists()
    assert not list(nested.parent.glob("*.tmp"))


def test_validator_rejects_time_travel(tmp_path):
    recorder = TraceRecorder()
    recorder.emit(100, TraceKind.CUSTOM, note="first")
    path = tmp_path / "bad.json"
    write_trace(path, recorder)
    document = json.loads(path.read_text())
    document["traceEvents"].append({
        "ph": "i", "s": "t", "pid": PID_TRACE, "tid": 1,
        "ts": -5.0, "name": "custom", "args": {},
    })
    path.write_text(json.dumps(document))
    with pytest.raises(ValueError, match="back in time"):
        load_chrome_trace(path)


# ------------------------------------------------------------------ CLI

def test_cli_acceptance_command(tmp_path, capsys, monkeypatch):
    """``fig6 --quick --trace-out --metrics-json`` (at smoke scale for
    test speed): both files valid, counters reconcile with the traced
    replay's recorder."""
    from repro.experiments.__main__ import main

    monkeypatch.chdir(tmp_path)
    trace_path = tmp_path / "t.json"
    metrics_path = tmp_path / "m.json"
    assert main(["fig6", "--smoke", "--no-cache", "--jobs", "2",
                 "--trace-out", str(trace_path),
                 "--metrics-json", str(metrics_path)]) == 0
    out = capsys.readouterr().out
    for name in ("fig6a", "fig6b", "fig6c"):
        assert f"=== {name} " in out

    document = load_chrome_trace(trace_path)
    assert document["otherData"]["scenario"] == "fig6b"

    payload = load_metrics_json(metrics_path)
    metrics = payload["metrics"]

    def value(name, **labels):
        for series in metrics[name]["values"]:
            if series["labels"] == labels:
                return series["value"]
        raise AssertionError(f"no series {labels} in {name}")

    # reconcile the snapshot against an independent identical replay
    from repro.experiments.scale import SMOKE

    replay = run_traced_fig6(irqs=SMOKE.fig6_irqs_per_load, seed=1)
    recorder = replay.trace
    for metric_name, kind in (
        ("hv_irqs_raised_total", TraceKind.IRQ_RAISED),
        ("hv_top_handler_runs_total", TraceKind.TOP_HANDLER_START),
        ("hv_bottom_handler_runs_total", TraceKind.BOTTOM_HANDLER_START),
        ("hv_monitor_accepts_total", TraceKind.MONITOR_ACCEPT),
        ("hv_monitor_denies_total", TraceKind.MONITOR_DENY),
    ):
        assert value(metric_name, run="fig6b") == len(
            recorder.of_kind(kind))
    # campaign telemetry rode along: 9 fig6 tasks computed
    computed = sum(
        series["value"]
        for series in metrics["campaign_tasks_total"]["values"]
        if series["labels"]["outcome"] == "computed"
    )
    assert computed == 9


def test_cli_progress_flag(tmp_path, capsys, monkeypatch):
    from repro.experiments.__main__ import main

    monkeypatch.chdir(tmp_path)
    assert main(["fig6a", "--smoke", "--no-cache", "--jobs", "1",
                 "--progress"]) == 0
    err = capsys.readouterr().err
    assert "[fig6a] task 1/3 done (fig6-load)" in err
    assert "[fig6a] task 3/3 done (fig6-load)" in err
