"""Tests for the TDMA scheduler (static table + nominal grid)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hypervisor.config import SlotConfig
from repro.hypervisor.scheduler import TdmaScheduler


def paper_table():
    return [SlotConfig("P1", 6_000), SlotConfig("P2", 6_000),
            SlotConfig("HK", 2_000)]


class TestStaticQueries:
    def test_cycle_length(self):
        assert TdmaScheduler(paper_table()).cycle_length == 14_000

    def test_slot_length(self):
        scheduler = TdmaScheduler(paper_table())
        assert scheduler.slot_length("P1") == 6_000
        assert scheduler.slot_length("HK") == 2_000

    def test_slot_length_multiple_slots(self):
        scheduler = TdmaScheduler([SlotConfig("A", 100), SlotConfig("B", 50),
                                   SlotConfig("A", 30)])
        assert scheduler.slot_length("A") == 130

    def test_slot_length_unknown(self):
        with pytest.raises(KeyError):
            TdmaScheduler(paper_table()).slot_length("X")

    def test_partitions(self):
        assert TdmaScheduler(paper_table()).partitions() == ["P1", "P2", "HK"]

    def test_owner_at(self):
        scheduler = TdmaScheduler(paper_table())
        assert scheduler.owner_at(0) == "P1"
        assert scheduler.owner_at(5_999) == "P1"
        assert scheduler.owner_at(6_000) == "P2"
        assert scheduler.owner_at(12_000) == "HK"
        assert scheduler.owner_at(14_000) == "P1"    # wraps
        assert scheduler.owner_at(20_000) == "P2"

    def test_next_nominal_boundary_after(self):
        scheduler = TdmaScheduler(paper_table())
        assert scheduler.next_nominal_boundary_after(0) == 6_000
        assert scheduler.next_nominal_boundary_after(5_999) == 6_000
        assert scheduler.next_nominal_boundary_after(6_000) == 12_000
        assert scheduler.next_nominal_boundary_after(13_999) == 14_000
        assert scheduler.next_nominal_boundary_after(14_000) == 20_000

    def test_slot_start_offsets(self):
        assert TdmaScheduler(paper_table()).slot_start_offsets() == [0, 6_000, 12_000]

    def test_empty_table_rejected(self):
        with pytest.raises(ValueError):
            TdmaScheduler([])

    def test_zero_length_slot_rejected(self):
        with pytest.raises(ValueError):
            SlotConfig("P1", 0)


class TestRuntime:
    def test_start_returns_first_boundary(self):
        scheduler = TdmaScheduler(paper_table())
        assert scheduler.start(0) == 6_000
        assert scheduler.current_owner == "P1"

    def test_advance_cycles_through_table(self):
        scheduler = TdmaScheduler(paper_table())
        scheduler.start(0)
        assert scheduler.advance().partition == "P2"
        assert scheduler.next_boundary() == 12_000
        assert scheduler.advance().partition == "HK"
        assert scheduler.advance().partition == "P1"
        assert scheduler.next_boundary() == 20_000

    def test_advance_before_start_rejected(self):
        with pytest.raises(RuntimeError):
            TdmaScheduler(paper_table()).advance()

    def test_nonzero_epoch(self):
        scheduler = TdmaScheduler(paper_table())
        scheduler.start(1_000)
        assert scheduler.next_boundary() == 7_000
        assert scheduler.owner_at(1_000) == "P1"
        assert scheduler.owner_at(7_000) == "P2"
        assert scheduler.next_nominal_boundary_after(7_000) == 13_000

    def test_time_before_epoch_rejected(self):
        scheduler = TdmaScheduler(paper_table())
        scheduler.start(1_000)
        with pytest.raises(ValueError):
            scheduler.owner_at(500)

    def test_late_delivery_skips_slots(self):
        scheduler = TdmaScheduler(paper_table())
        scheduler.start(0)
        # Delivery so late that P2's whole nominal slot already passed.
        slot = scheduler.advance(now=12_500)
        assert slot.partition == "HK"
        assert scheduler.slots_skipped == 1
        assert scheduler.next_boundary() == 14_000

    def test_normal_advance_skips_nothing(self):
        scheduler = TdmaScheduler(paper_table())
        scheduler.start(0)
        scheduler.advance(now=6_010)
        assert scheduler.slots_skipped == 0


@settings(max_examples=100, deadline=None)
@given(
    lengths=st.lists(st.integers(min_value=1, max_value=1_000),
                     min_size=1, max_size=6),
    time=st.integers(min_value=0, max_value=100_000),
)
def test_property_owner_and_boundary_consistent(lengths, time):
    """owner_at is constant within [t, next boundary) and changes at it
    (modulo repeated partitions in adjacent slots)."""
    slots = [SlotConfig(f"P{i}", length) for i, length in enumerate(lengths)]
    scheduler = TdmaScheduler(slots)
    boundary = scheduler.next_nominal_boundary_after(time)
    assert boundary > time
    assert scheduler.owner_at(time) == scheduler.owner_at(boundary - 1)
    # boundary - time never exceeds the longest slot
    assert boundary - time <= max(lengths)
