"""Tests for the columnar run-artifact store and query layer.

Covers the binary format (round trips, corruption/truncation error
paths, atomicity), campaign capture (summary extraction, metadata
derivation, the index), the :class:`~repro.store.RunStore` query API
(filter / aggregate / diff), the ``query`` CLI, and the contracts the
ISSUE pins:

* a store aggregate's percentiles are **bit-identical** to
  :func:`repro.metrics.stats.summarize` over the live in-memory
  ``LatencyColumns`` sample;
* the Perfetto exporter renders byte-identical Chrome traces from a
  live recorder and from a persisted artifact's trace columns.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from types import SimpleNamespace

import pytest

from conftest import build_system, run_system, us
from repro.core.policy import HandlingMode
from repro.hypervisor.hypervisor import LatencyRecord
from repro.metrics.stats import summarize
from repro.sim.trace import TraceEvent, TraceKind
from repro.store import (
    ArtifactError,
    ArtifactWriter,
    CampaignStoreWriter,
    RunArtifact,
    RunStore,
    artifact_from_hypervisor,
    extract_summaries,
    task_metadata,
)
from repro.store.capture import INDEX_NAME


def sample_records():
    return [
        LatencyRecord("irq", 0, 100, 8500, HandlingMode.DIRECT, False),
        LatencyRecord("uart", 1, 9000, 180000, HandlingMode.DELAYED, False),
        LatencyRecord("irq", 2, 200000, 220000, HandlingMode.INTERPOSED,
                      True),
    ]


def sample_latencies():
    return [42.0, 855.0, 100.0]


def sample_trace_events():
    return [
        TraceEvent(100, TraceKind.IRQ_RAISED, {"line": 5, "source": "irq"}),
        TraceEvent(140, TraceKind.TOP_HANDLER_START, {"source": "irq"}),
        TraceEvent(8500, TraceKind.SLOT_SWITCH, {"from": "P1", "to": "P2"}),
    ]


def write_sample(path, metadata=None, trace=False):
    with ArtifactWriter(path, metadata or {"experiment": "x"}) as writer:
        writer.append_summary("scenario", sample_records(),
                              sample_latencies())
        if trace:
            writer.append_trace(sample_trace_events())
    return path


class TestArtifactRoundTrip:
    def test_latency_rows_round_trip(self, tmp_path):
        path = write_sample(tmp_path / "a.rpart",
                            metadata={"experiment": "x", "seed": 3})
        artifact = RunArtifact.read(path)
        assert artifact.metadata == {"experiment": "x", "seed": 3}
        assert artifact.latency_rows == 3
        assert artifact.legs() == ["scenario"]
        assert artifact.sources() == ["irq", "uart"]
        assert artifact.latency_records() == sample_records()
        assert list(artifact.latencies_us()) == sample_latencies()

    def test_row_filters(self, tmp_path):
        artifact = RunArtifact.read(write_sample(tmp_path / "a.rpart"))
        assert list(artifact.latencies_us(source="irq")) == [42.0, 100.0]
        assert list(artifact.latencies_us(mode="delayed")) == [855.0]
        assert list(artifact.latencies_us(source="nope")) == []
        assert artifact.latency_records(leg="scenario") \
            == sample_records()

    def test_trace_round_trip(self, tmp_path):
        path = write_sample(tmp_path / "t.rpart", trace=True)
        artifact = RunArtifact.read(path)
        assert artifact.trace_rows == 3
        events = artifact.trace_events()
        assert [e.time for e in events] == [100, 140, 8500]
        assert [e.kind for e in events] == [
            TraceKind.IRQ_RAISED, TraceKind.TOP_HANDLER_START,
            TraceKind.SLOT_SWITCH]
        assert events[0].data == {"line": 5, "source": "irq"}
        recorder = artifact.trace_recorder()
        assert len(recorder) == 3

    def test_multiple_legs_and_chunks(self, tmp_path):
        path = tmp_path / "m.rpart"
        with ArtifactWriter(path) as writer:
            writer.append_summary("monitored", sample_records(),
                                  sample_latencies())
            writer.append_summary("boosted", sample_records()[:1], [7.5])
        artifact = RunArtifact.read(path)
        assert artifact.legs() == ["monitored", "boosted"]
        assert artifact.latency_rows == 4
        assert list(artifact.latencies_us(leg="boosted")) == [7.5]

    def test_empty_artifact(self, tmp_path):
        path = tmp_path / "e.rpart"
        with ArtifactWriter(path) as writer:
            writer.append_summary("scenario", [], [])
        artifact = RunArtifact.read(path)
        assert artifact.latency_rows == 0
        assert list(artifact.latencies_us()) == []


class TestWriterValidation:
    def test_length_mismatch_raises(self, tmp_path):
        writer = ArtifactWriter(tmp_path / "bad.rpart")
        with pytest.raises(ArtifactError, match="2 records but 1"):
            writer.append_summary("scenario", sample_records()[:2], [1.0])
        writer.abort()

    def test_abort_leaves_no_file(self, tmp_path):
        path = tmp_path / "gone.rpart"
        writer = ArtifactWriter(path)
        writer.append_summary("scenario", sample_records(),
                              sample_latencies())
        writer.abort()
        assert not path.exists()
        assert list(tmp_path.iterdir()) == []

    def test_context_manager_aborts_on_error(self, tmp_path):
        path = tmp_path / "gone.rpart"
        with pytest.raises(RuntimeError):
            with ArtifactWriter(path) as writer:
                writer.append_summary("scenario", sample_records(),
                                      sample_latencies())
                raise RuntimeError("boom")
        assert not path.exists()
        assert list(tmp_path.iterdir()) == []

    def test_no_partial_file_visible_before_close(self, tmp_path):
        path = tmp_path / "atomic.rpart"
        writer = ArtifactWriter(path)
        writer.append_summary("scenario", sample_records(),
                              sample_latencies())
        assert not path.exists()
        writer.close()
        assert path.exists()


class TestReadErrors:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "junk.rpart"
        path.write_bytes(b"NOTASTORE" + b"\0" * 64)
        with pytest.raises(ArtifactError, match="bad magic"):
            RunArtifact.read(path)
        with pytest.raises(ArtifactError, match="bad magic"):
            RunArtifact.read_metadata(path)

    def test_truncated_file(self, tmp_path):
        path = write_sample(tmp_path / "a.rpart")
        blob = path.read_bytes()
        path.write_bytes(blob[:-10])
        with pytest.raises(ArtifactError,
                           match="missing checksum|checksum mismatch"):
            RunArtifact.read(path)

    def test_corrupt_byte_fails_checksum(self, tmp_path):
        path = write_sample(tmp_path / "a.rpart")
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(ArtifactError, match="checksum mismatch"):
            RunArtifact.read(path)

    def test_unsupported_version(self, tmp_path):
        import hashlib
        path = write_sample(tmp_path / "a.rpart")
        blob = bytearray(path.read_bytes())
        blob[8:12] = (99).to_bytes(4, "little")
        # Recompute the trailer so the version check (not the checksum)
        # is what trips.
        body = bytes(blob[:-36])
        path.write_bytes(body + b"SUM0" + hashlib.sha256(body).digest())
        with pytest.raises(ArtifactError, match="unsupported.*version 99"):
            RunArtifact.read(path)


class FakeSummary(SimpleNamespace):
    """Duck-typed ScenarioSummary: records + latencies_us + summary."""


def fake_summary():
    return FakeSummary(records=sample_records(),
                       latencies_us=sample_latencies(), summary=object())


@dataclass
class FakeAblation:
    monitored: FakeSummary
    boosted: FakeSummary


class TestExtractSummaries:
    def test_bare_summary(self):
        summary = fake_summary()
        assert extract_summaries(summary) == [("", summary)]

    def test_dataclass_fields(self):
        result = FakeAblation(monitored=fake_summary(),
                              boosted=fake_summary())
        legs = extract_summaries(result)
        assert [leg for leg, _ in legs] == ["monitored", "boosted"]

    def test_nested_containers(self):
        inner = fake_summary()
        result = {"cases": [FakeAblation(fake_summary(), fake_summary())],
                  "extra": inner}
        legs = extract_summaries(result)
        assert [leg for leg, _ in legs] == [
            "cases.0.monitored", "cases.0.boosted", "extra"]

    def test_no_summaries(self):
        assert extract_summaries({"a": 1, "b": [2, 3]}) == []


def fake_task(experiment="validation", kind="validation-classic", **kwargs):
    return SimpleNamespace(experiment=experiment, kind=kind, kwargs=kwargs)


class TestTaskMetadata:
    def test_scenario_and_seed_from_kwargs(self):
        meta = task_metadata(
            fake_task(kind="fig7-case", scenario="burst", seed=9),
            2, {"scale": "smoke"})
        assert meta["scenario"] == "burst"
        assert meta["task_seed"] == 9
        assert meta["task_index"] == 2
        assert meta["scale"] == "smoke"

    def test_fig6_load_seed_derivation(self):
        config = SimpleNamespace(loads=(0.1, 0.4, 0.8), seed=5)
        meta = task_metadata(
            fake_task(experiment="fig6", kind="fig6-load",
                      config=config, load_index=2, scenario="b"),
            0, {})
        assert meta["load"] == 0.8
        assert meta["task_seed"] == 7      # seed + load_index
        assert meta["scenario"] == "b"

    def test_defaults_scenario_to_experiment(self):
        meta = task_metadata(fake_task(experiment="tab61"), 0, {})
        assert meta["scenario"] == "tab61"


class TestCampaignStoreWriter:
    def test_write_tasks_and_index(self, tmp_path):
        store = CampaignStoreWriter(tmp_path / "store",
                                    {"scale": "smoke", "campaign_seed": 1})
        name = store.write_task(fake_task(), fake_summary(), 0)
        assert name == "task-0000-validation-validation-classic.rpart"
        # A latency-free result is skipped but still indexed.
        assert store.write_task(
            fake_task(kind="design"), {"answer": 42}, 1) is None
        stats = store.finalize()
        assert stats.artifacts_written == 1
        assert stats.rows_written == 3
        assert stats.skipped_tasks == 1
        assert stats.bytes_written > 0
        index = json.loads((tmp_path / "store" / INDEX_NAME).read_text())
        assert index["format"] == "repro-store-index-v1"
        assert index["campaign"]["scale"] == "smoke"
        assert [entry["artifact"] for entry in index["tasks"]] \
            == [name, None]
        assert index["tasks"][0]["rows"] == 3
        assert index["stats"]["artifacts_written"] == 1

    def test_artifact_metadata_carries_campaign_fields(self, tmp_path):
        store = CampaignStoreWriter(
            tmp_path / "store",
            {"scale": "smoke", "queue_backend": "bucket",
             "idle_skip": True})
        name = store.write_task(fake_task(seed=4), fake_summary(), 0)
        meta = RunArtifact.read_metadata(tmp_path / "store" / name)
        assert meta["queue_backend"] == "bucket"
        assert meta["idle_skip"] is True
        assert meta["task_seed"] == 4


def build_store(directory, specs):
    """Write one artifact per (metadata, latencies) spec, plus an index."""
    from pathlib import Path
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    entries = []
    for index, (meta, latencies) in enumerate(specs):
        records = [
            LatencyRecord("irq", seq, seq * 10, seq * 10 + 5,
                          HandlingMode.DIRECT, False)
            for seq in range(len(latencies))
        ]
        name = f"task-{index:04d}.rpart"
        with ArtifactWriter(directory / name, meta) as writer:
            writer.append_summary("scenario", records, latencies)
        entries.append({
            "experiment": meta.get("experiment", "validation"),
            "kind": meta.get("kind", "validation-classic"),
            "task_index": index, "artifact": name,
            "rows": len(latencies), "metadata": meta,
        })
    (directory / INDEX_NAME).write_text(json.dumps({
        "format": "repro-store-index-v1", "campaign": {},
        "tasks": entries, "stats": {},
    }))
    return directory


SPEC_A = [
    ({"experiment": "fig6", "scenario": "a", "load": 0.4,
      "task_seed": 1}, [10.0, 30.0, 20.0]),
    ({"experiment": "fig6", "scenario": "b", "load": 0.4,
      "task_seed": 1}, [100.0, 300.0]),
    ({"experiment": "validation", "scenario": "validation",
      "task_seed": 1}, [5.0, 7.0]),
]

SPEC_B = [
    ({"experiment": "fig6", "scenario": "a", "load": 0.4,
      "task_seed": 2}, [12.0, 36.0, 24.0]),
    ({"experiment": "tab61", "scenario": "tab61",
      "task_seed": 2}, [50.0]),
]


class TestRunStore:
    def test_select_filters(self, tmp_path):
        store = RunStore(build_store(tmp_path / "a", SPEC_A))
        assert len(store.refs) == 3
        assert len(store.select(experiment="fig6")) == 2
        assert len(store.select(scenario="b")) == 1
        assert len(store.select(experiment=["fig6", "validation"])) == 3
        assert len(store.select(load=0.4)) == 2
        assert store.select(seed=99) == []

    def test_aggregate_matches_summarize_bitwise(self, tmp_path):
        store = RunStore(build_store(tmp_path / "a", SPEC_A))
        merged = [10.0, 30.0, 20.0, 100.0, 300.0]
        result = store.aggregate(experiment="fig6",
                                 percentiles=(99.9,))
        live = summarize(merged)
        assert result.count == 5
        assert result.artifacts == 2
        assert result.summary == live
        from repro.metrics.stats import percentile
        assert result.percentiles["p99.9"] \
            == percentile(sorted(merged), 99.9 / 100.0)

    def test_aggregate_empty_selection(self, tmp_path):
        store = RunStore(build_store(tmp_path / "a", SPEC_A))
        result = store.aggregate(experiment="nope")
        assert result.count == 0
        assert result.summary is None

    def test_scan_without_index(self, tmp_path):
        directory = build_store(tmp_path / "a", SPEC_A)
        (directory / INDEX_NAME).unlink()
        store = RunStore(directory)
        assert len(store.refs) == 3
        assert store.aggregate(experiment="fig6").count == 5

    def test_diff_groups_and_orphans(self, tmp_path):
        store_a = RunStore(build_store(tmp_path / "a", SPEC_A))
        store_b = RunStore(build_store(tmp_path / "b", SPEC_B))
        result = store_a.diff(store_b)
        assert len(result.groups) == 1
        delta = result.groups[0]
        assert delta.group == ("fig6", "a", 0.4)
        assert delta.mean_a == pytest.approx(20.0)
        assert delta.mean_b == pytest.approx(24.0)
        assert delta.mean_delta == pytest.approx(4.0)
        assert ("fig6", "b", 0.4) in result.only_in_a
        assert ("validation", "validation", None) in result.only_in_a
        assert ("tab61", "tab61", None) in result.only_in_b

    def test_query_stats_accumulate(self, tmp_path):
        store = RunStore(build_store(tmp_path / "a", SPEC_A))
        store.aggregate(experiment="fig6")
        assert store.stats.artifacts_scanned == 3
        assert store.stats.artifacts_read == 2
        assert store.stats.rows_scanned == 5
        assert store.stats.queries == 1
        assert store.stats.bytes_read > 0

    def test_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            RunStore(tmp_path / "nope")


class TestQueryCli:
    def test_list_json(self, tmp_path, capsys):
        from repro.store.cli import main
        build_store(tmp_path / "a", SPEC_A)
        assert main(["list", str(tmp_path / "a"), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["artifacts"]) == 3
        assert payload["artifacts"][0]["experiment"] == "fig6"

    def test_aggregate_json(self, tmp_path, capsys):
        from repro.store.cli import main
        build_store(tmp_path / "a", SPEC_A)
        assert main(["aggregate", str(tmp_path / "a"),
                     "--experiment", "fig6",
                     "--percentiles", "50,99.9", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 5
        assert payload["summary"]["mean"] == pytest.approx(92.0)
        assert "p99.9" in payload["percentiles"]

    def test_aggregate_no_match_exits_nonzero(self, tmp_path, capsys):
        from repro.store.cli import main
        build_store(tmp_path / "a", SPEC_A)
        assert main(["aggregate", str(tmp_path / "a"),
                     "--experiment", "nope"]) == 1

    def test_diff_json(self, tmp_path, capsys):
        from repro.store.cli import main
        build_store(tmp_path / "a", SPEC_A)
        build_store(tmp_path / "b", SPEC_B)
        assert main(["diff", str(tmp_path / "a"), str(tmp_path / "b"),
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["groups"]) == 1
        assert payload["groups"][0]["mean_delta"] == pytest.approx(4.0)

    def test_experiments_cli_intercepts_query(self, tmp_path, capsys):
        from repro.experiments.__main__ import main
        build_store(tmp_path / "a", SPEC_A)
        assert main(["query", "list", str(tmp_path / "a"), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["artifacts"]) == 3


class TestLiveRoundTrip:
    """Store round trips of a real simulated run (the ISSUE's pin)."""

    def _run(self, n_irqs=40):
        hv, timer = build_system(intervals=[us(180.0)] * n_irqs,
                                 trace=True)
        return run_system(hv, timer, n_irqs)

    def test_hypervisor_round_trip_bit_identical(self, tmp_path):
        hv = self._run()
        path = tmp_path / "live.rpart"
        rows = artifact_from_hypervisor(hv, path, {"experiment": "live"})
        live_records = hv.latency_columns.records()
        live_us = hv.latency_columns.latencies_us_array(hv.clock)
        assert rows == len(live_records)
        artifact = RunArtifact.read(path)
        assert artifact.latency_records() == live_records
        # Element-for-element float equality — not approx.
        assert artifact.latencies_us().tobytes() == live_us.tobytes()
        assert summarize(artifact.latencies_us()) == summarize(live_us)

    def test_trace_events_round_trip_exactly(self, tmp_path):
        hv = self._run()
        path = tmp_path / "live.rpart"
        artifact_from_hypervisor(hv, path)
        artifact = RunArtifact.read(path)
        assert artifact.trace_events() == list(hv.trace.events)

    def test_perfetto_byte_identical_from_store(self, tmp_path):
        from repro.telemetry.perfetto import write_chrome_trace
        hv = self._run()
        path = tmp_path / "live.rpart"
        artifact_from_hypervisor(hv, path)
        artifact = RunArtifact.read(path)
        live_path = tmp_path / "live.json"
        stored_path = tmp_path / "stored.json"
        write_chrome_trace(live_path, hv.trace, clock=hv.clock)
        write_chrome_trace(stored_path, artifact.trace_recorder(),
                           clock=hv.clock)
        assert live_path.read_bytes() == stored_path.read_bytes()

    def test_column_data_round_trip(self):
        from repro.hypervisor.hypervisor import LatencyColumns
        hv = self._run()
        columns = hv.latency_columns
        clone = LatencyColumns.from_column_data(columns.column_data())
        assert clone.records() == columns.records()
        assert clone.latencies_us_array(hv.clock).tobytes() \
            == columns.latencies_us_array(hv.clock).tobytes()


class TestStoreTelemetry:
    def test_collect_store_counters(self):
        from repro.store.capture import StoreWriteStats
        from repro.store.runstore import StoreQueryStats
        from repro.telemetry import MetricsRegistry, collect_store
        registry = MetricsRegistry()
        write_stats = StoreWriteStats(artifacts_written=2, rows_written=40,
                                      trace_rows_written=7,
                                      bytes_written=1234,
                                      write_seconds=0.5, skipped_tasks=1)
        query_stats = StoreQueryStats(artifacts_scanned=3, artifacts_read=2,
                                      rows_scanned=40, bytes_read=999,
                                      queries=4, query_seconds=0.1)
        collect_store(registry, write_stats=write_stats,
                      query_stats=query_stats, run="test")
        snapshot = registry.snapshot()

        def value(name):
            return snapshot[name]["values"][0]["value"]

        assert value("store_artifacts_written_total") == 2
        assert value("store_rows_written_total") == 40
        assert value("store_bytes_written_total") == 1234
        assert value("store_tasks_skipped_total") == 1
        assert value("store_artifacts_read_total") == 2
        assert value("store_queries_total") == 4


class TestStoreABResult:
    def test_overhead_and_write_ratio(self):
        from repro.store.benchmark import StoreABResult
        from repro.store.capture import StoreWriteStats
        result = StoreABResult(
            plain_seconds=2.0, store_seconds=2.1,
            write_stats=StoreWriteStats(write_seconds=0.04), repeats=3)
        assert result.overhead == pytest.approx(0.05)
        assert result.write_ratio == pytest.approx(0.02)

    def test_zero_plain_leg_is_safe(self):
        from repro.store.benchmark import StoreABResult
        from repro.store.capture import StoreWriteStats
        result = StoreABResult(plain_seconds=0.0, store_seconds=1.0,
                               write_stats=StoreWriteStats(), repeats=1)
        assert result.overhead == 0.0
        assert result.write_ratio == 0.0


class TestParquetSoftDependency:
    def test_missing_pyarrow_raises_runtime_error(self, tmp_path):
        try:
            import pyarrow  # noqa: F401
            pytest.skip("pyarrow installed; soft-import path not testable")
        except ImportError:
            pass
        artifact = RunArtifact.read(write_sample(tmp_path / "a.rpart"))
        with pytest.raises(RuntimeError, match="pyarrow"):
            artifact.to_parquet(tmp_path / "a.parquet")
