"""The bench-history diff tool: table-driven section checks.

``benchmarks/compare_bench.py`` diffs the last two records of a
``BENCH_experiments.json``.  These tests pin the behaviour of the
``engine_ab`` check added with the array backend — a drop in the array
backend's dispatch-storm rate (or its speedup over bucket) is flagged,
while history written before those fields existed is skipped with a
note instead of misreported — and the ``engine_subtree_ab`` check
added with subtree scheduling (throughput, speedup, and
retained-memory-ratio regressions).
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

_MODULE_PATH = (Path(__file__).resolve().parent.parent
                / "benchmarks" / "compare_bench.py")
_spec = importlib.util.spec_from_file_location("compare_bench", _MODULE_PATH)
compare_bench = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("compare_bench", compare_bench)
_spec.loader.exec_module(compare_bench)


def _engine_ab(array_storm: float, speedup: float) -> dict:
    return {
        "baseline": "legacy",
        "winner": "array",
        "improvement_vs_legacy": 0.25,
        "events_per_second": {"legacy": 650_000.0, "heap": 730_000.0,
                              "bucket": 800_000.0, "array": 815_000.0},
        "storm_events_per_second": {"legacy": 700_000.0,
                                    "heap": 830_000.0,
                                    "bucket": 1_200_000.0,
                                    "array": array_storm},
        "array_dispatch_speedup_vs_bucket": speedup,
    }


def _run(engine_ab: "dict | None") -> dict:
    record = {"scale": "smoke", "jobs": 1,
              "experiment_wall_seconds": {"fig6a": 1.0}}
    if engine_ab is not None:
        record["engine_ab"] = engine_ab
    return record


def _engine_ab_check() -> "compare_bench.CheckSpec":
    return next(check for check in compare_bench.CHECKS
                if check.key == "engine_ab")


def test_array_storm_drop_is_flagged():
    check = _engine_ab_check()
    lines, regressed = check.run(
        _run(_engine_ab(3_300_000.0, 2.75)),
        _run(_engine_ab(1_500_000.0, 1.25)),
        threshold=0.20,
    )
    assert regressed
    assert any("dispatch throughput regression" in line for line in lines)
    assert any("speedup regression" in line for line in lines)


def test_array_storm_steady_passes():
    check = _engine_ab_check()
    lines, regressed = check.run(
        _run(_engine_ab(3_300_000.0, 2.75)),
        _run(_engine_ab(3_250_000.0, 2.70)),
        threshold=0.20,
    )
    assert not regressed
    assert any("array storm" in line for line in lines)


def test_history_predating_storm_fields_skips_with_note():
    check = _engine_ab_check()
    # An engine_ab section from before the storm phase existed.
    old = _engine_ab(0.0, 0.0)
    del old["storm_events_per_second"]
    del old["array_dispatch_speedup_vs_bucket"]
    old["events_per_second"] = {"legacy": 650_000.0, "heap": 730_000.0,
                                "bucket": 800_000.0}
    lines, regressed = check.run(
        _run(old), _run(_engine_ab(3_300_000.0, 2.75)), threshold=0.20)
    assert not regressed
    assert lines == ["  queue-backend A/B: previous run predates the "
                     "array backend's storm fields, skipping."]


def test_history_missing_section_skips_with_note():
    check = _engine_ab_check()
    lines, regressed = check.run(
        _run(None), _run(_engine_ab(3_300_000.0, 2.75)), threshold=0.20)
    assert not regressed
    assert "predates engine_ab" in lines[0]


def _subtree_ab(nodes_per_second: float, speedup: float,
                memory_ratio: float) -> dict:
    return {
        "speedup": speedup,
        "memory_ratio": memory_ratio,
        "branches": 1000,
        "nodes": 1111,
        "leaf_digest": "0" * 16,
        "budget_bytes": 1_048_576,
        "unlimited_peak_bytes": 4_000_000,
        "spilled_fragments": 999,
        "spill_bytes_written": 480_000,
        "nodes_per_second": {"wave": nodes_per_second / speedup,
                             "subtree": nodes_per_second},
        "peak_retained_bytes": {"wave": 27_000_000, "subtree": 2_500_000,
                                "unlimited": 4_000_000},
    }


def _subtree_run(subtree_ab: "dict | None") -> dict:
    record = {"scale": "smoke", "jobs": 1,
              "experiment_wall_seconds": {"fig6a": 1.0}}
    if subtree_ab is not None:
        record["engine_subtree_ab"] = subtree_ab
    return record


def _subtree_ab_check() -> "compare_bench.CheckSpec":
    return next(check for check in compare_bench.CHECKS
                if check.key == "engine_subtree_ab")


def test_subtree_drop_is_flagged():
    check = _subtree_ab_check()
    lines, regressed = check.run(
        _subtree_run(_subtree_ab(140.0, 5.2, 10.8)),
        _subtree_run(_subtree_ab(60.0, 1.4, 2.0)),
        threshold=0.20,
    )
    assert regressed
    assert any("throughput regression" in line for line in lines)
    assert any("speedup regression" in line for line in lines)
    assert any("retained-memory regression" in line for line in lines)


def test_subtree_steady_passes():
    check = _subtree_ab_check()
    lines, regressed = check.run(
        _subtree_run(_subtree_ab(140.0, 5.2, 10.8)),
        _subtree_run(_subtree_ab(135.0, 5.0, 10.1)),
        threshold=0.20,
    )
    assert not regressed
    assert any("subtree schedule" in line for line in lines)
    assert any("subtree memory ratio" in line for line in lines)


def test_history_predating_subtree_ab_skips_with_note():
    check = _subtree_ab_check()
    lines, regressed = check.run(
        _subtree_run(None), _subtree_run(_subtree_ab(140.0, 5.2, 10.8)),
        threshold=0.20)
    assert not regressed
    assert "predates engine_subtree_ab" in lines[0]


def test_full_diff_reports_array_fields(tmp_path, capsys):
    history = {"runs": [
        dict(_run(_engine_ab(3_300_000.0, 2.75)),
             total_wall_seconds=1.0, timestamp="2026-08-08T00:00:00Z"),
        dict(_run(_engine_ab(3_400_000.0, 2.80)),
             total_wall_seconds=1.0, timestamp="2026-08-08T01:00:00Z"),
    ]}
    path = tmp_path / "BENCH_experiments.json"
    path.write_text(json.dumps(history))
    assert compare_bench.main(["--file", str(path)]) == 0
    out = capsys.readouterr().out
    assert "array storm" in out
    assert "array dispatch speedup" in out
    assert "no regressions beyond threshold." in out
