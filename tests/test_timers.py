"""Tests for timer devices."""

import pytest

from repro.sim.engine import SimulationEngine
from repro.sim.intc import InterruptController
from repro.sim.timers import IntervalSequenceTimer, OneShotTimer, TimestampTimer


def make_stack():
    engine = SimulationEngine()
    intc = InterruptController(engine)
    delivered = []

    def dispatcher(line):
        intc.mask_all()
        intc.acknowledge(line)
        delivered.append((engine.now, line))
        intc.unmask_all()

    intc.set_dispatcher(dispatcher)
    return engine, intc, delivered


class TestOneShotTimer:
    def test_fires_after_delay(self):
        engine, intc, delivered = make_stack()
        timer = OneShotTimer(engine, intc, line=3)
        timer.program(100)
        engine.run()
        assert delivered == [(100, 3)]
        assert timer.expirations == 1

    def test_reprogram_replaces_deadline(self):
        engine, intc, delivered = make_stack()
        timer = OneShotTimer(engine, intc, line=3)
        timer.program(100)
        timer.program(50)
        engine.run()
        assert delivered == [(50, 3)]

    def test_cancel(self):
        engine, intc, delivered = make_stack()
        timer = OneShotTimer(engine, intc, line=3)
        timer.program(100)
        timer.cancel()
        engine.run()
        assert delivered == []
        assert not timer.armed

    def test_armed_property(self):
        engine, intc, _ = make_stack()
        timer = OneShotTimer(engine, intc, line=3)
        assert not timer.armed
        timer.program(10)
        assert timer.armed
        engine.run()
        assert not timer.armed

    def test_negative_delay_rejected(self):
        engine, intc, _ = make_stack()
        timer = OneShotTimer(engine, intc, line=3)
        with pytest.raises(ValueError):
            timer.program(-5)

    def test_zero_delay_fires_immediately(self):
        engine, intc, delivered = make_stack()
        timer = OneShotTimer(engine, intc, line=3)
        timer.program(0)
        engine.run()
        assert delivered == [(0, 3)]


class TestIntervalSequenceTimer:
    def test_consumes_sequence(self):
        engine, intc, delivered = make_stack()
        timer = IntervalSequenceTimer(engine, intc, line=2,
                                      intervals=[10, 20, 30])
        assert timer.remaining == 3
        assert timer.arm_next()
        engine.run()
        assert delivered == [(10, 2)]
        assert timer.arm_next()
        engine.run()
        assert delivered == [(10, 2), (30, 2)]

    def test_rearm_from_dispatcher(self):
        engine = SimulationEngine()
        intc = InterruptController(engine)
        times = []
        timer = IntervalSequenceTimer(engine, intc, line=2,
                                      intervals=[10, 10, 10])

        def dispatcher(line):
            intc.mask_all()
            intc.acknowledge(line)
            times.append(engine.now)
            timer.arm_next()
            intc.unmask_all()

        intc.set_dispatcher(dispatcher)
        timer.arm_next()
        engine.run()
        assert times == [10, 20, 30]
        assert timer.exhausted

    def test_exhaustion(self):
        engine, intc, _ = make_stack()
        timer = IntervalSequenceTimer(engine, intc, line=2, intervals=[5])
        assert timer.arm_next()
        assert not timer.arm_next()
        assert timer.exhausted

    def test_rejects_negative_intervals(self):
        engine, intc, _ = make_stack()
        with pytest.raises(ValueError):
            IntervalSequenceTimer(engine, intc, line=2, intervals=[10, -1])


class TestTimestampTimer:
    def test_reads_engine_time(self):
        engine = SimulationEngine()
        stamp = TimestampTimer(engine)
        assert stamp.read() == 0
        engine.schedule(123, lambda: None)
        engine.run()
        assert stamp.read() == 123
