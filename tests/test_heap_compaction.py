"""Heap compaction under timer churn (engine lazy-cancellation GC).

Timer reprogramming cancels lazily: dead entries stay in the heap
until a compaction rebuilds it.  These tests pin the two guarantees
the compactor makes: the heap stays bounded under unbounded
program/cancel churn, and the exact accounting (``pending_events``,
``peek_next_time``) is unaffected by when compactions happen.
"""

from repro.sim.engine import COMPACTION_FLOOR, SimulationEngine
from repro.sim.intc import InterruptController
from repro.sim.timers import OneShotTimer


def test_reprogram_churn_keeps_heap_depth_bounded():
    engine = SimulationEngine()
    intc = InterruptController(engine)
    timer = OneShotTimer(engine, intc, line=0)
    for i in range(10_000):
        timer.program(100 + (i % 7))
    # Exactly one live deadline; the 9_999 dead entries were compacted
    # away whenever they outnumbered both the floor and the live count.
    assert engine.pending_events == 1
    assert engine.heap_depth <= 2 * (COMPACTION_FLOOR + 1)
    assert engine.compactions > 0
    assert timer.armed


def test_program_cancel_churn_with_no_live_events():
    engine = SimulationEngine()
    intc = InterruptController(engine)
    timer = OneShotTimer(engine, intc, line=0)
    for _ in range(5_000):
        timer.program(10)
        timer.cancel()
    assert engine.pending_events == 0
    assert engine.peek_next_time() is None
    assert engine.heap_depth <= 2 * (COMPACTION_FLOOR + 1)
    assert engine.compactions > 0


def test_peek_and_pending_exact_across_compaction():
    engine = SimulationEngine()
    fired = []
    handles = [engine.schedule(1_000 + i, lambda i=i: fired.append(i))
               for i in range(200)]
    for handle in handles[:150]:
        handle.cancel()
    assert engine.pending_events == 50
    # The next push sees 150 dead > 50 live > floor and compacts.
    # (peek_next_time is NOT consulted first: it would lazily pop the
    # dead top-of-heap entries itself and sidestep the compactor.)
    engine.schedule(5_000, lambda: fired.append(-1))
    assert engine.compactions >= 1
    assert engine.heap_depth == engine.pending_events == 51
    assert engine.peek_next_time() == 1_150
    executed = engine.run()
    assert executed == 51
    assert fired == list(range(150, 200)) + [-1]
    assert engine.pending_events == 0


def test_compaction_preserves_fifo_order_of_simultaneous_events():
    engine = SimulationEngine()
    order = []
    keep = [engine.schedule(500, lambda i=i: order.append(i))
            for i in range(10)]
    churn = [engine.schedule(400, lambda: order.append(-1))
             for _ in range(80)]
    for handle in churn:
        handle.cancel()
    engine.schedule(600, lambda: order.append(99))   # triggers compaction
    assert engine.compactions >= 1
    engine.run()
    assert order == list(range(10)) + [99]
    assert all(handle.pending is False for handle in keep)
