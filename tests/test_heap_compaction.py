"""Queue compaction under timer churn (engine lazy-cancellation GC).

Timer reprogramming cancels lazily: dead entries stay in backend
storage until a compaction rebuilds it.  These tests pin the two
guarantees the compactor makes — storage stays bounded under unbounded
program/cancel churn, and the exact accounting (``pending_events``,
``peek_next_time``) plus dispatch order are unaffected by when
compactions happen — for every queue backend.

Compaction triggers at *cancel* time (the only operation that creates
a dead entry), when dead entries outnumber both ``COMPACTION_FLOOR``
and the live count.  The heap backend counts dead entries exactly; the
bucket backend uses cancellations-since-last-compaction as an upper
bound, which can only make it compact earlier, never later.
"""

import pytest

from repro.sim.engine import COMPACTION_FLOOR, SimulationEngine
from repro.sim.intc import InterruptController
from repro.sim.queue import QUEUE_BACKENDS
from repro.sim.timers import OneShotTimer

pytestmark = pytest.mark.parametrize("backend", sorted(QUEUE_BACKENDS))


def test_reprogram_churn_keeps_queue_depth_bounded(backend):
    engine = SimulationEngine(backend=backend)
    intc = InterruptController(engine)
    timer = OneShotTimer(engine, intc, line=0)
    for i in range(10_000):
        timer.program(100 + (i % 7))
    # Exactly one live deadline; the 9_999 dead entries were compacted
    # away whenever they outnumbered both the floor and the live count.
    assert engine.pending_events == 1
    assert engine.heap_depth <= 2 * (COMPACTION_FLOOR + 1)
    assert engine.compactions > 0
    assert timer.armed


def test_program_cancel_churn_with_no_live_events(backend):
    engine = SimulationEngine(backend=backend)
    intc = InterruptController(engine)
    timer = OneShotTimer(engine, intc, line=0)
    for _ in range(5_000):
        timer.program(10)
        timer.cancel()
    assert engine.pending_events == 0
    assert engine.peek_next_time() is None
    assert engine.heap_depth <= 2 * (COMPACTION_FLOOR + 1)
    assert engine.compactions > 0


def test_peek_and_pending_exact_across_compaction(backend):
    engine = SimulationEngine(backend=backend)
    fired = []
    handles = [engine.schedule(1_000 + i, lambda i=i: fired.append(i))
               for i in range(200)]
    for handle in handles[:150]:
        handle.cancel()
    # The 101st cancel saw 101 dead > 100 - 1 live > floor and
    # compacted; the 49 dead entries cancelled after it stay lazily.
    assert engine.compactions >= 1
    assert engine.pending_events == 50
    assert engine.heap_depth - engine.pending_events <= COMPACTION_FLOOR
    engine.schedule(5_000, lambda: fired.append(-1))
    assert engine.pending_events == 51
    assert engine.peek_next_time() == 1_150
    executed = engine.run()
    assert executed == 51
    assert fired == list(range(150, 200)) + [-1]
    assert engine.pending_events == 0


def test_compaction_preserves_fifo_order_of_simultaneous_events(backend):
    engine = SimulationEngine(backend=backend)
    order = []
    keep = [engine.schedule(500, lambda i=i: order.append(i))
            for i in range(10)]
    churn = [engine.schedule(400, lambda: order.append(-1))
             for _ in range(80)]
    for handle in churn:
        handle.cancel()      # the 65th cancel (65 dead > 25 live) compacts
    assert engine.compactions >= 1
    engine.schedule(600, lambda: order.append(99))
    engine.run()
    assert order == list(range(10)) + [99]
    assert all(handle.pending is False for handle in keep)
