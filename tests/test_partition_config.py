"""Tests for partitions and hypervisor configuration."""

import pytest

from repro.hypervisor.config import CostModel, HypervisorConfig, SlotConfig
from repro.hypervisor.partition import Partition
from repro.sim.clock import Clock


class TestPartition:
    def test_defaults(self):
        partition = Partition("P1")
        assert partition.busy_background
        assert partition.guest is None
        assert not partition.has_pending_irqs
        assert partition.mailbox == []

    def test_name_required(self):
        with pytest.raises(ValueError):
            Partition("")

    def test_repr(self):
        assert "P1" in repr(Partition("P1"))


class TestCostModel:
    def test_paper_defaults(self):
        costs = CostModel()
        assert costs.monitor_instructions == 128
        assert costs.scheduler_instructions == 877
        assert costs.ctx_invalidate_instructions == 5_000
        assert costs.ctx_writeback_cycles == 5_000

    def test_cpi_scaling(self):
        costs = CostModel(cycles_per_instruction=2.0)
        assert costs.monitor_cycles() == 256
        assert costs.context_switch_cycles() == 15_000

    def test_frozen(self):
        with pytest.raises(Exception):
            CostModel().monitor_instructions = 1


class TestHypervisorConfig:
    def test_defaults(self):
        config = HypervisorConfig()
        assert config.frequency_hz == 200_000_000
        assert config.slot_timer_line == 0
        assert config.defer_slot_switch_for_window

    def test_make_clock(self):
        clock = HypervisorConfig(frequency_hz=100_000_000).make_clock()
        assert isinstance(clock, Clock)
        assert clock.cycles_per_us == 100


class TestSlotConfig:
    def test_valid(self):
        slot = SlotConfig("P1", 1_000)
        assert slot.partition == "P1"

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            SlotConfig("P1", 0)
        with pytest.raises(ValueError):
            SlotConfig("P1", -5)
