"""Tests for interference accounting and sufficient temporal
independence (Eqs. 1, 2 and 14)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.independence import (
    DminInterferenceBound,
    IndependenceClass,
    InterferenceInterval,
    InterferenceKind,
    InterferenceLedger,
    classify_independence,
    verify_sufficient_independence,
)


class TestInterval:
    def test_duration(self):
        interval = InterferenceInterval(10, 30, "P1", "irq", InterferenceKind.INTERPOSED_BH)
        assert interval.duration == 20

    def test_overlap(self):
        interval = InterferenceInterval(10, 30, "P1", "irq", InterferenceKind.INTERPOSED_BH)
        assert interval.overlap(0, 100) == 20
        assert interval.overlap(15, 25) == 10
        assert interval.overlap(0, 10) == 0
        assert interval.overlap(30, 50) == 0

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            InterferenceInterval(30, 10, "P1", "irq", InterferenceKind.OTHER)


class TestLedger:
    def make_ledger(self):
        ledger = InterferenceLedger()
        ledger.record(0, 10, "P1", "irq", InterferenceKind.INTERPOSED_BH)
        ledger.record(100, 130, "P1", "irq", InterferenceKind.INTERPOSED_BH)
        ledger.record(50, 60, "P2", "irq", InterferenceKind.INTERPOSED_BH)
        ledger.record(20, 25, "P1", "irq", InterferenceKind.TOP_HANDLER)
        return ledger

    def test_total_by_victim(self):
        ledger = self.make_ledger()
        assert ledger.total("P1", kinds=(InterferenceKind.INTERPOSED_BH,)) == 40
        assert ledger.total("P2") == 10

    def test_total_windowed(self):
        ledger = self.make_ledger()
        assert ledger.total("P1", 0, 105,
                            kinds=(InterferenceKind.INTERPOSED_BH,)) == 15

    def test_kind_filtering(self):
        ledger = self.make_ledger()
        assert ledger.total("P1", kinds=(InterferenceKind.TOP_HANDLER,)) == 5

    def test_max_window(self):
        ledger = self.make_ledger()
        worst = ledger.max_window_interference(
            "P1", 40, (InterferenceKind.INTERPOSED_BH,)
        )
        assert worst == 30   # the [100,130) burst fits one window

    def test_max_window_spanning(self):
        ledger = self.make_ledger()
        worst = ledger.max_window_interference(
            "P1", 200, (InterferenceKind.INTERPOSED_BH,)
        )
        assert worst == 40

    def test_max_window_empty_victim(self):
        assert InterferenceLedger().max_window_interference("X", 100) == 0

    def test_max_window_invalid_width(self):
        with pytest.raises(ValueError):
            InterferenceLedger().max_window_interference("X", 0)


class TestDminBound:
    def test_eq14_values(self):
        bound = DminInterferenceBound(dmin=1000, c_bh_effective=150)
        assert bound.max_interference(0) == 0
        assert bound.max_interference(1) == 150
        assert bound.max_interference(1000) == 150
        assert bound.max_interference(1001) == 300
        assert bound.max_interference(5000) == 5 * 150

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            DminInterferenceBound(0, 100)
        with pytest.raises(ValueError):
            DminInterferenceBound(100, -1)


class TestClassification:
    def test_isolated(self):
        assert classify_independence(0, 100) is IndependenceClass.ISOLATED

    def test_sufficiently_independent(self):
        assert (classify_independence(50, 100)
                is IndependenceClass.SUFFICIENTLY_INDEPENDENT)

    def test_violated(self):
        assert classify_independence(150, 100) is IndependenceClass.VIOLATED

    def test_boundary(self):
        assert (classify_independence(100, 100)
                is IndependenceClass.SUFFICIENTLY_INDEPENDENT)


class TestVerification:
    def test_holds_for_shaped_stream(self):
        ledger = InterferenceLedger()
        # interposed executions exactly every dmin=1000, 150 each
        for k in range(10):
            ledger.record(k * 1000, k * 1000 + 150, "P1", "irq",
                          InterferenceKind.INTERPOSED_BH)
        bound = DminInterferenceBound(1000, 150)
        report = verify_sufficient_independence(
            ledger, "P1", bound.max_interference, [500, 1000, 3000, 10000]
        )
        assert report.holds
        assert report.worst_ratio() <= 1.0

    def test_detects_violation(self):
        ledger = InterferenceLedger()
        # two full executions only 100 apart: breaks dmin=1000 budget
        ledger.record(0, 150, "P1", "irq", InterferenceKind.INTERPOSED_BH)
        ledger.record(200, 350, "P1", "irq", InterferenceKind.INTERPOSED_BH)
        bound = DminInterferenceBound(1000, 150)
        report = verify_sufficient_independence(
            ledger, "P1", bound.max_interference, [400]
        )
        assert not report.holds
        assert report.worst_ratio() > 1.0


def brute_force_max_window(intervals, width):
    """O(n * candidates) reference implementation."""
    candidates = set()
    for start, end in intervals:
        candidates.add(start)
        candidates.add(max(0, end - width))
    best = 0
    for s in candidates:
        total = sum(max(0, min(end, s + width) - max(start, s))
                    for start, end in intervals)
        best = max(best, total)
    return best


@settings(max_examples=200, deadline=None)
@given(
    raw=st.lists(
        st.tuples(st.integers(min_value=0, max_value=10_000),
                  st.integers(min_value=1, max_value=500)),
        min_size=1, max_size=40,
    ),
    width=st.integers(min_value=1, max_value=5_000),
)
def test_property_max_window_matches_brute_force(raw, width):
    """The prefix-sum sliding-window maximum equals the brute force."""
    intervals = [(start, start + length) for start, length in raw]
    ledger = InterferenceLedger()
    for start, end in intervals:
        ledger.record(start, end, "P", "irq", InterferenceKind.INTERPOSED_BH)
    assert (ledger.max_window_interference("P", width)
            == brute_force_max_window(intervals, width))


@settings(max_examples=100, deadline=None)
@given(
    dmin=st.integers(min_value=10, max_value=2_000),
    cost=st.integers(min_value=1, max_value=500),
    width=st.integers(min_value=1, max_value=50_000),
)
def test_property_eq14_monotone_and_superlinear(dmin, cost, width):
    bound = DminInterferenceBound(dmin, cost)
    assert bound.max_interference(width) >= bound.max_interference(max(0, width - 1))
    # never below the fluid rate
    assert bound.max_interference(width) >= math.floor(width / dmin) * cost
