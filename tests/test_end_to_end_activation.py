"""End-to-end IRQ→task activation tests (the full Fig. 2 chain).

An IRQ's bottom handler releases a sporadic guest task — the
application-level reaction.  These tests measure the *end-to-end*
reaction latency (IRQ arrival to task completion) under delayed vs
interposed handling, and verify the exact Fig. 2 event sequence in the
trace.
"""

import pytest

from conftest import us
from repro.core.monitor import DeltaMinusMonitor
from repro.core.policy import MonitoredInterposing, NeverInterpose
from repro.guestos.kernel import GuestKernel
from repro.guestos.tasks import GuestTask
from repro.hypervisor.config import HypervisorConfig, SlotConfig
from repro.hypervisor.hypervisor import Hypervisor
from repro.hypervisor.irq import IrqSource
from repro.hypervisor.partition import Partition
from repro.sim.timers import IntervalSequenceTimer
from repro.sim.trace import TraceKind


def build_reactive_system(policy, gaps, trace=False):
    slots = [SlotConfig("P1", us(1_000)), SlotConfig("P2", us(1_000))]
    hv = Hypervisor(slots, HypervisorConfig(trace_enabled=trace))
    kernel = GuestKernel("reactor-os")
    kernel.add_task(GuestTask("reaction", priority=1, wcet_cycles=us(30),
                              deadline_cycles=us(2_500)))
    hv.add_partition(Partition("P1"))
    hv.add_partition(Partition("P2", guest=kernel, busy_background=True))
    source = IrqSource(name="sensor", line=5, subscriber="P2",
                       top_handler_cycles=us(2),
                       bottom_handler_cycles=us(40),
                       policy=policy,
                       activates_task="reaction")
    hv.add_irq_source(source)
    timer = IntervalSequenceTimer(hv.engine, hv.intc, 5, gaps)
    source.on_top_handler = lambda event: timer.arm_next()
    hv.start()
    timer.arm_next()
    return hv, kernel


class TestSporadicActivation:
    def test_each_irq_releases_one_job(self):
        hv, kernel = build_reactive_system(NeverInterpose(),
                                           [us(2_100)] * 5)
        hv.run_until(us(20_000))
        assert kernel.stats("reaction").released == 5

    def test_release_happens_at_bh_completion(self):
        hv, kernel = build_reactive_system(NeverInterpose(), [us(100)])
        hv.run_until(us(5_000))
        (record,) = hv.latency_records
        job = [j for j in kernel.all_stats["reaction"].response_times]
        stats = kernel.stats("reaction")
        assert stats.released == 1
        assert stats.completed == 1
        # the job was released exactly when the BH completed; it runs
        # in P2's own slot so its response starts there.

    def test_interposed_bh_releases_task_early(self):
        """With interposing, the BH (and hence the task release)
        happens during P1's slot; the reaction job is then the first
        thing P2 runs at its slot start."""
        policy = MonitoredInterposing(DeltaMinusMonitor.from_dmin(us(500)))
        hv_fast, kernel_fast = build_reactive_system(policy, [us(100)])
        hv_fast.run_until(us(5_000))
        hv_slow, kernel_slow = build_reactive_system(NeverInterpose(),
                                                     [us(100)])
        hv_slow.run_until(us(5_000))
        fast = kernel_fast.stats("reaction")
        slow = kernel_slow.stats("reaction")
        assert fast.completed == slow.completed == 1
        # End-to-end completion time: release(t_bh_done) + wait + wcet.
        # The interposed release at ~150us beats the delayed release at
        # ~1090us, so the interposed reaction finishes earlier.
        fast_done = hv_fast.latency_records[0].completed_at
        slow_done = hv_slow.latency_records[0].completed_at
        assert fast_done < slow_done

    def test_reaction_deadlines_met(self):
        policy = MonitoredInterposing(DeltaMinusMonitor.from_dmin(us(500)))
        hv, kernel = build_reactive_system(policy, [us(700)] * 10)
        hv.run_until(us(60_000))
        assert kernel.stats("reaction").deadline_misses == 0

    def test_activates_task_without_guest_raises(self):
        slots = [SlotConfig("P1", us(1_000))]
        hv = Hypervisor(slots, HypervisorConfig(trace_enabled=False))
        hv.add_partition(Partition("P1"))
        source = IrqSource(name="x", line=5, subscriber="P1",
                           top_handler_cycles=us(1),
                           bottom_handler_cycles=us(10),
                           activates_task="nope")
        hv.add_irq_source(source)
        timer = IntervalSequenceTimer(hv.engine, hv.intc, 5, [us(100)])
        source.on_top_handler = lambda event: timer.arm_next()
        hv.start()
        timer.arm_next()
        with pytest.raises(RuntimeError):
            hv.run_until(us(5_000))

    def test_release_non_sporadic_rejected(self):
        kernel = GuestKernel("g")
        kernel.add_task(GuestTask("periodic", priority=1,
                                  wcet_cycles=us(10),
                                  period_cycles=us(1_000)))
        from repro.sim.engine import SimulationEngine
        kernel.attach(SimulationEngine(), lambda: None)
        with pytest.raises(ValueError):
            kernel.release_task("periodic")


class TestFig2EventSequence:
    def test_direct_irq_trace_sequence(self):
        """The Fig. 2 chain for a direct IRQ: raise -> top handler ->
        bottom handler -> completion, in order."""
        hv, _ = build_reactive_system(NeverInterpose(), [us(1_100)],
                                      trace=True)
        hv.run_until(us(2_500))   # IRQ at 1100us: P2's own slot
        kinds = [
            event.kind for event in hv.trace
            if event.kind in (TraceKind.IRQ_RAISED,
                              TraceKind.TOP_HANDLER_START,
                              TraceKind.TOP_HANDLER_END,
                              TraceKind.BOTTOM_HANDLER_START,
                              TraceKind.BOTTOM_HANDLER_END)
            # exclude the TDMA slot timer's raises on line 0
            and event.data.get("line", 5) == 5
        ]
        assert kinds == [
            TraceKind.IRQ_RAISED,
            TraceKind.TOP_HANDLER_START,
            TraceKind.TOP_HANDLER_END,
            TraceKind.BOTTOM_HANDLER_START,
            TraceKind.BOTTOM_HANDLER_END,
        ]

    def test_interposed_irq_trace_sequence(self):
        """The Fig. 4b/Fig. 5 chain: monitor accept between top handler
        and the interposed window."""
        policy = MonitoredInterposing(DeltaMinusMonitor.from_dmin(us(500)))
        hv, _ = build_reactive_system(policy, [us(100)], trace=True)
        hv.run_until(us(2_500))
        interesting = (TraceKind.TOP_HANDLER_START, TraceKind.MONITOR_ACCEPT,
                       TraceKind.INTERPOSE_START,
                       TraceKind.BOTTOM_HANDLER_START,
                       TraceKind.BOTTOM_HANDLER_END, TraceKind.INTERPOSE_END)
        kinds = [event.kind for event in hv.trace
                 if event.kind in interesting]
        assert kinds == list(interesting)
