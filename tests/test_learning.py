"""Tests for the self-learning δ⁻ algorithms (Appendix A, Alg. 1/2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.learning import (
    UNLEARNED,
    DeltaLearner,
    build_monitor,
    clamp_to_bound,
    scale_table_to_load_fraction,
)


class TestDeltaLearner:
    def test_learns_consecutive_minimum(self):
        learner = DeltaLearner(1)
        for t in (0, 100, 130, 300):
            learner.observe(t)
        assert learner.table() == [30]

    def test_learns_deep_minima(self):
        learner = DeltaLearner(3)
        for t in (0, 100, 150, 400):
            learner.observe(t)
        # consecutive: min(100, 50, 250) = 50
        # two apart:   min(150, 300) = 150
        # three apart: 400
        assert learner.table() == [50, 150, 400]

    def test_unlearned_entries_stay_large(self):
        learner = DeltaLearner(3)
        learner.observe(0)
        learner.observe(10)
        table = learner.table()
        assert table[0] == 10
        assert table[1] == UNLEARNED
        assert table[2] == UNLEARNED
        assert not learner.is_complete()

    def test_is_complete(self):
        learner = DeltaLearner(2)
        for t in (0, 5, 9):
            learner.observe(t)
        assert learner.is_complete()

    def test_observed_count(self):
        learner = DeltaLearner(2)
        for t in range(5):
            learner.observe(t * 10)
        assert learner.observed_count == 5

    def test_monotonicity_required(self):
        learner = DeltaLearner(1)
        learner.observe(100)
        with pytest.raises(ValueError):
            learner.observe(50)

    def test_zero_depth_rejected(self):
        with pytest.raises(ValueError):
            DeltaLearner(0)

    def test_simultaneous_events_learn_zero(self):
        learner = DeltaLearner(1)
        learner.observe(100)
        learner.observe(100)
        assert learner.table() == [0]


class TestClampToBound:
    def test_elementwise_max(self):
        assert clamp_to_bound([10, 50], [30, 40]) == [30, 50]

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            clamp_to_bound([10], [10, 20])

    def test_non_binding_bound(self):
        """Fig. 7 case (a): the bound does not bind the recorded table."""
        assert clamp_to_bound([100, 300], [1, 1]) == [100, 300]


class TestScaleToLoadFraction:
    def test_quarter_load_quadruples_distances(self):
        assert scale_table_to_load_fraction([100, 400], 0.25) == [400, 1600]

    def test_full_load_identity(self):
        assert scale_table_to_load_fraction([100, 400], 1.0) == [100, 400]

    def test_unlearned_stays_unlearned(self):
        assert scale_table_to_load_fraction([UNLEARNED], 0.5) == [UNLEARNED]

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            scale_table_to_load_fraction([100], 0.0)
        with pytest.raises(ValueError):
            scale_table_to_load_fraction([100], 1.5)


class TestBuildMonitor:
    def test_build_from_learned(self):
        monitor = build_monitor([100, 50])   # normalized to [100, 100]
        assert monitor.table == [100, 100]

    def test_build_with_bound(self):
        monitor = build_monitor([100, 300], bound=[200, 250])
        assert monitor.table == [200, 300]

    def test_unlearned_entries_rejected(self):
        with pytest.raises(ValueError):
            build_monitor([100, UNLEARNED])

    def test_unlearned_entry_survives_bound_and_is_rejected(self):
        # Algorithm 2 only raises entries; an UNLEARNED entry stays
        # maximally restrictive and the monitor refuses to run on it.
        with pytest.raises(ValueError):
            build_monitor([100, UNLEARNED], bound=[100, 500])

    def test_depth_vs_learn_count(self):
        from repro.core.policy import SelfLearningInterposing
        with pytest.raises(ValueError):
            SelfLearningInterposing(depth=5, learn_count=5)


@settings(max_examples=150, deadline=None)
@given(gaps=st.lists(st.integers(min_value=0, max_value=1_000),
                     min_size=6, max_size=60))
def test_property_learner_matches_trace_minima(gaps):
    """Algorithm 1 learns exactly the trace's minimum q-event spans."""
    times = []
    t = 0
    for gap in gaps:
        t += gap
        times.append(t)
    depth = 4
    learner = DeltaLearner(depth)
    for value in times:
        learner.observe(value)
    learned = learner.table()
    for k in range(depth):
        span = k + 2   # events spanned
        expected = min(times[i + span - 1] - times[i]
                       for i in range(len(times) - span + 1))
        assert learned[k] == expected


@settings(max_examples=100, deadline=None)
@given(
    learned=st.lists(st.integers(min_value=0, max_value=1_000),
                     min_size=1, max_size=5),
    bound=st.lists(st.integers(min_value=0, max_value=1_000),
                   min_size=1, max_size=5),
)
def test_property_clamp_dominates_both(learned, bound):
    """Algorithm 2's output is never below either input table."""
    size = min(len(learned), len(bound))
    learned, bound = learned[:size], bound[:size]
    clamped = clamp_to_bound(learned, bound)
    assert all(c >= l for c, l in zip(clamped, learned))
    assert all(c >= b for c, b in zip(clamped, bound))
