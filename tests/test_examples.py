"""Smoke tests running every example script end to end.

The examples are part of the public deliverable; these tests keep them
working as the library evolves.  Each example's ``main()`` is invoked
in-process and its stdout checked for the load-bearing conclusions.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart", capsys)
        assert "monitoring disabled" in out
        assert "no violations" in out
        assert "x" in out   # improvement factors printed

    def test_avionics_ima(self, capsys):
        out = run_example("avionics_ima", capsys)
        assert "holds = True" in out
        assert "deadline misses" in out.lower() or "FCTL" in out

    def test_automotive_gateway(self, capsys):
        out = run_example("automotive_gateway", capsys)
        assert "Learning phase" in out
        assert "Run mode" in out
        assert "IPC frames delivered" in out

    def test_analysis_vs_simulation(self, capsys):
        out = run_example("analysis_vs_simulation", capsys)
        assert "holds" in out
        assert "yes" in out

    def test_timeline_figures(self, capsys):
        out = run_example("timeline_figures", capsys)
        assert "Fig. 3" in out and "Fig. 5" in out
        assert "delayed" in out and "interposed" in out

    def test_dmin_design(self, capsys):
        out = run_example("dmin_design", capsys)
        assert "minimum admissible d_min" in out
        assert "simulation confirms analysis" in out
