"""Property tests pinning the store round trip against live columns.

The ISSUE's acceptance bar: latency columns persisted through a run
artifact must come back **value-identical** to the in-memory
:class:`~repro.hypervisor.hypervisor.LatencyColumns` — for any
interarrival schedule, under both queue backends and with idle-skip
on and off (the engine knobs that most reshape event execution).
Identity is checked at the byte level (``array.tobytes()``), not
approximate equality: the stored µs column must be the exact floats
``latencies_us_array`` produced, so downstream percentile queries are
bit-identical to live summaries.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from conftest import build_system, run_system, us
from repro.hypervisor.hypervisor import LatencyColumns
from repro.metrics.stats import summarize
from repro.sim.engine import ENV_IDLE_SKIP
from repro.sim.queue import ENV_QUEUE_BACKEND, QUEUE_BACKENDS
from repro.store import RunArtifact, artifact_from_hypervisor

pytestmark = pytest.mark.parametrize(
    "backend,idle_skip",
    [(backend, idle_skip)
     for backend in sorted(QUEUE_BACKENDS)
     for idle_skip in ("1", "0")],
)

#: Interarrival gaps in µs — wide enough to cross slot boundaries so
#: every handling mode (direct / interposed / delayed) shows up.
_gaps = st.lists(st.floats(min_value=5.0, max_value=2_500.0,
                           allow_nan=False, allow_infinity=False),
                 min_size=1, max_size=12)


def _run_live(monkeypatch, backend, idle_skip, gaps_us, monitored=None):
    monkeypatch.setenv(ENV_QUEUE_BACKEND, backend)
    monkeypatch.setenv(ENV_IDLE_SKIP, idle_skip)
    hv, timer = build_system(intervals=[us(gap) for gap in gaps_us],
                             policy=monitored, trace=True)
    return run_system(hv, timer, len(gaps_us))


@settings(deadline=None, max_examples=15,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(gaps_us=_gaps)
def test_store_roundtrip_value_identical(backend, idle_skip, tmp_path,
                                         monkeypatch, gaps_us):
    """Persisted columns == live columns, byte for byte."""
    hv = _run_live(monkeypatch, backend, idle_skip, gaps_us)
    columns = hv.latency_columns
    live_records = columns.records()
    live_us = columns.latencies_us_array(hv.clock)

    path = tmp_path / f"prop-{backend}-{idle_skip}.rpart"
    rows = artifact_from_hypervisor(hv, path, {"experiment": "prop"})
    artifact = RunArtifact.read(path)

    assert rows == len(live_records)
    assert artifact.latency_records() == live_records
    assert artifact.latencies_us().tobytes() == live_us.tobytes()
    if live_records:
        assert summarize(artifact.latencies_us()) == summarize(live_us)


@settings(deadline=None, max_examples=15,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(gaps_us=_gaps)
def test_column_data_roundtrip(backend, idle_skip, monkeypatch, gaps_us):
    """LatencyColumns.column_data/from_column_data is lossless."""
    hv = _run_live(monkeypatch, backend, idle_skip, gaps_us)
    columns = hv.latency_columns
    clone = LatencyColumns.from_column_data(columns.column_data())
    assert clone.records() == columns.records()
    assert clone.mode_counts() == columns.mode_counts()
    assert clone.latencies_us_array(hv.clock).tobytes() \
        == columns.latencies_us_array(hv.clock).tobytes()
