"""Tests for the guest OS kernel and task model."""

import pytest

from repro.guestos.kernel import GuestKernel
from repro.guestos.tasks import GuestJob, GuestTask
from repro.sim.engine import SimulationEngine


class TestGuestTask:
    def test_periodic_task(self):
        task = GuestTask("sensor", priority=1, wcet_cycles=100,
                         period_cycles=1_000)
        assert not task.is_background
        assert task.relative_deadline() == 1_000

    def test_explicit_deadline(self):
        task = GuestTask("ctl", priority=1, wcet_cycles=100,
                         period_cycles=1_000, deadline_cycles=500)
        assert task.relative_deadline() == 500

    def test_background_task(self):
        task = GuestTask("bg", priority=10)
        assert task.is_background
        assert task.relative_deadline() is None

    def test_validation(self):
        with pytest.raises(ValueError):
            GuestTask("bad", 1, wcet_cycles=0, period_cycles=100)
        with pytest.raises(ValueError):
            GuestTask("bad", 1, wcet_cycles=10, period_cycles=0)
        with pytest.raises(ValueError):
            GuestTask("bad", 1, period_cycles=100)    # periodic needs WCET
        with pytest.raises(ValueError):
            GuestTask("bad", 1, wcet_cycles=10, period_cycles=100,
                      offset_cycles=-1)


class TestGuestJob:
    def test_deadline_and_response(self):
        task = GuestTask("t", 1, wcet_cycles=10, period_cycles=100)
        job = GuestJob(task, seq=0, release_time=50)
        assert job.absolute_deadline == 150
        job.remaining = 0
        job.completed_at = 120
        assert job.response_time == 70
        assert not job.missed_deadline

    def test_missed_deadline(self):
        task = GuestTask("t", 1, wcet_cycles=10, period_cycles=100)
        job = GuestJob(task, seq=0, release_time=0)
        job.remaining = 0
        job.completed_at = 150
        assert job.missed_deadline


class TestGuestKernel:
    def make_kernel(self):
        kernel = GuestKernel("guest")
        kernel.add_task(GuestTask("hi", priority=1, wcet_cycles=10,
                                  period_cycles=100))
        kernel.add_task(GuestTask("lo", priority=5, wcet_cycles=20,
                                  period_cycles=200, offset_cycles=0))
        return kernel

    def test_releases_follow_periods(self):
        engine = SimulationEngine()
        kernel = self.make_kernel()
        kernel.attach(engine, lambda: None)
        engine.run_until(250)
        assert kernel.stats("hi").released == 3   # t=0, 100, 200
        assert kernel.stats("lo").released == 2   # t=0, 200

    def test_pick_highest_priority(self):
        engine = SimulationEngine()
        kernel = self.make_kernel()
        kernel.attach(engine, lambda: None)
        engine.run_until(0)
        job = kernel.pick()
        assert job.task.name == "hi"

    def test_pick_fifo_within_priority(self):
        engine = SimulationEngine()
        kernel = GuestKernel("g")
        kernel.add_task(GuestTask("a", priority=1, wcet_cycles=5,
                                  period_cycles=100))
        kernel.attach(engine, lambda: None)
        engine.run_until(150)   # two jobs of "a" ready
        first = kernel.pick()
        assert first.seq == min(j.seq for j in kernel.ready_jobs)

    def test_background_job_always_ready(self):
        engine = SimulationEngine()
        kernel = GuestKernel("g")
        kernel.add_task(GuestTask("bg", priority=9))
        kernel.attach(engine, lambda: None)
        job = kernel.pick()
        assert job is not None
        assert job.remaining is None

    def test_job_finished_stats(self):
        engine = SimulationEngine()
        kernel = self.make_kernel()
        kernel.attach(engine, lambda: None)
        engine.run_until(0)
        job = kernel.pick()
        job.remaining = 0
        engine.schedule(30, lambda: None)
        engine.run_until(30)
        kernel.job_finished(job, engine.now)
        stats = kernel.stats("hi")
        assert stats.completed == 1
        assert stats.max_response == 30
        assert stats.avg_response == 30
        assert stats.deadline_misses == 0

    def test_job_finished_with_work_remaining_rejected(self):
        engine = SimulationEngine()
        kernel = self.make_kernel()
        kernel.attach(engine, lambda: None)
        engine.run_until(0)
        job = kernel.pick()
        with pytest.raises(ValueError):
            kernel.job_finished(job, 10)

    def test_overrun_detection(self):
        engine = SimulationEngine()
        kernel = GuestKernel("g")
        kernel.add_task(GuestTask("t", priority=1, wcet_cycles=10,
                                  period_cycles=100))
        kernel.attach(engine, lambda: None)
        engine.run_until(250)   # three releases, none completed
        assert kernel.stats("t").overruns == 2

    def test_notify_on_release(self):
        engine = SimulationEngine()
        kernel = self.make_kernel()
        notifications = []
        kernel.attach(engine, lambda: notifications.append(engine.now))
        engine.run_until(100)
        assert notifications   # at least the t=0 releases

    def test_duplicate_task_rejected(self):
        kernel = GuestKernel("g")
        kernel.add_task(GuestTask("t", 1, wcet_cycles=10, period_cycles=100))
        with pytest.raises(ValueError):
            kernel.add_task(GuestTask("t", 2, wcet_cycles=10,
                                      period_cycles=100))

    def test_add_after_attach_rejected(self):
        engine = SimulationEngine()
        kernel = GuestKernel("g")
        kernel.attach(engine, lambda: None)
        with pytest.raises(RuntimeError):
            kernel.add_task(GuestTask("t", 1, wcet_cycles=1,
                                      period_cycles=10))

    def test_double_attach_rejected(self):
        engine = SimulationEngine()
        kernel = GuestKernel("g")
        kernel.attach(engine, lambda: None)
        with pytest.raises(RuntimeError):
            kernel.attach(engine, lambda: None)
