"""Snapshot/fork determinism: forked continuations are byte-identical.

The non-negotiable invariant of :mod:`repro.sim.snapshot` is that a
continuation forked from a captured world produces *exactly* the
results of the straight-line run it branched off — latency records,
trace stream, statistics, CSV exports, everything.  These tests pin
that invariant at every layer it is used:

* the raw capture/restore protocol at arbitrary quiescent points
  (hypothesis drives the fork point and the policy);
* the fig7 shared learning-phase prefix;
* the sweep/ablation shared warm worlds;
* the campaign runner's forked task waves (serial and parallel) and
  the result cache's parent-digest fingerprinting.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.monitor import DeltaMinusMonitor
from repro.core.policy import (
    MonitoredInterposing,
    NeverInterpose,
    SelfLearningInterposing,
)
from repro.experiments.common import (
    IRQ_TIMER_DEVICE,
    PaperSystemConfig,
    build_warm_world,
    run_irq_scenario,
    run_irq_scenario_from,
)
from repro.experiments.fig7 import (
    Fig7Config,
    run_fig7,
    run_fig7_case,
    run_fig7_prefix,
)
from repro.experiments.runner import plan_campaign, run_campaign
from repro.experiments.scale import resolve_scale
from repro.experiments.sweep import (
    run_dmin_sweep_point,
    run_dmin_warmup,
)
from repro.sim.snapshot import (
    SnapshotError,
    capture_world,
    restore_world,
    settle,
)
from repro.workloads.automotive import AutomotiveTraceConfig
from repro.workloads.synthetic import clip_to_dmin, exponential_interarrivals

SMOKE = resolve_scale(quick=False, smoke=True)


def scenario_fingerprint(result) -> dict:
    """Everything observable about one run, as comparable plain data."""
    hv = result.hypervisor
    return {
        "records": list(result.records),
        "latencies_us": list(result.latencies_us),
        "summary": dataclasses.asdict(result.summary),
        "mode_counts": dict(result.mode_counts),
        "context_switches": dict(result.context_switch_counts),
        "stats": dataclasses.asdict(hv.stats),
        "trace": list(hv.trace.events),
        "cpu_by_category": dict(hv.cpu.consumed_by_category),
        "engine": (hv.engine.now, hv.engine.events_executed,
                   hv.engine.events_scheduled, hv.engine.events_cancelled),
    }


def latency_csv_bytes(tmp_path, tag, result) -> bytes:
    from repro.metrics.export import write_series_csv

    path = tmp_path / f"{tag}.csv"
    write_series_csv(path, result.latencies_us, column="latency_us")
    return path.read_bytes()


# --------------------------------------------------------- raw protocol

def _make_policy(kind: str, dmin: int):
    if kind == "monitored":
        return MonitoredInterposing(DeltaMinusMonitor.from_dmin(dmin))
    if kind == "learning":
        return SelfLearningInterposing(depth=3, learn_count=25,
                                       load_fraction=0.25)
    return NeverInterpose()


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(0, 2**20),
       fork_at=st.integers(1, 45),
       kind=st.sampled_from(["monitored", "learning", "never"]))
def test_fork_at_random_quiescent_point_is_byte_identical(seed, fork_at,
                                                          kind):
    """Core property: fork anywhere, finish, compare everything."""
    system = PaperSystemConfig(trace_enabled=True)
    clock = system.clock()
    dmin = clock.us_to_cycles(1_444.0)
    intervals = clip_to_dmin(
        exponential_interarrivals(50, dmin, seed=seed), dmin
    )
    straight = run_irq_scenario(system, _make_policy(kind, dmin), intervals)

    hv, timer = system.build(_make_policy(kind, dmin), intervals)
    hv.start()
    timer.arm_next()
    hv.run_until_irq_count(min(fork_at, len(intervals)))
    snapshot = settle(hv, {timer.name: timer})
    forked = run_irq_scenario_from(snapshot, system)

    assert scenario_fingerprint(forked) == scenario_fingerprint(straight)


def test_restore_is_repeatable_and_continuations_are_independent():
    """One snapshot, two forks: identical results, no shared state."""
    system = PaperSystemConfig(trace_enabled=True)
    clock = system.clock()
    dmin = clock.us_to_cycles(1_444.0)
    intervals = clip_to_dmin(
        exponential_interarrivals(30, dmin, seed=7), dmin
    )
    hv, timer = system.build(
        MonitoredInterposing(DeltaMinusMonitor.from_dmin(dmin)), intervals
    )
    hv.start()
    timer.arm_next()
    hv.run_until_irq_count(10)
    snapshot = settle(hv, {timer.name: timer})
    first = run_irq_scenario_from(snapshot, system)
    second = run_irq_scenario_from(snapshot, system)
    assert scenario_fingerprint(first) == scenario_fingerprint(second)
    assert first.hypervisor is not second.hypervisor


def test_snapshot_digest_is_stable_and_content_sensitive():
    system = PaperSystemConfig()
    clock = system.clock()
    dmin = clock.us_to_cycles(1_444.0)
    intervals = clip_to_dmin(
        exponential_interarrivals(20, dmin, seed=3), dmin
    )
    warm_a = build_warm_world(system, NeverInterpose(), intervals)
    warm_b = build_warm_world(system, NeverInterpose(), intervals)
    assert warm_a.digest() == warm_b.digest()
    other = build_warm_world(system, NeverInterpose(), intervals[:-1])
    assert warm_a.digest() != other.digest()


def test_capture_refuses_unclaimed_pending_events():
    system = PaperSystemConfig()
    clock = system.clock()
    dmin = clock.us_to_cycles(1_444.0)
    intervals = clip_to_dmin(
        exponential_interarrivals(5, dmin, seed=3), dmin
    )
    hv, timer = system.build(NeverInterpose(), intervals)
    hv.start()
    timer.arm_next()
    # The armed timer's heap entry has no owner if the device is not
    # registered for the capture: quiescence demands every pending
    # event is claimed, so this must fail loudly.
    with pytest.raises(SnapshotError):
        capture_world(hv, devices={})


# ------------------------------------------------------------- fig7

def fig7_asdict(results) -> dict:
    return {label: dataclasses.asdict(case)
            for label, case in results.items()}


def test_fig7_shared_prefix_matches_straight_line(tmp_path):
    config = Fig7Config(trace=AutomotiveTraceConfig(
        activation_count=SMOKE.fig7_activations, seed=1,
    ))
    forked = run_fig7(config, shared_prefix=True)
    straight = run_fig7(config, shared_prefix=False)
    assert fig7_asdict(forked) == fig7_asdict(straight)
    # The exported CSV artifacts are byte-identical too.
    from repro.metrics.export import write_series_csv
    for label in forked:
        a = tmp_path / f"fork_{label}.csv"
        b = tmp_path / f"straight_{label}.csv"
        write_series_csv(a, forked[label].series_us, column="avg_latency_us")
        write_series_csv(b, straight[label].series_us,
                         column="avg_latency_us")
        assert a.read_bytes() == b.read_bytes()


def test_fig7_case_rejects_mismatched_prefix():
    config = Fig7Config(trace=AutomotiveTraceConfig(
        activation_count=SMOKE.fig7_activations, seed=1,
    ))
    other = Fig7Config(trace=AutomotiveTraceConfig(
        activation_count=SMOKE.fig7_activations, seed=2,
    ))
    prefix = run_fig7_prefix(config)
    assert prefix.snapshot is not None
    with pytest.raises(ValueError):
        run_fig7_case("a", other, prefix=prefix)


def test_fig7_prefix_digest_distinguishes_fallback():
    config = Fig7Config(trace=AutomotiveTraceConfig(
        activation_count=SMOKE.fig7_activations, seed=1,
    ))
    prefix = run_fig7_prefix(config)
    fallback = dataclasses.replace(prefix, snapshot=None)
    assert prefix.digest() != fallback.digest()


# ------------------------------------------------------------- sweep

def test_dmin_sweep_point_forked_from_warmup_matches_straight():
    warmup = run_dmin_warmup(irq_count=SMOKE.sweep_irqs, seed=19)
    for multiplier in (1.0, 8.0):
        forked = run_dmin_sweep_point(multiplier,
                                      irq_count=SMOKE.sweep_irqs,
                                      seed=19, warmup=warmup)
        straight = run_dmin_sweep_point(multiplier,
                                        irq_count=SMOKE.sweep_irqs,
                                        seed=19, warmup=None)
        assert dataclasses.asdict(forked) == dataclasses.asdict(straight)


def test_dmin_sweep_point_rejects_mismatched_warmup():
    warmup = run_dmin_warmup(irq_count=SMOKE.sweep_irqs, seed=19)
    with pytest.raises(ValueError):
        run_dmin_sweep_point(1.0, irq_count=SMOKE.sweep_irqs, seed=20,
                             warmup=warmup)


# ---------------------------------------------------------- campaigns

def campaign_asdict(merged) -> dict:
    def convert(value):
        if dataclasses.is_dataclass(value) and not isinstance(value, type):
            return dataclasses.asdict(value)
        if isinstance(value, dict):
            return {key: convert(item) for key, item in value.items()}
        if isinstance(value, (list, tuple)):
            return [convert(item) for item in value]
        return value

    return {name: convert(value) for name, value in merged.items()}


def test_campaign_shared_prefix_is_byte_identical_across_modes():
    names = ("fig7", "sweep")
    forked_serial = run_campaign(names, SMOKE, seed=1, jobs=1,
                                 shared_prefix=True)
    straight = run_campaign(names, SMOKE, seed=1, jobs=1,
                            shared_prefix=False)
    forked_parallel = run_campaign(names, SMOKE, seed=1, jobs=2,
                                   shared_prefix=True)
    assert (campaign_asdict(forked_serial)
            == campaign_asdict(straight)
            == campaign_asdict(forked_parallel))


def test_campaign_plan_rebases_needs_across_experiments():
    tasks, _ = plan_campaign(("fig7", "sweep"), SMOKE, seed=1,
                             shared_prefix=True)
    for index, task in enumerate(tasks):
        for need in task.needs:
            assert need < index
            assert tasks[need].experiment == task.experiment


def test_cached_campaign_replays_forked_tasks(tmp_path):
    from repro.experiments.cache import ResultCache

    cache = ResultCache(tmp_path / "cache")
    cold = run_campaign(("fig7",), SMOKE, seed=1, jobs=1, cache=cache,
                        shared_prefix=True)
    cold_stats = (cache.stats.hits, cache.stats.misses)
    warm = run_campaign(("fig7",), SMOKE, seed=1, jobs=1, cache=cache,
                        shared_prefix=True)
    assert campaign_asdict(cold) == campaign_asdict(warm)
    assert cold_stats == (0, 5)          # prefix + four cases computed
    assert cache.stats.hits == 5         # all five replayed warm
    assert cache.stats.misses == 5


def test_forked_task_fingerprint_folds_parent_digest():
    from repro.experiments.cache import task_fingerprint
    from repro.experiments.runner import CampaignTask

    task = CampaignTask("fig7", "fig7-case", {"label": "a"},
                        needs=(0,), feed="prefix")
    plain = task_fingerprint(task)
    with_parent = task_fingerprint(task, parent_digests=("d1",))
    other_parent = task_fingerprint(task, parent_digests=("d2",))
    assert plain != with_parent
    assert with_parent != other_parent


# -------------------------------------------------- warm-world devices

def test_warm_world_restores_timer_device():
    system = PaperSystemConfig()
    clock = system.clock()
    dmin = clock.us_to_cycles(1_444.0)
    intervals = clip_to_dmin(
        exponential_interarrivals(10, dmin, seed=5), dmin
    )
    warm = build_warm_world(system, NeverInterpose(), intervals)
    hv, devices = restore_world(warm)
    timer = devices[IRQ_TIMER_DEVICE]
    assert timer.interval_count == len(intervals)
    assert timer.armed
    assert hv.engine.pending_events == warm.state["pending"]
