"""Tests for the busy-window fixed point and response-time analysis
(Eqs. 3–5)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.busy_window import (
    NotSchedulableError,
    busy_time,
    response_time,
)
from repro.analysis.event_models import PeriodicEventModel


class TestBusyTime:
    def test_no_interference(self):
        assert busy_time(1, 10, lambda w: 0) == 10
        assert busy_time(5, 10, lambda w: 0) == 50

    def test_constant_interference(self):
        assert busy_time(2, 10, lambda w: 7) == 27

    def test_classic_rta_fixed_point(self):
        # Analysed task C=2; interferer C=1, P=4 (textbook example):
        # W = 2 + ceil(W/4)*1 -> W = 3
        interferer = PeriodicEventModel(4)
        w = busy_time(1, 2, lambda win: interferer.eta_plus(win) * 1)
        assert w == 3

    def test_two_interferers(self):
        # C=5, hp1: C=2,P=10; hp2: C=3,P=20
        # W = 5 + 2*ceil(W/10) + 3*ceil(W/20) -> W=10
        hp1 = PeriodicEventModel(10)
        hp2 = PeriodicEventModel(20)
        w = busy_time(1, 5, lambda win: 2 * hp1.eta_plus(win)
                      + 3 * hp2.eta_plus(win))
        assert w == 10

    def test_divergence_detected(self):
        # Interference grows faster than the window: never converges.
        with pytest.raises(NotSchedulableError):
            busy_time(1, 10, lambda w: w + 1, horizon=10_000)

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            busy_time(0, 10, lambda w: 0)

    def test_invalid_cost(self):
        with pytest.raises(ValueError):
            busy_time(1, -1, lambda w: 0)


class TestResponseTime:
    def test_single_activation(self):
        model = PeriodicEventModel(100)
        result = response_time(10, model, lambda w: 0)
        assert result.response_time == 10
        assert result.q_max == 1
        assert result.busy_times == (10,)

    def test_multi_activation_busy_window(self):
        # C=60, P=100: W(1)=60 <= delta(2)=100 -> single activation.
        model = PeriodicEventModel(100)
        result = response_time(60, model, lambda w: 0)
        assert result.q_max == 1
        assert result.response_time == 60

    def test_overload_spans_activations(self):
        # C=70 with an interferer making W(1)=110 > P=100 so the busy
        # window spans multiple activations:
        # W(q) = 70q + 40 (one-shot blocking interference)
        model = PeriodicEventModel(100)
        result = response_time(70, model, lambda w: 40)
        # W(1)=110 > delta(2)=100 -> q=2: W(2)=180 <= delta(3)=200 stop.
        assert result.q_max == 2
        assert result.response_time == max(110 - 0, 180 - 100)

    def test_critical_q(self):
        model = PeriodicEventModel(100)
        result = response_time(70, model, lambda w: 40)
        assert result.critical_q == 1

    def test_busy_time_accessor(self):
        model = PeriodicEventModel(100)
        result = response_time(70, model, lambda w: 40)
        assert result.busy_time(1) == 110
        assert result.busy_time(2) == 180

    def test_q_limit(self):
        model = PeriodicEventModel(10)
        with pytest.raises(NotSchedulableError):
            # C == P: busy window never ends within the limit
            response_time(10, model, lambda w: 5, q_limit=50)


@settings(max_examples=100, deadline=None)
@given(
    cost=st.integers(min_value=1, max_value=50),
    period=st.integers(min_value=51, max_value=500),
    hp_cost=st.integers(min_value=0, max_value=25),
    hp_period=st.integers(min_value=26, max_value=500),
)
def test_property_response_time_bounds_busy_times(cost, period, hp_cost,
                                                  hp_period):
    """R >= W(q) - δ(q) for every analysed q, and the task is
    schedulable when total utilization < 1."""
    from hypothesis import assume
    assume(cost / period + hp_cost / hp_period < 0.95)
    model = PeriodicEventModel(period)
    interferer = PeriodicEventModel(hp_period)
    result = response_time(
        cost, model, lambda w: hp_cost * interferer.eta_plus(w)
    )
    for q in range(1, result.q_max + 1):
        assert result.response_time >= result.busy_time(q) - model.delta_minus(q)
    assert result.response_time >= cost
