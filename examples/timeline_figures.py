#!/usr/bin/env python3
"""Regenerate the paper's explanatory timelines (Fig. 3 and Fig. 5).

Fig. 3 shows the problem: a hardware IRQ arriving during partition 1's
slot is only *top-handled* immediately; the bottom handler for
partition 2 waits until partition 2's TDMA slot, so the latency is
governed by the cycle length.

Fig. 5 shows the solution: with monitored interposing, the hypervisor
switches into partition 2's context right after the top handler, runs
the bottom handler for at most C_BH, and switches back.

Both charts below are rendered from actual simulation runs
(``HypervisorConfig(record_cpu_segments=True)``), not drawn by hand.

Run:  python examples/timeline_figures.py
"""

from repro.core.monitor import DeltaMinusMonitor
from repro.core.policy import MonitoredInterposing, NeverInterpose
from repro.hypervisor.config import HypervisorConfig, SlotConfig
from repro.hypervisor.hypervisor import Hypervisor
from repro.hypervisor.irq import IrqSource
from repro.hypervisor.partition import Partition
from repro.metrics.timeline import TimelineMark, render_gantt
from repro.sim.clock import Clock
from repro.sim.timers import IntervalSequenceTimer

CLOCK = Clock()
US = CLOCK.us_to_cycles


def run_single_irq(policy, arrival_us):
    slots = [SlotConfig("P1", US(1_000)), SlotConfig("P2", US(1_000))]
    config = HypervisorConfig(record_cpu_segments=True)
    hv = Hypervisor(slots, config)
    hv.add_partition(Partition("P1"))
    hv.add_partition(Partition("P2"))
    source = IrqSource(name="hw_irq", line=5, subscriber="P2",
                       top_handler_cycles=US(20),
                       bottom_handler_cycles=US(150),
                       policy=policy)
    hv.add_irq_source(source)
    timer = IntervalSequenceTimer(hv.engine, hv.intc, 5, [US(arrival_us)])
    source.on_top_handler = lambda event: timer.arm_next()
    hv.start()
    timer.arm_next()
    hv.run_until(US(2_400))
    return hv


def render(hv, title):
    (record,) = hv.latency_records
    marks = [
        TimelineMark(record.arrival, "v", "HW IRQ"),
        TimelineMark(record.completed_at, "^", "BH done"),
    ]
    print(title)
    print(render_gantt(hv.cpu.segments, start=0, end=US(2_400),
                       clock=hv.clock, width=96, marks=marks,
                       lane_order=["HV", "P1", "P2 BH", "P2"]))
    print(f"IRQ latency: {hv.clock.cycles_to_us(record.latency):.0f} us "
          f"({record.mode.value})")
    print()


def main() -> None:
    print("Two partitions, 1000 us slots; IRQ for P2 arrives at t=600 us "
          "during P1's slot. C_TH=20 us, C_BH=150 us (enlarged for "
          "visibility).")
    print()
    render(run_single_irq(NeverInterpose(), 600),
           "Fig. 3 — delayed handling: the bottom handler waits for "
           "P2's slot")
    render(run_single_irq(
        MonitoredInterposing(DeltaMinusMonitor.from_dmin(US(500))), 600),
        "Fig. 5 — interposed handling: the bottom handler runs inside "
        "P1's slot")


if __name__ == "__main__":
    main()
