#!/usr/bin/env python3
"""Automotive gateway scenario — the Appendix-A flow end to end.

A virtualized automotive gateway ECU:

* GW — gateway partition receiving CAN-triggered IRQs (the Appendix-A
  activation trace), forwarding payloads over hypervisor IPC;
* APP — application partition consuming the forwarded messages;
* DIAG — diagnostics partition (housekeeping).

The gateway IRQ source runs the *self-learning* δ⁻ monitor
(Algorithms 1 and 2): the first 10 % of the trace trains the table
(classic delayed handling, high latency), then run mode interposes
conformant IRQs.  A load bound limits the admitted interposing load to
25 % of what the recorded trace requested, as in Fig. 7 case (b).

Run:  python examples/automotive_gateway.py
"""

from repro.core.policy import LearningPhase, SelfLearningInterposing
from repro.hypervisor.config import HypervisorConfig, SlotConfig
from repro.hypervisor.hypervisor import Hypervisor
from repro.hypervisor.ipc import IpcRouter
from repro.hypervisor.irq import IrqSource
from repro.hypervisor.partition import Partition
from repro.metrics.stats import summarize
from repro.sim.clock import Clock
from repro.sim.timers import IntervalSequenceTimer
from repro.workloads.automotive import (
    AutomotiveTraceConfig,
    generate_automotive_trace,
)

CLOCK = Clock()
US = CLOCK.us_to_cycles


def main() -> None:
    trace = generate_automotive_trace(
        AutomotiveTraceConfig(activation_count=4_000), CLOCK
    )
    intervals = trace.distance_array()
    learn_count = round(len(intervals) * 0.10)

    slots = [SlotConfig("GW", US(6_000)), SlotConfig("APP", US(6_000)),
             SlotConfig("DIAG", US(2_000))]
    hv = Hypervisor(slots, HypervisorConfig(trace_enabled=False))
    gw = hv.add_partition(Partition("GW"))
    app = hv.add_partition(Partition("APP"))
    hv.add_partition(Partition("DIAG"))

    router = IpcRouter()
    hv.attach_ipc_router(router)
    channel = router.create_channel("frames", sender="GW", receiver="APP",
                                    capacity=256)

    policy = SelfLearningInterposing(depth=5, learn_count=learn_count,
                                     load_fraction=0.25)
    can = IrqSource(name="can_rx", line=3, subscriber="GW",
                    top_handler_cycles=US(2), bottom_handler_cycles=US(40),
                    policy=policy)
    hv.add_irq_source(can)

    timer = IntervalSequenceTimer(hv.engine, hv.intc, 3, intervals)

    def on_can_frame(event):
        timer.arm_next()
        # The gateway's bottom handler will forward the frame; model the
        # payload hand-off through hypervisor IPC at top-handler time.
        if len(channel.in_transit) < channel.capacity:
            channel.send({"frame": event.seq}, hv.engine.now)

    can.on_top_handler = on_can_frame
    hv.start()
    timer.arm_next()
    hv.run_until_irq_count(len(intervals), limit_cycles=CLOCK.s_to_cycles(600))

    latencies = hv.latencies_us()
    learn = latencies[:learn_count]
    run = latencies[learn_count:]

    print(f"CAN trace: {len(intervals)} activations, "
          f"min gap {CLOCK.cycles_to_us(trace.min_distance()):.0f} us, "
          f"mean gap {CLOCK.cycles_to_us(trace.mean_distance()):.0f} us")
    print(f"Learning phase ({learn_count} IRQs): "
          f"avg latency {summarize(learn).mean:.0f} us "
          "(delayed/direct handling only)")
    learned_us = [round(CLOCK.cycles_to_us(v)) for v in policy.learned_table]
    bounded_us = [round(CLOCK.cycles_to_us(v)) for v in policy.monitor.table]
    print(f"Learned δ⁻[5] (us):          {learned_us}")
    print(f"Bounded to 25% load (us):    {bounded_us}")
    assert policy.phase is LearningPhase.RUN
    print(f"Run mode ({len(run)} IRQs):  avg latency {summarize(run).mean:.0f} us, "
          f"{hv.stats.windows_opened} interposed windows")
    modes = hv.mode_counts()
    print("Handling modes: "
          + ", ".join(f"{mode.value}={count}" for mode, count in modes.items()
                      if count))

    delivered = len(channel.delivered)
    ipc_latencies = [CLOCK.cycles_to_us(m.latency) for m in channel.delivered]
    print(f"IPC frames delivered to APP: {delivered} "
          f"(avg delivery latency {sum(ipc_latencies) / delivered:.0f} us — "
          "messages cross the isolation barrier at slot boundaries)")


if __name__ == "__main__":
    main()
