#!/usr/bin/env python3
"""Quickstart: the paper's mechanism in ~60 lines.

Builds the evaluation system of Section 6.1 — two application
partitions and a housekeeping partition under TDMA, one interrupt
source subscribed by partition P1 — and compares the three handling
schemes of Fig. 6:

* monitoring disabled (classic delayed handling),
* monitored interposing with d_min = λ,
* monitored interposing with all interarrivals >= d_min.

Run:  python examples/quickstart.py
"""

from repro.core.monitor import DeltaMinusMonitor
from repro.core.policy import MonitoredInterposing, NeverInterpose
from repro.experiments.common import PaperSystemConfig, run_irq_scenario
from repro.metrics.report import render_mode_breakdown, render_table
from repro.workloads.synthetic import (
    clip_to_dmin,
    exponential_interarrivals,
    lambda_for_load,
)


def main() -> None:
    system = PaperSystemConfig()          # ARM926ej-s @ 200 MHz, 6/6/2 ms slots
    clock = system.clock()

    # Target 10 % long-term bottom-handler load: λ = C'_BH / U (Eq. 17).
    c_bh = clock.us_to_cycles(system.bottom_handler_us)
    lam = lambda_for_load(c_bh, 0.10, system.costs)
    arrivals = exponential_interarrivals(3_000, lam, seed=1)
    adherent = clip_to_dmin(arrivals, lam)

    scenarios = [
        ("monitoring disabled", NeverInterpose(), arrivals),
        ("monitored, d_min = λ",
         MonitoredInterposing(DeltaMinusMonitor.from_dmin(lam)), arrivals),
        ("monitored, no violations",
         MonitoredInterposing(DeltaMinusMonitor.from_dmin(lam)), adherent),
    ]

    rows = []
    baseline_avg = None
    for name, policy, intervals in scenarios:
        result = run_irq_scenario(system, policy, intervals)
        if baseline_avg is None:
            baseline_avg = result.avg_latency_us
        rows.append([
            name,
            f"{result.avg_latency_us:.0f}",
            f"{result.max_latency_us:.0f}",
            f"{baseline_avg / result.avg_latency_us:.1f}x",
            render_mode_breakdown(result.mode_counts),
        ])

    print(render_table(
        ["scenario", "avg latency (us)", "max (us)", "improvement", "modes"],
        rows,
        title=f"IRQ latency with T_TDMA = {system.tdma_cycle_us:.0f} us, "
              f"d_min = λ = {clock.cycles_to_us(lam):.0f} us",
    ))
    print()
    print("The paper reports ~2500 / ~1200 / ~150 us for these three "
          "scenarios — a ~16x average improvement with zero delayed IRQs "
          "once all interrupts adhere to d_min.")


if __name__ == "__main__":
    main()
