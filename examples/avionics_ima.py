#!/usr/bin/env python3
"""Integrated Modular Avionics (ARINC 653-style) scenario.

The paper motivates sufficient temporal independence with
safety-critical standards (IEC 61508, ARINC 653 IMA).  This example
builds a four-partition IMA system:

* FCTL — flight control: hard-real-time guest tasks, the *victim*
  whose temporal behaviour must stay independent;
* DISP — display manager, subscribed to a sensor IRQ whose bottom
  handlers may interpose into other partitions' slots;
* MAINT — maintenance/datalink partition;
* IO — I/O server partition (housekeeping).

It demonstrates the paper's core trade:

1. with classic delayed handling, the sensor IRQ latency is dominated
   by the TDMA cycle;
2. with monitored interposing, the latency collapses — and the flight
   control tasks still meet every deadline, because the interference
   injected into their slots is bounded by Eq. 14 and fits their slack;
3. the measured interference is checked against the analytical bound.

Run:  python examples/avionics_ima.py
"""

from repro.analysis.interference import interference_budget_fraction
from repro.core.independence import (
    DminInterferenceBound,
    InterferenceKind,
    verify_sufficient_independence,
)
from repro.core.monitor import DeltaMinusMonitor
from repro.core.policy import MonitoredInterposing, NeverInterpose
from repro.guestos.kernel import GuestKernel
from repro.guestos.tasks import GuestTask
from repro.hypervisor.config import HypervisorConfig, SlotConfig
from repro.hypervisor.hypervisor import Hypervisor
from repro.hypervisor.irq import IrqSource
from repro.hypervisor.partition import Partition
from repro.metrics.report import render_table
from repro.metrics.stats import summarize
from repro.sim.clock import Clock
from repro.sim.timers import IntervalSequenceTimer
from repro.workloads.synthetic import clip_to_dmin, exponential_interarrivals

CLOCK = Clock()
US = CLOCK.us_to_cycles

SENSOR_DMIN_US = 2_000
SENSOR_C_BH_US = 50


def build_flight_control_kernel() -> GuestKernel:
    kernel = GuestKernel("fctl-os")
    kernel.add_task(GuestTask("attitude_loop", priority=1,
                              wcet_cycles=US(600),
                              period_cycles=US(16_000)))
    kernel.add_task(GuestTask("guidance", priority=3,
                              wcet_cycles=US(1_200),
                              period_cycles=US(32_000)))
    kernel.add_task(GuestTask("telemetry", priority=7,
                              wcet_cycles=US(900),
                              period_cycles=US(64_000)))
    return kernel


def build_system(policy):
    slots = [
        SlotConfig("FCTL", US(4_000)),
        SlotConfig("DISP", US(4_000)),
        SlotConfig("MAINT", US(6_000)),
        SlotConfig("IO", US(2_000)),
    ]
    hv = Hypervisor(slots, HypervisorConfig(trace_enabled=False))
    hv.add_partition(Partition("FCTL", guest=build_flight_control_kernel(),
                               busy_background=False))
    for name in ("DISP", "MAINT", "IO"):
        hv.add_partition(Partition(name))
    sensor = IrqSource(
        name="adc_sensor", line=4, subscriber="DISP",
        top_handler_cycles=US(3),
        bottom_handler_cycles=US(SENSOR_C_BH_US),
        policy=policy,
    )
    hv.add_irq_source(sensor)
    arrivals = clip_to_dmin(
        exponential_interarrivals(800, US(SENSOR_DMIN_US), seed=42),
        US(SENSOR_DMIN_US),
    )
    timer = IntervalSequenceTimer(hv.engine, hv.intc, 4, arrivals)
    sensor.on_top_handler = lambda event: timer.arm_next()
    hv.start()
    timer.arm_next()
    hv.run_until_irq_count(len(arrivals),
                           limit_cycles=CLOCK.s_to_cycles(30))
    return hv


def report(hv, label):
    latencies = hv.latencies_us()
    kernel = hv.partition("FCTL").guest
    return [
        label,
        f"{summarize(latencies).mean:.0f}",
        f"{summarize(latencies).maximum:.0f}",
        kernel.total_deadline_misses(),
        f"{CLOCK.cycles_to_us(kernel.stats('attitude_loop').max_response):.0f}",
    ]


def main() -> None:
    print("IMA system: FCTL(4ms) | DISP(4ms) | MAINT(6ms) | IO(2ms), "
          "T_TDMA = 16 ms")
    budget = interference_budget_fraction(US(SENSOR_DMIN_US),
                                          US(SENSOR_C_BH_US))
    print(f"Sensor IRQ: d_min = {SENSOR_DMIN_US} us, C_BH = "
          f"{SENSOR_C_BH_US} us -> interference budget "
          f"{100 * budget:.1f}% of any partition's time (Eq. 14)")
    print()

    classic = build_system(NeverInterpose())
    monitored = build_system(MonitoredInterposing(
        DeltaMinusMonitor.from_dmin(US(SENSOR_DMIN_US))
    ))

    print(render_table(
        ["scheme", "sensor avg (us)", "sensor max (us)",
         "FCTL deadline misses", "attitude max resp (us)"],
        [report(classic, "delayed (classic TDMA)"),
         report(monitored, "monitored interposing")],
    ))
    print()

    bound = DminInterferenceBound(
        US(SENSOR_DMIN_US),
        monitored.config.costs.effective_bottom_handler_cycles(
            US(SENSOR_C_BH_US)),
    )
    widths = [US(w) for w in (1_000, 4_000, 16_000, 64_000)]
    verdict = verify_sufficient_independence(
        monitored.ledger, "FCTL", bound.max_interference, widths,
        kinds=(InterferenceKind.INTERPOSED_BH,),
    )
    print(f"Sufficient temporal independence of FCTL (Eq. 14): "
          f"holds = {verdict.holds}, worst measured/bound ratio = "
          f"{verdict.worst_ratio():.3f}")
    print("-> the display partition's interrupt latency improved by "
          f"{summarize(classic.latencies_us()).mean / summarize(monitored.latencies_us()).mean:.1f}x "
          "without perturbing the flight-control partition beyond its "
          "certified interference budget.")


if __name__ == "__main__":
    main()
