#!/usr/bin/env python3
"""Analysis vs simulation: the worst-case story of Sections 4 and 5.1.

Computes the analytical worst-case IRQ latency bounds —

* Eq. 11/12 for classic delayed handling (TDMA-dominated),
* Eq. 16 for d_min-adherent interposed handling (TDMA-free),
* Section 5.1 case 2 for d_min-violating IRQs —

then drives the simulator with a d_min-sporadic IRQ stream and checks
that every measured latency stays below the bound.  Finally verifies
Eq. 14's interference bound on the other partitions.

Run:  python examples/analysis_vs_simulation.py
"""

from repro.analysis.event_models import PeriodicEventModel
from repro.analysis.latency import (
    classic_irq_latency,
    interposed_irq_latency,
    violated_irq_latency,
)
from repro.experiments.validation import render_validation, run_validation
from repro.hypervisor.config import CostModel
from repro.metrics.report import render_table
from repro.sim.clock import Clock

CLOCK = Clock()
US = CLOCK.us_to_cycles


def main() -> None:
    costs = CostModel()
    c_th, c_bh = US(2), US(40)
    cycle, slot = US(14_000), US(6_000)

    print("Analytical worst-case latency vs d_min "
          "(paper system, Eqs. 11/12 and 16):")
    rows = []
    for dmin_us in (500, 1_444, 5_000, 20_000):
        model = PeriodicEventModel(US(dmin_us))
        classic = classic_irq_latency(model, c_th, c_bh, cycle, slot,
                                      costs=costs)
        interposed = interposed_irq_latency(model, c_th, c_bh, costs=costs)
        violated = violated_irq_latency(model, c_th, c_bh, cycle, slot,
                                        costs=costs)
        rows.append([
            f"{dmin_us}",
            f"{CLOCK.cycles_to_us(classic.response_time_cycles):.0f}",
            f"{CLOCK.cycles_to_us(violated.response_time_cycles):.0f}",
            f"{CLOCK.cycles_to_us(interposed.response_time_cycles):.0f}",
            f"{classic.response_time_cycles / interposed.response_time_cycles:.1f}x",
        ])
    print(render_table(
        ["d_min (us)", "classic bound (us)", "violating bound (us)",
         "interposed bound (us)", "improvement"],
        rows,
    ))
    print()
    print("Simulation cross-check (d_min = 1444 us, 2000 IRQs):")
    print(render_validation(run_validation(irq_count=2_000)))


if __name__ == "__main__":
    main()
