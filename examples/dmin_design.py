#!/usr/bin/env python3
"""Choosing d_min for a certified system — the integrator workflow.

Given a victim partition's guest task set (WCETs, periods, priorities)
and an IRQ source's declared C_BH, the question a system integrator
must answer before enabling interposing is:

    What is the smallest d_min (i.e. the best interrupt latency for
    the source) that provably keeps every victim deadline?

This example answers it analytically — a busy-window analysis
combining TDMA service (Eq. 8), same-partition preemption, and the
Eq. 14 interposing interference — and then validates the answer by
simulating the worst admitted activation pattern (IRQs arriving
exactly every d_min).

Run:  python examples/dmin_design.py
"""

from repro.analysis.interference import interference_budget_fraction
from repro.analysis.schedulability import (
    InterposingLoad,
    TaskSpec,
    min_admissible_dmin,
    partition_schedulable,
)
from repro.experiments.design import render_design, run_design
from repro.hypervisor.config import CostModel
from repro.metrics.report import render_table
from repro.sim.clock import Clock

CLOCK = Clock()
US = CLOCK.us_to_cycles


def main() -> None:
    costs = CostModel()
    tasks = [
        TaskSpec("control", priority=1, wcet=US(400), period=US(8_000)),
        TaskSpec("monitoring", priority=3, wcet=US(600), period=US(16_000)),
        TaskSpec("logging", priority=6, wcet=US(1_000), period=US(32_000)),
    ]
    cycle, slot = US(4_000), US(2_000)
    c_bh = US(40)

    print("Victim partition (2 ms slot in a 4 ms TDMA cycle):")
    rows = []
    for task in tasks:
        rows.append([task.name, task.priority,
                     f"{CLOCK.cycles_to_us(task.wcet):.0f}",
                     f"{CLOCK.cycles_to_us(task.period):.0f}"])
    print(render_table(["task", "priority", "WCET (us)", "period (us)"],
                       rows))
    print()

    print("Schedulability vs monitoring condition (C_BH = 40 us):")
    rows = []
    for dmin_us in (200, 380, 1_000, 5_000):
        dmin = US(dmin_us)
        report = partition_schedulable(
            tasks, cycle, slot, [InterposingLoad(dmin, c_bh)], costs
        )
        budget = interference_budget_fraction(dmin, c_bh, costs)
        responses = [v.response_time for v in report.verdicts]
        if any(r is None for r in responses):
            worst = "diverges"
        else:
            worst = f"{CLOCK.cycles_to_us(max(responses)):.0f}"
        rows.append([
            f"{dmin_us}",
            f"{100 * budget:.1f}%",
            worst,
            "yes" if report.schedulable else "NO",
        ])
    print(render_table(
        ["d_min (us)", "interference budget", "worst response (us)",
         "schedulable"],
        rows,
    ))
    print()

    dmin = min_admissible_dmin(tasks, cycle, slot, c_bh, costs)
    print(f"Binary search result: minimum admissible d_min = "
          f"{CLOCK.cycles_to_us(dmin):.1f} us (the 380 us row above sits "
          "just below this knife edge: one more Eq. 14 quantum fits the "
          "logging task's busy window and pushes it past its deadline)")
    print()
    print("Simulation check at exactly that condition:")
    print(render_design(run_design(irq_count=400)))


if __name__ == "__main__":
    main()
