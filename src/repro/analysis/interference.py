"""Interference bounds for monitored interposing (Eqs. 13–15 and
sufficient temporal independence, Eq. 2).

The analytical counterpart of the runtime accounting in
:mod:`repro.core.independence`: given the monitoring condition (a
d_min or a general δ⁻ table) and the effective interposed cost
C'_BH (Eq. 13), these functions bound the interference any other
partition can suffer in a window Δt — the quantity that replaces
I_p in Eq. (2) and is *independent of partition runtime behaviour*.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

from repro.analysis.event_models import DeltaTableEventModel, EventModel
from repro.analysis.memo import memoize_model
from repro.hypervisor.config import CostModel


def interposed_interference_dmin(dt: int, dmin: int, c_bh_effective: int) -> int:
    """Eq. (14): I_interposed(Δt) = ceil(Δt / d_min) * C'_BH."""
    if dmin <= 0:
        raise ValueError(f"d_min must be positive, got {dmin}")
    if c_bh_effective < 0:
        raise ValueError(f"C'_BH must be >= 0, got {c_bh_effective}")
    if dt < 0:
        raise ValueError(f"window must be >= 0, got {dt}")
    if dt == 0:
        return 0
    return math.ceil(dt / dmin) * c_bh_effective


def interposed_interference_table(table: Sequence[int],
                                  c_bh_effective: int) -> Callable[[int], int]:
    """Generalized Eq. (14) for an l-entry δ⁻ monitoring table.

    The monitor shapes accepted activations to the event model implied
    by the table; the interference in Δt is bounded by
    η⁺_shaped(Δt) * C'_BH.  For l = 1, η⁺(Δt) = ceil(Δt / d_min) and
    this reduces exactly to Eq. 14.

    The returned bound owns its model, and verifiers evaluate it at
    the same window widths for every victim, so the η⁺ lookups are
    memoized.
    """
    model = memoize_model(DeltaTableEventModel(table))

    def bound(dt: int) -> int:
        if dt < 0:
            raise ValueError(f"window must be >= 0, got {dt}")
        if dt == 0:
            return 0
        return model.eta_plus(dt) * c_bh_effective

    return bound


def interference_budget_fraction(dmin: int, c_bh: int,
                                 costs: "CostModel | None" = None) -> float:
    """Long-run CPU fraction monitored interposing may steal.

    The asymptotic rate of Eq. (14): C'_BH / d_min.  Useful to pick a
    d_min for a desired interference budget b̂_I (Eq. 2).
    """
    costs = costs or CostModel()
    if dmin <= 0:
        raise ValueError(f"d_min must be positive, got {dmin}")
    return costs.effective_bottom_handler_cycles(c_bh) / dmin


def dmin_for_budget_fraction(budget_fraction: float, c_bh: int,
                             costs: "CostModel | None" = None) -> int:
    """Smallest d_min keeping long-run interference below a budget.

    Inverse of :func:`interference_budget_fraction`: the system
    designer states "partitions may lose at most X % of their slot
    time to foreign bottom handlers" and obtains the monitoring
    condition to configure.
    """
    if not 0.0 < budget_fraction <= 1.0:
        raise ValueError(
            f"budget fraction must be in (0, 1], got {budget_fraction}"
        )
    costs = costs or CostModel()
    effective = costs.effective_bottom_handler_cycles(c_bh)
    return math.ceil(effective / budget_fraction)


def slot_interference_fits(dt_slot: int, dmin: int, c_bh: int,
                           max_loss_fraction: float,
                           costs: "CostModel | None" = None) -> bool:
    """Check a slot-level independence budget (Eq. 2 instantiated).

    True iff the Eq. 14 interference over one slot of length
    ``dt_slot`` stays below ``max_loss_fraction * dt_slot``.
    """
    costs = costs or CostModel()
    effective = costs.effective_bottom_handler_cycles(c_bh)
    loss = interposed_interference_dmin(dt_slot, dmin, effective)
    return loss <= max_loss_fraction * dt_slot
