"""Formal worst-case analyses from Sections 4 and 5.1 of the paper.

Arrival curves / minimum-distance functions, the busy-window fixed
point (Eqs. 3–5), TDMA interference (Eq. 8), worst-case IRQ latency
for delayed and interposed handling (Eqs. 11, 12, 16) and the
interference bounds of sufficient temporal independence (Eqs. 13–15
and Eq. 14).
"""

from repro.analysis.busy_window import (
    NotSchedulableError,
    ResponseTimeResult,
    busy_time,
    response_time,
)
from repro.analysis.event_models import (
    DeltaTableEventModel,
    EventModel,
    PeriodicEventModel,
    TraceEventModel,
    check_duality,
    sporadic,
)
from repro.analysis.interference import (
    dmin_for_budget_fraction,
    interference_budget_fraction,
    interposed_interference_dmin,
    interposed_interference_table,
    slot_interference_fits,
)
from repro.analysis.latency import (
    InterferingIrq,
    IrqLatencyBound,
    classic_irq_latency,
    interposed_irq_latency,
    latency_improvement_factor,
    violated_irq_latency,
)
from repro.analysis.memo import MemoizedEventModel, memoize_model
from repro.analysis.schedulability import (
    InterposingLoad,
    SchedulabilityReport,
    TaskSpec,
    TaskVerdict,
    min_admissible_dmin,
    partition_schedulable,
    task_response_time,
)
from repro.analysis.tdma import (
    tdma_interference,
    tdma_service,
    worst_case_slot_wait,
)

__all__ = [
    "NotSchedulableError",
    "ResponseTimeResult",
    "busy_time",
    "response_time",
    "DeltaTableEventModel",
    "EventModel",
    "PeriodicEventModel",
    "TraceEventModel",
    "check_duality",
    "sporadic",
    "dmin_for_budget_fraction",
    "interference_budget_fraction",
    "interposed_interference_dmin",
    "interposed_interference_table",
    "slot_interference_fits",
    "InterferingIrq",
    "IrqLatencyBound",
    "classic_irq_latency",
    "interposed_irq_latency",
    "latency_improvement_factor",
    "violated_irq_latency",
    "MemoizedEventModel",
    "memoize_model",
    "InterposingLoad",
    "SchedulabilityReport",
    "TaskSpec",
    "TaskVerdict",
    "min_admissible_dmin",
    "partition_schedulable",
    "task_response_time",
    "tdma_interference",
    "tdma_service",
    "worst_case_slot_wait",
]
