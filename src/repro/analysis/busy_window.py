"""Busy-window (multiple-event busy period) analysis — Eqs. (3)–(5).

The q-event busy time W_i(q) is the fixed point of

    W_i(q) = q * C_i + sum_j C_j * η⁺_j(W_i(q))          (Eq. 3)

iterated until convergence.  The number of activations that must be
checked is

    Q_i = max { n : forall q <= n : δ⁻_i(q) <= W_i(q-1) }  (Eq. 4)

and the worst-case response time follows as

    R_i = max_{q in [1, Q_i]} ( W_i(q) - δ⁻_i(q) )         (Eq. 5)

The interference term is pluggable (a callable of the window size), so
the same solver serves Eq. 3, the TDMA-aware Eq. 11 and the interposed
Eq. 16.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.analysis.event_models import EventModel
from repro.analysis.memo import memoize_model


class NotSchedulableError(RuntimeError):
    """The busy-window iteration diverged: demand exceeds capacity."""


def busy_time(q: int, own_cost: int,
              interference: Callable[[int], int],
              horizon: int = 2**48,
              max_iterations: int = 100_000) -> int:
    """Solve the fixed point W(q) = q * own_cost + interference(W(q)).

    ``interference`` must be monotonically non-decreasing in the window
    size; the iteration then converges to the least fixed point or
    exceeds ``horizon`` (treated as unschedulable).
    """
    if q <= 0:
        raise ValueError(f"q must be >= 1, got {q}")
    if own_cost < 0:
        raise ValueError(f"cost must be >= 0, got {own_cost}")
    base = q * own_cost
    w = max(base, 1)
    for _ in range(max_iterations):
        nxt = base + interference(w)
        if nxt > horizon:
            raise NotSchedulableError(
                f"busy window exceeded horizon {horizon} for q={q}"
            )
        if nxt == w:
            return w
        if nxt < w:
            # A non-monotone interference function can undershoot;
            # the least fixed point is still w (demand satisfied).
            return w
        w = nxt
    raise NotSchedulableError(
        f"busy-window iteration did not converge within {max_iterations} steps"
    )


@dataclass(frozen=True)
class ResponseTimeResult:
    """Result of a full busy-window response-time analysis."""

    response_time: int
    q_max: int
    #: W(q) for q = 1 .. q_max (index 0 is q=1).
    busy_times: tuple[int, ...]
    #: The activation index q attaining the worst case.
    critical_q: int

    def busy_time(self, q: int) -> int:
        return self.busy_times[q - 1]


def response_time(own_cost: int, model: EventModel,
                  interference: Callable[[int], int],
                  q_limit: int = 10_000,
                  horizon: int = 2**48,
                  memoize: bool = True) -> ResponseTimeResult:
    """Worst-case response time per Eqs. (3)–(5).

    ``model`` provides the analysed task's own activation pattern
    (δ⁻ for Eqs. 4/5); ``interference`` the combined interference term
    inside the window (everything except the ``q * own_cost`` part).
    ``memoize=False`` evaluates the raw model on every call (the
    cold baseline of the analysis A/B microbenchmark).
    """
    if memoize:
        model = memoize_model(model)
    busy_times: list[int] = []
    worst = 0
    critical_q = 1
    q = 1
    # δ⁻(q) is evaluated once per q and carried into the next
    # iteration, where it is this iteration's Eq. 4 check value.
    delta_q = model.delta_minus(1)
    while True:
        w = busy_time(q, own_cost, interference, horizon=horizon)
        busy_times.append(w)
        candidate = w - delta_q
        if candidate > worst or q == 1:
            worst = max(worst, candidate)
            if candidate == worst:
                critical_q = q
        # Eq. 4: the (q+1)-th activation belongs to the same busy
        # window iff it can arrive no later than the q-event busy time.
        delta_next = model.delta_minus(q + 1)
        if delta_next > w:
            break
        q += 1
        delta_q = delta_next
        if q > q_limit:
            raise NotSchedulableError(
                f"busy window spans more than {q_limit} activations; "
                "the task set is overloaded or q_limit is too small"
            )
    return ResponseTimeResult(
        response_time=worst,
        q_max=q,
        busy_times=tuple(busy_times),
        critical_q=critical_q,
    )
