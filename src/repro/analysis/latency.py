"""Worst-case IRQ latency analyses (Sections 4 and 5.1).

Three analyses, mirroring the paper:

* :func:`classic_irq_latency` — TDMA-delayed handling (Eqs. 6–12):
  the bottom handler only runs in its own slot, so the busy window
  includes the full TDMA interference term and the latency is
  dominated by the cycle length.
* :func:`interposed_irq_latency` — interrupts adhering to the
  monitoring condition (Eq. 16): TDMA interference disappears; the
  price is the inflated execution times C'_BH (Eq. 13) and C'_TH
  (Eq. 15).
* :func:`violated_irq_latency` — interrupts that violate d_min
  (Section 5.1 case 2): delayed handling as in the classic analysis,
  with the monitoring overhead C'_TH on every top handler.

Interfering IRQ sources contribute their top handlers only (bottom
handlers of other sources run in their own partitions' slots, already
covered by the TDMA term; same-source bottom handlers are serialized
by the FIFO queue).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.busy_window import ResponseTimeResult, response_time
from repro.analysis.event_models import EventModel
from repro.analysis.memo import memoize_model
from repro.analysis.tdma import tdma_interference
from repro.hypervisor.config import CostModel


@dataclass(frozen=True)
class InterferingIrq:
    """An interfering IRQ source: its arrival model and top-handler cost.

    ``monitored`` marks sources handled by the modified top handler,
    whose effective cost includes the monitoring call (Eq. 15).
    """

    model: EventModel
    top_handler_cycles: int
    monitored: bool = False

    def effective_top_cycles(self, costs: CostModel) -> int:
        if self.monitored:
            return costs.effective_top_handler_cycles(self.top_handler_cycles)
        return self.top_handler_cycles


@dataclass(frozen=True)
class IrqLatencyBound:
    """Result of a worst-case IRQ latency analysis."""

    response_time_cycles: int
    q_max: int
    critical_q: int
    busy_times: tuple[int, ...]
    #: The per-activation cost the analysis charged (C_BH or C'_BH).
    charged_bottom_cycles: int
    #: The top-handler cost charged for the analysed source.
    charged_top_cycles: int
    includes_tdma_term: bool


def _analyse(own_bottom: int, own_top: int, model: EventModel,
             interferers: Sequence[InterferingIrq], costs: CostModel,
             tdma: "tuple[int, int] | None",
             q_limit: int, horizon: int,
             memoize: bool = True) -> IrqLatencyBound:
    # The fixed point revisits the same window sizes across iterations
    # and q values; memoizing the curves turns those re-evaluations
    # into dict lookups (the raw path remains as the A/B baseline).
    if memoize:
        model = memoize_model(model)
    effective = [
        (memoize_model(irq.model) if memoize else irq.model,
         irq.effective_top_cycles(costs))
        for irq in interferers
    ]

    def interference(window: int) -> int:
        total = model.eta_plus(window) * own_top
        if tdma is not None:
            cycle, slot = tdma
            total += tdma_interference(window, cycle, slot)
        for other_model, top_cycles in effective:
            total += other_model.eta_plus(window) * top_cycles
        return total

    result: ResponseTimeResult = response_time(
        own_bottom, model, interference, q_limit=q_limit, horizon=horizon,
        memoize=memoize,
    )
    return IrqLatencyBound(
        response_time_cycles=result.response_time,
        q_max=result.q_max,
        critical_q=result.critical_q,
        busy_times=result.busy_times,
        charged_bottom_cycles=own_bottom,
        charged_top_cycles=own_top,
        includes_tdma_term=tdma is not None,
    )


def classic_irq_latency(model: EventModel, c_th: int, c_bh: int,
                        tdma_cycle: int, slot_length: int,
                        interferers: Sequence[InterferingIrq] = (),
                        costs: "CostModel | None" = None,
                        q_limit: int = 10_000,
                        horizon: int = 2**48,
                        memoize: bool = True) -> IrqLatencyBound:
    """Worst-case latency of delayed IRQ handling — Eqs. (11)/(12).

        W_i(q) = q*C_BH + η⁺_i(W)*C_TH
                 + ceil(W/T_TDMA)*(T_TDMA - T_i)
                 + Σ_j η⁺_j(W)*C_TH_j
    """
    costs = costs or CostModel()
    return _analyse(c_bh, c_th, model, interferers, costs,
                    (tdma_cycle, slot_length), q_limit, horizon, memoize)


def interposed_irq_latency(model: EventModel, c_th: int, c_bh: int,
                           costs: "CostModel | None" = None,
                           interferers: Sequence[InterferingIrq] = (),
                           q_limit: int = 10_000,
                           horizon: int = 2**48,
                           memoize: bool = True) -> IrqLatencyBound:
    """Worst-case latency of d_min-adherent interposed IRQs — Eq. (16).

        W_i(q) = q*C'_BH + η⁺_i(W)*C'_TH + Σ_j η⁺_j(W)*C_TH_j

    The TDMA term is gone: an adherent IRQ never waits for its
    partition's slot.  ``model`` must describe the *shaped* stream
    (e.g. a sporadic model with period d_min), otherwise the bound is
    meaningless.
    """
    costs = costs or CostModel()
    c_bh_eff = costs.effective_bottom_handler_cycles(c_bh)
    c_th_eff = costs.effective_top_handler_cycles(c_th)
    return _analyse(c_bh_eff, c_th_eff, model, interferers, costs,
                    None, q_limit, horizon, memoize)


def violated_irq_latency(model: EventModel, c_th: int, c_bh: int,
                         tdma_cycle: int, slot_length: int,
                         costs: "CostModel | None" = None,
                         interferers: Sequence[InterferingIrq] = (),
                         q_limit: int = 10_000,
                         horizon: int = 2**48,
                         memoize: bool = True) -> IrqLatencyBound:
    """Worst-case latency for IRQs violating d_min (Section 5.1, case 2).

    Delayed processing applies (Eq. 7 with the TDMA term), the bottom
    handler cost stays C_BH (no extra context switches), but every top
    handler of the source pays the monitoring overhead: C'_TH (Eq. 15).
    """
    costs = costs or CostModel()
    c_th_eff = costs.effective_top_handler_cycles(c_th)
    return _analyse(c_bh, c_th_eff, model, interferers, costs,
                    (tdma_cycle, slot_length), q_limit, horizon, memoize)


def latency_improvement_factor(classic: IrqLatencyBound,
                               interposed: IrqLatencyBound) -> float:
    """How much the interposed bound improves on the classic one."""
    if interposed.response_time_cycles == 0:
        return float("inf")
    return classic.response_time_cycles / interposed.response_time_cycles
