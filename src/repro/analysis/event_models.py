"""Arrival curves η⁺ and minimum-distance functions δ⁻ (Section 4).

Activation patterns are modelled via *arrival functions* η⁺(Δt),
returning the maximum number of events in any half-open time window of
size Δt (Le Boudec & Thiran's network calculus, as used by the paper),
and the dual *minimum distance functions* δ⁻(q), the minimum time
spanned by any q consecutive events (Richter's standard event models).

Conventions used throughout (the common CPA conventions):

* η⁺(0) = 0; for a strictly periodic stream with period P,
  η⁺(Δt) = ceil(Δt / P).
* δ⁻(q) = 0 for q <= 1; for a periodic stream δ⁻(q) = (q - 1) · P.
* Duality:  η⁺(Δt) = max { q : δ⁻(q) < Δt }  and
  δ⁻(q) = min { Δt : η⁺(Δt) >= q }.
"""

from __future__ import annotations

import bisect
import math
from typing import Protocol, Sequence, runtime_checkable


@runtime_checkable
class EventModel(Protocol):
    """Anything that provides the η⁺ / δ⁻ pair."""

    def eta_plus(self, dt: int) -> int:
        """Maximum number of events in any half-open window of size ``dt``."""
        ...

    def delta_minus(self, q: int) -> int:
        """Minimum time spanned by any ``q`` consecutive events."""
        ...


def _check_dt(dt: int) -> None:
    if dt < 0:
        raise ValueError(f"window size must be >= 0, got {dt}")


def _check_q(q: int) -> None:
    if q < 0:
        raise ValueError(f"event count must be >= 0, got {q}")


class PeriodicEventModel:
    """Standard periodic-with-jitter event model (P, J, d_min).

    η⁺(Δt) = min( ceil((Δt + J) / P), ceil(Δt / d_min) )
    δ⁻(q)  = max( (q - 1) · d_min, (q - 1) · P - J )

    A plain periodic stream is ``PeriodicEventModel(P)``; a sporadic
    stream with minimum interarrival T is also ``PeriodicEventModel(T)``
    (its η⁺ is the same worst case).
    """

    def __init__(self, period: int, jitter: int = 0, dmin: int = 1):
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        if jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {jitter}")
        if dmin <= 0:
            raise ValueError(f"d_min must be positive, got {dmin}")
        if dmin > period:
            raise ValueError(
                f"d_min {dmin} cannot exceed the period {period}"
            )
        self.period = period
        self.jitter = jitter
        self.dmin = dmin

    def eta_plus(self, dt: int) -> int:
        _check_dt(dt)
        if dt == 0:
            return 0
        with_jitter = math.ceil((dt + self.jitter) / self.period)
        burst_limit = math.ceil(dt / self.dmin)
        return min(with_jitter, burst_limit)

    def delta_minus(self, q: int) -> int:
        _check_q(q)
        if q <= 1:
            return 0
        return max((q - 1) * self.dmin, (q - 1) * self.period - self.jitter)

    def __repr__(self) -> str:
        return (
            f"PeriodicEventModel(P={self.period}, J={self.jitter}, "
            f"d={self.dmin})"
        )


def sporadic(min_interarrival: int) -> PeriodicEventModel:
    """Sporadic stream with a minimum interarrival time.

    This is the model of a d_min-shaped interposed-activation stream:
    the monitor of Section 5 guarantees exactly this η⁺.
    """
    return PeriodicEventModel(min_interarrival)


class DeltaTableEventModel:
    """Event model defined by a finite δ⁻ table (the monitor's view).

    ``table[k]`` is the minimum distance between an event and its
    ``(k+1)``-th predecessor, i.e. δ⁻(k + 2) — exactly the table
    enforced by :class:`repro.core.monitor.DeltaMinusMonitor` and
    learned by Algorithm 1.  Beyond the table, δ⁻ is extended by its
    superadditive closure,

        δ⁻(a + b - 1) >= δ⁻(a) + δ⁻(b),

    which is the tightest sound extension: any q-event span decomposes
    into overlapping spans covered by the table.
    """

    def __init__(self, table: Sequence[int]):
        if len(table) == 0:
            raise ValueError("δ⁻ table must have at least one entry")
        running = 0
        normalized = []
        for value in table:
            if value < 0:
                raise ValueError(f"δ⁻ distances must be >= 0, got {value}")
            running = max(running, int(value))
            normalized.append(running)
        self._table = normalized
        # _delta[q] = extended δ⁻ for q events; grows on demand.  The
        # superadditive closure is applied within the table as well: a
        # table like [1, 1] implicitly requires δ(3) >= 2·δ(2), and
        # using the raw entries would understate the admitted spacing.
        self._delta = [0, 0] + list(normalized)
        for n in range(2, len(self._delta)):
            best = self._delta[n]
            for a in range(2, n):
                b = n - a + 1
                if b < 2:
                    break
                best = max(best, self._delta[a] + self._delta[b])
            self._delta[n] = best

    @property
    def depth(self) -> int:
        return len(self._table)

    def delta_minus(self, q: int) -> int:
        _check_q(q)
        if q <= 1:
            return 0
        self._extend_to(q)
        return self._delta[q]

    def eta_plus(self, dt: int) -> int:
        _check_dt(dt)
        if dt == 0:
            return 0
        # max q with δ⁻(q) < dt.  δ⁻ is non-decreasing and, past the
        # table, grows at least linearly with slope δ⁻(2) per event
        # (when δ⁻(2) > 0), so the extension below terminates and the
        # answer is a binary search over the extended table.
        if self._table[0] == 0:
            raise ValueError(
                "η⁺ is unbounded: the δ⁻ table permits simultaneous events"
            )
        while self._delta[-1] < dt:
            self._extend_to(len(self._delta))
        return bisect.bisect_left(self._delta, dt) - 1

    def _extend_to(self, q: int) -> None:
        while len(self._delta) <= q:
            n = len(self._delta)
            best = 0
            # δ⁻(n) >= max over a in [2, n-1] of δ⁻(a) + δ⁻(n - a + 1)
            for a in range(2, n):
                b = n - a + 1
                if b < 2:
                    break
                best = max(best, self._delta[a] + self._delta[b])
            self._delta.append(best)

    def __repr__(self) -> str:
        return f"DeltaTableEventModel(l={self.depth}, table={self._table})"


class TraceEventModel:
    """Empirical event model extracted from a concrete activation trace.

    δ⁻(q) is the minimum observed span of q consecutive events and
    η⁺(Δt) the maximum observed event count in a sliding half-open
    window.  These describe *this trace exactly* (not a sound bound on
    other runs of the same source), which is what the trace-driven
    experiments need.
    """

    def __init__(self, times: Sequence[int]):
        stream = sorted(int(t) for t in times)
        if len(stream) < 2:
            raise ValueError("need at least two events to build a trace model")
        self._times = stream
        # Each δ⁻(q) is an O(n) sliding scan, and the busy-window /
        # learning paths re-ask the same small q values many times, so
        # computed spans go into a reusable prefix table:
        # _delta_table[q - 2] holds δ⁻(q).
        self._delta_table: "list[int]" = []

    @property
    def count(self) -> int:
        return len(self._times)

    def delta_minus(self, q: int) -> int:
        _check_q(q)
        if q <= 1:
            return 0
        if q > len(self._times):
            raise ValueError(
                f"trace has only {len(self._times)} events, cannot span {q}"
            )
        table = self._delta_table
        times = self._times
        while len(table) < q - 1:
            span = len(table) + 2
            table.append(min(
                times[i + span - 1] - times[i]
                for i in range(len(times) - span + 1)
            ))
        return table[q - 2]

    def delta_prefix_table(self, max_q: int) -> "tuple[int, ...]":
        """δ⁻(2) … δ⁻(max_q) as one contiguous (cached) table."""
        if max_q < 2:
            return ()
        self.delta_minus(max_q)
        return tuple(self._delta_table[:max_q - 1])

    def eta_plus(self, dt: int) -> int:
        _check_dt(dt)
        if dt == 0:
            return 0
        best = 0
        times = self._times
        for i, start in enumerate(times):
            # events in [start, start + dt)
            j = bisect.bisect_left(times, start + dt)
            best = max(best, j - i)
        return best

    def interarrivals(self) -> list[int]:
        return [b - a for a, b in zip(self._times, self._times[1:])]

    def learned_delta_table(self, depth: int) -> list[int]:
        """The δ⁻ table Algorithm 1 would learn from this trace."""
        return list(self.delta_prefix_table(depth + 1))

    def __repr__(self) -> str:
        return f"TraceEventModel(n={len(self._times)})"


def check_duality(model: EventModel, max_q: int = 50) -> bool:
    """Verify the η⁺ / δ⁻ duality on a model (used by tests).

    For each q in [2, max_q]: a window of size δ⁻(q) must hold fewer
    than q events... strictly, η⁺(δ⁻(q)) < q and η⁺(δ⁻(q) + 1) >= q
    would only hold for exact duals; for conservative models we check
    the weaker sound direction η⁺(δ⁻(q)) <= q.
    """
    for q in range(2, max_q + 1):
        span = model.delta_minus(q)
        if span > 0 and model.eta_plus(span) > q:
            return False
    return True
