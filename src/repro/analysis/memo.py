"""Memoized arrival-curve evaluation.

The busy-window fixed point (Eqs. 3–5) evaluates η⁺ of every
interferer and δ⁻ of the analysed stream at the same handful of window
sizes over and over: successive fixed-point iterates revisit converged
windows, successive q analyses restart from overlapping windows, and
the sweep/validation campaigns solve families of closely related
bounds.  For closed-form models the redundancy is cheap arithmetic;
for :class:`~repro.analysis.event_models.DeltaTableEventModel` (search
over the superadditive closure) and
:class:`~repro.analysis.event_models.TraceEventModel` (O(n) sliding
scans) it dominates the analysis benchmarks.

:class:`MemoizedEventModel` wraps any
:class:`~repro.analysis.event_models.EventModel` with per-instance
η⁺/δ⁻ result dictionaries.  The wrapper is *observably identical* to
the wrapped model: results are cached only after a successful
evaluation, argument validation still raises (uncached), and the
property tests in ``tests/test_memoized_models.py`` pin the
equivalence (including the η⁺/δ⁻ duality and monotonicity).
"""

from __future__ import annotations

from repro.analysis.event_models import EventModel


class MemoizedEventModel:
    """Cache η⁺/δ⁻ evaluations of a wrapped event model.

    Event models are immutable after construction (their curves are
    pure functions), so memoization can never go stale.  Wrapping an
    already-wrapped model is the identity (see :func:`memoize_model`).
    """

    __slots__ = ("model", "_eta", "_delta")

    def __init__(self, model: EventModel):
        self.model = model
        self._eta: "dict[int, int]" = {}
        self._delta: "dict[int, int]" = {}

    def eta_plus(self, dt: int) -> int:
        try:
            return self._eta[dt]
        except KeyError:
            value = self.model.eta_plus(dt)
            self._eta[dt] = value
            return value
        except TypeError:
            # unhashable dt: let the model produce its own error
            return self.model.eta_plus(dt)

    def delta_minus(self, q: int) -> int:
        try:
            return self._delta[q]
        except KeyError:
            value = self.model.delta_minus(q)
            self._delta[q] = value
            return value
        except TypeError:
            return self.model.delta_minus(q)

    def cache_info(self) -> "dict[str, int]":
        """Entry counts, for benchmarks and observability."""
        return {"eta_entries": len(self._eta),
                "delta_entries": len(self._delta)}

    def __repr__(self) -> str:
        return f"MemoizedEventModel({self.model!r})"


def memoize_model(model: EventModel) -> MemoizedEventModel:
    """Wrap ``model`` with memoization; idempotent on wrapped models."""
    if isinstance(model, MemoizedEventModel):
        return model
    return MemoizedEventModel(model)
