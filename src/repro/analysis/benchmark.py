"""Analysis microbenchmark: memoized vs cold arrival-curve evaluation.

The analysis paths re-evaluate η⁺/δ⁻ far more often than the curves
change (see :mod:`repro.analysis.memo`): a busy-window family solved
over several cost points keeps asking the same model for the same
δ⁻(q) ladder, and the Eq. 14 audit evaluates the same interferer
curves over the same window-width grid once per victim partition.
For :class:`~repro.analysis.event_models.TraceEventModel` (O(n)
sliding scans per evaluation) and
:class:`~repro.analysis.event_models.DeltaTableEventModel` (search
over the superadditive closure) that redundancy is the dominant cost.

This benchmark builds a deterministic, paper-shaped workload — the
d_min-sporadic stream analysed against a δ⁻-table interferer and a
trace interferer over four cost points (Eqs. 11/12 and 16), followed
by a multi-victim window-grid audit of the interferer curves (the
Eq. 14 verification shape) — and runs it twice per round:

* **cold** — raw models, ``memoize=False``: every evaluation hits the
  model, the pre-memoization behaviour;
* **memoized** — the models are wrapped once per round and shared
  across the bound family and the audit passes, the default analysis
  path.

Rounds alternate cold/memoized so host noise hits both sides equally;
the best round per side is reported.  Both sides must produce
*identical* numbers — the result carries them so callers (the
benchmark suite, ``--bench-json``) can assert the equivalence
alongside the speedup.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from itertools import accumulate

from repro.analysis.event_models import (
    DeltaTableEventModel,
    PeriodicEventModel,
    TraceEventModel,
)
from repro.analysis.latency import (
    InterferingIrq,
    classic_irq_latency,
    interposed_irq_latency,
)
from repro.analysis.memo import memoize_model
from repro.workloads.synthetic import clip_to_dmin, exponential_interarrivals

#: Paper system constants in cycles (200 cycles/µs).
_DMIN = 288_800                 # 1444 µs
_TDMA_CYCLE = 2_800_000         # 14000 µs
_SLOT = 1_200_000               # 6000 µs
_COST_POINTS = ((400, 6_000), (400, 8_000), (400, 10_000), (400, 12_000))
#: Eq. 14-audit window grid (25 µs .. 15 ms) and victim count.
_AUDIT_WIDTHS = tuple(25_000 * k for k in range(1, 121))
_AUDIT_VICTIMS = 3


@dataclass(frozen=True)
class AnalysisBenchmarkResult:
    """Outcome of one memoized-vs-cold analysis A/B measurement."""

    cold_seconds: float
    memoized_seconds: float
    bounds_per_round: int
    #: Response-time bounds (cycles) + audit checksums computed by each
    #: side, in the same fixed order — must be equal.
    cold_values: "tuple[int, ...]"
    memoized_values: "tuple[int, ...]"

    @property
    def speedup(self) -> float:
        if self.memoized_seconds <= 0:
            return float("inf")
        return self.cold_seconds / self.memoized_seconds

    @property
    def identical(self) -> bool:
        return self.cold_values == self.memoized_values


def _build_models(trace_events: int):
    """Fresh raw models per round (no internal state carried across)."""
    own = PeriodicEventModel(_DMIN)
    table_model = DeltaTableEventModel(
        [8_000, 60_000, 200_000, 500_000, 1_100_000]
    )
    gaps = clip_to_dmin(
        exponential_interarrivals(trace_events, 260_000, seed=23), 40_000
    )
    trace_model = TraceEventModel(list(accumulate(gaps)))
    return own, table_model, trace_model


def _run_round(trace_events: int, memoize: bool) -> "tuple[int, ...]":
    own, table_model, trace_model = _build_models(trace_events)
    if memoize:
        # One wrapper per model, shared by the whole bound family and
        # every audit pass — the way the analysis paths hold models.
        own = memoize_model(own)
        table_model = memoize_model(table_model)
        trace_model = memoize_model(trace_model)
    interferers = [
        InterferingIrq(table_model, top_handler_cycles=400, monitored=True),
        InterferingIrq(trace_model, top_handler_cycles=400),
    ]
    values = []
    for c_th, c_bh in _COST_POINTS:
        classic = classic_irq_latency(own, c_th, c_bh, _TDMA_CYCLE, _SLOT,
                                      interferers=interferers,
                                      memoize=memoize)
        interposed = interposed_irq_latency(own, c_th, c_bh,
                                            interferers=interferers,
                                            memoize=memoize)
        values.append(classic.response_time_cycles)
        values.append(interposed.response_time_cycles)
    # Eq. 14-shaped audit: each victim evaluates the same interferer
    # curves over the same window grid.
    for _ in range(_AUDIT_VICTIMS):
        checksum = 0
        for dt in _AUDIT_WIDTHS:
            checksum += table_model.eta_plus(dt) + trace_model.eta_plus(dt)
        values.append(checksum)
    return tuple(values)


def measure_analysis_speedup(repeats: int = 3,
                             trace_events: int = 2_000,
                             ) -> AnalysisBenchmarkResult:
    """Interleaved A/B of the analysis path with memoization off/on."""
    if repeats <= 0:
        raise ValueError(f"repeats must be positive, got {repeats}")
    if trace_events < 2:
        raise ValueError(f"need at least 2 trace events, got {trace_events}")
    cold_values = memo_values = ()
    best_cold = best_memo = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        cold_values = _run_round(trace_events, memoize=False)
        best_cold = min(best_cold, time.perf_counter() - started)

        started = time.perf_counter()
        memo_values = _run_round(trace_events, memoize=True)
        best_memo = min(best_memo, time.perf_counter() - started)
    return AnalysisBenchmarkResult(
        cold_seconds=best_cold,
        memoized_seconds=best_memo,
        bounds_per_round=2 * len(_COST_POINTS),
        cold_values=cold_values,
        memoized_values=memo_values,
    )
