"""Partition-level schedulability under TDMA and interposing.

The integrator-facing closing of the loop: Section 4 analyses the
*interrupt's* latency; this module analyses the *victim partition's
guest tasks* so a system designer can decide whether a proposed
monitoring condition d_min keeps every deadline — i.e. whether the
bounded interference of Eq. 2 actually fits the tasks' slack.

For a guest task τ with priority-ordered interferers inside its own
partition, running in a TDMA slot of length T_i within a cycle T_TDMA,
and subject to monitored interposing with condition d_min and
effective cost C'_BH, the q-event busy window is

    W(q) = q·C + Σ_hp η⁺_hp(W)·C_hp            (same-partition preemption)
         + ceil(W / T_TDMA)·(T_TDMA - T_i)      (Eq. 8, foreign slots)
         + ceil(W / d_min)·C'_BH                (Eq. 14, interposing)

evaluated with the busy-window machinery of Eqs. 3–5.  The analysis is
compositional: more interposing sources add more Eq. 14 terms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.analysis.busy_window import (
    NotSchedulableError,
    ResponseTimeResult,
    response_time,
)
from repro.analysis.event_models import PeriodicEventModel
from repro.analysis.interference import interposed_interference_dmin
from repro.analysis.tdma import tdma_interference
from repro.hypervisor.config import CostModel


@dataclass(frozen=True)
class TaskSpec:
    """Analytical description of one guest task."""

    name: str
    priority: int              # lower number = higher priority
    wcet: int                  # cycles
    period: int                # cycles
    jitter: int = 0
    deadline: Optional[int] = None   # defaults to the period

    def __post_init__(self):
        if self.wcet <= 0:
            raise ValueError(f"WCET must be positive, got {self.wcet}")
        if self.period <= 0:
            raise ValueError(f"period must be positive, got {self.period}")
        if self.jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"deadline must be positive, got {self.deadline}")

    def model(self) -> PeriodicEventModel:
        return PeriodicEventModel(self.period, jitter=self.jitter)

    def relative_deadline(self) -> int:
        return self.deadline if self.deadline is not None else self.period


@dataclass(frozen=True)
class InterposingLoad:
    """One interposing IRQ source hitting the analysed partition's slots."""

    dmin: int
    c_bh: int                  # declared bottom-handler budget (cycles)

    def effective_cost(self, costs: CostModel) -> int:
        return costs.effective_bottom_handler_cycles(self.c_bh)


@dataclass(frozen=True)
class TaskVerdict:
    """Schedulability result for one task."""

    task: TaskSpec
    response_time: Optional[int]       # None when the analysis diverged
    deadline: int
    schedulable: bool

    @property
    def slack(self) -> Optional[int]:
        if self.response_time is None:
            return None
        return self.deadline - self.response_time


@dataclass(frozen=True)
class SchedulabilityReport:
    """Partition-wide schedulability verdict."""

    verdicts: tuple[TaskVerdict, ...]

    @property
    def schedulable(self) -> bool:
        return all(verdict.schedulable for verdict in self.verdicts)

    def verdict(self, name: str) -> TaskVerdict:
        for entry in self.verdicts:
            if entry.task.name == name:
                return entry
        raise KeyError(f"no task named {name!r} in the report")


def task_response_time(task: TaskSpec, tasks: Sequence[TaskSpec],
                       tdma_cycle: int, slot_length: int,
                       interposing: Sequence[InterposingLoad] = (),
                       costs: "CostModel | None" = None,
                       q_limit: int = 1_000,
                       horizon: int = 2**48) -> ResponseTimeResult:
    """Worst-case response time of one guest task (see module docs)."""
    costs = costs or CostModel()
    higher_priority = [
        (other.model(), other.wcet) for other in tasks
        if other is not task and other.priority < task.priority
    ]
    loads = [(load.dmin, load.effective_cost(costs)) for load in interposing]

    def interference(window: int) -> int:
        total = tdma_interference(window, tdma_cycle, slot_length)
        for model, wcet in higher_priority:
            total += model.eta_plus(window) * wcet
        for dmin, cost in loads:
            total += interposed_interference_dmin(window, dmin, cost)
        return total

    return response_time(task.wcet, task.model(), interference,
                         q_limit=q_limit, horizon=horizon)


def partition_schedulable(tasks: Sequence[TaskSpec],
                          tdma_cycle: int, slot_length: int,
                          interposing: Sequence[InterposingLoad] = (),
                          costs: "CostModel | None" = None) -> SchedulabilityReport:
    """Check every task of a partition against its deadline."""
    verdicts = []
    for task in tasks:
        deadline = task.relative_deadline()
        try:
            result = task_response_time(task, tasks, tdma_cycle,
                                        slot_length, interposing, costs)
            verdicts.append(TaskVerdict(
                task=task,
                response_time=result.response_time,
                deadline=deadline,
                schedulable=result.response_time <= deadline,
            ))
        except NotSchedulableError:
            verdicts.append(TaskVerdict(
                task=task, response_time=None, deadline=deadline,
                schedulable=False,
            ))
    return SchedulabilityReport(verdicts=tuple(verdicts))


def min_admissible_dmin(tasks: Sequence[TaskSpec],
                        tdma_cycle: int, slot_length: int,
                        c_bh: int,
                        costs: "CostModel | None" = None,
                        upper: Optional[int] = None) -> Optional[int]:
    """Smallest d_min keeping the partition schedulable.

    This is the designer's question inverted: given the victim
    partition's task set, how aggressively may a foreign IRQ source
    interpose (smaller d_min = lower IRQ latency for the source, more
    interference for the victim)?  Returns None when even the largest
    probed d_min (i.e. negligible interposing) does not fit.

    Binary search over d_min; the response times are monotonically
    non-increasing in d_min, so the search is sound.
    """
    costs = costs or CostModel()
    if upper is None:
        upper = 64 * tdma_cycle
    effective = costs.effective_bottom_handler_cycles(c_bh)
    low, high = max(1, effective), upper

    def fits(dmin: int) -> bool:
        report = partition_schedulable(
            tasks, tdma_cycle, slot_length,
            [InterposingLoad(dmin=dmin, c_bh=c_bh)], costs,
        )
        return report.schedulable

    if not fits(high):
        return None
    if fits(low):
        return low
    while low + 1 < high:
        middle = (low + high) // 2
        if fits(middle):
            high = middle
        else:
            low = middle
    return high
