"""TDMA interference term — Eq. (8).

The worst-case interference a task bound to a slot of length ``T_i``
suffers from the other slots of a TDMA cycle of length ``T_TDMA``
(including context-switch overhead) within any window Δt is

    I_TDMA(Δt) = ceil(Δt / T_TDMA) * (T_TDMA - T_i)      (Eq. 8)

following Tindell & Clark's holistic analysis.  The bound is
conservative: every started cycle is charged its full foreign time.
"""

from __future__ import annotations

import math


def tdma_interference(dt: int, cycle_length: int, slot_length: int) -> int:
    """Worst-case foreign-slot interference in a window of size ``dt``."""
    if cycle_length <= 0:
        raise ValueError(f"TDMA cycle must be positive, got {cycle_length}")
    if not 0 < slot_length <= cycle_length:
        raise ValueError(
            f"slot length must be in (0, {cycle_length}], got {slot_length}"
        )
    if dt < 0:
        raise ValueError(f"window must be >= 0, got {dt}")
    if dt == 0:
        return 0
    return math.ceil(dt / cycle_length) * (cycle_length - slot_length)


def tdma_service(dt: int, cycle_length: int, slot_length: int) -> int:
    """Guaranteed service a slot provides in any window of size ``dt``.

    The complement of :func:`tdma_interference`:
    ``max(0, dt - tdma_interference(dt))``.
    """
    return max(0, dt - tdma_interference(dt, cycle_length, slot_length))


def worst_case_slot_wait(cycle_length: int, slot_length: int) -> int:
    """Longest time until the slot next begins (arrival just after it ended)."""
    if not 0 < slot_length <= cycle_length:
        raise ValueError(
            f"slot length must be in (0, {cycle_length}], got {slot_length}"
        )
    return cycle_length - slot_length
