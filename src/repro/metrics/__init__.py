"""Measurement post-processing: histograms (Fig. 6), running averages
and summaries (Fig. 7), and text report rendering."""

from repro.metrics.export import (
    read_records_json,
    write_histogram_csv,
    write_latency_csv,
    write_records_json,
    write_series_csv,
)
from repro.metrics.histogram import HistogramBin, LatencyHistogram, fig6_histogram
from repro.metrics.report import (
    render_mode_breakdown,
    render_series,
    render_table,
)
from repro.metrics.stats import (
    LatencySummary,
    improvement_factor,
    percentile,
    running_average,
    summarize,
)
from repro.metrics.timeline import (
    TimelineMark,
    lane_of,
    occupancy_by_lane,
    render_gantt,
    segments_between,
)

__all__ = [
    "read_records_json",
    "write_histogram_csv",
    "write_latency_csv",
    "write_records_json",
    "write_series_csv",
    "HistogramBin",
    "LatencyHistogram",
    "fig6_histogram",
    "render_mode_breakdown",
    "render_series",
    "render_table",
    "LatencySummary",
    "improvement_factor",
    "percentile",
    "running_average",
    "summarize",
    "TimelineMark",
    "lane_of",
    "occupancy_by_lane",
    "render_gantt",
    "segments_between",
]
