"""ASCII Gantt timelines from recorded CPU segments.

Renders the execution timelines the paper uses to explain the
mechanism — Fig. 3 (interrupt latency under delayed handling) and
Fig. 5 (interrupt latency for an interposed IRQ) — directly from a
simulation run with ``HypervisorConfig(record_cpu_segments=True)``.

Lanes are derived from segment categories:

* ``task:<P>`` / ``idle:<P>``  -> lane "<P>"
* ``bh:<P>``                   -> lane "<P> BH"
* ``hypervisor``               -> lane "HV"
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.sim.clock import Clock
from repro.sim.cpu import CpuSegment


def lane_of(category: str) -> str:
    """Map an accounting category to a timeline lane."""
    if category.startswith("task:") or category.startswith("idle:"):
        return category.split(":", 1)[1]
    if category.startswith("bh:"):
        return f"{category.split(':', 1)[1]} BH"
    if category == "hypervisor":
        return "HV"
    return category


@dataclass(frozen=True)
class TimelineMark:
    """A point annotation on the time axis (e.g. an IRQ arrival)."""

    time: int
    symbol: str
    label: str = ""


def render_gantt(segments: Iterable[CpuSegment],
                 start: int, end: int,
                 clock: Optional[Clock] = None,
                 width: int = 100,
                 marks: Sequence[TimelineMark] = (),
                 lane_order: Optional[Sequence[str]] = None) -> str:
    """Render CPU segments in ``[start, end)`` as an ASCII Gantt chart.

    Each lane shows ``#`` where its category occupies the CPU.  Marks
    add a header row of point annotations (IRQ arrivals, completions).
    """
    if end <= start:
        raise ValueError(f"need end > start, got [{start}, {end})")
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    span = end - start

    def column(time: int) -> int:
        return min(width - 1, max(0, (time - start) * width // span))

    lanes: dict[str, list[str]] = {}
    for segment in segments:
        if segment.end <= start or segment.start >= end:
            continue
        lane = lane_of(segment.category)
        row = lanes.setdefault(lane, [" "] * width)
        first = column(max(segment.start, start))
        last = column(min(segment.end, end) - 1)
        for position in range(first, last + 1):
            row[position] = "#"

    if lane_order is not None:
        ordered = [lane for lane in lane_order if lane in lanes]
        ordered += [lane for lane in sorted(lanes) if lane not in ordered]
    else:
        ordered = sorted(lanes)

    label_width = max((len(lane) for lane in ordered), default=4) + 1
    lines = []

    if marks:
        mark_row = [" "] * width
        for mark in marks:
            if start <= mark.time < end:
                mark_row[column(mark.time)] = mark.symbol
        lines.append(" " * label_width + "|" + "".join(mark_row))
        legend = ", ".join(f"{m.symbol}={m.label}" for m in marks if m.label)
        if legend:
            lines.append(" " * (label_width + 1) + legend)

    for lane in ordered:
        lines.append(f"{lane:<{label_width}}|" + "".join(lanes[lane]))

    if clock is not None:
        left = f"{clock.cycles_to_us(start):.0f}us"
        right = f"{clock.cycles_to_us(end):.0f}us"
    else:
        left, right = str(start), str(end)
    axis = left + "-" * max(1, width - len(left) - len(right)) + right
    lines.append(" " * label_width + "+" + axis)
    return "\n".join(lines)


def segments_between(segments: Iterable[CpuSegment],
                     start: int, end: int) -> list[CpuSegment]:
    """Segments overlapping ``[start, end)``."""
    return [s for s in segments if s.end > start and s.start < end]


def occupancy_by_lane(segments: Iterable[CpuSegment],
                      start: int, end: int) -> dict[str, int]:
    """Cycles of CPU occupancy per lane within a window."""
    totals: dict[str, int] = {}
    for segment in segments:
        overlap = min(segment.end, end) - max(segment.start, start)
        if overlap > 0:
            lane = lane_of(segment.category)
            totals[lane] = totals.get(lane, 0) + overlap
    return totals
