"""Latency statistics: summaries and running averages (Fig. 7).

Latency series flow through here as columnar ``array('d')`` stores
(see ``repro.hypervisor.hypervisor.LatencyColumns``): :func:`summarize`
has a single-sort fast path for them that skips the per-element
``float()`` boxing pass, and :func:`sample_array` converts arbitrary
float sequences into the columnar form.  Both paths produce
bit-identical results — pinned by ``tests/test_stats.py`` against
golden values and ``statistics.quantiles``.
"""

from __future__ import annotations

import math
from array import array
from dataclasses import dataclass
from typing import Iterable, Sequence


def sample_array(values: Iterable[float]) -> array:
    """Pack a latency sample into the columnar ``array('d')`` form."""
    if isinstance(values, array) and values.typecode == "d":
        return values
    return array("d", values)


@dataclass(frozen=True)
class LatencySummary:
    """Five-number-plus summary of a latency sample."""

    count: int
    mean: float
    minimum: float
    maximum: float
    p50: float
    p95: float
    p99: float
    stddev: float


def percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Linear-interpolation percentile of a pre-sorted sample."""
    if not sorted_values:
        raise ValueError("cannot take a percentile of an empty sample")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    if len(sorted_values) == 1:
        return float(sorted_values[0])
    position = fraction * (len(sorted_values) - 1)
    lower = int(math.floor(position))
    upper = int(math.ceil(position))
    if lower == upper:
        return float(sorted_values[lower])
    weight = position - lower
    return float(sorted_values[lower] * (1 - weight)
                 + sorted_values[upper] * weight)


def summarize(values: Sequence[float]) -> LatencySummary:
    """Compute a :class:`LatencySummary` of a latency sample."""
    if not values:
        raise ValueError("cannot summarize an empty sample")
    if isinstance(values, array) and values.typecode == "d":
        # Columnar fast path: the elements are already C doubles, so a
        # single sort suffices — the float() boxing pass below would
        # reproduce the same objects element for element.
        ordered = sorted(values)
    else:
        ordered = sorted(float(v) for v in values)
    count = len(ordered)
    mean = sum(ordered) / count
    variance = sum((v - mean) ** 2 for v in ordered) / count
    return LatencySummary(
        count=count,
        mean=mean,
        minimum=ordered[0],
        maximum=ordered[-1],
        p50=percentile(ordered, 0.50),
        p95=percentile(ordered, 0.95),
        p99=percentile(ordered, 0.99),
        stddev=math.sqrt(variance),
    )


def running_average(values: Sequence[float],
                    window: "int | None" = None) -> list[float]:
    """Running average over a sample — the y-axis of Fig. 7.

    With ``window=None`` the cumulative mean up to each index is
    returned (matching the figure's "average IRQ latency over events"
    presentation); with an integer window, a sliding-window mean.
    """
    if window is not None and window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    result: list[float] = []
    if window is None:
        total = 0.0
        for i, value in enumerate(values, start=1):
            total += value
            result.append(total / i)
        return result
    total = 0.0
    for i, value in enumerate(values):
        total += value
        if i >= window:
            total -= values[i - window]
            result.append(total / window)
        else:
            result.append(total / (i + 1))
    return result


def improvement_factor(baseline_mean: float, improved_mean: float) -> float:
    """Ratio of average latencies (the paper's ~16x headline metric)."""
    if improved_mean <= 0:
        raise ValueError(f"improved mean must be positive, got {improved_mean}")
    return baseline_mean / improved_mean
