"""Latency histograms (the Fig. 6 presentation).

Fixed-width binning of IRQ latencies, separable by handling mode so
the direct / interposed / delayed clusters of the paper's figures can
be rendered and asserted on individually.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence


@dataclass(frozen=True)
class HistogramBin:
    """One half-open bin ``[low, high)`` with its count."""

    low: float
    high: float
    count: int


class LatencyHistogram:
    """Fixed-width histogram over a bounded range.

    Values at or above ``high`` land in a dedicated overflow bucket
    (they are never silently dropped).
    """

    def __init__(self, low: float, high: float, bin_width: float):
        if high <= low:
            raise ValueError(f"need high > low, got [{low}, {high})")
        if bin_width <= 0:
            raise ValueError(f"bin width must be positive, got {bin_width}")
        self.low = low
        self.high = high
        self.bin_width = bin_width
        self._num_bins = math.ceil((high - low) / bin_width)
        self._counts = [0] * self._num_bins
        self._overflow = 0
        self._underflow = 0
        self._total = 0
        self._sum = 0.0
        self._max: Optional[float] = None
        self._min: Optional[float] = None

    def add(self, value: float) -> None:
        self._total += 1
        self._sum += value
        self._max = value if self._max is None else max(self._max, value)
        self._min = value if self._min is None else min(self._min, value)
        if value < self.low:
            self._underflow += 1
            return
        if value >= self.high:
            self._overflow += 1
            return
        index = int((value - self.low) / self.bin_width)
        index = min(index, self._num_bins - 1)
        self._counts[index] += 1

    def add_all(self, values: Iterable[float]) -> None:
        # One bound-method lookup for the whole (possibly columnar)
        # sample.  Deliberately NOT bulk-summed: self._sum must
        # accumulate in per-value order so histogram totals stay
        # bit-identical to the one-at-a-time path.
        add = self.add
        for value in values:
            add(value)

    @property
    def total(self) -> int:
        return self._total

    @property
    def overflow(self) -> int:
        return self._overflow

    @property
    def underflow(self) -> int:
        return self._underflow

    @property
    def mean(self) -> float:
        if self._total == 0:
            raise ValueError("histogram is empty")
        return self._sum / self._total

    @property
    def max_value(self) -> float:
        if self._max is None:
            raise ValueError("histogram is empty")
        return self._max

    @property
    def min_value(self) -> float:
        if self._min is None:
            raise ValueError("histogram is empty")
        return self._min

    def bins(self) -> list[HistogramBin]:
        result = []
        for i, count in enumerate(self._counts):
            low = self.low + i * self.bin_width
            result.append(HistogramBin(low, low + self.bin_width, count))
        return result

    def counts(self) -> list[int]:
        return list(self._counts)

    def fraction_below(self, threshold: float) -> float:
        """Fraction of all recorded values strictly below ``threshold``."""
        if self._total == 0:
            raise ValueError("histogram is empty")
        covered = self._underflow
        for bin_ in self.bins():
            if bin_.high <= threshold:
                covered += bin_.count
            elif bin_.low < threshold:
                # Partial bin: attribute proportionally (approximation).
                covered += bin_.count * (threshold - bin_.low) / self.bin_width
            else:
                break
        return covered / self._total

    def render(self, width: int = 60, unit: str = "us",
               log_scale: bool = False) -> str:
        """ASCII rendering in the style of the paper's Fig. 6.

        ``log_scale`` emulates the paper's broken/dual-scale y-axis:
        bars are proportional to log10(1 + count), keeping both the
        tall direct-latency spike and the flat delayed plateau visible.
        """
        lines = []
        peak = max(self._counts) if any(self._counts) else 1
        scale = (math.log10(1 + peak) if log_scale else peak) or 1
        for bin_ in self.bins():
            magnitude = math.log10(1 + bin_.count) if log_scale else bin_.count
            bar = "#" * int(round(width * magnitude / scale))
            lines.append(
                f"[{bin_.low:>9.1f}, {bin_.high:>9.1f}) {unit} "
                f"{bin_.count:>7d} {bar}"
            )
        if self._overflow:
            lines.append(f"overflow (>= {self.high} {unit}): {self._overflow}")
        return "\n".join(lines)


def fig6_histogram(latencies_us: Sequence[float],
                   tdma_cycle_us: float = 14_000.0,
                   bin_width_us: float = 250.0) -> LatencyHistogram:
    """Histogram with the Fig. 6 axis (0 to the TDMA-bounded maximum)."""
    histogram = LatencyHistogram(0.0, tdma_cycle_us, bin_width_us)
    histogram.add_all(latencies_us)
    return histogram
