"""Text rendering of experiment results (paper-style tables/figures)."""

from __future__ import annotations

from typing import Mapping, Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: "str | None" = None) -> str:
    """Render an aligned text table."""
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError(
                f"row {row!r} has {len(row)} cells, expected {columns}"
            )
    cells = [[str(h) for h in headers]] + [
        [_format_cell(value) for value in row] for row in rows
    ]
    widths = [max(len(row[i]) for row in cells) for i in range(columns)]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(cells[0], widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in cells[1:]:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def render_mode_breakdown(counts: Mapping[str, int]) -> str:
    """Render handling-mode counts with percentages, e.g.
    ``direct 40.1% (6010), interposed 39.8% (5968), delayed 20.1% (3022)``.
    """
    total = sum(counts.values())
    if total == 0:
        return "(no IRQs recorded)"
    parts = []
    for mode in ("direct", "interposed", "delayed"):
        if mode in counts:
            count = counts[mode]
            parts.append(f"{mode} {100.0 * count / total:.1f}% ({count})")
    for mode, count in counts.items():
        if mode not in ("direct", "interposed", "delayed"):
            parts.append(f"{mode} {100.0 * count / total:.1f}% ({count})")
    return ", ".join(parts)


def render_series(series: Sequence[float], width: int = 72,
                  height: int = 16, label: str = "") -> str:
    """Coarse ASCII line plot of a series (the Fig. 7 presentation)."""
    if not series:
        return "(empty series)"
    lo = min(series)
    hi = max(series)
    span = (hi - lo) or 1.0
    # Downsample to `width` columns.
    columns = []
    n = len(series)
    for c in range(width):
        start = c * n // width
        end = max(start + 1, (c + 1) * n // width)
        chunk = series[start:end]
        columns.append(sum(chunk) / len(chunk))
    grid = [[" "] * width for _ in range(height)]
    for c, value in enumerate(columns):
        row = int((value - lo) / span * (height - 1))
        grid[height - 1 - row][c] = "*"
    lines = [f"{label}  (min={lo:.1f}, max={hi:.1f})"] if label else []
    for r, row in enumerate(grid):
        axis = hi - r * span / (height - 1)
        lines.append(f"{axis:>10.1f} |" + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    return "\n".join(lines)
