"""Export measurement data to CSV/JSON for external analysis.

Downstream users typically post-process latency records with pandas or
gnuplot; these helpers write stable, documented formats:

* latency records — one row per IRQ with arrival/completion/mode;
* histograms — one row per bin;
* Fig. 7-style series — one row per event index.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, Sequence, Union

from repro.hypervisor.hypervisor import LatencyRecord
from repro.metrics.histogram import LatencyHistogram
from repro.sim.clock import Clock

PathLike = Union[str, Path]


def write_latency_csv(path: PathLike, records: Iterable[LatencyRecord],
                      clock: "Clock | None" = None) -> int:
    """Write latency records to CSV; returns the number of rows.

    Columns: source, seq, arrival, completed_at, latency (cycles),
    latency_us (when a clock is given), mode, enforced_cut.
    """
    rows = 0
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        header = ["source", "seq", "arrival", "completed_at",
                  "latency_cycles", "mode", "enforced_cut"]
        if clock is not None:
            header.insert(5, "latency_us")
        writer.writerow(header)
        for record in records:
            row = [record.source, record.seq, record.arrival,
                   record.completed_at, record.latency,
                   record.mode.value, int(record.enforced_cut)]
            if clock is not None:
                row.insert(5, f"{clock.cycles_to_us(record.latency):.3f}")
            writer.writerow(row)
            rows += 1
    return rows


def write_histogram_csv(path: PathLike,
                        histogram: LatencyHistogram) -> int:
    """Write a histogram to CSV (bin_low, bin_high, count)."""
    bins = histogram.bins()
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["bin_low", "bin_high", "count"])
        for bin_ in bins:
            writer.writerow([bin_.low, bin_.high, bin_.count])
        writer.writerow(["overflow", "", histogram.overflow])
        writer.writerow(["underflow", "", histogram.underflow])
    return len(bins)


def write_series_csv(path: PathLike, series: Sequence[float],
                     column: str = "value") -> int:
    """Write an indexed series (e.g. the Fig. 7 running average)."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["index", column])
        for index, value in enumerate(series):
            writer.writerow([index, value])
    return len(series)


def write_records_json(path: PathLike, records: Iterable[LatencyRecord],
                       metadata: "dict | None" = None) -> int:
    """Write latency records (plus free-form metadata) as JSON."""
    payload = {
        "format": "repro-latency-records-v1",
        "metadata": metadata or {},
        "records": [
            {
                "source": record.source,
                "seq": record.seq,
                "arrival": record.arrival,
                "completed_at": record.completed_at,
                "mode": record.mode.value,
                "enforced_cut": record.enforced_cut,
            }
            for record in records
        ],
    }
    Path(path).write_text(json.dumps(payload))
    return len(payload["records"])


def read_records_json(path: PathLike) -> list[LatencyRecord]:
    """Load latency records written by :func:`write_records_json`."""
    from repro.core.policy import HandlingMode

    payload = json.loads(Path(path).read_text())
    if payload.get("format") != "repro-latency-records-v1":
        raise ValueError(f"{path} is not a repro latency-record file")
    return [
        LatencyRecord(
            source=entry["source"],
            seq=entry["seq"],
            arrival=entry["arrival"],
            completed_at=entry["completed_at"],
            mode=HandlingMode(entry["mode"]),
            enforced_cut=entry["enforced_cut"],
        )
        for entry in payload["records"]
    ]
