"""IRQ sources, emulated IRQ events and per-partition IRQ queues.

Following the architecture of Section 3 (Fig. 2): hardware IRQs are
acknowledged by a *top handler* in hypervisor context, which pushes an
emulated IRQ event into the interrupt queue of every subscribing
partition; the application-level processing happens later in a
*bottom handler* executing in partition context.  Queues are FIFO,
which prevents out-of-order bottom-handler execution (Section 5).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from repro.core.policy import HandlingMode, InterposingPolicy, NeverInterpose

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.baselines.throttling import InterruptThrottle


@dataclass
class IrqSource:
    """A hardware interrupt source managed by the hypervisor.

    Parameters
    ----------
    name:
        Identifier used in traces and statistics.
    line:
        Interrupt-controller line (lower = higher priority; line 0 is
        reserved for the hypervisor slot timer).
    subscriber:
        Name of the partition whose bottom handler processes this IRQ.
    top_handler_cycles:
        ``C_TH`` — execution time of the top handler (acknowledge the
        hardware, push the event).
    bottom_handler_cycles:
        ``C_BH`` — worst-case execution time of the bottom handler;
        also the enforcement budget for interposed execution.
    bottom_handler_actual:
        Optional callable ``seq -> cycles`` giving the *actual*
        execution time of the ``seq``-th bottom-handler invocation
        (defaults to ``C_BH``).  Values above ``C_BH`` model a
        misbehaving handler; enforcement cuts it off in foreign slots.
    policy:
        Interposing policy for this source (default: never interpose,
        i.e. the unmodified Fig. 4a top handler).
    on_top_handler:
        Hook called from within the top handler; the Section 6.1
        experiments use it to re-arm the IRQ-generating timer with the
        next pre-generated interarrival time.
    throttle:
        Optional source-level throttle (Regehr & Duongsaa baseline):
        arrivals it rejects are suppressed in the top handler — no
        event is pushed — modelling a source left disabled until a new
        interrupt is permissible.
    activates_task:
        Optional name of a *sporadic* guest task in the subscriber
        partition; the bottom handler releases one job of it on
        completion (the application-level reaction to the IRQ,
        closing the Fig. 2 chain end to end).
    """

    name: str
    line: int
    subscriber: str
    top_handler_cycles: int
    bottom_handler_cycles: int
    bottom_handler_actual: Optional[Callable[[int], int]] = None
    policy: InterposingPolicy = field(default_factory=NeverInterpose)
    on_top_handler: Optional[Callable[["IrqEvent"], None]] = None
    throttle: Optional["InterruptThrottle"] = None
    activates_task: Optional[str] = None

    def __post_init__(self):
        if self.line < 0:
            raise ValueError(f"IRQ line must be >= 0, got {self.line}")
        if self.top_handler_cycles < 0:
            raise ValueError(f"C_TH must be >= 0, got {self.top_handler_cycles}")
        if self.bottom_handler_cycles < 0:
            raise ValueError(f"C_BH must be >= 0, got {self.bottom_handler_cycles}")

    def actual_bottom_cycles(self, seq: int) -> int:
        """Actual execution demand of the ``seq``-th bottom handler."""
        if self.bottom_handler_actual is None:
            return self.bottom_handler_cycles
        cycles = self.bottom_handler_actual(seq)
        if cycles < 0:
            raise ValueError(f"bottom handler demand must be >= 0, got {cycles}")
        return cycles


class IrqEvent:
    """One emulated IRQ pushed into a partition's interrupt queue.

    A plain ``__slots__`` class rather than a dataclass: one instance
    exists per simulated IRQ, so experiment campaigns allocate tens of
    thousands of them and the dict-free layout measurably trims both
    allocation time and memory on the hot path.
    """

    __slots__ = ("source", "seq", "arrival", "bh_remaining", "mode",
                 "completed_at", "enforced_cut")

    def __init__(self, source: IrqSource, seq: int, arrival: int,
                 bh_remaining: int, mode: Optional[HandlingMode] = None,
                 completed_at: Optional[int] = None,
                 enforced_cut: bool = False):
        self.source = source
        self.seq = seq
        self.arrival = arrival                # top-handler activation timestamp
        self.bh_remaining = bh_remaining      # unprocessed bottom-handler cycles
        self.mode = mode
        self.completed_at = completed_at
        # True if enforcement cut the interposed execution short and the
        # remainder was processed later in the home slot.
        self.enforced_cut = enforced_cut

    @property
    def done(self) -> bool:
        return self.bh_remaining == 0

    @property
    def latency(self) -> Optional[int]:
        """Cycles from top-handler activation to bottom-handler completion."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.arrival

    def __repr__(self) -> str:
        mode = self.mode.value if self.mode else "?"
        return (
            f"IrqEvent({self.source.name}#{self.seq}, t={self.arrival}, "
            f"mode={mode}, remaining={self.bh_remaining})"
        )


class IrqQueueOverflow(RuntimeError):
    """Raised when a bounded IRQ queue overflows."""


class IrqQueue:
    """Per-partition FIFO queue of pending emulated IRQs.

    FIFO discipline is load-bearing: Section 5 requires that the queue
    mechanism prevents out-of-order bottom-handler execution, and the
    hypervisor only grants interposing when the queue is empty so the
    interposed event is always the head.
    """

    def __init__(self, capacity: Optional[int] = None):
        if capacity is not None and capacity <= 0:
            raise ValueError(f"queue capacity must be positive, got {capacity}")
        self._queue: deque[IrqEvent] = deque()
        self._capacity = capacity
        self._pushed = 0
        self._max_depth = 0

    @property
    def empty(self) -> bool:
        return not self._queue

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def pushed_count(self) -> int:
        return self._pushed

    @property
    def max_depth(self) -> int:
        """High-water mark of queue occupancy."""
        return self._max_depth

    def push(self, event: IrqEvent) -> None:
        if self._capacity is not None and len(self._queue) >= self._capacity:
            raise IrqQueueOverflow(
                f"IRQ queue overflow (capacity {self._capacity}) pushing {event!r}"
            )
        self._queue.append(event)
        self._pushed += 1
        self._max_depth = max(self._max_depth, len(self._queue))

    def head(self) -> Optional[IrqEvent]:
        """Peek the oldest pending event without removing it."""
        return self._queue[0] if self._queue else None

    def pop(self) -> IrqEvent:
        """Remove and return the oldest pending event."""
        if not self._queue:
            raise IndexError("pop from empty IRQ queue")
        return self._queue.popleft()

    def __iter__(self):
        return iter(self._queue)

    # ------------------------------------------------------------------
    # Snapshot/fork support (see repro.sim.snapshot)
    # ------------------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Plain-data queue state; events are recorded by source *name*."""
        return {
            "capacity": self._capacity,
            "pushed": self._pushed,
            "max_depth": self._max_depth,
            "events": [
                (event.source.name, event.seq, event.arrival,
                 event.bh_remaining,
                 event.mode.value if event.mode is not None else None,
                 event.completed_at, event.enforced_cut)
                for event in self._queue
            ],
        }

    def restore_state(self, state: dict,
                      sources: dict[str, IrqSource]) -> None:
        """Rebuild queued events against restored ``sources``."""
        self._pushed = state["pushed"]
        self._max_depth = state["max_depth"]
        self._queue = deque(
            IrqEvent(sources[name], seq, arrival, bh_remaining,
                     HandlingMode(mode) if mode is not None else None,
                     completed_at, enforced_cut)
            for name, seq, arrival, bh_remaining, mode,
            completed_at, enforced_cut in state["events"]
        )
