"""Hypervisor-mediated inter-partition communication (IPC).

The architecture figure of the paper (Fig. 1) shows IPC crossing the
isolation barrier through the hypervisor.  We model the classic
time-partitioned design: messages sent by one partition are buffered by
the hypervisor and handed to the receiving partition when its TDMA slot
next begins, so communication cannot create covert timing channels
between partitions.  Optionally a channel raises a (virtual) IRQ line
on delivery, letting the receiver process messages through the same
top/bottom-handler machinery as hardware interrupts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.hypervisor.partition import Partition


@dataclass
class Message:
    """One IPC message in flight or delivered."""

    payload: Any
    sent_at: int
    channel: str
    delivered_at: Optional[int] = None

    @property
    def latency(self) -> Optional[int]:
        if self.delivered_at is None:
            return None
        return self.delivered_at - self.sent_at


class IpcChannelFull(RuntimeError):
    """Raised when sending on a channel whose buffer is full."""


class IpcChannel:
    """A unidirectional, bounded, hypervisor-buffered message channel."""

    def __init__(self, name: str, sender: str, receiver: str,
                 capacity: int = 16, notify_line: Optional[int] = None):
        if capacity <= 0:
            raise ValueError(f"channel capacity must be positive, got {capacity}")
        self.name = name
        self.sender = sender
        self.receiver = receiver
        self.capacity = capacity
        self.notify_line = notify_line
        self.in_transit: list[Message] = []
        self.delivered: list[Message] = []

    def send(self, payload: Any, now: int) -> Message:
        """Buffer a message for delivery at the receiver's next slot."""
        if len(self.in_transit) >= self.capacity:
            raise IpcChannelFull(
                f"channel {self.name!r} full ({self.capacity} messages in transit)"
            )
        message = Message(payload=payload, sent_at=now, channel=self.name)
        self.in_transit.append(message)
        return message

    def deliver_all(self, now: int) -> list[Message]:
        """Move all in-transit messages to the delivered list."""
        batch = self.in_transit
        self.in_transit = []
        for message in batch:
            message.delivered_at = now
            self.delivered.append(message)
        return batch


class IpcRouter:
    """Routes channel deliveries into partition mailboxes at slot entry."""

    def __init__(self):
        self._channels: dict[str, IpcChannel] = {}
        self._hypervisor = None

    def bind(self, hypervisor) -> None:
        """Called by :meth:`Hypervisor.attach_ipc_router`."""
        self._hypervisor = hypervisor

    def create_channel(self, name: str, sender: str, receiver: str,
                       capacity: int = 16,
                       notify_line: Optional[int] = None) -> IpcChannel:
        if name in self._channels:
            raise ValueError(f"duplicate channel name {name!r}")
        channel = IpcChannel(name, sender, receiver, capacity, notify_line)
        self._channels[name] = channel
        return channel

    def channel(self, name: str) -> IpcChannel:
        return self._channels[name]

    @property
    def channels(self) -> dict[str, IpcChannel]:
        return dict(self._channels)

    def on_slot_entered(self, partition: Partition, now: int) -> None:
        """Deliver pending messages addressed to the entering partition."""
        for channel in self._channels.values():
            if channel.receiver != partition.name or not channel.in_transit:
                continue
            batch = channel.deliver_all(now)
            partition.mailbox.extend(batch)
            if (channel.notify_line is not None
                    and self._hypervisor is not None):
                self._hypervisor.intc.raise_line(channel.notify_line)

    def delivered_latencies(self, channel_name: str) -> list[int]:
        """Delivery latencies (cycles) of all delivered messages."""
        return [
            message.latency
            for message in self._channels[channel_name].delivered
        ]
