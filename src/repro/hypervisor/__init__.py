"""Simulated real-time hypervisor (uC/OS-MMU model).

TDMA partition scheduling, split top/bottom interrupt handling,
monitored interposed bottom handlers, context-switch cost accounting,
IPC and the Section 6.2 footprint model.
"""

from repro.hypervisor.config import (
    CostModel,
    HypervisorConfig,
    SlotConfig,
    PAPER_CTX_INVALIDATE_INSTRUCTIONS,
    PAPER_CTX_WRITEBACK_CYCLES,
    PAPER_MONITOR_INSTRUCTIONS,
    PAPER_SCHEDULER_INSTRUCTIONS,
)
from repro.hypervisor.context import ContextSwitchModel, SwitchReason
from repro.hypervisor.footprint import (
    PAPER_FOOTPRINT,
    ComponentFootprint,
    monitor_data_bytes,
    render_footprint_table,
    total_paper_code_bytes,
    total_paper_data_bytes,
)
from repro.hypervisor.hypervisor import Hypervisor, HypervisorStats, LatencyRecord
from repro.hypervisor.ipc import IpcChannel, IpcChannelFull, IpcRouter, Message
from repro.hypervisor.irq import IrqEvent, IrqQueue, IrqQueueOverflow, IrqSource
from repro.hypervisor.partition import Partition
from repro.hypervisor.scheduler import TdmaScheduler

__all__ = [
    "CostModel",
    "HypervisorConfig",
    "SlotConfig",
    "PAPER_CTX_INVALIDATE_INSTRUCTIONS",
    "PAPER_CTX_WRITEBACK_CYCLES",
    "PAPER_MONITOR_INSTRUCTIONS",
    "PAPER_SCHEDULER_INSTRUCTIONS",
    "ContextSwitchModel",
    "SwitchReason",
    "PAPER_FOOTPRINT",
    "ComponentFootprint",
    "monitor_data_bytes",
    "render_footprint_table",
    "total_paper_code_bytes",
    "total_paper_data_bytes",
    "Hypervisor",
    "HypervisorStats",
    "LatencyRecord",
    "IpcChannel",
    "IpcChannelFull",
    "IpcRouter",
    "Message",
    "IrqEvent",
    "IrqQueue",
    "IrqQueueOverflow",
    "IrqSource",
    "Partition",
    "TdmaScheduler",
]
