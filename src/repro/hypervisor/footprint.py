"""Static memory-footprint model (Section 6.2).

The paper reports the code/data memory cost of the mechanism inside
the hypervisor, measured with gcc -O1 on the ARM target:

====================================  ==========  ==========
Component                             Code bytes  Data bytes
====================================  ==========  ==========
TDMA scheduler modification                  392           0
Modified top handler (Fig. 4b)               456           0
Monitoring function                          272          28
------------------------------------  ----------  ----------
Total                                       1120          28
====================================  ==========  ==========

Binary code size is a property of the original implementation that a
Python simulation cannot re-measure; what we reproduce is the
*accounting* — which components the mechanism adds and how the budget
splits across them — and we report our equivalent Python module sizes
next to the paper's numbers for scale.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from pathlib import Path
from typing import Optional


@dataclass(frozen=True)
class ComponentFootprint:
    """Footprint entry for one mechanism component."""

    name: str
    paper_code_bytes: int
    paper_data_bytes: int
    module: str                       # our implementing module
    description: str

    def module_source_bytes(self) -> Optional[int]:
        """Size of our implementing Python source, if resolvable."""
        try:
            mod = importlib.import_module(self.module)
        except ImportError:
            return None
        path = getattr(mod, "__file__", None)
        if path is None:
            return None
        return Path(path).stat().st_size


#: The paper's Section 6.2 inventory, mapped onto our modules.
PAPER_FOOTPRINT: tuple[ComponentFootprint, ...] = (
    ComponentFootprint(
        name="TDMA scheduler modification",
        paper_code_bytes=392,
        paper_data_bytes=0,
        module="repro.hypervisor.scheduler",
        description="interposed-window support in the partition scheduler",
    ),
    ComponentFootprint(
        name="Modified top handler",
        paper_code_bytes=456,
        paper_data_bytes=0,
        module="repro.hypervisor.hypervisor",
        description="Fig. 4b dispatch: direct / delayed / interposed",
    ),
    ComponentFootprint(
        name="Monitoring function",
        paper_code_bytes=272,
        paper_data_bytes=28,
        module="repro.core.monitor",
        description="delta-minus activation monitor",
    ),
)


def total_paper_code_bytes() -> int:
    """Total mechanism code size reported by the paper (1120 bytes)."""
    return sum(entry.paper_code_bytes for entry in PAPER_FOOTPRINT)


def total_paper_data_bytes() -> int:
    """Total mechanism data size reported by the paper (28 bytes)."""
    return sum(entry.paper_data_bytes for entry in PAPER_FOOTPRINT)


def monitor_data_bytes(depth: int, timestamp_bytes: int = 4) -> int:
    """Model of the monitor's data memory as a function of table depth.

    The monitor state is the δ⁻ table (``depth`` entries) plus the
    history buffer of the last ``depth`` accepted timestamps, i.e.
    ``2 * depth * timestamp_bytes`` bytes, plus a small fixed header.
    With the paper's ``l = 1``-oriented implementation and 32-bit
    timestamps this reproduces the reported 28 bytes for a small fixed
    overhead of 20 bytes.
    """
    if depth <= 0:
        raise ValueError(f"depth must be positive, got {depth}")
    fixed_overhead = 20
    return fixed_overhead + 2 * depth * timestamp_bytes


def render_footprint_table() -> str:
    """Text table comparing the paper's sizes with our module sizes."""
    header = (
        f"{'component':<34s} {'paper code':>10s} {'paper data':>10s} "
        f"{'our module':<32s} {'py bytes':>9s}"
    )
    lines = [header, "-" * len(header)]
    for entry in PAPER_FOOTPRINT:
        size = entry.module_source_bytes()
        size_text = "n/a" if size is None else str(size)
        lines.append(
            f"{entry.name:<34s} {entry.paper_code_bytes:>10d} "
            f"{entry.paper_data_bytes:>10d} {entry.module:<32s} {size_text:>9s}"
        )
    lines.append("-" * len(header))
    lines.append(
        f"{'total':<34s} {total_paper_code_bytes():>10d} "
        f"{total_paper_data_bytes():>10d}"
    )
    return "\n".join(lines)
