"""Static TDMA partition scheduler.

Partitions are assigned fixed-length time slots; the hypervisor cycles
through the slot table in a static order (Section 3).  Unused capacity
of a slot is left unused — never donated to other partitions — which is
what makes the temporal properties of one partition independent of the
execution behaviour of the others.

Slot boundaries are *nominal* (absolute multiples within the table):
even when delivery of the slot-timer interrupt is delayed by a masked
hypervisor section, subsequent boundaries stay on the fixed grid, so
the schedule never drifts.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.hypervisor.config import SlotConfig


class TdmaScheduler:
    """Cyclic executive over a static slot table."""

    def __init__(self, slots: Sequence[SlotConfig]):
        if not slots:
            raise ValueError("TDMA slot table must not be empty")
        self._slots = list(slots)
        self._cycle_length = sum(slot.length_cycles for slot in self._slots)
        self._index = 0
        self._nominal_start = 0
        self._epoch = 0
        self._started = False
        self._slots_skipped = 0
        self._advances = 0
        # Cumulative slot-end offsets within one cycle (last == cycle length).
        self._end_offsets: list[int] = []
        position = 0
        for slot in self._slots:
            position += slot.length_cycles
            self._end_offsets.append(position)

    # ------------------------------------------------------------------
    # Static table queries (used by the analysis as well)
    # ------------------------------------------------------------------

    @property
    def slots(self) -> list[SlotConfig]:
        return list(self._slots)

    @property
    def cycle_length(self) -> int:
        """``T_TDMA`` — the sum of all slot lengths."""
        return self._cycle_length

    def slot_length(self, partition: str) -> int:
        """``T_i`` — total slot time of a partition per TDMA cycle."""
        total = sum(
            slot.length_cycles for slot in self._slots if slot.partition == partition
        )
        if total == 0:
            raise KeyError(f"partition {partition!r} has no slot in the table")
        return total

    def partitions(self) -> list[str]:
        """Distinct partition names in table order."""
        seen: list[str] = []
        for slot in self._slots:
            if slot.partition not in seen:
                seen.append(slot.partition)
        return seen

    def owner_at(self, time: int) -> str:
        """Partition that *nominally* owns the slot at absolute time ``time``.

        Nominal ownership follows the fixed TDMA grid (anchored at the
        schedule's start epoch) regardless of any delivery jitter of
        the slot-timer interrupt.
        """
        if time < self._epoch:
            raise ValueError(f"time {time} precedes schedule epoch {self._epoch}")
        offset = (time - self._epoch) % self._cycle_length
        for slot in self._slots:
            if offset < slot.length_cycles:
                return slot.partition
            offset -= slot.length_cycles
        raise AssertionError("unreachable: offset exceeded cycle length")

    def next_nominal_boundary_after(self, time: int) -> int:
        """First nominal slot boundary strictly after ``time``."""
        if time < self._epoch:
            raise ValueError(f"time {time} precedes schedule epoch {self._epoch}")
        relative = time - self._epoch
        base = (relative // self._cycle_length) * self._cycle_length
        within = relative - base
        for end in self._end_offsets:
            if end > within:
                return self._epoch + base + end
        raise AssertionError("unreachable: within-cycle offset past cycle end")

    def slot_start_offsets(self) -> list[int]:
        """Nominal start offset of each table entry within the cycle."""
        offsets = []
        position = 0
        for slot in self._slots:
            offsets.append(position)
            position += slot.length_cycles
        return offsets

    # ------------------------------------------------------------------
    # Runtime state (driven by the hypervisor)
    # ------------------------------------------------------------------

    def start(self, t0: int) -> int:
        """Begin the schedule at ``t0``; returns the first boundary time."""
        self._started = True
        self._index = 0
        self._nominal_start = t0
        self._epoch = t0
        return self.next_boundary()

    @property
    def current_slot(self) -> SlotConfig:
        return self._slots[self._index]

    @property
    def current_owner(self) -> str:
        return self._slots[self._index].partition

    @property
    def nominal_slot_start(self) -> int:
        """Nominal start time of the current slot."""
        return self._nominal_start

    def next_boundary(self) -> int:
        """Nominal end time of the current slot."""
        return self._nominal_start + self._slots[self._index].length_cycles

    def advance(self, now: Optional[int] = None) -> SlotConfig:
        """Move to the next slot (wrapping around the table).

        If ``now`` is given and delivery was so late that one or more
        whole nominal slots have already elapsed, those slots are
        skipped (and counted) so the schedule stays on the nominal
        grid.
        """
        if not self._started:
            raise RuntimeError("scheduler not started")
        self._advances += 1
        self._step()
        if now is not None:
            while self.next_boundary() <= now:
                self._step()
                self._slots_skipped += 1
        return self.current_slot

    def jump_cycles(self, cycles: int) -> None:
        """Advance through ``cycles`` whole TDMA cycles of on-grid boundaries.

        Used by the idle-skip fast-forward: a full cycle of boundary
        deliveries — each exactly on its nominal grid point — returns
        the table to the same index, so ``cycles`` of them collapse to
        one nominal-start shift and an advance-counter bump, exactly
        equal to ``len(slots) * cycles`` individual :meth:`advance`
        calls (no slot is ever late, so none are skipped).
        """
        if not self._started:
            raise RuntimeError("scheduler not started")
        if cycles < 0:
            raise ValueError(f"cycle count must be >= 0, got {cycles}")
        self._advances += cycles * len(self._slots)
        self._nominal_start += cycles * self._cycle_length

    @property
    def slots_skipped(self) -> int:
        """Slots skipped entirely due to late boundary delivery."""
        return self._slots_skipped

    @property
    def advance_count(self) -> int:
        """Number of delivered slot boundaries (``advance`` calls)."""
        return self._advances

    def _step(self) -> None:
        self._nominal_start += self._slots[self._index].length_cycles
        self._index = (self._index + 1) % len(self._slots)

    # ------------------------------------------------------------------
    # Snapshot/fork support (see repro.sim.snapshot); the static slot
    # table is rebuilt from configuration, only runtime state is here.
    # ------------------------------------------------------------------

    def snapshot_state(self) -> dict:
        return {
            "index": self._index,
            "nominal_start": self._nominal_start,
            "epoch": self._epoch,
            "started": self._started,
            "slots_skipped": self._slots_skipped,
            "advances": self._advances,
        }

    def restore_state(self, state: dict) -> None:
        self._index = state["index"]
        self._nominal_start = state["nominal_start"]
        self._epoch = state["epoch"]
        self._started = state["started"]
        self._slots_skipped = state["slots_skipped"]
        self._advances = state["advances"]

    def __repr__(self) -> str:
        table = ", ".join(
            f"{slot.partition}:{slot.length_cycles}" for slot in self._slots
        )
        return f"TdmaScheduler([{table}], T_TDMA={self._cycle_length})"
