"""Application partitions.

A partition is the hypervisor's unit of isolation (Fig. 1): it owns an
emulated IRQ queue, optionally a guest OS kernel with tasks, and an
IPC mailbox.  From the hypervisor scheduler's perspective a partition
is just a task (Section 4), so it carries no scheduling logic of its
own — the hypervisor decides when it runs, the guest kernel decides
what it runs.
"""

from __future__ import annotations

from typing import Optional

from repro.guestos.kernel import GuestKernel
from repro.hypervisor.irq import IrqQueue


class Partition:
    """One spatially and temporally isolated application partition."""

    def __init__(self, name: str, guest: Optional[GuestKernel] = None,
                 busy_background: bool = True,
                 irq_queue_capacity: Optional[int] = None):
        """
        Parameters
        ----------
        name:
            Partition identifier; also used in the TDMA slot table.
        guest:
            Optional guest OS kernel.  Without one, the partition runs
            a generic background load (or idles, see below).
        busy_background:
            When True (default) and no guest job is ready, the
            partition executes an infinite background loop — the
            "current task" in Fig. 2.  When False the partition idles,
            leaving its slot capacity unused.
        irq_queue_capacity:
            Optional bound on the emulated IRQ queue.
        """
        if not name:
            raise ValueError("partition name must be non-empty")
        self.name = name
        self.guest = guest
        self.busy_background = busy_background
        self.irq_queue = IrqQueue(capacity=irq_queue_capacity)
        self.mailbox: list = []

        # Statistics maintained by the hypervisor:
        self.bottom_handlers_completed = 0
        self.slots_entered = 0

    @property
    def has_pending_irqs(self) -> bool:
        return not self.irq_queue.empty

    # ------------------------------------------------------------------
    # Snapshot/fork support (see repro.sim.snapshot)
    # ------------------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Plain-data partition state at a quiescent point.

        Guest kernels carry task sets and release timers whose state is
        not part of the snapshot protocol (the experiment scenarios
        this serves never attach one); a pending mailbox likewise means
        IPC is in flight.  Both refuse loudly instead of forking a
        silently-diverging world.
        """
        from repro.sim.snapshot import SnapshotError

        if self.guest is not None:
            raise SnapshotError(
                f"partition {self.name!r} has a guest kernel attached"
            )
        if self.mailbox:
            raise SnapshotError(
                f"partition {self.name!r} has undelivered IPC messages"
            )
        return {
            "name": self.name,
            "busy_background": self.busy_background,
            "bottom_handlers_completed": self.bottom_handlers_completed,
            "slots_entered": self.slots_entered,
            "queue": self.irq_queue.snapshot_state(),
        }

    @classmethod
    def restore_from_snapshot(cls, state: dict) -> "Partition":
        """Rebuild the partition shell; the hypervisor restores the IRQ
        queue separately once the sources it references exist."""
        partition = cls(state["name"],
                        busy_background=state["busy_background"],
                        irq_queue_capacity=state["queue"]["capacity"])
        partition.bottom_handlers_completed = state["bottom_handlers_completed"]
        partition.slots_entered = state["slots_entered"]
        return partition

    def __repr__(self) -> str:
        guest = self.guest.name if self.guest else None
        return (
            f"Partition({self.name}, guest={guest}, "
            f"pending_irqs={len(self.irq_queue)})"
        )
