"""The simulated real-time hypervisor (uC/OS-MMU model).

This module ties the substrate together: TDMA partition scheduling
(Section 3), split top/bottom interrupt handling (Fig. 2), the original
and modified top handlers (Fig. 4a/4b), monitored interposed bottom
handler execution with budget enforcement (Section 5), and all the
accounting the evaluation needs (latencies, context switches,
per-partition interference).

Execution model
---------------
The single CPU either runs a preemptible :class:`~repro.sim.cpu.Execution`
(a guest task, a bottom handler, or the idle loop) or is inside a
*masked hypervisor section* — a chain of timed steps (top handler,
monitor check, scheduler manipulation, context switch) during which the
interrupt controller holds pending lines.  IRQ lines preempt
executions; hypervisor sections complete atomically.

Interrupt handling paths (Fig. 4b)
----------------------------------
* **direct** — the subscriber's own slot is active: the event is queued
  and the partition's dispatcher runs the bottom handler immediately
  after the hypervisor returns to partition context.
* **delayed** — foreign slot, interposing denied: the event waits in
  the queue until the subscriber's next slot.
* **interposed** — foreign slot, monitor grants the activation: the
  hypervisor pays ``C_sched`` plus a context switch, runs the bottom
  handler in the subscriber's context for at most ``C_BH`` cycles
  (budget enforced), then switches back.

An interposed window executes the subscriber's bottom-handler
dispatcher, which drains the IRQ queue head-first within the enforced
budget, so FIFO ordering of bottom handlers is preserved even when
older delayed events are still pending (Section 5: "In all three cases
the IRQ queues are used, to prevent an out-of-order execution of
IRQs").  If a TDMA boundary fires during a window, the partition
switch is (configurably) deferred until the window's bounded budget
runs out, so d_min-adherent IRQs are never pushed back to delayed
handling — matching Fig. 6c, where no IRQ is delayed.
"""

from __future__ import annotations

from array import array
from dataclasses import asdict, dataclass
from typing import Any, Callable, Iterator, Optional, Sequence

from repro.core.independence import InterferenceKind, InterferenceLedger
from repro.core.policy import HandlingMode
from repro.guestos.tasks import GuestJob
from repro.hypervisor.config import CostModel, HypervisorConfig, SlotConfig
from repro.hypervisor.context import ContextSwitchModel, SwitchReason
from repro.hypervisor.irq import IrqEvent, IrqSource
from repro.hypervisor.partition import Partition
from repro.hypervisor.scheduler import TdmaScheduler
from repro.sim.clock import Clock
from repro.sim.cpu import Cpu, Execution
from repro.sim.engine import SimulationEngine
from repro.sim.events import EventHandle
from repro.sim.intc import InterruptController
from repro.sim.snapshot import SnapshotError, class_path, resolve_class
from repro.sim.trace import TraceKind, TraceRecorder


@dataclass(frozen=True)
class LatencyRecord:
    """Measured latency of one IRQ (Section 6.1 protocol).

    ``arrival`` is the top-handler activation timestamp, ``completed_at``
    the completion of the corresponding bottom handler; the difference
    is the measured IRQ latency.
    """

    source: str
    seq: int
    arrival: int
    completed_at: int
    mode: HandlingMode
    enforced_cut: bool

    @property
    def latency(self) -> int:
        return self.completed_at - self.arrival


#: Stable mode numbering for the columnar store (enum declaration order).
_MODES = tuple(HandlingMode)
_MODE_CODE = {mode: code for code, mode in enumerate(_MODES)}


class LatencyColumns:
    """Columnar store of measured IRQ latencies.

    At paper scale a run completes tens of thousands of IRQs, and the
    seed implementation boxed each one in a frozen
    :class:`LatencyRecord` on the completion hot path.  This store
    keeps the same data as parallel ``array`` columns — one C-level
    append per field, no per-sample Python object — plus an O(1)
    per-source completion count (``run_until_irq_count`` used to rescan
    the record list around every completion when filtering by source).

    Timestamps use ``array('q')`` (64-bit): a 600 s scenario at 200 MHz
    reaches 1.2e11 cycles, beyond 32 bits.  Sources are interned to
    small ids (``array('h')``), handling modes and cut flags to bytes.

    :class:`LatencyRecord` remains the public per-record view —
    ``Hypervisor.latency_records`` materializes records from the
    columns on demand — and the snapshot wire format is unchanged
    (:meth:`record_tuples` reproduces the exact tuples PR 4 shipped).
    """

    __slots__ = ("_source_ids", "_seqs", "_arrivals", "_completions",
                 "_modes", "_cuts", "_source_names", "_source_index",
                 "_source_counts", "_epoch")

    def __init__(self):
        self._source_ids = array("h")
        self._seqs = array("q")
        self._arrivals = array("q")
        self._completions = array("q")
        self._modes = array("b")
        self._cuts = array("b")
        self._source_names: list[str] = []
        self._source_index: dict[str, int] = {}
        self._source_counts: list[int] = []
        self._epoch = 0

    @property
    def snapshot_epoch(self) -> int:
        """Change counter bumped per append; lets the layered world
        store (:mod:`repro.sim.worldstore`) skip re-serializing the
        columns when no IRQ completed since the previous capture."""
        return self._epoch

    def append(self, source: str, seq: int, arrival: int, completed_at: int,
               mode: HandlingMode, enforced_cut: bool) -> None:
        self._epoch += 1
        sid = self._source_index.get(source)
        if sid is None:
            sid = len(self._source_names)
            self._source_index[source] = sid
            self._source_names.append(source)
            self._source_counts.append(0)
        self._source_ids.append(sid)
        self._seqs.append(seq)
        self._arrivals.append(arrival)
        self._completions.append(completed_at)
        self._modes.append(_MODE_CODE[mode])
        self._cuts.append(enforced_cut)
        self._source_counts[sid] += 1

    def __len__(self) -> int:
        return len(self._seqs)

    def count(self, source: Optional[str] = None) -> int:
        """Completed IRQs, optionally for one source — O(1) either way."""
        if source is None:
            return len(self._seqs)
        sid = self._source_index.get(source)
        return 0 if sid is None else self._source_counts[sid]

    def _iter_records(self) -> Iterator[LatencyRecord]:
        names = self._source_names
        for sid, seq, arrival, completed_at, mode, cut in zip(
                self._source_ids, self._seqs, self._arrivals,
                self._completions, self._modes, self._cuts):
            yield LatencyRecord(names[sid], seq, arrival, completed_at,
                                _MODES[mode], bool(cut))

    def records(self) -> list[LatencyRecord]:
        """Materialize the columns as the classic record list."""
        return list(self._iter_records())

    def record_tuples(self) -> list[tuple]:
        """Snapshot wire format: byte-identical to the boxed-record era."""
        names = self._source_names
        return [
            (names[sid], seq, arrival, completed_at,
             _MODES[mode].value, bool(cut))
            for sid, seq, arrival, completed_at, mode, cut in zip(
                self._source_ids, self._seqs, self._arrivals,
                self._completions, self._modes, self._cuts)
        ]

    def restore_tuples(self, tuples: Sequence[tuple]) -> None:
        for source, seq, arrival, completed_at, mode, enforced_cut in tuples:
            self.append(source, seq, arrival, completed_at,
                        HandlingMode(mode), enforced_cut)

    def latencies_cycles(self) -> array:
        """All latencies in cycles, in completion order, as ``array('q')``."""
        out = array("q", self._completions)
        arrivals = self._arrivals
        for index in range(len(out)):
            out[index] -= arrivals[index]
        return out

    def latencies_us(self, clock: Clock, source: Optional[str] = None,
                     mode: Optional[HandlingMode] = None) -> list[float]:
        """Latencies in µs, optionally filtered — a plain list, matching
        the public :meth:`Hypervisor.latencies_us` contract."""
        cycles_to_us = clock.cycles_to_us
        if source is None and mode is None:
            return [cycles_to_us(c - a)
                    for a, c in zip(self._arrivals, self._completions)]
        sid = None
        if source is not None:
            sid = self._source_index.get(source)
            if sid is None:
                return []
        code = None if mode is None else _MODE_CODE[mode]
        return [
            cycles_to_us(c - a)
            for a, c, s, m in zip(self._arrivals, self._completions,
                                  self._source_ids, self._modes)
            if (sid is None or s == sid) and (code is None or m == code)
        ]

    def latencies_us_array(self, clock: Clock) -> array:
        """All latencies in µs, in completion order, as ``array('d')``.

        Element values are computed with the same ``clock.cycles_to_us``
        call as the list form, so the floats are bit-identical.
        """
        cycles_to_us = clock.cycles_to_us
        return array("d", (cycles_to_us(c - a)
                           for a, c in zip(self._arrivals, self._completions)))

    def column_data(self) -> dict:
        """Raw column export for the run-artifact store (``repro.store``).

        Returns copies of the parallel arrays plus the interned source
        table; the mode column uses the stable ``_MODES`` declaration
        order.  Round trip via :meth:`from_column_data`.
        """
        return {
            "source_ids": array("h", self._source_ids),
            "seqs": array("q", self._seqs),
            "arrivals": array("q", self._arrivals),
            "completions": array("q", self._completions),
            "modes": array("b", self._modes),
            "cuts": array("b", self._cuts),
            "source_names": list(self._source_names),
        }

    @classmethod
    def from_column_data(cls, data: dict) -> "LatencyColumns":
        """Rebuild a column store from a :meth:`column_data` export."""
        columns = cls()
        names = data["source_names"]
        for sid, seq, arrival, completed_at, mode, cut in zip(
                data["source_ids"], data["seqs"], data["arrivals"],
                data["completions"], data["modes"], data["cuts"]):
            columns.append(names[sid], seq, arrival, completed_at,
                           _MODES[mode], bool(cut))
        return columns

    def mode_counts(self, source: Optional[str] = None) -> dict[HandlingMode, int]:
        counts = [0] * len(_MODES)
        if source is None:
            for code in self._modes:
                counts[code] += 1
        else:
            sid = self._source_index.get(source)
            if sid is not None:
                for s, code in zip(self._source_ids, self._modes):
                    if s == sid:
                        counts[code] += 1
        return {mode: counts[code] for code, mode in enumerate(_MODES)}


@dataclass
class HypervisorStats:
    """Aggregate counters maintained during a run.

    The ``*_starts``/``*_ends``/``monitor_*``/``slot_switches`` fields
    are incremented at exactly the sites that emit the corresponding
    :class:`~repro.sim.trace.TraceKind` events, so they reconcile 1:1
    with ``TraceRecorder.of_kind`` counts whenever tracing is enabled —
    and keep counting (a plain integer bump) when it is not.  The
    telemetry collectors (:mod:`repro.telemetry.collectors`) sample
    them into a :class:`~repro.telemetry.registry.MetricsRegistry`.
    """

    irqs_delivered: int = 0
    windows_opened: int = 0           # == INTERPOSE_START emissions
    windows_suspended: int = 0        # interposed windows cut by a slot boundary
    slot_switches_deferred: int = 0   # boundaries deferred until a window closed
    budget_exhausted: int = 0         # enforcement fired (C_BH cap reached)
    structural_denials: int = 0       # interpose impossible (window open / queue busy)
    monitor_consultations: int = 0
    spurious_irqs: int = 0
    irqs_throttled: int = 0           # suppressed by a source-level throttle
    top_handler_starts: int = 0       # == TOP_HANDLER_START emissions
    top_handler_ends: int = 0         # == TOP_HANDLER_END emissions
    bottom_handler_starts: int = 0    # == BOTTOM_HANDLER_START emissions
    bottom_handler_ends: int = 0      # == BOTTOM_HANDLER_END emissions
    bottom_handler_preemptions: int = 0   # == BOTTOM_HANDLER_PREEMPTED
    monitor_accepts: int = 0          # == MONITOR_ACCEPT emissions
    monitor_denies: int = 0           # == MONITOR_DENY emissions
    interpose_ends: int = 0           # == INTERPOSE_END emissions
    slot_switches: int = 0            # == SLOT_SWITCH emissions


class _InterposeWindow:
    """State of an in-progress interposed bottom-handler execution.

    ``trigger`` is the accepted IRQ event that opened the window;
    ``active_event`` is the queue head currently being processed.  The
    window executes the subscriber's bottom-handler dispatcher, which
    drains the IRQ queue head-first (FIFO), for at most
    ``budget_remaining`` cycles — the hypervisor-enforced ``C_BH`` of
    the accepted activation.  ``__slots__`` because one is allocated
    per interposed activation, which at paper scale is thousands per
    run.
    """

    __slots__ = ("trigger", "subscriber", "host", "budget_remaining",
                 "started_at", "active_event", "current_execution", "pseudo")

    def __init__(self, trigger: IrqEvent, subscriber: Partition, host: str,
                 budget_remaining: int, started_at: int,
                 active_event: Optional[IrqEvent] = None,
                 current_execution: Optional[Execution] = None,
                 pseudo: bool = False):
        self.trigger = trigger
        self.subscriber = subscriber
        self.host = host                   # partition whose slot is consumed
        self.budget_remaining = budget_remaining
        self.started_at = started_at
        self.active_event = active_event
        self.current_execution = current_execution
        # A pseudo-window carries a *home* bottom handler over a deferred
        # TDMA boundary (bounded by the declared C_BH); it involves no
        # extra context switches and no foreign-slot classification.
        self.pseudo = pseudo


class Hypervisor:
    """A complete simulated hypervisor system.

    Typical construction::

        hv = Hypervisor([SlotConfig("P1", c1), SlotConfig("P2", c2)])
        hv.add_partition(Partition("P1"))
        hv.add_partition(Partition("P2"))
        hv.add_irq_source(IrqSource(..., subscriber="P2", policy=...))
        hv.start()
        hv.run_until(hv.clock.ms_to_cycles(500))
    """

    def __init__(self, slots: Sequence[SlotConfig],
                 config: Optional[HypervisorConfig] = None):
        self.config = config or HypervisorConfig()
        self.clock: Clock = self.config.make_clock()
        self.engine = SimulationEngine()
        self.trace = TraceRecorder(enabled=self.config.trace_enabled,
                                   capacity=self.config.trace_capacity)
        self.intc = InterruptController(self.engine, trace=self.trace)
        self.cpu = Cpu(self.engine,
                       record_segments=self.config.record_cpu_segments)
        self.scheduler = TdmaScheduler(slots)
        self.context_switches = ContextSwitchModel(self.config.costs)
        self.ledger = InterferenceLedger()
        self.stats = HypervisorStats()
        self.latency_columns = LatencyColumns()

        self._partitions: dict[str, Partition] = {}
        self._sources_by_line: dict[int, IrqSource] = {}
        self._sources: dict[str, IrqSource] = {}
        self._irq_seq: dict[str, int] = {}
        self._window: Optional[_InterposeWindow] = None
        self._deferred_slot_switch = False
        self._slot_line = self.config.slot_timer_line
        self._started = False
        self._ipc_router = None  # set via attach_ipc_router
        # Per-completion hook installed by run_until_irq_count so the
        # engine stops itself instead of being polled event by event.
        # Receives the completed IRQ's source name (the one field the
        # watcher filters on — cheaper than materializing a record).
        self._completion_watcher: Optional[Callable[[str], None]] = None
        # Handle of the pending TDMA boundary event, kept so a world
        # snapshot can claim and re-bind it (see repro.sim.snapshot).
        self._boundary_handle: Optional[EventHandle] = None
        # Idle-skip (analytic fast-forward across quiescent TDMA gaps).
        # The callback behind the "tdma-boundary" event is chosen once:
        # with skip enabled it is the skip-aware entry, which falls back
        # to the ordinary raise when the world is not quiescent.  The
        # callback identity is unobservable — snapshots claim only the
        # event's (time, seq) and the label is the same — so traces,
        # digests and CSVs stay byte-identical either way.
        self._idle_skip = self.engine.idle_skip_enabled
        self._boundary_callback: Callable[[], None] = (
            self._boundary_dispatch if self._idle_skip
            else self._raise_slot_line
        )
        self._min_slot_cycles = min(
            slot.length_cycles for slot in self.scheduler.slots
        )

        self.intc.set_dispatcher(self._irq_entry)

    # ------------------------------------------------------------------
    # System construction
    # ------------------------------------------------------------------

    def add_partition(self, partition: Partition) -> Partition:
        """Register a partition; its name must appear in the slot table."""
        if self._started:
            raise RuntimeError("cannot add partitions after start()")
        if partition.name in self._partitions:
            raise ValueError(f"duplicate partition {partition.name!r}")
        if partition.name not in self.scheduler.partitions():
            raise ValueError(
                f"partition {partition.name!r} has no slot in the TDMA table"
            )
        self._partitions[partition.name] = partition
        if partition.guest is not None:
            kernel = partition.guest
            kernel.attach(self.engine,
                          lambda name=partition.name: self._notify_work(name))
        return partition

    def add_irq_source(self, source: IrqSource) -> IrqSource:
        """Register a hardware IRQ source."""
        if self._started:
            raise RuntimeError("cannot add IRQ sources after start()")
        if source.line == self._slot_line:
            raise ValueError(
                f"line {source.line} is reserved for the hypervisor slot timer"
            )
        if source.line in self._sources_by_line:
            raise ValueError(f"line {source.line} already in use")
        if source.name in self._sources:
            raise ValueError(f"duplicate IRQ source name {source.name!r}")
        if source.subscriber not in self._partitions:
            raise ValueError(
                f"IRQ source {source.name!r} subscribes unknown partition "
                f"{source.subscriber!r}"
            )
        self._sources_by_line[source.line] = source
        self._sources[source.name] = source
        self._irq_seq[source.name] = 0
        return source

    def partition(self, name: str) -> Partition:
        return self._partitions[name]

    @property
    def partitions(self) -> dict[str, Partition]:
        return dict(self._partitions)

    def irq_source(self, name: str) -> IrqSource:
        return self._sources[name]

    def attach_ipc_router(self, router) -> None:
        """Install an :class:`~repro.hypervisor.ipc.IpcRouter`."""
        self._ipc_router = router
        router.bind(self)

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Begin TDMA scheduling and dispatch the first partition."""
        if self._started:
            raise RuntimeError("hypervisor already started")
        missing = [
            name for name in self.scheduler.partitions()
            if name not in self._partitions
        ]
        if missing:
            raise RuntimeError(f"slot table references unknown partitions: {missing}")
        self._started = True
        boundary = self.scheduler.start(self.engine.now)
        self._schedule_boundary(boundary)
        first = self._partitions[self.scheduler.current_owner]
        first.slots_entered += 1
        self._dispatch(first)

    def run_until(self, time_cycles: int) -> None:
        """Run the simulation up to an absolute time in cycles."""
        self._require_started()
        self.engine.run_until(time_cycles)

    def run_for_us(self, microseconds: float) -> None:
        """Run the simulation for a duration given in microseconds."""
        self._require_started()
        self.engine.run_until(self.engine.now + self.clock.us_to_cycles(microseconds))

    def run_until_irq_count(self, count: int, source: Optional[str] = None,
                            limit_cycles: Optional[int] = None) -> int:
        """Run until ``count`` bottom handlers have completed.

        Returns the number of completed IRQs (which may be lower if the
        event queue ran dry or ``limit_cycles`` was hit first).

        Completion is detected by a watcher invoked from
        :meth:`_complete_event` that calls :meth:`SimulationEngine.stop`
        once the target is reached, so the engine runs its inlined
        dispatch loop instead of re-evaluating a predicate around every
        single event.  The time limit is likewise a scheduled stop
        event rather than a per-event comparison, and the completed
        count (per source or total) is an O(1) read off the columnar
        store.
        """
        self._require_started()

        columns = self.latency_columns

        def completed() -> int:
            return columns.count(source)

        engine = self.engine
        remaining = count - completed()
        if remaining <= 0:
            return completed()
        if limit_cycles is not None and engine.now >= limit_cycles:
            return completed()

        state = [remaining]

        def watcher(completed_source: str) -> None:
            if source is not None and completed_source != source:
                return
            left = state[0] - 1
            state[0] = left
            if left <= 0:
                engine.stop()

        limit_handle = None
        self._completion_watcher = watcher
        try:
            if limit_cycles is not None:
                # An out-of-band stop sentinel: unlike schedule_at it
                # consumes no FIFO sequence number, so installing (and
                # cancelling) the limit leaves the ordering of ordinary
                # events — and therefore the simulated execution —
                # byte-identical to a run without it.  Forked
                # continuations rely on this (see repro.sim.snapshot).
                limit_handle = engine.schedule_stop_at(limit_cycles)
            engine.run()
        finally:
            self._completion_watcher = None
            if limit_handle is not None:
                limit_handle.cancel()
        return completed()

    def _require_started(self) -> None:
        if not self._started:
            raise RuntimeError("call start() before running the simulation")

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------

    @property
    def latency_records(self) -> list[LatencyRecord]:
        """Measured latencies as :class:`LatencyRecord` objects.

        Materialized on demand from :attr:`latency_columns` — the hot
        completion path appends columns, not boxed records, so grab
        this list once rather than per access in tight loops.
        """
        return self.latency_columns.records()

    def latencies_us(self, source: Optional[str] = None,
                     mode: Optional[HandlingMode] = None) -> list[float]:
        """Measured IRQ latencies in microseconds, optionally filtered."""
        return self.latency_columns.latencies_us(self.clock, source, mode)

    def mode_counts(self, source: Optional[str] = None) -> dict[HandlingMode, int]:
        """How many IRQs completed in each handling mode."""
        return self.latency_columns.mode_counts(source)

    # ------------------------------------------------------------------
    # IRQ entry (interrupt controller dispatcher)
    # ------------------------------------------------------------------

    def _irq_entry(self, line: int) -> None:
        self.intc.mask_all()
        self.intc.acknowledge(line)
        preempted = self.cpu.preempt()
        if preempted is not None:
            self._reconcile(preempted)
        if line == self._slot_line:
            if (self._window is not None
                    and self.config.defer_slot_switch_for_window):
                # Let the enforced window run out its (bounded) budget
                # before switching partitions; the boundary is handled
                # when the window closes.
                self._deferred_slot_switch = True
                self.stats.slot_switches_deferred += 1
                self._resume()
                return
            if (self.config.defer_slot_switch_for_window
                    and preempted is not None
                    and isinstance(preempted.owner, IrqEvent)):
                # The boundary hit an in-progress *home* bottom handler.
                # Defer the switch for its remaining work, capped by the
                # declared C_BH — the same bounded perturbation as for
                # interposed windows — instead of parking the remainder
                # for a whole TDMA rotation.
                event = preempted.owner
                cap = min(event.bh_remaining,
                          event.source.bottom_handler_cycles)
                if cap > 0:
                    partition = self._partitions[self.scheduler.current_owner]
                    self._deferred_slot_switch = True
                    self.stats.slot_switches_deferred += 1
                    self._window = _InterposeWindow(
                        trigger=event,
                        subscriber=partition,
                        host=partition.name,
                        budget_remaining=cap,
                        started_at=self.engine.now,
                        pseudo=True,
                    )
                    self._resume()
                    return
            self._slot_switch()
            return
        source = self._sources_by_line.get(line)
        if source is None:
            self.stats.spurious_irqs += 1
            self._resume()
            return
        self.stats.irqs_delivered += 1
        self._top_handler(source)

    # ------------------------------------------------------------------
    # Top handler (Fig. 4a / 4b)
    # ------------------------------------------------------------------

    def _top_handler(self, source: IrqSource) -> None:
        t0 = self.engine.now
        seq = self._irq_seq[source.name]
        self._irq_seq[source.name] = seq + 1
        self.stats.top_handler_starts += 1
        self.trace.emit(t0, TraceKind.TOP_HANDLER_START, source=source.name, seq=seq)
        event = IrqEvent(source=source, seq=seq, arrival=t0,
                         bh_remaining=source.actual_bottom_cycles(seq))
        c_th = source.top_handler_cycles
        host = self.scheduler.current_owner

        def th_body() -> None:
            self.cpu.charge_overhead(c_th)
            self._record_interference(t0, t0 + c_th, source,
                                      InterferenceKind.TOP_HANDLER)
            if source.on_top_handler is not None:
                source.on_top_handler(event)
            if source.throttle is not None and not source.throttle.admit(t0):
                # Source-level throttling (Regehr & Duongsaa baseline):
                # the request is suppressed before it becomes an event.
                self.stats.irqs_throttled += 1
                self.stats.top_handler_ends += 1
                self.trace.emit(self.engine.now, TraceKind.TOP_HANDLER_END,
                                source=source.name, seq=seq, mode="throttled")
                self._resume()
                return
            source.policy.observe_arrival(t0)
            subscriber = self._partitions[source.subscriber]
            subscriber.irq_queue.push(event)
            if event.bh_remaining == 0:
                # A zero-demand bottom handler has no partition-context
                # work to delay or interpose.  If it is the queue head
                # it completes within the top handler; otherwise it
                # completes when the dispatcher drains the queue to it
                # (FIFO).
                event.mode = (HandlingMode.DIRECT
                              if source.subscriber == host
                              else HandlingMode.DELAYED)
                if subscriber.irq_queue.head() is event:
                    self._complete_event(event, subscriber)
                self.stats.top_handler_ends += 1
                self.trace.emit(self.engine.now, TraceKind.TOP_HANDLER_END,
                                source=source.name, seq=seq, mode="empty")
                self._resume()
                return
            if source.subscriber == host:
                event.mode = HandlingMode.DIRECT
                self.stats.top_handler_ends += 1
                self.trace.emit(self.engine.now, TraceKind.TOP_HANDLER_END,
                                source=source.name, seq=seq, mode="direct")
                self._resume()
            else:
                self._foreign_decision(source, event, subscriber, t0, host)

        self.engine.schedule(c_th, th_body)

    def _foreign_decision(self, source: IrqSource, event: IrqEvent,
                          subscriber: Partition, t0: int, host: str) -> None:
        """Decide delayed vs. interposed handling for a foreign-slot IRQ."""
        if not source.policy.monitoring_cost_applies:
            self._decide_interpose(source, event, subscriber, t0)
            return
        c_mon = self.config.costs.monitor_cycles()
        self.stats.monitor_consultations += 1
        start = self.engine.now

        def after_monitor() -> None:
            self.cpu.charge_overhead(c_mon)
            self._record_interference(start, start + c_mon, source,
                                      InterferenceKind.MONITOR)
            self._decide_interpose(source, event, subscriber, t0)

        self.engine.schedule(c_mon, after_monitor)

    def _decide_interpose(self, source: IrqSource, event: IrqEvent,
                          subscriber: Partition, t0: int) -> None:
        structurally_possible = self._window is None
        allowed = structurally_possible and source.policy.request_interpose(t0)
        now = self.engine.now
        if allowed:
            event.mode = HandlingMode.INTERPOSED
            self.stats.monitor_accepts += 1
            self.stats.top_handler_ends += 1
            self.trace.emit(now, TraceKind.MONITOR_ACCEPT,
                            source=source.name, seq=event.seq)
            self.trace.emit(now, TraceKind.TOP_HANDLER_END,
                            source=source.name, seq=event.seq, mode="interposed")
            self._begin_interpose(source, event, subscriber)
            return
        event.mode = HandlingMode.DELAYED
        if structurally_possible:
            self.stats.monitor_denies += 1
            self.trace.emit(now, TraceKind.MONITOR_DENY,
                            source=source.name, seq=event.seq)
        else:
            self.stats.structural_denials += 1
        self.stats.top_handler_ends += 1
        self.trace.emit(now, TraceKind.TOP_HANDLER_END,
                        source=source.name, seq=event.seq, mode="delayed")
        self._resume()

    # ------------------------------------------------------------------
    # Interposed bottom-handler windows (Section 5)
    # ------------------------------------------------------------------

    def _begin_interpose(self, source: IrqSource, event: IrqEvent,
                         subscriber: Partition) -> None:
        host = self.scheduler.current_owner
        window = _InterposeWindow(
            trigger=event,
            subscriber=subscriber,
            host=host,
            budget_remaining=source.bottom_handler_cycles,
            started_at=self.engine.now,
        )
        c_sched = self.config.costs.scheduler_cycles()
        c_ctx = self.context_switches.switch(SwitchReason.INTERPOSE_ENTER)
        overhead = c_sched + c_ctx
        start = self.engine.now
        self.stats.windows_opened += 1
        self.trace.emit(start, TraceKind.INTERPOSE_START,
                        source=source.name, seq=event.seq,
                        subscriber=subscriber.name, host=host)
        self.trace.emit(start, TraceKind.CONTEXT_SWITCH,
                        reason=SwitchReason.INTERPOSE_ENTER.value)

        def entered() -> None:
            self.cpu.charge_overhead(overhead)
            self._record_interference(start, start + overhead, source,
                                      InterferenceKind.INTERPOSED_BH)
            self._window = window
            self._assign_window_execution()
            self.intc.unmask_all()

        self.engine.schedule(overhead, entered)

    def _assign_window_execution(self) -> None:
        """Run the subscriber's bottom-handler dispatcher, budget-capped.

        The window drains the subscriber's IRQ queue head-first (FIFO;
        older delayed events complete before the accepted one) until
        the queue is empty or the enforcement budget ``C_BH`` of the
        accepted activation is exhausted.  Caller must hold the
        interrupt mask; it is released here (or by
        :meth:`_close_window` when nothing is left to run).
        """
        window = self._window
        assert window is not None
        head = window.subscriber.irq_queue.head()
        while head is not None and head.bh_remaining == 0:
            # Zero-demand events complete without occupying the window.
            self._complete_event(head, window.subscriber, in_window=True)
            head = window.subscriber.irq_queue.head()
        if head is None or window.budget_remaining <= 0:
            self._close_window()
            return
        run_for = min(head.bh_remaining, window.budget_remaining)
        execution = Execution(
            label=f"bh-interposed:{head.source.name}#{head.seq}",
            remaining=run_for,
            on_complete=self._window_exec_done,
            category=f"bh:{window.subscriber.name}",
            owner=window,
        )
        window.active_event = head
        window.current_execution = execution
        self.stats.bottom_handler_starts += 1
        self.trace.emit(self.engine.now, TraceKind.BOTTOM_HANDLER_START,
                        source=head.source.name, seq=head.seq,
                        mode="home-deferred" if window.pseudo else "interposed")
        self.cpu.assign(execution)

    def _window_exec_done(self) -> None:
        window = self._window
        assert window is not None and window.current_execution is not None
        self._reconcile(window.current_execution)
        event = window.active_event
        if event is None:
            # The bottom handler completed (recorded by _reconcile);
            # continue with the next queued event or close the window.
            self._assign_window_execution()
            return
        # Budget exhausted with work left: enforcement cuts the handler.
        event.enforced_cut = True
        self.stats.budget_exhausted += 1
        self.trace.emit(self.engine.now,
                        TraceKind.BOTTOM_HANDLER_BUDGET_EXHAUSTED,
                        source=event.source.name, seq=event.seq,
                        remaining=event.bh_remaining)
        self._close_window()

    def _close_window(self) -> None:
        """Switch back to the interrupted partition's context."""
        self.intc.mask_all()
        window = self._window
        assert window is not None
        if window.pseudo:
            # A deferred home bottom handler: no extra context switch —
            # the pending slot switch performs the one real switch.
            self._window = None
            if self._deferred_slot_switch:
                self._deferred_slot_switch = False
                self._slot_switch()
            else:
                self._dispatch(self._partitions[self.scheduler.current_owner])
                self.intc.unmask_all()
            return
        trigger = window.trigger
        c_ctx = self.context_switches.switch(SwitchReason.INTERPOSE_EXIT)
        start = self.engine.now
        self.trace.emit(start, TraceKind.CONTEXT_SWITCH,
                        reason=SwitchReason.INTERPOSE_EXIT.value)

        def exited() -> None:
            self.cpu.charge_overhead(c_ctx)
            self._record_interference(start, start + c_ctx,
                                      trigger.source,
                                      InterferenceKind.INTERPOSED_BH)
            self.stats.interpose_ends += 1
            self.trace.emit(self.engine.now, TraceKind.INTERPOSE_END,
                            source=trigger.source.name, seq=trigger.seq)
            self._window = None
            if self._deferred_slot_switch:
                self._deferred_slot_switch = False
                self._slot_switch()
                return
            self._dispatch(self._partitions[self.scheduler.current_owner])
            self.intc.unmask_all()

        self.engine.schedule(c_ctx, exited)

    # ------------------------------------------------------------------
    # TDMA slot switching
    # ------------------------------------------------------------------

    def _slot_switch(self) -> None:
        now = self.engine.now
        if self._window is not None:
            # The host slot ended while a foreign bottom handler was
            # interposed: suspend the window.  Any unfinished remainder
            # stays at the head of the subscriber's queue and completes
            # in its home slot; the exit context switch is subsumed in
            # the slot switch below.
            window = self._window
            self.stats.windows_suspended += 1
            event = window.active_event
            if event is not None:
                if event.bh_remaining == 0:
                    # Completed exactly at the boundary instant.
                    self._complete_event(event, window.subscriber,
                                         in_window=True)
                else:
                    event.enforced_cut = True
                    self.stats.bottom_handler_preemptions += 1
                    self.trace.emit(now, TraceKind.BOTTOM_HANDLER_PREEMPTED,
                                    source=event.source.name, seq=event.seq,
                                    remaining=event.bh_remaining,
                                    reason="slot_boundary")
            self.stats.interpose_ends += 1
            self.trace.emit(now, TraceKind.INTERPOSE_END,
                            source=window.trigger.source.name,
                            seq=window.trigger.seq, suspended=True)
            self._window = None
        previous = self.scheduler.current_owner
        slot = self.scheduler.advance(now)
        self.stats.slot_switches += 1
        self.trace.emit(now, TraceKind.SLOT_SWITCH,
                        previous=previous, next=slot.partition)
        c_ctx = self.context_switches.switch(SwitchReason.SLOT)
        self.trace.emit(now, TraceKind.CONTEXT_SWITCH,
                        reason=SwitchReason.SLOT.value)

        def switched() -> None:
            self.cpu.charge_overhead(c_ctx)
            partition = self._partitions[slot.partition]
            partition.slots_entered += 1
            if self._ipc_router is not None:
                self._ipc_router.on_slot_entered(partition, self.engine.now)
            self._schedule_boundary(self.scheduler.next_boundary())
            self._dispatch(partition)
            self.intc.unmask_all()

        self.engine.schedule(c_ctx, switched)

    def _raise_slot_line(self) -> None:
        self.intc.raise_line(self._slot_line)

    def _schedule_boundary(self, boundary: int) -> None:
        at = max(boundary, self.engine.now)
        self._boundary_handle = self.engine.schedule_at(
            at, self._boundary_callback, label="tdma-boundary")

    # ------------------------------------------------------------------
    # Idle-skip engine (analytic fast-forward across quiescent gaps)
    # ------------------------------------------------------------------
    #
    # In an idle-dominated stretch the only scheduled work is the TDMA
    # boundary chain itself: raise slot line -> IRQ entry (mask, ack,
    # preempt the idle loop) -> slot switch -> switched (charge C_ctx,
    # re-arm the next boundary, dispatch idle) -> unmask.  Every step is
    # deterministic given the slot table, so instead of dispatching two
    # engine events per boundary the skip-aware entry below computes the
    # chain's *observable residue* — CPU accounting, scheduler position,
    # per-partition slot counts, context-switch/IRQ counters, trace
    # records — analytically for as many boundaries as fit before the
    # next semantic event, then moves the clock once.
    #
    # The contract is byte-identity: every trace record, latency column,
    # snapshot digest and CSV export is identical to the tick-by-tick
    # run (pinned by tests/test_idle_skip.py).  Whenever any part of the
    # world might make the chain non-deterministic — pending guest work,
    # queued IRQ events, a live interrupt line, an open interpose
    # window, an IPC router — the entry falls back to the ordinary
    # tick-by-tick raise.

    def _boundary_dispatch(self) -> None:
        """Skip-aware ``tdma-boundary`` callback (idle-skip enabled)."""
        allowed, bound = self.engine.skip_window()
        if allowed and self._skip_quiescent() and self._fast_forward_gap(bound):
            return
        self._raise_slot_line()

    def _skip_quiescent(self) -> bool:
        """Is the boundary chain's outcome determined by the slot table?

        True only when nothing but the boundary chain itself can run:
        the CPU executes an unbounded anonymous loop (idle or background
        — no completion event, no owner to reconcile), no hypervisor
        chain or interpose window is in flight, the interrupt controller
        cannot deliver anything besides the (enabled) slot line, and no
        partition has queued IRQ events or ready guest work.  Future
        device raises come from scheduled engine events, which the skip
        horizon (``peek_next_time``) bounds separately.
        """
        execution = self.cpu.current
        if (execution is None or execution.remaining is not None
                or execution.on_complete is not None
                or execution.owner is not None):
            return False
        if self._window is not None or self._deferred_slot_switch:
            return False
        if self._ipc_router is not None:
            return False
        intc = self.intc
        if intc.masked or intc.can_deliver_before():
            return False
        if not intc.line_enabled(self._slot_line):
            return False
        for partition in self._partitions.values():
            if len(partition.irq_queue):
                return False
            guest = partition.guest
            if guest is not None and guest.pick() is not None:
                return False
        return True

    def _fast_forward_gap(self, bound: Optional[int]) -> bool:
        """Fast-forward across quiescent boundaries; True if any elided.

        Called with the clock on a boundary whose ``tdma-boundary``
        event has just been popped.  Walks the chain analytically until
        the next pending engine event (exclusive — a co-timestamped
        event would dispatch before the elided continuation), the
        ``run_until`` bound (inclusive, like the real loop), or — with
        an otherwise empty queue — one TDMA cycle per invocation so an
        unbounded ``run()`` stays live exactly like the tick-by-tick
        chain it replaces.
        """
        engine = self.engine
        scheduler = self.scheduler
        cpu = self.cpu
        trace = self.trace
        c_ctx = self.context_switches.cost_cycles
        if c_ctx >= self._min_slot_cycles:
            # Degenerate cost model: the context switch swallows whole
            # slots, so boundaries arrive late and the scheduler's
            # catch-up path runs — not the on-grid chain modelled here.
            return False
        t_b = engine.now
        horizon = engine.peek_next_time()
        limit = bound
        if horizon is not None:
            strict = horizon - 1
            limit = strict if limit is None else min(limit, strict)
        if limit is None:
            limit = t_b + scheduler.cycle_length
        if t_b + c_ctx > limit:
            return False

        intc = self.intc
        line = self._slot_line
        stats = self.stats
        switches = self.context_switches
        partitions = self._partitions
        slow = trace.enabled or cpu.segments is not None
        n_slots = len(scheduler.slots)
        cycle = scheduler.cycle_length
        boundaries = 0
        # The preempt of the first elided IRQ entry: charge the running
        # idle/background stint up to this boundary.
        cpu.skip_preempt(t_b)
        while True:
            if not slow:
                # Closed-form tier: with tracing and segment recording
                # off a whole TDMA cycle of boundaries reduces to table
                # aggregates.  m is chosen so the boundary we land on
                # can itself still be elided (t_b + c_ctx <= limit) —
                # the per-slot step below then owns the span exit and
                # the live final stint.
                m = (limit - c_ctx - t_b) // cycle
                if m >= 1:
                    consumed, entered = self._skip_cycle_totals(c_ctx)
                    cpu.skip_account(
                        {cat: m * cycles for cat, cycles in consumed.items()},
                        m * n_slots,
                    )
                    for name, count in entered.items():
                        partitions[name].slots_entered += m * count
                    switches.record_batch(SwitchReason.SLOT, m * n_slots)
                    stats.slot_switches += m * n_slots
                    intc.account_slot_deliveries(line, count=m * n_slots)
                    scheduler.jump_cycles(m)
                    boundaries += m * n_slots
                    t_b += m * cycle
            # Per-slot tier: one boundary's observable residue, emitted
            # with explicit timestamps (trace may be enabled here).
            previous = scheduler.current_owner
            intc.account_slot_deliveries(line, time=t_b)
            slot = scheduler.advance()
            stats.slot_switches += 1
            trace.emit(t_b, TraceKind.SLOT_SWITCH,
                       previous=previous, next=slot.partition)
            switches.switch(SwitchReason.SLOT)
            trace.emit(t_b, TraceKind.CONTEXT_SWITCH,
                       reason=SwitchReason.SLOT.value)
            t_s = t_b + c_ctx
            cpu.skip_overhead(c_ctx, t_s)
            partition = partitions[slot.partition]
            partition.slots_entered += 1
            boundaries += 1
            t_next = scheduler.next_boundary()
            if partition.busy_background:
                category = f"task:{partition.name}"
                label = f"background:{partition.name}"
            else:
                trace.emit(t_s, TraceKind.IDLE, partition=partition.name)
                category = f"idle:{partition.name}"
                label = f"idle:{partition.name}"
            if t_next + c_ctx > limit:
                break
            cpu.skip_stint(category, label, t_s, t_next)
            t_b = t_next

        # Span exit: the last elided "switched" leaves a live stint on
        # the CPU (uncharged, exactly as the tick-by-tick run would) and
        # a real boundary event for the next gap entry.  A span of k
        # boundaries elides 2k - 1 events: k "switched" continuations
        # plus k - 1 re-raised boundaries (the span's first boundary was
        # the real event that got us here).  fast_forward() advances the
        # seq counter by that amount *before* the re-arm, so the next
        # boundary keeps its tick-by-tick (time, seq) identity.
        engine.fast_forward(t_s, 2 * boundaries - 1)
        self._schedule_boundary(t_next)
        cpu.assign(Execution(label=label, remaining=None, category=category))
        return True

    def _skip_cycle_totals(
            self, c_ctx: int) -> tuple[dict[str, int], dict[str, int]]:
        """Aggregate residue of one full TDMA cycle of elided boundaries.

        Returns ``(consumed, entered)``: cycles charged per CPU category
        (each slot's stint plus its ``C_ctx`` of hypervisor overhead)
        and slots entered per partition.  Recomputed per gap — it is a
        handful of dict updates, and ``busy_background`` is a mutable
        public attribute that must be honoured live.
        """
        consumed: dict[str, int] = {}
        entered: dict[str, int] = {}
        overhead = 0
        for slot in self.scheduler.slots:
            partition = self._partitions[slot.partition]
            if partition.busy_background:
                category = f"task:{partition.name}"
            else:
                category = f"idle:{partition.name}"
            consumed[category] = (
                consumed.get(category, 0) + slot.length_cycles - c_ctx
            )
            entered[partition.name] = entered.get(partition.name, 0) + 1
            overhead += c_ctx
        consumed["hypervisor"] = consumed.get("hypervisor", 0) + overhead
        return consumed, entered

    # ------------------------------------------------------------------
    # Partition dispatch (the partition-context dispatcher of Fig. 2)
    # ------------------------------------------------------------------

    def _dispatch(self, partition: Partition) -> None:
        """Pick what the partition runs now (CPU must be free).

        Pending IRQ events take priority over regular processing
        (Fig. 2: the partition calls the bottom handler for pending
        IRQs before resuming from the last interruption point).
        """
        head = partition.irq_queue.head()
        while head is not None and head.bh_remaining == 0:
            # Zero-demand events complete without occupying the CPU.
            self._complete_event(head, partition)
            head = partition.irq_queue.head()
        if head is not None:
            self._start_home_bottom_handler(partition, head)
            return
        job = partition.guest.pick() if partition.guest is not None else None
        if job is not None:
            self._start_guest_job(partition, job)
            return
        if partition.busy_background:
            self.cpu.assign(Execution(
                label=f"background:{partition.name}",
                remaining=None,
                category=f"task:{partition.name}",
            ))
            return
        self.trace.emit(self.engine.now, TraceKind.IDLE, partition=partition.name)
        self.cpu.assign(Execution(
            label=f"idle:{partition.name}",
            remaining=None,
            category=f"idle:{partition.name}",
        ))

    def _start_home_bottom_handler(self, partition: Partition,
                                   event: IrqEvent) -> None:
        self.stats.bottom_handler_starts += 1
        self.trace.emit(self.engine.now, TraceKind.BOTTOM_HANDLER_START,
                        source=event.source.name, seq=event.seq,
                        mode="home")
        execution = Execution(
            label=f"bh:{event.source.name}#{event.seq}",
            remaining=event.bh_remaining,
            on_complete=lambda: self._home_bh_done(partition, event),
            category=f"bh:{partition.name}",
            owner=event,
        )
        self.cpu.assign(execution)

    def _home_bh_done(self, partition: Partition, event: IrqEvent) -> None:
        event.bh_remaining = 0
        self._complete_event(event, partition)
        self._dispatch(partition)

    def _start_guest_job(self, partition: Partition, job: GuestJob) -> None:
        if job.first_start is None:
            job.first_start = self.engine.now
            self.trace.emit(self.engine.now, TraceKind.TASK_START,
                            partition=partition.name, task=job.task.name,
                            seq=job.seq)
        on_complete = None
        if job.remaining is not None:
            on_complete = lambda: self._guest_job_done(partition, job)
        execution = Execution(
            label=f"job:{job.task.name}#{job.seq}",
            remaining=job.remaining,
            on_complete=on_complete,
            category=f"task:{partition.name}",
            owner=job,
        )
        self.cpu.assign(execution)

    def _guest_job_done(self, partition: Partition, job: GuestJob) -> None:
        job.remaining = 0
        now = self.engine.now
        partition.guest.job_finished(job, now)
        self.trace.emit(now, TraceKind.TASK_END, partition=partition.name,
                        task=job.task.name, seq=job.seq)
        if job.missed_deadline:
            self.trace.emit(now, TraceKind.DEADLINE_MISS,
                            partition=partition.name, task=job.task.name,
                            seq=job.seq,
                            overrun=now - job.absolute_deadline)
        self._dispatch(partition)

    def _notify_work(self, partition_name: str) -> None:
        """A guest job became ready; preempt lower-priority work if the
        partition is currently executing."""
        current = self.cpu.current
        if current is None or self._window is not None:
            return
        if self.scheduler.current_owner != partition_name:
            return
        partition = self._partitions[partition_name]
        owner = current.owner
        if isinstance(owner, IrqEvent) or isinstance(owner, _InterposeWindow):
            return  # bottom handlers outrank guest tasks
        best = partition.guest.pick() if partition.guest is not None else None
        if best is None:
            return
        if isinstance(owner, GuestJob):
            if (best.task.priority, best.seq) >= (owner.task.priority, owner.seq):
                return
        elif not current.category.startswith(("task:", "idle:")):
            return
        preempted = self.cpu.preempt()
        if preempted is not None:
            self._reconcile(preempted)
        self._dispatch(partition)

    # ------------------------------------------------------------------
    # Shared plumbing
    # ------------------------------------------------------------------

    def _resume(self) -> None:
        """Return from hypervisor context to the interrupted activity."""
        if self._window is not None:
            self._assign_window_execution()
        else:
            self._dispatch(self._partitions[self.scheduler.current_owner])
        self.intc.unmask_all()

    def _reconcile(self, execution: Execution) -> None:
        """Propagate consumed cycles from a stopped execution to its owner."""
        owner = execution.owner
        if isinstance(owner, _InterposeWindow):
            consumed = execution.executed
            event = owner.active_event
            assert event is not None
            event.bh_remaining -= consumed
            owner.budget_remaining -= consumed
            if consumed > 0 and not owner.pseudo:
                now = self.engine.now
                self._record_interference(now - consumed, now, event.source,
                                          InterferenceKind.INTERPOSED_BH)
            owner.current_execution = None
            if event.bh_remaining == 0:
                # Preempted at the exact completion instant: the bottom
                # handler is done, record it now.
                self._complete_event(event, owner.subscriber, in_window=True)
                owner.active_event = None
        elif isinstance(owner, IrqEvent):
            if execution.remaining is not None:
                owner.bh_remaining = execution.remaining
            if owner.bh_remaining == 0:
                self._complete_event(
                    owner, self._partitions[owner.source.subscriber]
                )
        elif isinstance(owner, GuestJob):
            owner.remaining = execution.remaining

    def _complete_event(self, event: IrqEvent, partition: Partition,
                        in_window: bool = False) -> None:
        head = partition.irq_queue.pop()
        if head is not event:
            raise AssertionError(
                f"FIFO violation: completed {event!r} but queue head was {head!r}"
            )
        now = self.engine.now
        event.completed_at = now
        partition.bottom_handlers_completed += 1
        foreign_window = (
            in_window
            and self._window is not None
            and not self._window.pseudo
        )
        mode = self._final_mode(event, foreign_window)
        event.mode = mode
        self.stats.bottom_handler_ends += 1
        self.trace.emit(now, TraceKind.BOTTOM_HANDLER_END,
                        source=event.source.name, seq=event.seq,
                        mode=mode.value, latency=event.latency)
        source_name = event.source.name
        self.latency_columns.append(source_name, event.seq, event.arrival,
                                    now, mode, event.enforced_cut)
        watcher = self._completion_watcher
        if watcher is not None:
            watcher(source_name)
        if event.source.activates_task is not None:
            if partition.guest is None:
                raise RuntimeError(
                    f"IRQ source {event.source.name!r} activates task "
                    f"{event.source.activates_task!r} but partition "
                    f"{partition.name!r} has no guest kernel"
                )
            partition.guest.release_task(event.source.activates_task)

    @staticmethod
    def _final_mode(event: IrqEvent, in_window: bool) -> HandlingMode:
        """Classify an IRQ by where its bottom handler completed.

        The Fig. 6 histograms cluster IRQs by their effective handling
        path: *interposed* if the bottom handler finished inside a
        foreign-slot window (regardless of which arrival triggered the
        window), *direct* if it arrived during the subscriber's own
        slot and completed there, and *delayed* otherwise (including
        interposed executions that enforcement cut short).
        """
        if in_window:
            return HandlingMode.INTERPOSED
        if event.mode is HandlingMode.DIRECT:
            return HandlingMode.DIRECT
        return HandlingMode.DELAYED

    def _record_interference(self, start: int, end: int,
                             source: IrqSource, kind: InterferenceKind) -> None:
        """Record foreign activity against the *nominal* slot owners.

        The victim of an interval is whoever is entitled to the CPU on
        the fixed TDMA grid at that moment (intervals spanning a
        nominal boundary — e.g. a deferred slot switch — are split).
        Activity that lands in the subscriber's own nominal slot is not
        interference and is not recorded.
        """
        if end <= start:
            return
        position = start
        while position < end:
            owner = self.scheduler.owner_at(position)
            boundary = self.scheduler.next_nominal_boundary_after(position)
            piece_end = min(end, boundary)
            if owner != source.subscriber:
                self.ledger.record(position, piece_end, victim=owner,
                                   source=source.name, kind=kind)
            position = piece_end

    # ------------------------------------------------------------------
    # Snapshot/fork support (see repro.sim.snapshot)
    # ------------------------------------------------------------------

    #: World parts in capture order; each has a builder below.  The
    #: layered store (:mod:`repro.sim.worldstore`) captures parts
    #: independently so a fork only re-serializes what changed.
    SNAPSHOT_PARTS = (
        "config", "slots", "engine", "scheduler", "intc", "trace",
        "context_switches", "ledger", "stats", "latency_records",
        "irq_seq", "partitions", "sources", "boundary", "cpu",
    )

    def snapshot_check(self) -> None:
        """Raise :class:`SnapshotError` unless the world is quiescent.

        A snapshot is only well-defined with no hypervisor event chain
        in flight (interrupts unmasked), no interpose window open, no
        deferred slot switch, no watcher, and no guests/IPC attached.
        """
        if not self._started:
            raise SnapshotError("hypervisor not started; nothing to fork")
        if self._window is not None:
            raise SnapshotError("interpose window open")
        if self._deferred_slot_switch:
            raise SnapshotError("slot switch deferred, boundary in flight")
        if self._completion_watcher is not None:
            raise SnapshotError("run_until_irq_count watcher installed")
        if self._ipc_router is not None:
            raise SnapshotError("IPC router attached (not snapshot-capable)")
        if self.intc.masked:
            raise SnapshotError("interrupts masked (hypervisor chain in flight)")

    def snapshot_part_names(self) -> tuple:
        """Names of the independently-capturable world parts."""
        return self.SNAPSHOT_PARTS

    def snapshot_part(self, name: str, ctx) -> Any:
        """Build one part of the snapshot state (claims its events)."""
        builder = self._SNAPSHOT_BUILDERS.get(name)
        if builder is None:
            raise SnapshotError(f"unknown snapshot part {name!r}")
        return builder(self, ctx)

    def snapshot_epochs(self) -> dict:
        """Change epochs of the parts that track their own dirtiness.

        These are the append-heavy stores that dominate snapshot size;
        everything else is cheap enough to re-serialize and compare.
        """
        return {
            "trace": self.trace.snapshot_epoch,
            "ledger": self.ledger.snapshot_epoch,
            "latency_records": self.latency_columns.snapshot_epoch,
        }

    def snapshot_state(self, ctx) -> dict:
        """Capture the complete hypervisor system as plain data.

        Only valid at a quiescent point (see :meth:`snapshot_check`).
        Components that cannot be reconstructed raise
        :class:`SnapshotError`, which :func:`repro.sim.snapshot.settle`
        uses to step the world to the next capturable instant.
        """
        self.snapshot_check()
        return {name: self.snapshot_part(name, ctx)
                for name in self.SNAPSHOT_PARTS}

    _SNAPSHOT_BUILDERS: dict = {
        "config": lambda self, ctx: asdict(self.config),
        "slots": lambda self, ctx: [
            (slot.partition, slot.length_cycles)
            for slot in self.scheduler.slots
        ],
        "engine": lambda self, ctx: self.engine.snapshot_state(),
        "scheduler": lambda self, ctx: self.scheduler.snapshot_state(),
        "intc": lambda self, ctx: self.intc.snapshot_state(),
        "trace": lambda self, ctx: self.trace.snapshot_state(),
        "context_switches":
            lambda self, ctx: self.context_switches.snapshot_state(),
        "ledger": lambda self, ctx: self.ledger.snapshot_state(),
        "stats": lambda self, ctx: asdict(self.stats),
        "latency_records":
            lambda self, ctx: self.latency_columns.record_tuples(),
        "irq_seq": lambda self, ctx: dict(self._irq_seq),
        "partitions": lambda self, ctx: [
            partition.snapshot_state()
            for partition in self._partitions.values()
        ],
        "sources": lambda self, ctx: [
            self._snapshot_source(source, ctx)
            for source in self._sources.values()
        ],
        "boundary": lambda self, ctx: ctx.claim(self._boundary_handle),
        "cpu": lambda self, ctx: self.cpu.snapshot_state(
            ctx, self._describe_execution_owner),
    }

    def _snapshot_source(self, source: IrqSource, ctx) -> dict:
        if source.bottom_handler_actual is not None:
            raise SnapshotError(
                f"IRQ source {source.name!r} has a bottom_handler_actual "
                "callable (not snapshot-reconstructible)"
            )
        if source.activates_task is not None:
            raise SnapshotError(
                f"IRQ source {source.name!r} activates a guest task "
                "(not snapshot-capable)"
            )
        hook = None
        if source.on_top_handler is not None:
            hook = ctx.device_method_spec(source.on_top_handler)
            if hook is None:
                raise SnapshotError(
                    f"IRQ source {source.name!r} has an on_top_handler that "
                    "is not a bound method of a registered device"
                )
        throttle = None
        if source.throttle is not None:
            throttle = {
                "class": class_path(type(source.throttle)),
                "state": source.throttle.snapshot_state(),
            }
        return {
            "name": source.name,
            "line": source.line,
            "subscriber": source.subscriber,
            "top_handler_cycles": source.top_handler_cycles,
            "bottom_handler_cycles": source.bottom_handler_cycles,
            "policy": {
                "class": class_path(type(source.policy)),
                "state": source.policy.snapshot_state(),
            },
            "throttle": throttle,
            "hook": hook,
        }

    def _describe_execution_owner(self, execution: Execution) -> Optional[dict]:
        """Plain-data spec of the CPU execution's owner (or raise)."""
        owner = execution.owner
        if owner is None:
            if execution.on_complete is not None:
                raise SnapshotError(
                    f"execution {execution.label!r} has a completion callback "
                    "but no reconstructible owner"
                )
            return None
        if isinstance(owner, IrqEvent):
            partition = self._partitions[owner.source.subscriber]
            if partition.irq_queue.head() is not owner:
                raise SnapshotError(
                    f"execution {execution.label!r} runs an IRQ event that "
                    "is not its queue head (cannot re-bind on restore)"
                )
            return {"kind": "irq-event", "partition": partition.name}
        raise SnapshotError(
            f"execution {execution.label!r} owner {owner!r} is not "
            "snapshot-reconstructible"
        )

    def _resolve_execution_owner(self, spec: Optional[dict]):
        """Inverse of :meth:`_describe_execution_owner`."""
        if spec is None:
            return None, None
        if spec["kind"] == "irq-event":
            partition = self._partitions[spec["partition"]]
            event = partition.irq_queue.head()
            if event is None:
                raise SnapshotError(
                    f"snapshot references the IRQ-queue head of "
                    f"{spec['partition']!r} but the restored queue is empty"
                )
            return event, (lambda: self._home_bh_done(partition, event))
        raise SnapshotError(f"unknown execution owner spec {spec!r}")

    @classmethod
    def restore_from_snapshot(cls, state: dict) -> "Hypervisor":
        """Fork an independent hypervisor system from a snapshot.

        Restore order matters: the engine's counters come first (fresh
        engine precondition), partitions before sources (subscriber
        validation), sources before IRQ queues (events reference
        sources), and the CPU last (its owner spec may reference a
        restored queue head).  Device hooks (``on_top_handler``) are
        re-bound afterwards by :func:`repro.sim.snapshot.restore_world`
        via :meth:`rebind_hooks`.
        """
        config_state = dict(state["config"])
        config_state["costs"] = CostModel(**config_state["costs"])
        config = HypervisorConfig(**config_state)
        slots = [
            SlotConfig(partition, length)
            for partition, length in state["slots"]
        ]
        hv = cls(slots, config)
        hv.engine.restore_state(state["engine"])
        hv.scheduler.restore_state(state["scheduler"])
        hv.intc.restore_state(state["intc"])
        hv.trace.restore_state(state["trace"])
        hv.context_switches.restore_state(state["context_switches"])
        hv.ledger.restore_state(state["ledger"])
        hv.stats = HypervisorStats(**state["stats"])
        hv.latency_columns.restore_tuples(state["latency_records"])
        for pstate in state["partitions"]:
            hv.add_partition(Partition.restore_from_snapshot(pstate))
        for sstate in state["sources"]:
            policy_cls = resolve_class(sstate["policy"]["class"])
            policy = policy_cls.restore_from_snapshot(sstate["policy"]["state"])
            throttle = None
            if sstate["throttle"] is not None:
                throttle_cls = resolve_class(sstate["throttle"]["class"])
                throttle = throttle_cls.restore_from_snapshot(
                    sstate["throttle"]["state"]
                )
            hv.add_irq_source(IrqSource(
                name=sstate["name"],
                line=sstate["line"],
                subscriber=sstate["subscriber"],
                top_handler_cycles=sstate["top_handler_cycles"],
                bottom_handler_cycles=sstate["bottom_handler_cycles"],
                policy=policy,
                throttle=throttle,
            ))
        hv._irq_seq = dict(state["irq_seq"])
        for pstate in state["partitions"]:
            hv._partitions[pstate["name"]].irq_queue.restore_state(
                pstate["queue"], hv._sources
            )
        time, seq = state["boundary"]
        hv._boundary_handle = hv.engine.restore_event(
            time, seq, hv._boundary_callback, label="tdma-boundary"
        )
        hv.cpu.restore_state(state["cpu"], hv._resolve_execution_owner)
        hv._started = True
        return hv

    def rebind_hooks(self, state: dict, devices: dict[str, Any]) -> None:
        """Re-attach device hooks recorded as ``{device, method}`` specs."""
        for sstate in state["sources"]:
            hook = sstate["hook"]
            if hook is None:
                continue
            device = devices[hook["device"]]
            self._sources[sstate["name"]].on_top_handler = getattr(
                device, hook["method"]
            )

    def __repr__(self) -> str:
        return (
            f"Hypervisor(partitions={list(self._partitions)}, "
            f"t={self.engine.now}, irqs={self.stats.irqs_delivered})"
        )
