"""Context-switch cost model and accounting.

A partition context switch on the paper's platform costs ~5000
instructions for cache/TLB invalidation plus ~5000 cycles of cache
writebacks (Section 6.2) — about 50 us at 200 MHz, which dominates the
per-interposition overhead ``C'_BH - C_BH`` (Eq. 13).

The model charges a fixed cycle cost per switch and counts switches by
reason, which the overhead experiment (tab62) uses to reproduce the
paper's "~10 % increase in the number of context switches" result.
"""

from __future__ import annotations

import enum
from typing import Dict

from repro.hypervisor.config import CostModel


class SwitchReason(enum.Enum):
    """Why a context switch happened."""

    SLOT = "slot"                    # TDMA slot boundary
    INTERPOSE_ENTER = "interpose_enter"
    INTERPOSE_EXIT = "interpose_exit"


class ContextSwitchModel:
    """Fixed-cost context switch accounting."""

    def __init__(self, costs: CostModel):
        self._cost_cycles = costs.context_switch_cycles()
        self._counts: Dict[SwitchReason, int] = {reason: 0 for reason in SwitchReason}

    @property
    def cost_cycles(self) -> int:
        """``C_ctx`` in cycles."""
        return self._cost_cycles

    def switch(self, reason: SwitchReason) -> int:
        """Record one context switch; returns its cycle cost."""
        self._counts[reason] += 1
        return self._cost_cycles

    def record_batch(self, reason: SwitchReason, count: int) -> None:
        """Record ``count`` switches at once (idle-skip bulk accounting)."""
        if count < 0:
            raise ValueError(f"switch count must be >= 0, got {count}")
        self._counts[reason] += count

    def count(self, reason: SwitchReason) -> int:
        return self._counts[reason]

    @property
    def total(self) -> int:
        """Total number of context switches performed."""
        return sum(self._counts.values())

    @property
    def counts(self) -> Dict[SwitchReason, int]:
        return dict(self._counts)

    @property
    def total_cycles(self) -> int:
        """Total cycles spent context switching."""
        return self.total * self._cost_cycles

    def snapshot_state(self) -> dict:
        """Plain-data counts (see :mod:`repro.sim.snapshot`)."""
        return {reason.value: count for reason, count in self._counts.items()}

    def restore_state(self, state: dict) -> None:
        self._counts = {
            reason: state.get(reason.value, 0) for reason in SwitchReason
        }
