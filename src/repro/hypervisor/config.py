"""Hypervisor configuration and the Section 6.2 cost model.

The paper reports all runtime overheads of the mechanism as
instruction/cycle counts on the ARM926ej-s evaluation platform:

* ``C_Mon``   — monitoring function: 128 instructions;
* ``C_sched`` — scheduler manipulation for interposed bottom handlers:
  877 instructions;
* ``C_ctx``   — context switch: ~5000 instructions for cache/TLB
  invalidation plus ~5000 cycles of cache writebacks for the paper's
  memory layout (=> 10000 cycles = 50 us at 200 MHz).

Top- and bottom-handler execution times (``C_TH``, ``C_BH``) are
workload parameters, configured per IRQ source.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.clock import Clock, DEFAULT_FREQUENCY_HZ

#: Paper values (Section 6.2), in instructions / cycles.
PAPER_MONITOR_INSTRUCTIONS = 128
PAPER_SCHEDULER_INSTRUCTIONS = 877
PAPER_CTX_INVALIDATE_INSTRUCTIONS = 5000
PAPER_CTX_WRITEBACK_CYCLES = 5000


@dataclass(frozen=True)
class CostModel:
    """Runtime overhead parameters of the hypervisor mechanism.

    All values default to the measurements reported in Section 6.2 of
    the paper.  Instructions are converted to cycles with a
    cycles-per-instruction factor (the ARM926ej-s is single-issue
    in-order; CPI 1.0 is the paper-consistent approximation).
    """

    monitor_instructions: int = PAPER_MONITOR_INSTRUCTIONS
    scheduler_instructions: int = PAPER_SCHEDULER_INSTRUCTIONS
    ctx_invalidate_instructions: int = PAPER_CTX_INVALIDATE_INSTRUCTIONS
    ctx_writeback_cycles: int = PAPER_CTX_WRITEBACK_CYCLES
    cycles_per_instruction: float = 1.0

    def monitor_cycles(self) -> int:
        """``C_Mon`` in cycles."""
        return round(self.monitor_instructions * self.cycles_per_instruction)

    def scheduler_cycles(self) -> int:
        """``C_sched`` in cycles."""
        return round(self.scheduler_instructions * self.cycles_per_instruction)

    def context_switch_cycles(self) -> int:
        """``C_ctx`` in cycles (invalidation instructions + writebacks)."""
        return (
            round(self.ctx_invalidate_instructions * self.cycles_per_instruction)
            + self.ctx_writeback_cycles
        )

    def effective_bottom_handler_cycles(self, c_bh: int) -> int:
        """``C'_BH = C_BH + C_sched + 2 * C_ctx`` (Eq. 13)."""
        if c_bh < 0:
            raise ValueError(f"C_BH must be >= 0, got {c_bh}")
        return c_bh + self.scheduler_cycles() + 2 * self.context_switch_cycles()

    def effective_top_handler_cycles(self, c_th: int) -> int:
        """``C'_TH = C_TH + C_Mon`` (Eq. 15)."""
        if c_th < 0:
            raise ValueError(f"C_TH must be >= 0, got {c_th}")
        return c_th + self.monitor_cycles()


@dataclass(frozen=True)
class SlotConfig:
    """One entry of the static TDMA slot table."""

    partition: str
    length_cycles: int

    def __post_init__(self):
        if self.length_cycles <= 0:
            raise ValueError(
                f"slot length must be positive, got {self.length_cycles} "
                f"for partition {self.partition!r}"
            )


@dataclass
class HypervisorConfig:
    """Top-level configuration of a simulated hypervisor system."""

    frequency_hz: int = DEFAULT_FREQUENCY_HZ
    costs: CostModel = field(default_factory=CostModel)
    #: Whether to keep a full execution trace (disable for long runs).
    trace_enabled: bool = True
    #: Optional cap on retained trace events.
    trace_capacity: int = None
    #: Record per-stint CPU occupancy segments (for timeline rendering,
    #: see :mod:`repro.metrics.timeline`).  Off by default: long runs
    #: accumulate many segments.
    record_cpu_segments: bool = False
    #: IRQ line reserved for the hypervisor's TDMA slot timer.
    slot_timer_line: int = 0
    #: When a TDMA boundary fires during an interposed bottom-handler
    #: window, defer the partition switch until the window's
    #: enforcement budget ends (True, matching the paper's evaluation
    #: where d_min-adherent IRQs are never delayed) or suspend the
    #: window and process the remainder in the home slot (False).
    #: Either way the perturbation is bounded by ``C'_BH``.
    defer_slot_switch_for_window: bool = True

    def make_clock(self) -> Clock:
        return Clock(self.frequency_hz)
