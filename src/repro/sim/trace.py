"""Execution trace recording.

The hypervisor and devices emit typed trace events (IRQ raised, top
handler start/end, bottom handler start/end, slot switches, ...) into a
:class:`TraceRecorder`.  Experiments and tests query the recorder to
reconstruct timelines, measure latencies and verify ordering
properties.  Recording can be disabled for long benchmark runs.
"""

from __future__ import annotations

import enum
import hashlib
import json
from collections import deque
from itertools import islice
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Optional


class TraceKind(enum.Enum):
    """Classification of trace events."""

    IRQ_RAISED = "irq_raised"
    IRQ_COALESCED = "irq_coalesced"
    TOP_HANDLER_START = "top_handler_start"
    TOP_HANDLER_END = "top_handler_end"
    BOTTOM_HANDLER_START = "bottom_handler_start"
    BOTTOM_HANDLER_END = "bottom_handler_end"
    BOTTOM_HANDLER_PREEMPTED = "bottom_handler_preempted"
    BOTTOM_HANDLER_BUDGET_EXHAUSTED = "bottom_handler_budget_exhausted"
    MONITOR_ACCEPT = "monitor_accept"
    MONITOR_DENY = "monitor_deny"
    SLOT_SWITCH = "slot_switch"
    CONTEXT_SWITCH = "context_switch"
    INTERPOSE_START = "interpose_start"
    INTERPOSE_END = "interpose_end"
    TASK_RELEASE = "task_release"
    TASK_START = "task_start"
    TASK_END = "task_end"
    DEADLINE_MISS = "deadline_miss"
    IPC_SEND = "ipc_send"
    IPC_DELIVER = "ipc_deliver"
    IDLE = "idle"
    CUSTOM = "custom"


@dataclass(frozen=True)
class TraceEvent:
    """A single timestamped trace record."""

    time: int
    kind: TraceKind
    data: dict = field(default_factory=dict)

    def __repr__(self) -> str:
        items = ", ".join(f"{k}={v}" for k, v in self.data.items())
        return f"TraceEvent(t={self.time}, {self.kind.value}, {items})"


class TraceRecorder:
    """Collects :class:`TraceEvent` records in simulation order.

    Parameters
    ----------
    enabled:
        When False, :meth:`emit` is a no-op.  Long experiment runs
        disable tracing and rely on aggregated statistics instead.
    capacity:
        Optional bound on retained events; when exceeded the oldest
        events are dropped (the drop count is tracked).

    The store is a ``collections.deque`` with ``maxlen=capacity``, so a
    recorder running *at* capacity evicts its oldest event in O(1) per
    emit — the previous list-backed implementation paid an O(n)
    ``del events[:overflow]`` shift on every single emit once full,
    which made bounded tracing quadratic in run length.
    """

    def __init__(self, enabled: bool = True, capacity: Optional[int] = None):
        if capacity is not None and capacity <= 0:
            raise ValueError(f"trace capacity must be positive, got {capacity}")
        self._epoch = 0
        self._enabled = enabled
        self._capacity = capacity
        self._events: deque[TraceEvent] = deque(maxlen=capacity)
        self._dropped = 0
        self._listeners: list[Callable[[TraceEvent], None]] = []

    @classmethod
    def from_events(cls, events: "Iterable[TraceEvent]",
                    capacity: Optional[int] = None) -> "TraceRecorder":
        """An enabled recorder pre-loaded with ``events``.

        Used by the run-artifact store (:mod:`repro.store`) to rebuild
        a recorder from persisted trace columns, so exporters that
        consume a live :class:`TraceRecorder` (the Perfetto exporter)
        can read from an artifact instead.
        """
        recorder = cls(enabled=True, capacity=capacity)
        recorder._events.extend(events)
        recorder._epoch += 1
        return recorder

    @property
    def enabled(self) -> bool:
        """Whether :meth:`emit` records (a property so toggles are dirty)."""
        return self._enabled

    @enabled.setter
    def enabled(self, value: bool) -> None:
        self._enabled = value
        self._epoch += 1

    @property
    def capacity(self) -> Optional[int]:
        """The retention bound, or None for unbounded recording."""
        return self._capacity

    @property
    def snapshot_epoch(self) -> int:
        """Change counter bumped by every mutation of recorder state.

        The layered world store (:mod:`repro.sim.worldstore`) skips
        re-serializing the (often dominant) event list when this has
        not moved since the previous capture.
        """
        return self._epoch

    def emit(self, time: int, kind: TraceKind, **data: Any) -> None:
        """Record an event (no-op when recording is disabled)."""
        if not self._enabled:
            return
        event = TraceEvent(time, kind, data)
        events = self._events
        if self._capacity is not None and len(events) == self._capacity:
            # The append below auto-evicts the oldest entry (deque
            # maxlen semantics); only the drop counter is ours to keep.
            self._dropped += 1
        events.append(event)
        self._epoch += 1
        for listener in self._listeners:
            listener(event)

    def add_listener(self, listener: Callable[[TraceEvent], None]) -> None:
        """Register a callback invoked for every recorded event."""
        self._listeners.append(listener)

    @property
    def events(self) -> list[TraceEvent]:
        """All retained events, in simulation order."""
        return list(self._events)

    @property
    def dropped(self) -> int:
        """Number of events discarded due to the capacity bound."""
        return self._dropped

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def of_kind(self, *kinds: TraceKind) -> list[TraceEvent]:
        """Events whose kind is one of ``kinds``."""
        wanted = set(kinds)
        return [ev for ev in self._events if ev.kind in wanted]

    def between(self, start: int, end: int) -> list[TraceEvent]:
        """Events with ``start <= time < end``."""
        return [ev for ev in self._events if start <= ev.time < end]

    def clear(self) -> None:
        """Discard all retained events."""
        self._events.clear()
        self._dropped = 0
        self._epoch += 1

    def digest(self) -> str:
        """Stable SHA-256 over the canonical JSON of all retained events.

        Two recorders that captured the same simulation have the same
        digest; the queue-backend A/B tests use this to prove the
        backends produce byte-identical executions.
        """
        payload = json.dumps(
            [(ev.time, ev.kind.value, ev.data) for ev in self._events],
            sort_keys=True, separators=(",", ":"), ensure_ascii=False,
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def snapshot_state(self) -> dict:
        """Plain-data recorder state (see :mod:`repro.sim.snapshot`).

        Listeners are live callbacks into the old world and cannot be
        captured; a recorder with listeners attached refuses to
        snapshot rather than silently dropping them.
        """
        if self._listeners:
            raise RuntimeError("cannot snapshot a recorder with listeners")
        return {
            "enabled": self.enabled,
            "capacity": self._capacity,
            "dropped": self._dropped,
            "events": [(ev.time, ev.kind.value, dict(ev.data))
                       for ev in self._events],
        }

    def restore_state(self, state: dict) -> None:
        if state["capacity"] != self._capacity:
            raise ValueError(
                f"snapshot capacity {state['capacity']} != recorder "
                f"capacity {self._capacity}"
            )
        self._enabled = state["enabled"]
        self._dropped = state["dropped"]
        self._events = deque(
            (TraceEvent(time, TraceKind(kind), data)
             for time, kind, data in state["events"]),
            maxlen=self._capacity,
        )
        self._epoch += 1

    def render_timeline(self, clock=None, limit: int = 50) -> str:
        """Human-readable timeline of the first ``limit`` events.

        If a :class:`~repro.sim.clock.Clock` is given, times are shown
        in microseconds instead of cycles.
        """
        lines = []
        for event in islice(self._events, limit):
            if clock is not None:
                stamp = f"{clock.cycles_to_us(event.time):12.2f} us"
            else:
                stamp = f"{event.time:>14d} cyc"
            items = " ".join(f"{k}={v}" for k, v in event.data.items())
            lines.append(f"{stamp}  {event.kind.value:<32s} {items}")
        if len(self._events) > limit:
            lines.append(f"... ({len(self._events) - limit} more events)")
        return "\n".join(lines)
