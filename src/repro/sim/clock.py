"""Simulated clock and time-unit conversions.

All simulation time in this library is kept as *integer CPU cycles* to
avoid floating-point drift in long runs.  The :class:`Clock` converts
between wall-clock units (microseconds, milliseconds, seconds) and
cycles for a configurable CPU frequency.  The paper's evaluation
platform is an ARM926ej-s at 200 MHz, i.e. 200 cycles per microsecond,
which is the default here.
"""

from __future__ import annotations

DEFAULT_FREQUENCY_HZ = 200_000_000


class Clock:
    """Converts between wall-clock time and integer CPU cycles.

    Parameters
    ----------
    frequency_hz:
        CPU clock frequency in Hertz.  Must be a positive integer and a
        multiple of 1 MHz so that one microsecond is a whole number of
        cycles (this keeps all conversions exact).
    """

    def __init__(self, frequency_hz: int = DEFAULT_FREQUENCY_HZ):
        if frequency_hz <= 0:
            raise ValueError(f"frequency must be positive, got {frequency_hz}")
        if frequency_hz % 1_000_000 != 0:
            raise ValueError(
                "frequency must be a whole number of MHz so that 1 us is an "
                f"integer number of cycles, got {frequency_hz} Hz"
            )
        self._frequency_hz = int(frequency_hz)
        self._cycles_per_us = self._frequency_hz // 1_000_000

    @property
    def frequency_hz(self) -> int:
        """CPU clock frequency in Hertz."""
        return self._frequency_hz

    @property
    def cycles_per_us(self) -> int:
        """Number of CPU cycles per microsecond."""
        return self._cycles_per_us

    def us_to_cycles(self, microseconds: float) -> int:
        """Convert microseconds to cycles (rounded to nearest cycle)."""
        return round(microseconds * self._cycles_per_us)

    def ms_to_cycles(self, milliseconds: float) -> int:
        """Convert milliseconds to cycles (rounded to nearest cycle)."""
        return round(milliseconds * 1000.0 * self._cycles_per_us)

    def s_to_cycles(self, seconds: float) -> int:
        """Convert seconds to cycles (rounded to nearest cycle)."""
        return round(seconds * 1_000_000.0 * self._cycles_per_us)

    def cycles_to_us(self, cycles: int) -> float:
        """Convert cycles to microseconds."""
        return cycles / self._cycles_per_us

    def cycles_to_ms(self, cycles: int) -> float:
        """Convert cycles to milliseconds."""
        return cycles / (self._cycles_per_us * 1000.0)

    def instructions_to_cycles(self, instructions: int, cpi: float = 1.0) -> int:
        """Convert an instruction count to cycles.

        The ARM926ej-s is a single-issue in-order core; the paper reports
        runtime overheads as instruction counts, which we map to cycles
        with a configurable cycles-per-instruction factor (default 1.0).
        """
        if instructions < 0:
            raise ValueError(f"instruction count must be >= 0, got {instructions}")
        return round(instructions * cpi)

    def __repr__(self) -> str:
        return f"Clock({self._frequency_hz // 1_000_000} MHz)"
