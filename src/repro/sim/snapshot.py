"""Checkpoint/fork of complete simulation worlds.

Redundant prefix re-execution is the largest remaining waste in the
experiment campaigns: fig7's four bound cases share an identical
learning phase, and every sweep/ablation point re-runs an identical
warm-up.  This module lets a driver simulate the shared prefix *once*,
capture the complete world — engine clock/seq/heap, hypervisor,
scheduler, partitions, policies/monitors, timers, interrupt
controller, trace recorder — and fork independent continuations that
are **byte-identical** to straight-line runs.

Why not ``copy.deepcopy``?  Scheduled events are closures over the old
world: deep-copying the heap would either duplicate the entire object
graph through the closures (fragile, and still aliased through
module-level state) or silently keep references into the parent world.
Instead every component implements an explicit snapshot protocol:

* ``snapshot_state(ctx)`` returns *plain data* (JSON-able dicts,
  lists, tuples, scalars) describing the component, and *claims* the
  pending heap entries it owns via :meth:`SnapshotContext.claim` —
  recording their ``(time, seq)`` so the callback can be re-bound on
  restore with its original position among simultaneous events;
* a restore hook (``restore_from_snapshot`` / ``restore_state``)
  rebuilds the component in a fresh world and re-schedules its claimed
  events via ``engine.restore_event(time, seq, callback)``.

A snapshot is only well-defined at a **quiescent point**: no
hypervisor event chain in flight (interrupts unmasked), no interpose
window open, and every live heap entry claimed by a known owner
(boundary timer, device timer, CPU completion).  Components raise
:class:`SnapshotError` when their state is not reconstructible;
:func:`settle` steps the engine event by event until capture succeeds.

This module is domain-free: it never imports the hypervisor.  Classes
are recorded as ``module:qualname`` strings and resolved via importlib
on restore, so the dependency arrow stays hypervisor → sim.
"""

from __future__ import annotations

import hashlib
import importlib
import json
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.sim.engine import SimulationEngine
from repro.sim.events import EventHandle

#: Format tag stored in every snapshot, bumped on incompatible change.
SNAPSHOT_FORMAT = 1


class SnapshotError(RuntimeError):
    """The world is not at a reconstructible quiescent point."""


def class_path(cls: type) -> str:
    """``module:qualname`` reference for restore-time resolution."""
    return f"{cls.__module__}:{cls.__qualname__}"


def resolve_class(path: str) -> type:
    """Inverse of :func:`class_path`."""
    module_name, _, qualname = path.partition(":")
    obj: Any = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    return obj


class SnapshotContext:
    """Tracks which pending heap entries have been claimed by an owner.

    Built over the engine's live entries at capture time; every
    component that owns a scheduled event must :meth:`claim` it.
    Unclaimed entries after capture mean some event's callback could
    not be re-bound on restore — the capture fails rather than
    producing a fork that silently diverges.
    """

    def __init__(self, engine: SimulationEngine,
                 devices: Optional[dict[str, Any]] = None):
        self.engine = engine
        self.devices: dict[str, Any] = dict(devices or {})
        self._live: dict[int, tuple[int, int, EventHandle]] = {
            id(entry[2]): entry for entry in engine.live_entries()
        }

    def claim(self, handle: Optional[EventHandle]) -> tuple[int, int]:
        """Claim a pending event; returns its ``(time, seq)``."""
        if handle is None:
            raise SnapshotError("cannot claim a missing event handle")
        entry = self._live.pop(id(handle), None)
        if entry is None or entry[2] is not handle:
            raise SnapshotError(
                f"event {handle.label!r} is not a live pending entry "
                "(already claimed, cancelled, or foreign)"
            )
        return entry[0], entry[1]

    def assert_drained(self) -> None:
        """Fail if any pending event was not claimed by a component."""
        if self._live:
            labels = sorted(
                repr(entry[2].label) for entry in self._live.values()
            )
            raise SnapshotError(
                f"unclaimed pending events (no owner to re-bind them): "
                f"{', '.join(labels)}"
            )

    def device_method_spec(self, hook: Callable) -> Optional[dict]:
        """Describe a bound device method as ``{device, method}``.

        Returns ``None`` when the hook is not a bound method of a
        registered device (e.g. an ad-hoc lambda) — the caller decides
        whether that is an error.
        """
        owner = getattr(hook, "__self__", None)
        if owner is None:
            return None
        for name, device in self.devices.items():
            if device is owner:
                return {"device": name, "method": hook.__name__}
        return None


@dataclass(frozen=True)
class WorldSnapshot:
    """An immutable, picklable, plain-data image of a simulation world.

    ``state`` contains only JSON-able data (dicts with string keys,
    lists, tuples, strings, ints, floats, bools, None), so the
    snapshot crosses process boundaries (campaign workers) and hashes
    stably for cache fingerprinting.
    """

    state: dict

    def digest(self) -> str:
        """Stable SHA-256 over the canonical JSON of the state.

        Folded into the campaign-cache fingerprint of forked subtasks:
        a child task's cached result is only replayed when the parent
        snapshot it forked from is byte-identical too.
        """
        payload = json.dumps(self.state, sort_keys=True,
                             separators=(",", ":"), ensure_ascii=False)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _require_snapshot_protocol(obj: Any, described_as: str,
                               methods: tuple[str, ...]) -> None:
    """Fail with the *source* named, not an AttributeError mid-capture."""
    missing = [name for name in methods if not callable(getattr(obj, name,
                                                               None))]
    if missing:
        raise SnapshotError(
            f"{described_as} ({type(obj).__module__}."
            f"{type(obj).__qualname__}) does not implement the snapshot "
            f"protocol: missing {', '.join(missing)} "
            "(see repro.sim.snapshot for the capture/restore contract)"
        )


def capture_world(world: Any,
                  devices: Optional[dict[str, Any]] = None) -> WorldSnapshot:
    """Capture ``world`` (a hypervisor-like object) and its devices.

    ``world`` must expose ``engine`` and implement the snapshot
    protocol (``snapshot_state(ctx)`` plus a ``restore_from_snapshot``
    classmethod).  ``devices`` maps stable names to timer-like devices
    whose hooks into the world are re-bound by name on restore.

    Raises :class:`SnapshotError` unless every pending event is
    claimed by exactly one owner — the quiescence check.  A component
    that is mid-dispatch or does not speak the protocol fails with an
    error naming it, not an AttributeError deep in the capture.
    """
    engine = getattr(world, "engine", None)
    if engine is None:
        raise SnapshotError(
            f"world {type(world).__module__}.{type(world).__qualname__} "
            "exposes no .engine — not a capturable simulation world"
        )
    _require_snapshot_protocol(world, "world", ("snapshot_state",
                                               "restore_from_snapshot",
                                               "rebind_hooks"))
    for name, device in (devices or {}).items():
        _require_snapshot_protocol(device, f"device {name!r}",
                                   ("snapshot_state",
                                    "restore_from_snapshot"))
    if getattr(engine, "_running", False):
        # Mid-dispatch the queue backends hold loop-local drain state
        # (and counters are batched per run), so live_entries()/counters
        # would be inconsistent; capture only between runs.
        raise SnapshotError(
            f"cannot capture {type(world).__qualname__} while its engine "
            f"is dispatching (t={engine.now}): capture only between runs"
        )
    ctx = SnapshotContext(world.engine, devices)
    state = {
        "format": SNAPSHOT_FORMAT,
        "world_class": class_path(type(world)),
        "pending": world.engine.pending_events,
        "world": world.snapshot_state(ctx),
        "devices": {
            name: {
                "class": class_path(type(device)),
                "state": device.snapshot_state(ctx),
            }
            for name, device in ctx.devices.items()
        },
    }
    ctx.assert_drained()
    return WorldSnapshot(state)


def restore_world(snapshot: WorldSnapshot) -> tuple[Any, dict[str, Any]]:
    """Build a fresh, independent world from a snapshot.

    Returns ``(world, devices)``.  Can be called any number of times
    on the same snapshot — each call forks an independent
    continuation.
    """
    state = snapshot.state
    if state.get("format") != SNAPSHOT_FORMAT:
        raise SnapshotError(
            f"snapshot format {state.get('format')!r} != {SNAPSHOT_FORMAT}"
        )
    world_cls = resolve_class(state["world_class"])
    world = world_cls.restore_from_snapshot(state["world"])
    devices: dict[str, Any] = {}
    for name, spec in state["devices"].items():
        device_cls = resolve_class(spec["class"])
        devices[name] = device_cls.restore_from_snapshot(
            spec["state"], world.engine, world.intc
        )
    world.rebind_hooks(state["world"], devices)
    if world.engine.pending_events != state["pending"]:
        raise SnapshotError(
            f"restore re-bound {world.engine.pending_events} pending events; "
            f"the snapshot recorded {state['pending']}"
        )
    return world, devices


def settle(world: Any, devices: Optional[dict[str, Any]] = None,
           max_steps: int = 256, store: Any = None) -> WorldSnapshot:
    """Advance the world event by event until a capture succeeds.

    A run usually stops inside a hypervisor event chain (interrupts
    masked, window open, ...); the next quiescent point is at most a
    handful of events away.  ``max_steps`` bounds the search so a
    world that never quiesces (e.g. one with a guest kernel attached)
    fails loudly instead of running to completion.

    With a ``store`` (a :class:`repro.sim.worldstore.WorldStore`) the
    successful capture is interned there and a
    :class:`~repro.sim.worldstore.LayeredSnapshot` — same state, same
    digest — is returned instead of a flat copy.
    """
    if store is not None:
        from repro.sim.worldstore import capture_world_layered

        def _capture():
            snapshot, _basis = capture_world_layered(world, devices, store)
            return snapshot
    else:
        def _capture():
            return capture_world(world, devices)

    last: Optional[SnapshotError] = None
    for _ in range(max_steps):
        try:
            return _capture()
        except SnapshotError as error:
            last = error
            if not world.engine.step():
                raise SnapshotError(
                    f"event queue ran dry before reaching a quiescent "
                    f"point (last obstacle: {last})"
                )
    raise SnapshotError(
        f"no quiescent point within {max_steps} events "
        f"(last obstacle: {last})"
    )
