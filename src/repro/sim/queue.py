"""Pluggable event-queue backends for the simulation engine.

The discrete-event dispatch loop is the hottest code in the
reproduction, so the storage of pending events is swappable.  Three
backends exist:

``heap`` (:class:`HeapQueueEngine`)
    A binary heap of ``(time, seq, callback, handle)`` tuples.  Every
    sift comparison is a C-level tuple compare, the callback rides in
    the entry so dispatch needs no attribute load, and lazily-cancelled
    entries are compacted away when they outnumber live ones.

``bucket`` (:class:`BucketQueueEngine`)
    A calendar/timing-wheel hybrid: a dict keyed by timestamp whose
    values are either a single ``(seq, callback, handle)`` tuple (the
    overwhelmingly common case) or a list of them, plus a small binary
    heap of the *distinct* timestamps.  Workloads dominated by periodic
    timer/TDMA deadlines reschedule into a handful of distinct
    timestamps, so most heap traffic collapses into integer pushes and
    O(1) dict hits, and all events sharing a cycle drain as one batch
    with a single clock write.

``array`` (:class:`repro.sim.arrayqueue.ArrayQueueEngine`)
    Columnar storage: parallel integer columns for (time, seq,
    cancelled) plus flat callback/handle lists, slot recycling through
    a freelist, and the same calendar-bucket index keyed over the time
    column.  Dense same-cycle volleys inserted via
    ``schedule_batch`` occupy contiguous column blocks covered by one
    batch handle and dispatch straight off the callback column — no
    per-event allocation at all — which is what clears the >=1.8x gate
    over ``bucket`` on the dispatch-dominated fig6 storm benchmark.
    Compaction optionally vectorizes through numpy and degrades to
    pure python when numpy is absent.

All backends emit the exact same ``(time, seq)`` FIFO order — traces,
latency CSVs and snapshot digests are byte-identical across backends,
pinned by ``tests/test_queue_backends.py``.  The default backend is the
one that measures faster on the interleaved A/B microbenchmark
(``repro.sim.benchmark.measure_backend_ab``); override it per process
with the ``REPRO_QUEUE_BACKEND`` environment variable or per engine
with ``SimulationEngine(backend=...)`` (the experiments CLI exposes
``--queue-backend``).
"""

from __future__ import annotations

import os
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Optional

from repro.sim.arrayqueue import ArrayQueueEngine
from repro.sim.engine import COMPACTION_FLOOR, SimulationEngine, SimulationError
from repro.sim.events import EventHandle

#: Measured faster on the interleaved A/B microbenchmark (same-cycle
#: batches collapse into single bucket drains); see
#: ``repro.sim.benchmark.measure_backend_ab`` and BENCH_experiments.json.
DEFAULT_QUEUE_BACKEND = "bucket"

#: Environment variable consulted when no explicit backend is given.
ENV_QUEUE_BACKEND = "REPRO_QUEUE_BACKEND"


def resolve_backend_name(explicit: Optional[str] = None) -> str:
    """Resolve a backend name: explicit argument > environment > default."""
    name = explicit
    if name is None:
        name = os.environ.get(ENV_QUEUE_BACKEND) or DEFAULT_QUEUE_BACKEND
    if name not in QUEUE_BACKENDS:
        known = ", ".join(sorted(QUEUE_BACKENDS))
        source = ("explicit backend argument" if explicit is not None
                  else f"environment variable {ENV_QUEUE_BACKEND}")
        raise SimulationError(
            f"unknown queue backend {name!r} from {source} "
            f"(valid backends: {known})"
        )
    return name


def resolve_backend_class(explicit: Optional[str] = None) -> type:
    """Resolve a backend name to its engine class."""
    return QUEUE_BACKENDS[resolve_backend_name(explicit)]


class HeapQueueEngine(SimulationEngine):
    """Binary-heap event queue with lazy cancellation and batch dispatch."""

    backend_name = "heap"

    __slots__ = ("_heap",)

    def __init__(self, backend: Optional[str] = None,
                 idle_skip: Optional[bool] = None):
        super().__init__(idle_skip=idle_skip)
        # Entries are (time, seq, callback, handle): the callback is
        # duplicated into the tuple so the dispatch loop never loads it
        # off the handle, and (time, seq) uniqueness guarantees the
        # trailing elements are never compared during sifts.
        self._heap: list[tuple] = []

    # -- scheduling (hot) ----------------------------------------------

    def schedule(self, delay: int, callback: Callable[[], Any],
                 label: Optional[str] = None, *,
                 _push=heappush, _new=EventHandle.__new__, _cls=EventHandle) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event in the past (delay={delay})")
        time = self._now + delay
        seq = self._seq
        self._seq = seq + 1
        # Allocate the handle without a Python-level __init__ call.
        handle = _new(_cls)
        handle.time = time
        handle.seq = seq
        handle.callback = callback
        handle.label = label
        handle._cancelled = False
        handle._fired = False
        handle._engine = self
        self._pending += 1
        _push(self._heap, (time, seq, callback, handle))
        return handle

    def schedule_at(self, time: int, callback: Callable[[], Any],
                    label: Optional[str] = None, *,
                    _push=heappush, _new=EventHandle.__new__, _cls=EventHandle) -> EventHandle:
        """Schedule ``callback`` to run at absolute time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event in the past (t={time}, now={self._now})"
            )
        seq = self._seq
        self._seq = seq + 1
        handle = _new(_cls)
        handle.time = time
        handle.seq = seq
        handle.callback = callback
        handle.label = label
        handle._cancelled = False
        handle._fired = False
        handle._engine = self
        self._pending += 1
        _push(self._heap, (time, seq, callback, handle))
        return handle

    def _insert_entry(self, time: int, seq: int, callback: Callable[[], Any],
                      handle: EventHandle) -> None:
        heappush(self._heap, (time, seq, callback, handle))

    # -- cancellation / compaction -------------------------------------

    def _event_cancelled(self) -> None:
        pending = self._pending - 1
        self._pending = pending
        self._cancelled_count += 1
        # Compact when dead entries outnumber both the floor and the
        # live count.  Triggering at cancel time (rather than on every
        # schedule, as before) keeps the accounting exact while moving
        # the check off the schedule hot path entirely.
        dead = len(self._heap) - pending
        if dead > COMPACTION_FLOOR and dead > pending:
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without lazily-cancelled dead entries.

        Mutates the heap list *in place* — the run loops hold a local
        alias to it — and preserves every live entry exactly, so event
        ordering (and therefore simulation output) is unchanged.
        """
        heap = self._heap
        heap[:] = [entry for entry in heap if not entry[3]._cancelled]
        heapify(heap)
        self._compactions += 1

    # -- dispatch (hot) ------------------------------------------------

    def run(self, max_events: Optional[int] = None, *, _pop=heappop) -> int:
        """Run until the event queue is empty (or ``max_events`` fired).

        Returns the number of events executed by this call.
        """
        executed = 0
        self._running = True
        self._stop_requested = False
        heap = self._heap
        now = self._now
        batches = 0
        # Unbounded runs open the skip window: a dispatched callback
        # may fast-forward the clock across a quiescent gap (never past
        # the next pending event, so the stale loop-local ``now`` is
        # corrected by the next pop's clock write).  Bounded runs keep
        # it closed — the caller observes individual events.
        self._skip_allowed = max_events is None
        self._run_bound = None
        try:
            if max_events is None:
                while heap:
                    time, _seq, callback, handle = _pop(heap)
                    if handle._cancelled:
                        continue
                    # Same-cycle batch dispatch: the clock is written
                    # only when the timestamp actually advances.
                    if time != now:
                        self._now = now = time
                        batches += 1
                    handle._fired = True
                    executed += 1
                    callback()
                    if self._stop_requested:
                        break
            else:
                while heap and executed != max_events:
                    time, _seq, callback, handle = _pop(heap)
                    if handle._cancelled:
                        continue
                    if time != now:
                        self._now = now = time
                        batches += 1
                    handle._fired = True
                    executed += 1
                    callback()
                    if self._stop_requested:
                        break
        finally:
            self._running = False
            self._skip_allowed = False
            # Counters are batched per run rather than bumped per
            # event; nothing observes them mid-callback (the telemetry
            # collectors sample after a run completes).
            self._events_executed += executed
            self._pending -= executed
            self._dispatch_batches += batches
        return executed

    def run_until(self, time: int, *, _pop=heappop) -> int:
        """Run all events with timestamps <= ``time``; advance clock to ``time``.

        Returns the number of events executed by this call.
        """
        if time < self._now:
            raise SimulationError(f"cannot run backwards (t={time}, now={self._now})")
        executed = 0
        self._running = True
        self._stop_requested = False
        heap = self._heap
        now = self._now
        batches = 0
        self._skip_allowed = True
        self._run_bound = time
        try:
            while heap:
                event_time, _seq, callback, handle = heap[0]
                if handle._cancelled:
                    _pop(heap)
                    continue
                if event_time > time:
                    break
                _pop(heap)
                if event_time != now:
                    self._now = now = event_time
                    batches += 1
                handle._fired = True
                executed += 1
                callback()
                if self._stop_requested:
                    break
        finally:
            self._running = False
            self._skip_allowed = False
            self._events_executed += executed
            self._pending -= executed
            self._dispatch_batches += batches
        if not self._stop_requested:
            self._now = max(self._now, time)
        return executed

    def step(self) -> bool:
        """Execute the next pending event.

        Returns True if an event was executed, False if the queue was
        exhausted (only cancelled or no events remained).
        """
        heap = self._heap
        while heap:
            time, _seq, callback, handle = heappop(heap)
            if handle._cancelled:
                continue
            if time != self._now:
                self._now = time
                self._dispatch_batches += 1
            handle._fired = True
            self._pending -= 1
            self._events_executed += 1
            callback()
            return True
        return False

    # -- introspection -------------------------------------------------

    @property
    def heap_depth(self) -> int:
        return len(self._heap)

    def _next_pending(self) -> Optional[EventHandle]:
        heap = self._heap
        while heap:
            handle = heap[0][3]
            if handle._cancelled:
                heappop(heap)
                continue
            return handle
        return None

    def live_entries(self) -> list[tuple[int, int, EventHandle]]:
        # (time, seq) pairs are unique, so plain tuple sort never
        # reaches the (uncomparable-in-general) handle element.
        return sorted((entry[0], entry[1], entry[3])
                      for entry in self._heap if not entry[3]._cancelled)


class BucketQueueEngine(SimulationEngine):
    """Calendar-bucket event queue: one bucket per distinct timestamp.

    ``_buckets`` maps ``time -> entry | list[entry]`` where an entry is
    ``(seq, callback, handle)``; a bare tuple is a singleton bucket
    (the common case — a timestamp with exactly one event), promoted to
    a list on the second arrival.  ``_times`` is a min-heap of the
    distinct timestamps; it may briefly hold stale or duplicate times
    (after compaction or a mid-bucket stop) — the dict is the source of
    truth and the drain loops skip times with no bucket.

    ``schedule``/``schedule_at`` always append monotonically increasing
    sequence numbers, so list buckets are naturally seq-sorted.  Only
    the cold out-of-band inserts (stop sentinels with negative seqs,
    snapshot restore with original seqs) can break that; they mark the
    bucket in ``_dirty_times`` and the drain loop sorts it once before
    dispatch.
    """

    backend_name = "bucket"

    __slots__ = ("_buckets", "_times", "_dirty_times", "_dead_hint")

    def __init__(self, backend: Optional[str] = None,
                 idle_skip: Optional[bool] = None):
        super().__init__(idle_skip=idle_skip)
        self._buckets: dict = {}
        self._times: list[int] = []
        self._dirty_times: set[int] = set()
        # Cancellations since the last compaction; an upper bound on
        # the dead entries still stored (drains consume dead entries
        # without decrementing it), so compaction may fire early but
        # never late.
        self._dead_hint = 0

    # -- scheduling (hot) ----------------------------------------------

    def schedule(self, delay: int, callback: Callable[[], Any],
                 label: Optional[str] = None, *,
                 _push=heappush, _new=EventHandle.__new__, _cls=EventHandle) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event in the past (delay={delay})")
        time = self._now + delay
        seq = self._seq
        self._seq = seq + 1
        handle = _new(_cls)
        handle.time = time
        handle.seq = seq
        handle.callback = callback
        handle.label = label
        handle._cancelled = False
        handle._fired = False
        handle._engine = self
        self._pending += 1
        buckets = self._buckets
        bucket = buckets.get(time)
        if bucket is None:
            buckets[time] = (seq, callback, handle)
            _push(self._times, time)
        elif type(bucket) is list:
            bucket.append((seq, callback, handle))
        else:
            buckets[time] = [bucket, (seq, callback, handle)]
        return handle

    def schedule_at(self, time: int, callback: Callable[[], Any],
                    label: Optional[str] = None, *,
                    _push=heappush, _new=EventHandle.__new__, _cls=EventHandle) -> EventHandle:
        """Schedule ``callback`` to run at absolute time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event in the past (t={time}, now={self._now})"
            )
        seq = self._seq
        self._seq = seq + 1
        handle = _new(_cls)
        handle.time = time
        handle.seq = seq
        handle.callback = callback
        handle.label = label
        handle._cancelled = False
        handle._fired = False
        handle._engine = self
        self._pending += 1
        buckets = self._buckets
        bucket = buckets.get(time)
        if bucket is None:
            buckets[time] = (seq, callback, handle)
            _push(self._times, time)
        elif type(bucket) is list:
            bucket.append((seq, callback, handle))
        else:
            buckets[time] = [bucket, (seq, callback, handle)]
        return handle

    def _insert_entry(self, time: int, seq: int, callback: Callable[[], Any],
                      handle: EventHandle) -> None:
        # Cold path: sentinel/restored seqs arrive out of order, so the
        # bucket is flagged for a one-time sort before it drains.
        buckets = self._buckets
        bucket = buckets.get(time)
        if bucket is None:
            buckets[time] = (seq, callback, handle)
            heappush(self._times, time)
            return
        if self._running and time == self._now:
            # The bucket at the current timestamp may be mid-drain (the
            # drain index is a loop local, so a sort cannot reorder the
            # not-yet-dispatched tail).  Honoring fire-before-remaining
            # semantics for a same-cycle out-of-band insert is
            # impossible here; no caller does this (stop sentinels are
            # installed before engine.run(), restores happen on fresh
            # engines), so refuse loudly rather than misorder.  This is
            # conservative: it also rejects buckets (re)created during
            # the current batch, which a singleton drain handles fine.
            raise SimulationError(
                f"cannot insert an out-of-band event into the currently "
                f"dispatching timestamp (t={time})"
            )
        if type(bucket) is list:
            bucket.append((seq, callback, handle))
        else:
            buckets[time] = [bucket, (seq, callback, handle)]
        self._dirty_times.add(time)

    # -- cancellation / compaction -------------------------------------

    def _event_cancelled(self) -> None:
        pending = self._pending - 1
        self._pending = pending
        self._cancelled_count += 1
        dead = self._dead_hint + 1
        self._dead_hint = dead
        if dead > COMPACTION_FLOOR and dead > pending:
            self._compact()

    def _compact(self) -> None:
        """Drop dead entries from every bucket except the draining one.

        List buckets are filtered *in place* (the drain loop may hold a
        reference); emptied buckets are deleted and the timestamp heap
        is rebuilt from the dict keys.  The bucket at the current
        timestamp is skipped while running: its drain index is a loop
        local in ``run``/``run_until`` and removal would desync it.
        """
        buckets = self._buckets
        draining = self._now if self._running else None
        for t in list(buckets):
            if t == draining:
                continue
            bucket = buckets[t]
            if type(bucket) is not list:
                if bucket[2]._cancelled:
                    del buckets[t]
                continue
            live = [entry for entry in bucket if not entry[2]._cancelled]
            if not live:
                del buckets[t]
            elif len(live) != len(bucket):
                bucket[:] = live
        times = self._times
        times[:] = list(buckets)
        heapify(times)
        self._dirty_times.intersection_update(buckets)
        self._dead_hint = 0
        self._compactions += 1

    # -- dispatch (hot) ------------------------------------------------

    def run(self, max_events: Optional[int] = None, *,
            _pop=heappop, _push=heappush) -> int:
        """Run until the event queue is empty (or ``max_events`` fired).

        Returns the number of events executed by this call.
        """
        executed = 0
        self._running = True
        self._stop_requested = False
        times = self._times
        buckets = self._buckets
        get = buckets.get
        dirty = self._dirty_times
        now = self._now
        batches = 0
        bounded = max_events is not None
        self._skip_allowed = not bounded
        self._run_bound = None
        try:
            while times:
                if bounded and executed == max_events:
                    break
                t = _pop(times)
                bucket = get(t)
                if bucket is None:
                    continue        # stale duplicate timestamp
                if type(bucket) is not list:
                    # Singleton fast path.  The dict entry is removed
                    # *before* the callback so a reschedule at the same
                    # timestamp opens a fresh bucket (dispatched on the
                    # next outer iteration, exactly like the heap).
                    del buckets[t]
                    _seq, callback, handle = bucket
                    if handle._cancelled:
                        continue
                    if t != now:
                        self._now = now = t
                        batches += 1
                    handle._fired = True
                    executed += 1
                    callback()
                    if self._stop_requested:
                        break
                    continue
                if dirty and t in dirty:
                    bucket.sort()
                    dirty.discard(t)
                i = 0
                n = len(bucket)
                # Skip leading dead entries before touching the clock:
                # an all-cancelled bucket must not advance time (the
                # heap pops dead entries without a clock write).
                while i < n and bucket[i][2]._cancelled:
                    i += 1
                if i == n:
                    del buckets[t]
                    continue
                if t != now:
                    self._now = now = t
                    batches += 1
                # The bucket's timestamp is already popped off the
                # times heap, so its co-timestamped tail is invisible
                # to _next_pending: close the skip window for the
                # duration of the batch drain.
                self._in_batch = True
                while i < n:
                    _seq, callback, handle = bucket[i]
                    i += 1
                    if handle._cancelled:
                        if i == n:
                            n = len(bucket)   # callbacks may have appended
                        continue
                    handle._fired = True
                    executed += 1
                    callback()
                    if self._stop_requested or (bounded and executed == max_events):
                        break
                    if i == n:
                        n = len(bucket)
                self._in_batch = False
                if i < len(bucket):
                    # Suspended mid-bucket: keep the undispatched tail
                    # and requeue the timestamp.
                    del bucket[:i]
                    _push(times, t)
                else:
                    del buckets[t]
                if self._stop_requested:
                    break
        finally:
            self._running = False
            self._skip_allowed = False
            self._in_batch = False
            self._events_executed += executed
            self._pending -= executed
            self._dispatch_batches += batches
        return executed

    def run_until(self, time: int, *, _pop=heappop, _push=heappush) -> int:
        """Run all events with timestamps <= ``time``; advance clock to ``time``.

        Returns the number of events executed by this call.
        """
        if time < self._now:
            raise SimulationError(f"cannot run backwards (t={time}, now={self._now})")
        executed = 0
        self._running = True
        self._stop_requested = False
        times = self._times
        buckets = self._buckets
        get = buckets.get
        dirty = self._dirty_times
        now = self._now
        batches = 0
        self._skip_allowed = True
        self._run_bound = time
        try:
            while times:
                t = times[0]
                if t > time:
                    break
                _pop(times)
                bucket = get(t)
                if bucket is None:
                    continue
                if type(bucket) is not list:
                    del buckets[t]
                    _seq, callback, handle = bucket
                    if handle._cancelled:
                        continue
                    if t != now:
                        self._now = now = t
                        batches += 1
                    handle._fired = True
                    executed += 1
                    callback()
                    if self._stop_requested:
                        break
                    continue
                if dirty and t in dirty:
                    bucket.sort()
                    dirty.discard(t)
                i = 0
                n = len(bucket)
                while i < n and bucket[i][2]._cancelled:
                    i += 1
                if i == n:
                    del buckets[t]
                    continue
                if t != now:
                    self._now = now = t
                    batches += 1
                self._in_batch = True
                while i < n:
                    _seq, callback, handle = bucket[i]
                    i += 1
                    if handle._cancelled:
                        if i == n:
                            n = len(bucket)
                        continue
                    handle._fired = True
                    executed += 1
                    callback()
                    if self._stop_requested:
                        break
                    if i == n:
                        n = len(bucket)
                self._in_batch = False
                if i < len(bucket):
                    del bucket[:i]
                    _push(times, t)
                else:
                    del buckets[t]
                if self._stop_requested:
                    break
        finally:
            self._running = False
            self._skip_allowed = False
            self._in_batch = False
            self._events_executed += executed
            self._pending -= executed
            self._dispatch_batches += batches
        if not self._stop_requested:
            self._now = max(self._now, time)
        return executed

    def step(self) -> bool:
        """Execute the next pending event.

        Returns True if an event was executed, False if the queue was
        exhausted (only cancelled or no events remained).
        """
        times = self._times
        buckets = self._buckets
        dirty = self._dirty_times
        while times:
            t = times[0]
            bucket = buckets.get(t)
            if bucket is None:
                heappop(times)
                continue
            if type(bucket) is not list:
                heappop(times)
                del buckets[t]
                entry = bucket
            else:
                if t in dirty:
                    bucket.sort()
                    dirty.discard(t)
                entry = bucket[0]
                del bucket[0]
                if not bucket:
                    heappop(times)
                    del buckets[t]
            handle = entry[2]
            if handle._cancelled:
                continue
            if t != self._now:
                self._now = t
                self._dispatch_batches += 1
            handle._fired = True
            self._pending -= 1
            self._events_executed += 1
            entry[1]()
            return True
        return False

    # -- introspection -------------------------------------------------

    @property
    def heap_depth(self) -> int:
        return sum(1 if type(bucket) is not list else len(bucket)
                   for bucket in self._buckets.values())

    def _next_pending(self) -> Optional[EventHandle]:
        times = self._times
        buckets = self._buckets
        dirty = self._dirty_times
        while times:
            t = times[0]
            bucket = buckets.get(t)
            if bucket is None:
                heappop(times)
                continue
            if type(bucket) is not list:
                if bucket[2]._cancelled:
                    heappop(times)
                    del buckets[t]
                    continue
                return bucket[2]
            if t in dirty:
                bucket.sort()
                dirty.discard(t)
            while bucket and bucket[0][2]._cancelled:
                del bucket[0]
            if not bucket:
                heappop(times)
                del buckets[t]
                continue
            return bucket[0][2]
        return None

    def live_entries(self) -> list[tuple[int, int, EventHandle]]:
        entries = []
        for t, bucket in self._buckets.items():
            if type(bucket) is not list:
                if not bucket[2]._cancelled:
                    entries.append((t, bucket[0], bucket[2]))
            else:
                entries.extend((t, entry[0], entry[2])
                               for entry in bucket if not entry[2]._cancelled)
        entries.sort()
        return entries


#: Registry of selectable queue backends.
QUEUE_BACKENDS: dict[str, type] = {
    "heap": HeapQueueEngine,
    "bucket": BucketQueueEngine,
    "array": ArrayQueueEngine,
}
