"""Layered copy-on-write store for world snapshots.

:mod:`repro.sim.snapshot` (PR 4) made shared-prefix execution
possible, but every fork still materializes a *full* copy of the world
state: deep scenario trees — learning phase → per-``d_min`` branch →
per-load-bound branch → per-seed leaf — pay O(world) time and memory
at every branch point even though siblings differ in one policy
object.  This module removes that wall:

* a **fragment store** interns each component state as canonical JSON
  text keyed by its SHA-256 — identical states (the engine counters of
  a hundred siblings, the shared interarrival array) are stored once;
* a **layer** maps part names to fragment digests; a fork is a thin
  child layer recording only the parts that changed, falling through
  to its parent for everything else.  Layers themselves are interned
  by content, so identical sibling forks collapse to one layer;
* a :class:`LayeredSnapshot` presents a layer stack as the plain
  :class:`~repro.sim.snapshot.WorldSnapshot` interface — same
  ``state`` dict, same ``digest()`` — so restore, campaign caching and
  pickling are unchanged.  **Digests are byte-identical to the
  deep-copy path**: the canonical JSON of the assembled state is
  reconstructed fragment by fragment and must equal
  ``json.dumps(state, sort_keys=True, ...)`` exactly.

Dirty tracking uses two independent mechanisms layered on the
existing ``snapshot_state``/``restore_from_snapshot`` protocol:

* the engine's :attr:`~repro.sim.engine.SimulationEngine
  .activity_fingerprint` proves, when unchanged since the capture
  basis, that no event was scheduled/dispatched/cancelled — event
  ownership (heap claims) is exactly as captured, so the store may
  re-serialize parts *individually* without re-running the global
  claim/``assert_drained`` quiescence audit;
* per-component **change epochs** (``snapshot_epoch`` counters bumped
  by every public mutator of the trace recorder, interference ledger,
  latency columns and timers) let the heavyweight append-only parts
  skip re-serialization entirely when untouched.  Parts without an
  epoch are simply re-serialized and digest-compared — correct for
  arbitrary mutation, O(part) instead of O(world).

The module stays domain-free like :mod:`repro.sim.snapshot`: the part
split is structural (top-level scalars, one part per ``world`` sub-key
as returned by the world's ``snapshot_part_names()``, one per device),
never hypervisor-specific.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import tempfile
from collections import OrderedDict
from pathlib import Path
from typing import Any, Optional

from repro.sim.snapshot import (
    SNAPSHOT_FORMAT,
    SnapshotContext,
    SnapshotError,
    WorldSnapshot,
    capture_world,
    class_path,
    restore_world,
)

#: Keys of a snapshot ``state`` dict that are stored as their own parts.
_TOP_SCALARS = ("format", "world_class", "pending")

#: Cap on the capture-event log kept for Perfetto export.
CAPTURE_LOG_CAP = 4096

#: Environment variable holding the resident-bytes budget for stores
#: created without an explicit ``budget_bytes`` (``--store-budget``
#: writes it so campaign worker processes inherit the limit).
ENV_STORE_BUDGET = "REPRO_STORE_BUDGET"

#: First bytes of every spill file; a file without it is treated as
#: absent (all records miss) rather than an error.
SPILL_MAGIC = b"RSPILL01"

#: Per-record header: big-endian payload length + raw content digest.
_SPILL_HEADER = struct.Struct(">I32s")

_BUDGET_SUFFIXES = {"k": 1024, "m": 1024 ** 2, "g": 1024 ** 3}

#: Sentinel distinguishing "resolve the budget from the environment"
#: (the default) from an explicit ``budget_bytes=None`` (unlimited).
_ENV_BUDGET = object()


def parse_store_budget(raw: str) -> Optional[int]:
    """Parse a budget spelling: bytes with an optional k/m/g suffix.

    ``""``, ``"none"`` and ``"unlimited"`` mean no budget.  Anything
    else must be a non-negative integer byte count, optionally scaled
    by a binary suffix (``256k``, ``16m``, ``1g``).
    """
    text = raw.strip().lower()
    if text in ("", "none", "unlimited"):
        return None
    scale = 1
    if text[-1] in _BUDGET_SUFFIXES:
        scale = _BUDGET_SUFFIXES[text[-1]]
        text = text[:-1]
    try:
        count = int(text, 10)
    except ValueError:
        count = -1
    if count < 0:
        raise SnapshotError(
            f"invalid store budget {raw!r} (expected a non-negative "
            f"byte count with an optional k/m/g suffix, e.g. 262144, "
            f"256k, 16m, or none)")
    return count * scale


def resolve_store_budget(explicit: "int | None" = None) -> Optional[int]:
    """Resident-bytes budget: explicit argument > environment > unlimited.

    An empty environment value counts as unset; an invalid one raises
    rather than silently running unbounded.
    """
    if explicit is not None:
        return explicit
    raw = os.environ.get(ENV_STORE_BUDGET, "")
    if not raw:
        return None
    return parse_store_budget(raw)


def canonical_json(value: Any) -> str:
    """The canonical encoding every snapshot digest is defined over."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"),
                      ensure_ascii=False)


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class WorldStoreStats:
    """Counters exposed through telemetry as ``sim_world_layers_*``."""

    __slots__ = ("fragments_stored", "fragment_dedup_hits", "bytes_stored",
                 "bytes_shared", "layers_created", "layer_dedup_hits",
                 "fast_captures", "full_captures", "data_forks",
                 "parts_reused", "parts_recaptured", "fragments_spilled",
                 "fragments_pinned", "spill_faults", "spill_corrupt_records",
                 "spill_bytes_written", "spill_bytes_read")

    def __init__(self) -> None:
        self.fragments_stored = 0
        self.fragment_dedup_hits = 0
        self.bytes_stored = 0
        self.bytes_shared = 0
        self.layers_created = 0
        self.layer_dedup_hits = 0
        self.fast_captures = 0
        self.full_captures = 0
        self.data_forks = 0
        self.parts_reused = 0
        self.parts_recaptured = 0
        self.fragments_spilled = 0
        self.fragments_pinned = 0
        self.spill_faults = 0
        self.spill_corrupt_records = 0
        self.spill_bytes_written = 0
        self.spill_bytes_read = 0

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}


class WorldLayer:
    """One immutable level of the copy-on-write stack.

    ``delta`` maps part keys (``"world.<name>"``, ``"devices.<name>"``
    or a top-level scalar key) to fragment digests; reads of keys not
    in the delta fall through to ``parent``.  Layers are interned by
    the digest of their *resolved* mapping, so two forks that end up
    with identical content are the same object regardless of the path
    that produced them.
    """

    __slots__ = ("parent", "delta", "digest", "depth", "_mapping")

    def __init__(self, parent: Optional["WorldLayer"],
                 delta: dict[str, str], digest: str):
        self.parent = parent
        self.delta = delta
        self.digest = digest
        self.depth = 0 if parent is None else parent.depth + 1
        self._mapping: Optional[dict[str, str]] = None

    def mapping(self) -> dict[str, str]:
        """Resolved ``part key -> fragment digest`` view of the stack."""
        if self._mapping is None:
            if self.parent is None:
                resolved = dict(self.delta)
            else:
                resolved = dict(self.parent.mapping())
                resolved.update(self.delta)
            self._mapping = resolved
        return self._mapping


class LayeredSnapshot:
    """A :class:`WorldSnapshot`-compatible view over a layer stack.

    ``state`` materializes lazily from the store's *shared* Python
    values (not a JSON round-trip, so tuples and non-string dict keys
    survive exactly as the components produced them); restore treats
    snapshot state as read-only, so sharing values across siblings is
    safe.  Pickling reduces to a plain :class:`WorldSnapshot` — a
    campaign worker or the disk cache never drags the store along.
    """

    __slots__ = ("store", "layer", "_state", "_digest")

    def __init__(self, store: "WorldStore", layer: WorldLayer):
        self.store = store
        self.layer = layer
        self._state: Optional[dict] = None
        self._digest: Optional[str] = None

    @property
    def state(self) -> dict:
        if self._state is None:
            world: dict[str, Any] = {}
            devices: dict[str, Any] = {}
            top: dict[str, Any] = {}
            for key, digest in self.layer.mapping().items():
                value = self.store.fragment_value(digest)
                if key.startswith("world."):
                    world[key[len("world."):]] = value
                elif key.startswith("devices."):
                    devices[key[len("devices."):]] = value
                else:
                    top[key] = value
            top["world"] = world
            top["devices"] = devices
            self._state = top
        return self._state

    def digest(self) -> str:
        """Byte-identical to ``WorldSnapshot(self.state).digest()``.

        Assembled from the interned canonical fragments instead of
        re-serializing the whole state: the JSON of a dict node with
        string keys is exactly the sorted, comma-joined concatenation
        of ``key:fragment`` pieces, so no part is ever re-encoded.
        """
        if self._digest is None:
            self._digest = self.store.layer_root_digest(self.layer)
        return self._digest

    def __reduce__(self):
        return (WorldSnapshot, (self.state,))


class ForkBasis:
    """What a capture must be compared against to go fast.

    Records the layer a live world was restored from (or captured
    into), the engine activity fingerprint at that instant, and the
    change epochs of every epoch-aware part.  A later capture with an
    unchanged engine fingerprint only re-examines parts whose epoch
    moved (or that have no epoch), instead of re-auditing the world.
    """

    __slots__ = ("store", "layer", "engine_fingerprint", "epochs",
                 "device_names")

    def __init__(self, store: "WorldStore", layer: WorldLayer,
                 engine_fingerprint: tuple, epochs: dict[str, int],
                 device_names: tuple[str, ...]):
        self.store = store
        self.layer = layer
        self.engine_fingerprint = engine_fingerprint
        self.epochs = epochs
        self.device_names = device_names


class WorldStore:
    """Content-addressed fragment + layer store shared by a fork tree.

    Resident fragments live in an LRU dict bounded by ``budget_bytes``
    (``None`` = unlimited; the default resolves ``REPRO_STORE_BUDGET``).
    When the budget overflows, cold fragments whose values survive a
    JSON round-trip are appended to a spill file and dropped from RAM;
    :meth:`fragment_text`/:meth:`fragment_value` transparently fault
    them back on resolve.  The content digest doubles as the record
    checksum — a torn or corrupted record is detected on read and
    treated as a miss (the fragment must be re-derived), mirroring the
    result cache's corrupt-entry policy.
    """

    def __init__(self, budget_bytes: "int | None" = _ENV_BUDGET,  # type: ignore[assignment]
                 spill_path: "str | os.PathLike[str] | None" = None) -> None:
        if budget_bytes is _ENV_BUDGET:
            budget_bytes = resolve_store_budget()
        #: Resident-bytes budget; ``None`` disables spilling entirely.
        self.budget_bytes = budget_bytes
        self._spill_path: Optional[Path] = (
            Path(spill_path) if spill_path is not None else None)
        self._spill_path_is_temp = spill_path is None
        self._spill_file = None
        # digest -> (offset, payload bytes) of records in the spill file
        self._spilled: dict[str, tuple[int, int]] = {}
        # digests whose values don't survive a JSON round-trip (tuples,
        # non-string dict keys): pinned resident forever.
        self._unspillable: set[str] = set()
        self._resident_bytes = 0
        # digest -> (canonical text, shared Python value, encoded bytes),
        # ordered coldest-first for LRU eviction
        self._fragments: "OrderedDict[str, tuple[str, Any, int]]" = (
            OrderedDict())
        # layer-mapping digest -> interned WorldLayer
        self._layers: dict[str, WorldLayer] = {}
        # layer digest -> whole-state digest (assembly memo)
        self._root_digests: dict[str, str] = {}
        self.stats = WorldStoreStats()
        #: Capped ``(sim_time, kind, parts_changed, depth)`` capture log
        #: rendered as a Perfetto track by :mod:`repro.telemetry`.
        self.capture_log: list[tuple[int, str, int, int]] = []
        #: Capped ``(sim_time, kind, fragments, bytes)`` spill/fault log
        #: rendered as the "Fragment spill" Perfetto track.
        self.spill_log: list[tuple[int, str, int, int]] = []
        self._last_sim_time = 0

    # -- fragments ----------------------------------------------------

    def put_fragment(self, value: Any) -> str:
        """Intern ``value``; returns its content digest."""
        text = canonical_json(value)
        data = text.encode("utf-8")
        digest = hashlib.sha256(data).hexdigest()
        if digest in self._fragments:
            self._fragments.move_to_end(digest)
            self.stats.fragment_dedup_hits += 1
            self.stats.bytes_shared += len(text)
        elif digest in self._spilled:
            # The same content was spilled earlier: re-admit from the
            # caller's copy (no disk read) and keep the on-disk record
            # for the next eviction.
            self._admit(digest, text, value, len(data))
            self.stats.fragment_dedup_hits += 1
            self.stats.bytes_shared += len(text)
        else:
            self._admit(digest, text, value, len(data))
            self.stats.fragments_stored += 1
            self.stats.bytes_stored += len(text)
        return digest

    def fragment_text(self, digest: str) -> str:
        entry = self._fragments.get(digest)
        if entry is None:
            entry = self._fault(digest)
        else:
            self._fragments.move_to_end(digest)
        return entry[0]

    def fragment_value(self, digest: str) -> Any:
        entry = self._fragments.get(digest)
        if entry is None:
            entry = self._fault(digest)
        else:
            self._fragments.move_to_end(digest)
        return entry[1]

    # -- spill tier ---------------------------------------------------

    @property
    def resident_bytes(self) -> int:
        """Encoded bytes of the fragments currently held in RAM."""
        return self._resident_bytes

    @property
    def spilled_count(self) -> int:
        return len(self._spilled)

    @property
    def pinned_count(self) -> int:
        return len(self._unspillable)

    @property
    def spill_path(self) -> Optional[Path]:
        """Configured or auto-generated spill file path.

        ``None`` when no path was given and nothing has spilled yet.
        """
        return self._spill_path

    def clear(self) -> None:
        """Drop every fragment, layer, memo and spill record.

        The spill file is deleted (recreated lazily on the next
        eviction).  ``stats`` counters are cumulative and survive a
        clear; the resident/spilled gauges reset to zero.
        """
        self._fragments.clear()
        self._layers.clear()
        self._root_digests.clear()
        self._spilled.clear()
        self._unspillable.clear()
        self._resident_bytes = 0
        self.capture_log.clear()
        self.spill_log.clear()
        self._last_sim_time = 0
        if self._spill_file is not None:
            try:
                self._spill_file.close()
            except OSError:
                pass
            self._spill_file = None
        if self._spill_path is not None:
            try:
                os.unlink(self._spill_path)
            except OSError:
                pass
            if self._spill_path_is_temp:
                self._spill_path = None

    def _admit(self, digest: str, text: str, value: Any,
               nbytes: int) -> None:
        self._fragments[digest] = (text, value, nbytes)
        self._resident_bytes += nbytes
        self._enforce_budget()

    def _enforce_budget(self) -> None:
        budget = self.budget_bytes
        if budget is None or self._resident_bytes <= budget:
            return
        evicted = 0
        evicted_bytes = 0
        # Coldest first; the newest entry is never evicted (its caller
        # holds a live reference anyway, so dropping it saves nothing).
        for digest in list(self._fragments)[:-1]:
            if self._resident_bytes <= budget:
                break
            if digest in self._unspillable:
                continue
            text, value, nbytes = self._fragments[digest]
            if not _json_faithful(text, value):
                self._unspillable.add(digest)
                self.stats.fragments_pinned += 1
                continue
            if digest not in self._spilled:
                self._spilled[digest] = self._spill_write(digest, text)
                self.stats.fragments_spilled += 1
            del self._fragments[digest]
            self._resident_bytes -= nbytes
            evicted += 1
            evicted_bytes += nbytes
        if evicted:
            self._log_spill("spill", evicted, evicted_bytes)

    def _ensure_spill_file(self):
        if self._spill_file is not None:
            return self._spill_file
        path = self._spill_path
        if path is None:
            path = Path(tempfile.gettempdir()) / (
                f"repro-spill-{os.getpid()}-{id(self):x}.bin")
        path.parent.mkdir(parents=True, exist_ok=True)
        # Atomic creation: the magic header lands via tempfile+replace,
        # so a reader never sees a half-written file head.  Appends
        # after that are flushed per record; a torn tail fails the
        # per-record checksum and reads as a miss.
        fd, tmp_name = tempfile.mkstemp(dir=str(path.parent),
                                        prefix=path.name + ".",
                                        suffix=".tmp")
        with os.fdopen(fd, "wb") as head:
            head.write(SPILL_MAGIC)
        os.replace(tmp_name, path)
        self._spill_path = path
        self._spill_file = open(path, "a+b")
        return self._spill_file

    def _spill_write(self, digest: str, text: str) -> tuple[int, int]:
        data = text.encode("utf-8")
        handle = self._ensure_spill_file()
        handle.seek(0, os.SEEK_END)
        offset = handle.tell() + _SPILL_HEADER.size
        handle.write(_SPILL_HEADER.pack(len(data), bytes.fromhex(digest)))
        handle.write(data)
        handle.flush()
        self.stats.spill_bytes_written += len(data)
        return offset, len(data)

    def _fault(self, digest: str) -> tuple[str, Any, int]:
        entry = self._spilled.get(digest)
        if entry is None:
            raise KeyError(digest)
        offset, nbytes = entry
        data = b""
        if self._spill_file is not None:
            try:
                self._spill_file.seek(offset)
                data = self._spill_file.read(nbytes)
            except OSError:
                data = b""
        if (len(data) != nbytes
                or hashlib.sha256(data).hexdigest() != digest):
            del self._spilled[digest]
            self.stats.spill_corrupt_records += 1
            self._log_spill("corrupt", 1, nbytes)
            raise SnapshotError(
                f"spill record for fragment {digest} in "
                f"{self._spill_path} is corrupt or truncated; treating "
                f"it as a miss — re-derive the fragment (re-capture or "
                f"re-put) to repair the store")
        text = data.decode("utf-8")
        value = json.loads(text)
        self._fragments[digest] = (text, value, nbytes)
        self._resident_bytes += nbytes
        self.stats.spill_faults += 1
        self.stats.spill_bytes_read += nbytes
        self._log_spill("fault", 1, nbytes)
        self._enforce_budget()
        return self._fragments[digest]

    def _log_spill(self, kind: str, fragments: int, nbytes: int) -> None:
        if len(self.spill_log) < CAPTURE_LOG_CAP:
            self.spill_log.append(
                (self._last_sim_time, kind, fragments, nbytes))

    # -- layers -------------------------------------------------------

    def make_layer(self, parent: Optional[WorldLayer],
                   delta: dict[str, str]) -> WorldLayer:
        """Intern a layer; identical content returns the same object."""
        for key in delta:
            if not isinstance(key, str):
                raise SnapshotError(
                    f"layer part keys must be strings, got {key!r}")
        if parent is not None and not delta:
            self.stats.layer_dedup_hits += 1
            return parent
        if parent is None:
            resolved = dict(delta)
        else:
            resolved = dict(parent.mapping())
            resolved.update(delta)
        digest = _sha256(canonical_json(resolved))
        layer = self._layers.get(digest)
        if layer is not None:
            self.stats.layer_dedup_hits += 1
            return layer
        layer = WorldLayer(parent, dict(delta), digest)
        layer._mapping = resolved
        self._layers[digest] = layer
        self.stats.layers_created += 1
        return layer

    @property
    def layer_count(self) -> int:
        return len(self._layers)

    @property
    def fragment_count(self) -> int:
        return len(self._fragments)

    def layer_root_digest(self, layer: WorldLayer) -> str:
        """SHA-256 of the full canonical state, assembled from fragments."""
        memo = self._root_digests.get(layer.digest)
        if memo is not None:
            return memo
        world_items: list[tuple[str, str]] = []
        device_items: list[tuple[str, str]] = []
        top_items: list[tuple[str, str]] = []
        for key, digest in layer.mapping().items():
            text = self.fragment_text(digest)
            if key.startswith("world."):
                world_items.append((key[len("world."):], text))
            elif key.startswith("devices."):
                device_items.append((key[len("devices."):], text))
            else:
                top_items.append((key, text))
        top_items.append(("world", _join_object(world_items)))
        top_items.append(("devices", _join_object(device_items)))
        root = _sha256(_join_object(top_items))
        self._root_digests[layer.digest] = root
        return root

    # -- capture log --------------------------------------------------

    def log_capture(self, sim_time: int, kind: str, parts_changed: int,
                    depth: int) -> None:
        self._last_sim_time = sim_time
        if len(self.capture_log) < CAPTURE_LOG_CAP:
            self.capture_log.append((sim_time, kind, parts_changed, depth))


def _json_faithful(text: str, value: Any) -> bool:
    """Whether ``value`` survives a JSON round-trip of its canonical text.

    Python equality is exact here: ``(1, 2) != [1, 2]`` and
    ``{5: 1} != {"5": 1}``, so any value whose identity-preserving
    shape the decoder cannot reproduce fails the check and stays
    resident.  Digest identity never depends on this — only the shared
    *value* object does.
    """
    try:
        return json.loads(text) == value
    except ValueError:
        return False


def _join_object(items: list[tuple[str, str]]) -> str:
    """Assemble a JSON object from ``(string key, encoded value)`` pairs.

    Byte-identical to ``json.dumps`` of the dict with ``sort_keys``:
    both sort by the raw string key and join with ``,``/``:`` and no
    whitespace.
    """
    pieces = [f"{json.dumps(key, ensure_ascii=False)}:{text}"
              for key, text in sorted(items)]
    return "{" + ",".join(pieces) + "}"


_DEFAULT_STORE: Optional[WorldStore] = None


def default_store() -> WorldStore:
    """The per-process store shared by experiment warm-world forks.

    Created lazily, so it picks up the ``REPRO_STORE_BUDGET`` resident
    budget in effect at first use — the process-global store is bounded
    exactly like any explicitly constructed one.
    """
    global _DEFAULT_STORE
    if _DEFAULT_STORE is None:
        _DEFAULT_STORE = WorldStore()
    return _DEFAULT_STORE


def reset_default_store() -> None:
    """Clear and drop the process-global store.

    The next :func:`default_store` call builds a fresh one, re-reading
    the environment budget — campaigns that run back to back in one
    process use this to release every retained fragment in between.
    """
    global _DEFAULT_STORE
    if _DEFAULT_STORE is not None:
        _DEFAULT_STORE.clear()
    _DEFAULT_STORE = None


def _world_parts(world: Any) -> Optional[tuple]:
    """``(part_names, epochs)`` when the world speaks the part protocol."""
    names = getattr(world, "snapshot_part_names", None)
    part = getattr(world, "snapshot_part", None)
    check = getattr(world, "snapshot_check", None)
    if names is None or part is None or check is None:
        return None
    epochs = getattr(world, "snapshot_epochs", None)
    return tuple(names()), (dict(epochs()) if epochs is not None else {})


def _device_epoch(device: Any) -> Optional[int]:
    return getattr(device, "snapshot_epoch", None)


def _collect_epochs(world: Any, devices: dict[str, Any]) -> dict[str, int]:
    """Current change epochs keyed by part key, for a fresh basis."""
    epochs: dict[str, int] = {}
    world_epochs = getattr(world, "snapshot_epochs", None)
    if world_epochs is not None:
        for name, epoch in world_epochs().items():
            epochs[f"world.{name}"] = epoch
    for name, device in devices.items():
        epoch = _device_epoch(device)
        if epoch is not None:
            epochs[f"devices.{name}"] = epoch
    return epochs


def capture_world_layered(world: Any,
                          devices: Optional[dict[str, Any]] = None,
                          store: Optional[WorldStore] = None,
                          basis: Optional[ForkBasis] = None,
                          ) -> tuple[LayeredSnapshot, ForkBasis]:
    """Capture ``world`` into ``store``; returns ``(snapshot, basis)``.

    Semantically identical to :func:`repro.sim.snapshot.capture_world`
    — same quiescence rules, same state, same digest — but the result
    shares every unchanged part with the rest of the store, and a
    valid ``basis`` (same store, engine fingerprint unchanged since a
    previous capture/restore) reduces the work to the parts that
    actually mutated.
    """
    if store is None:
        store = default_store()
    devices = dict(devices or {})
    parts = _world_parts(world)
    if (basis is not None and parts is not None
            and basis.store is store
            and basis.device_names == tuple(sorted(devices))
            and world.engine.activity_fingerprint == basis.engine_fingerprint):
        return _capture_fast(world, devices, store, basis, parts)
    return _capture_full(world, devices, store, basis)


def _capture_full(world: Any, devices: dict[str, Any], store: WorldStore,
                  basis: Optional[ForkBasis]) -> tuple[LayeredSnapshot,
                                                       ForkBasis]:
    """Full-audit path: exactly :func:`capture_world`, then intern."""
    snapshot = capture_world(world, devices)
    state = snapshot.state
    delta: dict[str, str] = {}
    for key in _TOP_SCALARS:
        delta[key] = store.put_fragment(state[key])
    for name, value in state["world"].items():
        _require_str_key(name, "world part")
        delta[f"world.{name}"] = store.put_fragment(value)
    for name, value in state["devices"].items():
        _require_str_key(name, "device name")
        delta[f"devices.{name}"] = store.put_fragment(value)
    parent: Optional[WorldLayer] = None
    if (basis is not None and basis.store is store
            and set(basis.layer.mapping()) == set(delta)):
        parent_mapping = basis.layer.mapping()
        changed = {key: digest for key, digest in delta.items()
                   if parent_mapping.get(key) != digest}
        store.stats.parts_reused += len(delta) - len(changed)
        store.stats.parts_recaptured += len(changed)
        parent, delta = basis.layer, changed
    layer = store.make_layer(parent, delta)
    store.stats.full_captures += 1
    store.log_capture(world.engine.now, "full", len(delta), layer.depth)
    return (LayeredSnapshot(store, layer),
            ForkBasis(store, layer, world.engine.activity_fingerprint,
                      _collect_epochs(world, devices),
                      tuple(sorted(devices))))


def _capture_fast(world: Any, devices: dict[str, Any], store: WorldStore,
                  basis: ForkBasis, parts: tuple) -> tuple[LayeredSnapshot,
                                                           ForkBasis]:
    """Fingerprint-backed path: only mutated parts are re-serialized.

    An unchanged :attr:`activity_fingerprint` proves no event was
    scheduled, dispatched, cancelled or restored since the basis, so
    every heap claim recorded then still stands — the global
    ``assert_drained`` audit is provably redundant and each part can
    be rebuilt (or skipped via its epoch) in isolation.
    """
    part_names, world_epochs = parts
    world.snapshot_check()
    ctx = SnapshotContext(world.engine, devices)
    parent_mapping = basis.layer.mapping()
    delta: dict[str, str] = {}
    epochs: dict[str, int] = {}

    def examine(key: str, epoch: Optional[int], build) -> None:
        if epoch is not None:
            epochs[key] = epoch
            if key in parent_mapping and basis.epochs.get(key) == epoch:
                store.stats.parts_reused += 1
                return
        digest = store.put_fragment(build())
        if parent_mapping.get(key) != digest:
            delta[key] = digest
            store.stats.parts_recaptured += 1
        else:
            store.stats.parts_reused += 1

    examine("format", None, lambda: SNAPSHOT_FORMAT)
    examine("world_class", None, lambda: class_path(type(world)))
    examine("pending", None, lambda: world.engine.pending_events)
    for name in part_names:
        _require_str_key(name, "world part")
        examine(f"world.{name}", world_epochs.get(name),
                lambda name=name: world.snapshot_part(name, ctx))
    for name, device in devices.items():
        _require_str_key(name, "device name")
        examine(f"devices.{name}", _device_epoch(device),
                lambda device=device: {
                    "class": class_path(type(device)),
                    "state": device.snapshot_state(ctx),
                })
    layer = store.make_layer(basis.layer, delta)
    store.stats.fast_captures += 1
    store.log_capture(world.engine.now, "fast", len(delta), layer.depth)
    return (LayeredSnapshot(store, layer),
            ForkBasis(store, layer, world.engine.activity_fingerprint,
                      epochs, basis.device_names))


def _require_str_key(name: Any, what: str) -> None:
    if not isinstance(name, str):
        raise SnapshotError(f"{what} keys must be strings, got {name!r}")


def restore_world_layered(snapshot: LayeredSnapshot,
                          ) -> tuple[Any, dict[str, Any], ForkBasis]:
    """Fork a live world; returns ``(world, devices, basis)``.

    The basis lets the next :func:`capture_world_layered` of this fork
    skip everything the continuation did not touch.
    """
    world, devices = restore_world(snapshot)
    basis = ForkBasis(snapshot.store, snapshot.layer,
                      world.engine.activity_fingerprint,
                      _collect_epochs(world, devices),
                      tuple(sorted(devices)))
    return world, devices, basis


def fork_snapshot(snapshot: LayeredSnapshot,
                  replacements: dict[str, Any]) -> LayeredSnapshot:
    """Data-level fork: replace whole parts without a live world.

    ``replacements`` maps part keys (``"world.sources"``, ...) to new
    plain-data values.  This is the O(changes) branch-node operation:
    no restore, no re-simulation, no O(world) serialization — just the
    replaced parts are encoded, and the child layer records only the
    digests that actually differ.  The caller owns semantic validity
    (the result must equal restore → mutate → capture, which the fork
    helpers in :mod:`repro.experiments.common` guarantee and the tests
    pin).
    """
    store = snapshot.store
    mapping = snapshot.layer.mapping()
    delta: dict[str, str] = {}
    for key, value in replacements.items():
        if key not in mapping:
            raise SnapshotError(
                f"unknown snapshot part {key!r} "
                f"(have: {', '.join(sorted(mapping))})")
        digest = store.put_fragment(value)
        if mapping[key] != digest:
            delta[key] = digest
    layer = store.make_layer(snapshot.layer, delta)
    store.stats.data_forks += 1
    # The engine part's shared value gives the fork's simulation time
    # in O(1) — fragment_value returns the interned object, never
    # re-decoding, and .state is deliberately not touched (that would
    # materialize the whole world and defeat the O(changes) fork).
    engine_digest = mapping.get("world.engine")
    engine_part = (store.fragment_value(engine_digest)
                   if engine_digest is not None else None)
    sim_time = (engine_part.get("now", 0)
                if isinstance(engine_part, dict) else 0)
    store.log_capture(sim_time, "fork", len(delta), layer.depth)
    return LayeredSnapshot(store, layer)
