"""Engine microbenchmark.

A deterministic, self-contained workload that measures how many event
callbacks per second :class:`~repro.sim.engine.SimulationEngine` can
dispatch.  Three phases exercise the queue regimes real experiment
runs hit:

* **chain** — a self-rescheduling tick chain with a near-empty heap,
  the regime of a single replayed activation trace;
* **pool** — a fixed population of outstanding events (default 64)
  with constant schedule/fire churn, the regime of many concurrent
  timers/interpose windows where per-comparison heap costs dominate;
* **storm** — dense same-cycle timer volleys inserted via
  ``schedule_batch`` (idle-skip irrelevant: every cycle is busy), the
  dispatch-dominated fig6 low-load regime where per-event allocation
  in the dispatch loop is the entire cost.  This is the leg the
  columnar ``array`` backend is gated on (>=1.8x over ``bucket``).

Both phases also schedule-and-immediately-cancel decoy events so the
lazy-deletion path (pop-and-skip in the run loop) is part of what is
measured.  Used by ``benchmarks/test_bench_engine.py`` and by the
``--bench-json`` option of ``python -m repro.experiments``, which
records the result in ``BENCH_experiments.json`` so engine-throughput
regressions are caught across PRs.

:func:`measure_backend_ab` additionally races every pluggable queue
backend (:mod:`repro.sim.queue`) against a frozen copy of the pre-PR-5
heap loop (:class:`_LegacyHeapEngine`), interleaving the contenders
round-robin in one process so host noise hits them all alike; its
result names the winning backend and is what ``--bench-json`` records
under ``engine_ab``.

:func:`measure_idle_ab` races the idle-skip engine (analytic
fast-forward across quiescent TDMA gaps, see
``Hypervisor._boundary_dispatch``) against the tick-by-tick chain on an
idle-dominated full-system scenario; recorded under ``engine_idle_ab``.

:func:`measure_fork_ab` races the layered copy-on-write world store
(:mod:`repro.sim.worldstore`) against full-copy forking on a deep
fig7-style scenario tree — every node a policy variant of its parent —
checking leaf digests are byte-identical across the legs; recorded
under ``engine_fork_ab``.

:func:`measure_subtree_ab` races the two campaign schedules on a
~1k-branch tree: the wave-deep leg re-pickles the parent snapshot
across a simulated pool boundary for every child, the subtree leg
walks the whole tree against one shared world store bounded by a
fragment spill budget.  Leaf digests must match byte for byte; peak
retained memory is compared against an unlimited-store walk of the
same tree; recorded under ``engine_subtree_ab``.
"""

from __future__ import annotations

import gc
import os
import pickle
import time
import tracemalloc
from dataclasses import dataclass
from heapq import heapify, heappop, heappush
from typing import Callable, Optional

from repro.sim.engine import COMPACTION_FLOOR, ENV_IDLE_SKIP, SimulationEngine
from repro.sim.events import EventHandle
from repro.sim.queue import QUEUE_BACKENDS


class _LegacyHeapEngine:
    """Frozen copy of the pre-queue-backend engine hot path.

    The A/B baseline: 3-tuple ``(time, seq, handle)`` heap entries, a
    compaction check on every schedule, and per-event clock/counter
    writes in the run loop — exactly the loop the ``heap``/``bucket``
    backends replaced.  Kept verbatim (not imported from history) so
    the benchmark is self-contained and the baseline can never drift.
    """

    __slots__ = ("_heap", "_now", "_seq", "_events_executed", "_running",
                 "_stop_requested", "_pending", "_cancelled_count",
                 "_compactions")

    def __init__(self):
        self._heap: list = []
        self._now = 0
        self._seq = 0
        self._events_executed = 0
        self._running = False
        self._stop_requested = False
        self._pending = 0
        self._cancelled_count = 0
        self._compactions = 0

    @property
    def events_executed(self) -> int:
        return self._events_executed

    def schedule(self, delay: int, callback: Callable[[], None],
                 label: Optional[str] = None, *,
                 _push=heappush, _handle=EventHandle) -> EventHandle:
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        time_ = self._now + delay
        seq = self._seq
        self._seq = seq + 1
        handle = _handle(time_, seq, callback, label, self)
        self._pending += 1
        _push(self._heap, (time_, seq, handle))
        dead = len(self._heap) - self._pending
        if dead > COMPACTION_FLOOR and dead > self._pending:
            self._compact()
        return handle

    def _event_cancelled(self) -> None:
        # The historical engine inlined this in EventHandle.cancel.
        self._pending -= 1
        self._cancelled_count += 1

    def _compact(self) -> None:
        heap = self._heap
        heap[:] = [entry for entry in heap if not entry[2]._cancelled]
        heapify(heap)
        self._compactions += 1

    def run(self, max_events: Optional[int] = None) -> int:
        executed = 0
        self._running = True
        self._stop_requested = False
        heap = self._heap
        try:
            while heap and not self._stop_requested:
                time_, _seq, handle = heappop(heap)
                if handle._cancelled:
                    continue
                self._now = time_
                handle._fired = True
                self._pending -= 1
                self._events_executed += 1
                handle.callback()
                executed += 1
        finally:
            self._running = False
        return executed


@dataclass(frozen=True)
class EngineBenchmarkResult:
    """Outcome of one engine-throughput measurement."""

    events_executed: int
    cancelled_events: int
    elapsed_seconds: float
    chain_events_per_second: float = 0.0
    pool_events_per_second: float = 0.0
    storm_events_per_second: float = 0.0

    @property
    def events_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.events_executed / self.elapsed_seconds


def _run_chain(events: int, cancel_every: int,
               engine_factory: Callable[[], object] = SimulationEngine
               ) -> tuple[int, int, float]:
    """Tick chain: one live event at a time, plus cancelled decoys."""
    engine = engine_factory()
    remaining = [events]
    cancelled = [0]

    def noop() -> None:
        pass

    def tick() -> None:
        left = remaining[0]
        if left <= 0:
            return
        remaining[0] = left - 1
        engine.schedule(7, tick)
        if left % cancel_every == 0:
            engine.schedule(11, noop).cancel()
            cancelled[0] += 1

    engine.schedule(1, tick)
    # Collect before timing: when the benchmark runs after a campaign
    # the heap is full of long-lived garbage, and whichever contender
    # happens to trip the next gen-2 collection pays for all of it.
    gc.collect()
    started = time.perf_counter()
    engine.run()
    elapsed = time.perf_counter() - started
    return engine.events_executed, cancelled[0], elapsed


def _run_pool(events: int, pool_size: int, cancel_every: int,
              engine_factory: Callable[[], object] = SimulationEngine
              ) -> tuple[int, int, float]:
    """Outstanding-event pool: ``pool_size`` live events churn forever."""
    engine = engine_factory()
    remaining = [events]
    cancelled = [0]
    # Deterministic, varied delays so the heap keeps reordering.
    offsets = (3, 17, 29, 7, 41, 13, 23, 11)

    def noop() -> None:
        pass

    def tick() -> None:
        left = remaining[0]
        if left <= 0:
            return
        remaining[0] = left - 1
        engine.schedule(offsets[left & 7], tick)
        if left % cancel_every == 0:
            engine.schedule(19, noop).cancel()
            cancelled[0] += 1

    for i in range(pool_size):
        engine.schedule(1 + i, tick)
    gc.collect()
    started = time.perf_counter()
    engine.run()
    elapsed = time.perf_counter() - started
    return engine.events_executed, cancelled[0], elapsed


def _run_volley_storm(events: int, width: int, period: int,
                      engine_factory: Callable[[], object] = SimulationEngine
                      ) -> tuple[int, float]:
    """Dense same-cycle timer storms: the dispatch-dominated fig6 regime.

    A driver fires every ``period`` cycles and lobs a ``width``-wide
    same-cycle volley through ``schedule_batch``; engines without the
    volley API (the legacy baseline) fall back to one ``schedule`` call
    per event, which is exactly what their users would have to write.
    """
    engine = engine_factory()
    cycles = max(1, events // width)
    remaining = [cycles]

    def noop() -> None:
        pass

    volley = [noop] * width
    batch = getattr(engine, "schedule_batch", None)
    if batch is not None:
        def driver() -> None:
            batch(0, volley, "storm")
            left = remaining[0] - 1
            remaining[0] = left
            if left:
                engine.schedule(period, driver, "driver")
    else:
        schedule = engine.schedule
        def driver() -> None:
            for callback in volley:
                schedule(0, callback)
            left = remaining[0] - 1
            remaining[0] = left
            if left:
                schedule(period, driver)

    engine.schedule(1, driver)
    gc.collect()
    started = time.perf_counter()
    engine.run()
    elapsed = time.perf_counter() - started
    return engine.events_executed, elapsed


def measure_engine_throughput(events: int = 200_000,
                              cancel_every: int = 4,
                              repeats: int = 3,
                              pool_size: int = 64) -> EngineBenchmarkResult:
    """Measure raw engine dispatch throughput (best of ``repeats``).

    Each repeat runs the chain phase and the pool phase with
    ``events // 2`` ticks each; the headline ``events_per_second`` is
    total callbacks over total elapsed time.  Best-of-``repeats`` is
    reported because on a shared host interference only ever slows a
    run down, so the fastest repeat is the closest estimate of true
    engine speed.
    """
    if events <= 0:
        raise ValueError(f"events must be positive, got {events}")
    if cancel_every <= 0:
        raise ValueError(f"cancel_every must be positive, got {cancel_every}")
    if pool_size <= 0:
        raise ValueError(f"pool_size must be positive, got {pool_size}")
    per_phase = max(1, events // 2)
    best: EngineBenchmarkResult | None = None
    for _ in range(max(1, repeats)):
        chain_n, chain_c, chain_t = _run_chain(per_phase, cancel_every)
        pool_n, pool_c, pool_t = _run_pool(per_phase, pool_size, cancel_every)
        result = EngineBenchmarkResult(
            events_executed=chain_n + pool_n,
            cancelled_events=chain_c + pool_c,
            elapsed_seconds=chain_t + pool_t,
            chain_events_per_second=chain_n / chain_t if chain_t > 0 else 0.0,
            pool_events_per_second=pool_n / pool_t if pool_t > 0 else 0.0,
        )
        if best is None or result.events_per_second > best.events_per_second:
            best = result
    assert best is not None
    return best


@dataclass(frozen=True)
class BackendABResult:
    """Outcome of the interleaved queue-backend A/B race.

    ``results`` holds the best-of-repeats measurement per contender:
    the ``legacy`` baseline plus one entry per registered queue
    backend.  ``winner`` is the fastest *backend* (the baseline cannot
    win — it exists to be beaten, and :meth:`improvement` reports by
    how much).
    """

    results: dict[str, EngineBenchmarkResult]
    baseline: str
    winner: str

    def improvement(self, name: Optional[str] = None) -> float:
        """Fractional events/s gain of ``name`` (default: the winner)
        over the baseline — e.g. ``0.25`` for 25% faster."""
        base = self.results[self.baseline].events_per_second
        if base <= 0:
            return 0.0
        contender = self.results[name or self.winner].events_per_second
        return contender / base - 1.0

    def dispatch_speedup(self, name: Optional[str] = None,
                         over: str = "bucket") -> float:
        """Storm-phase events/s ratio of ``name`` (default: the winner)
        over the ``over`` backend — e.g. ``1.8`` for 1.8x faster on
        the dispatch-dominated microbenchmark."""
        base = self.results[over].storm_events_per_second
        if base <= 0:
            return 0.0
        contender = self.results[name or self.winner].storm_events_per_second
        return contender / base


def measure_backend_ab(events: int = 200_000,
                       cancel_every: int = 4,
                       repeats: int = 3,
                       pool_size: int = 64,
                       storm_width: int = 32,
                       storm_period: int = 8) -> BackendABResult:
    """Race every queue backend against the frozen legacy loop.

    All contenders run the same chain+pool+storm workload, interleaved
    round-robin within each repeat so host interference lands on
    everyone alike — the only comparison that reliably resolves
    10–30% deltas on a shared machine (back-to-back separate processes
    vary by more than that).  Best-of-``repeats`` per contender, same
    rationale as :func:`measure_engine_throughput`.  The storm phase
    is the dispatch-dominated fig6 leg the columnar backend is gated
    on; its rate is reported separately
    (``storm_events_per_second`` / :meth:`BackendABResult.dispatch_speedup`)
    so the balanced phases do not dilute the ratio.
    """
    if events <= 0:
        raise ValueError(f"events must be positive, got {events}")
    per_phase = max(1, events // 3)
    factories: dict[str, Callable[[], object]] = {"legacy": _LegacyHeapEngine}
    for name, backend_cls in QUEUE_BACKENDS.items():
        factories[name] = backend_cls
    best: dict[str, EngineBenchmarkResult] = {}
    for _ in range(max(1, repeats)):
        for name, factory in factories.items():
            chain_n, chain_c, chain_t = _run_chain(
                per_phase, cancel_every, engine_factory=factory)
            pool_n, pool_c, pool_t = _run_pool(
                per_phase, pool_size, cancel_every, engine_factory=factory)
            storm_n, storm_t = _run_volley_storm(
                per_phase, storm_width, storm_period, engine_factory=factory)
            result = EngineBenchmarkResult(
                events_executed=chain_n + pool_n + storm_n,
                cancelled_events=chain_c + pool_c,
                elapsed_seconds=chain_t + pool_t + storm_t,
                chain_events_per_second=chain_n / chain_t if chain_t > 0 else 0.0,
                pool_events_per_second=pool_n / pool_t if pool_t > 0 else 0.0,
                storm_events_per_second=storm_n / storm_t if storm_t > 0 else 0.0,
            )
            current = best.get(name)
            if current is None or result.events_per_second > current.events_per_second:
                best[name] = result
    winner = max(QUEUE_BACKENDS,
                 key=lambda name: best[name].events_per_second)
    return BackendABResult(results=best, baseline="legacy", winner=winner)


@dataclass(frozen=True)
class IdleABResult:
    """Outcome of the idle-skip vs tick-by-tick A/B race.

    ``results`` holds the best-of-repeats measurement for the ``skip``
    and ``tick`` contenders.  Both legs simulate the *identical*
    scenario (same arrivals, same final world — the byte-identity
    contract), so ``events_executed`` is the same simulated work and
    the events/s ratio is a pure wall-clock speedup.
    """

    results: dict[str, EngineBenchmarkResult]
    skip_spans: int
    skipped_events: int
    skipped_cycles: int

    @property
    def speedup(self) -> float:
        """Wall-clock factor of the skip engine over tick-by-tick."""
        tick = self.results["tick"].events_per_second
        if tick <= 0:
            return 0.0
        return self.results["skip"].events_per_second / tick


def _run_idle_scenario(idle_skip: bool, arrivals: int,
                       gap_tdma_cycles: int) -> tuple[object, float]:
    """One leg of the idle A/B: a sparse-arrival full-system scenario.

    The workload is the Section 6.1 evaluation system with IRQ
    interarrivals of ``gap_tdma_cycles`` TDMA cycles (~hundreds of
    quiescent slot boundaries per arrival) — the regime where the
    boundary chain, not IRQ handling, dominates the event count.
    Returns the finished hypervisor and the elapsed wall-clock seconds.
    """
    # Function-level import: experiments.common sits above sim in the
    # layering; importing it at module load would be circular.
    from repro.core.policy import NeverInterpose
    from repro.experiments.common import PaperSystemConfig, run_irq_scenario

    previous = os.environ.get(ENV_IDLE_SKIP)
    os.environ[ENV_IDLE_SKIP] = "1" if idle_skip else "0"
    try:
        system = PaperSystemConfig()
        clock = system.clock()
        cycle = clock.us_to_cycles(system.tdma_cycle_us)
        # Deterministic phase jitter so arrivals land all over the slot
        # grid, not on one resonant offset.
        jitter = (0, 321_001, 777_017, 123_457, 555_111, 901_247, 432_101)
        intervals = [
            gap_tdma_cycles * cycle + jitter[i % len(jitter)]
            for i in range(arrivals)
        ]
        gc.collect()
        started = time.perf_counter()
        result = run_irq_scenario(system, NeverInterpose(), intervals)
        elapsed = time.perf_counter() - started
        return result.hypervisor, elapsed
    finally:
        if previous is None:
            os.environ.pop(ENV_IDLE_SKIP, None)
        else:
            os.environ[ENV_IDLE_SKIP] = previous


def measure_idle_ab(arrivals: int = 60,
                    gap_tdma_cycles: int = 40,
                    repeats: int = 3) -> IdleABResult:
    """Race the idle-skip engine against tick-by-tick execution.

    Both legs run the same idle-dominated scenario, interleaved
    round-robin within each repeat (same rationale as
    :func:`measure_backend_ab`); best-of-``repeats`` per leg.  The legs
    must execute the same number of simulated events — idle-skip
    counts elided events as executed — so a mismatch means the
    byte-identity contract broke and is raised loudly rather than
    reported as a speedup.
    """
    if arrivals <= 0:
        raise ValueError(f"arrivals must be positive, got {arrivals}")
    if gap_tdma_cycles <= 0:
        raise ValueError(
            f"gap_tdma_cycles must be positive, got {gap_tdma_cycles}")
    best: dict[str, EngineBenchmarkResult] = {}
    events_by_leg: dict[str, int] = {}
    skip_stats = (0, 0, 0)
    for _ in range(max(1, repeats)):
        for name, idle_skip in (("skip", True), ("tick", False)):
            hv, elapsed = _run_idle_scenario(idle_skip, arrivals,
                                             gap_tdma_cycles)
            executed = hv.engine.events_executed
            events_by_leg.setdefault(name, executed)
            if events_by_leg[name] != executed:
                raise RuntimeError(
                    f"idle A/B {name} leg executed {executed} events, "
                    f"previous repeat executed {events_by_leg[name]}"
                )
            if idle_skip:
                skip_stats = (hv.engine.skip_spans,
                              hv.engine.skipped_events,
                              hv.engine.skipped_cycles)
            result = EngineBenchmarkResult(
                events_executed=executed,
                cancelled_events=hv.engine.events_cancelled,
                elapsed_seconds=elapsed,
            )
            current = best.get(name)
            if (current is None
                    or result.events_per_second > current.events_per_second):
                best[name] = result
    if events_by_leg["skip"] != events_by_leg["tick"]:
        raise RuntimeError(
            f"idle A/B legs diverged: skip executed {events_by_leg['skip']} "
            f"events, tick executed {events_by_leg['tick']} (byte-identity "
            "contract broken)"
        )
    return IdleABResult(results=best,
                        skip_spans=skip_stats[0],
                        skipped_events=skip_stats[1],
                        skipped_cycles=skip_stats[2])


@dataclass(frozen=True)
class ForkLegResult:
    """One contender's measurement in the fork-tree A/B race."""

    forks: int
    elapsed_seconds: float
    retained_bytes: int

    @property
    def forks_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.forks / self.elapsed_seconds


@dataclass(frozen=True)
class ForkABResult:
    """Outcome of the layered vs full-copy fork-tree A/B race.

    Both legs build the *identical* scenario tree — every node is a
    load-fraction variant of its parent, every leaf digest must match
    byte for byte across the legs (checked, raised on mismatch) — so
    the time and retained-memory ratios are pure implementation costs.
    """

    results: dict[str, ForkLegResult]
    branches: int          # leaf count of the tree
    nodes: int             # total forks performed (internal + leaves)
    leaf_digest: str       # digest of the first leaf (same in both legs)

    @property
    def speedup(self) -> float:
        """Wall-clock factor of layered forks over full-copy forks."""
        layered = self.results["layered"].elapsed_seconds
        if layered <= 0:
            return 0.0
        return self.results["full"].elapsed_seconds / layered

    @property
    def memory_ratio(self) -> float:
        """Full-copy retained bytes per layered retained byte."""
        layered = self.results["layered"].retained_bytes
        if layered <= 0:
            return 0.0
        return self.results["full"].retained_bytes / layered


def _fork_tree_base(arrivals: int, budget_bytes: "int | None" = None):
    """Simulate a fig7-style learning prefix and settle a fork point.

    Returns ``(base_snapshot, store, irq_name)``: a quiescent world
    mid-learning-phase whose policy still accepts ``set_load_fraction``
    re-targeting — the exact shape of a fig7 prefix fork, without the
    cost of generating the automotive trace.  The store's budget is
    set explicitly (``None`` = unlimited) so benchmark legs never
    inherit an ambient ``REPRO_STORE_BUDGET``.
    """
    from repro.core.policy import SelfLearningInterposing
    from repro.experiments.common import PaperSystemConfig
    from repro.sim.snapshot import settle
    from repro.sim.worldstore import WorldStore

    system = PaperSystemConfig()
    clock = system.clock()
    base_gap = clock.us_to_cycles(900.0)
    intervals = [base_gap + 1017 * (i % 7) for i in range(arrivals)]
    policy = SelfLearningInterposing(depth=5, learn_count=arrivals + 1,
                                     load_fraction=None)
    hv, timer = system.build(policy, intervals)
    hv.start()
    timer.arm_next()
    hv.run_until_irq_count(max(8, arrivals // 2))
    store = WorldStore(budget_bytes=budget_bytes)
    snapshot = settle(hv, {timer.name: timer}, store=store)
    return snapshot, store, system.irq_name


def _build_fork_tree(base, fork_child, branching) -> list:
    """Fork a tree under ``base``; returns every created snapshot.

    ``fork_child(parent, fraction)`` forks one policy-variant node;
    fractions are unique per node so sibling *contents* differ (no
    trivial dedup) while the tree still shares its deep prefix.
    """
    level = [base]
    snapshots: list = []
    counter = 0
    for width in branching:
        next_level = []
        for parent in level:
            for _ in range(width):
                counter += 1
                fraction = 1.0 / (1.0 + counter)
                child = fork_child(parent, fraction)
                next_level.append(child)
        snapshots.extend(next_level)
        level = next_level
    return snapshots


def _fork_full(parent, fraction: float, irq_name: str):
    """Full-copy fork: restore a live world, mutate, re-capture flat."""
    from repro.sim.snapshot import WorldSnapshot, capture_world, restore_world

    hv, devices = restore_world(parent)
    hv.irq_source(irq_name).policy.set_load_fraction(fraction)
    snapshot = capture_world(hv, devices)
    snapshot.digest()
    if not isinstance(snapshot, WorldSnapshot):
        raise RuntimeError("full leg must produce flat snapshots")
    return snapshot


def _fork_layered(parent, fraction: float, irq_name: str):
    """Layered fork: splice the re-targeted policy into a child layer."""
    from repro.experiments.common import fork_warm_variant

    child = fork_warm_variant(
        parent, source_name=irq_name,
        configure_policy=lambda policy: policy.set_load_fraction(fraction))
    child.digest()
    return child


def measure_fork_ab(branching: "tuple[int, ...]" = (4, 5, 5),
                    arrivals: int = 240,
                    repeats: int = 3) -> ForkABResult:
    """Race layered copy-on-write forks against full-copy forks.

    Both legs grow the same deep scenario tree from one shared
    fig7-style prefix — default ``(4, 5, 5)``: 124 forks, 100 leaves —
    interleaved round-robin within each repeat so host noise lands on
    both alike (same rationale as :func:`measure_backend_ab`);
    best-of-``repeats`` per leg.  Every leaf digest must be
    byte-identical across the legs; a mismatch means the layered store
    broke the byte-identity contract and is raised loudly rather than
    reported as a speedup.

    Retained memory is measured in separate ``tracemalloc`` passes
    (instrumented allocation is far slower, so memory never pollutes
    the timing legs): bytes still reachable once the whole tree of
    snapshots is built, the O(changes)-vs-O(world) acceptance number.
    """
    if not branching or any(width <= 0 for width in branching):
        raise ValueError(f"branching must be positive widths, got {branching}")
    if arrivals < 16:
        raise ValueError(f"arrivals must be >= 16, got {arrivals}")

    legs: dict[str, Callable] = {
        "layered": _fork_layered,
        "full": _fork_full,
    }
    best_elapsed: dict[str, float] = {}
    leaf_digests: dict[str, list[str]] = {}
    nodes = 0
    branches = _leaf_count(branching)
    for _ in range(max(1, repeats)):
        # A fresh base world *and store* per round: the prefix is
        # deterministic (digests must agree across rounds), but reusing
        # one store would let later layered rounds ride the interning
        # memos of earlier ones — each round must pay full cost.
        base, _store, irq_name = _fork_tree_base(arrivals)
        for name, fork in legs.items():
            def fork_child(parent, fraction, fork=fork):
                return fork(parent, fraction, irq_name)
            gc.collect()
            started = time.perf_counter()
            snapshots = _build_fork_tree(base, fork_child, branching)
            elapsed = time.perf_counter() - started
            nodes = len(snapshots)
            digests = [snap.digest() for snap in snapshots[-branches:]]
            previous = leaf_digests.setdefault(name, digests)
            if previous != digests:
                raise RuntimeError(
                    f"fork A/B {name} leg diverged between repeats")
            if name not in best_elapsed or elapsed < best_elapsed[name]:
                best_elapsed[name] = elapsed
    if leaf_digests["layered"] != leaf_digests["full"]:
        raise RuntimeError(
            "fork A/B legs diverged: layered leaf digests do not match "
            "full-copy leaf digests (byte-identity contract broken)"
        )

    retained: dict[str, int] = {}
    for name, fork in legs.items():
        base, _store, irq_name = _fork_tree_base(arrivals)
        def fork_child(parent, fraction, fork=fork):
            return fork(parent, fraction, irq_name)
        gc.collect()
        tracemalloc.start()
        try:
            snapshots = _build_fork_tree(base, fork_child, branching)
            gc.collect()
            retained[name], _peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        del snapshots

    return ForkABResult(
        results={
            name: ForkLegResult(forks=nodes,
                                elapsed_seconds=best_elapsed[name],
                                retained_bytes=retained[name])
            for name in legs
        },
        branches=branches,
        nodes=nodes,
        leaf_digest=leaf_digests["layered"][0],
    )


def _leaf_count(branching) -> int:
    count = 1
    for width in branching:
        count *= width
    return count


@dataclass(frozen=True)
class SubtreeLegResult:
    """One schedule's measurement in the wave-vs-subtree A/B race."""

    nodes: int
    elapsed_seconds: float
    peak_retained_bytes: int

    @property
    def nodes_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.nodes / self.elapsed_seconds


@dataclass(frozen=True)
class SubtreeABResult:
    """Outcome of the wave-deep vs subtree scheduling A/B race.

    Both legs grow the *identical* ~1k-branch scenario tree.  The
    ``wave`` leg models wave-deep campaign dispatch: every child's
    parent snapshot crosses a pool boundary (``pickle`` round-trip,
    which flattens a layered snapshot to its full state) before the
    child restores, mutates and re-captures.  The ``subtree`` leg
    models a subtree worker: one shared world store under a fragment
    spill budget, every node an O(changes) data-level fork, nothing
    re-pickled.  Leaf digests must match byte for byte (checked,
    raised on mismatch).  ``memory_ratio`` compares the legs' peaks —
    wave-deep retains a full flat state per node, the budgeted subtree
    walk keeps at most the resident budget of fragments in RAM;
    ``unlimited_peak_bytes`` additionally anchors the same subtree
    walk *without* a budget, isolating the spill tier's own saving.
    """

    results: "dict[str, SubtreeLegResult]"
    branches: int                  # leaf count of the tree
    nodes: int                     # total forks performed
    leaf_digest: str               # digest of the first leaf (both legs)
    budget_bytes: int              # resident budget of the subtree leg
    unlimited_peak_bytes: int      # same walk, no budget
    spilled_fragments: int         # fragments written to the spill file
    spill_bytes_written: int

    @property
    def speedup(self) -> float:
        """Wall-clock factor of subtree scheduling over wave-deep."""
        subtree = self.results["subtree"].elapsed_seconds
        if subtree <= 0:
            return 0.0
        return self.results["wave"].elapsed_seconds / subtree

    @property
    def memory_ratio(self) -> float:
        """Wave-deep peak bytes per budgeted-subtree peak byte."""
        budgeted = self.results["subtree"].peak_retained_bytes
        if budgeted <= 0:
            return 0.0
        return self.results["wave"].peak_retained_bytes / budgeted


def _wave_child(parent, fraction: float, irq_name: str):
    """Wave-deep child: parent crosses a pool boundary, then full fork.

    ``pool.map`` pickles each work item separately, so wave scheduling
    re-ships the parent snapshot once *per child*; the round-trip is
    what flattens a layered parent into a full-state snapshot (see
    ``LayeredSnapshot.__reduce__``) and is modelled here 1:1.
    """
    from repro.sim.snapshot import capture_world, restore_world

    shipped = pickle.loads(
        pickle.dumps(parent, protocol=pickle.HIGHEST_PROTOCOL))
    hv, devices = restore_world(shipped)
    hv.irq_source(irq_name).policy.set_load_fraction(fraction)
    snapshot = capture_world(hv, devices)
    snapshot.digest()
    return snapshot


def measure_subtree_ab(branching: "tuple[int, ...]" = (10, 10, 10),
                       arrivals: int = 64,
                       repeats: int = 1,
                       budget_bytes: "int | None" = None,
                       ) -> SubtreeABResult:
    """Race wave-deep dispatch against subtree scheduling with spill.

    Default tree ``(10, 10, 10)``: 1110 forks, 1000 leaves — the
    "~1k-branch" shape deep interference sweeps take.  Legs are
    interleaved within each repeat so host noise lands on both alike;
    best-of-``repeats`` per leg.  Every leaf digest must be
    byte-identical across the legs — the subtree leg computes its
    digests *through* the spill tier (cold fragments fault back from
    disk during assembly), so a digest match also proves spilling
    preserves the byte-identity contract under memory pressure.

    ``budget_bytes`` defaults to twice the resident bytes of one base
    world: hot shared fragments stay in RAM while each node's cold
    policy-variant fragments spill.  Peak memory is measured in
    separate ``tracemalloc`` passes (wave, budgeted subtree, and an
    unlimited-store subtree walk that anchors
    ``unlimited_peak_bytes``).
    """
    if not branching or any(width <= 0 for width in branching):
        raise ValueError(f"branching must be positive widths, got {branching}")
    if arrivals < 16:
        raise ValueError(f"arrivals must be >= 16, got {arrivals}")

    if budget_bytes is None:
        _probe, probe_store, _name = _fork_tree_base(arrivals)
        budget_bytes = max(64 * 1024, 2 * probe_store.resident_bytes)
        del _probe
        probe_store.clear()

    branches = _leaf_count(branching)
    legs: "dict[str, tuple[Callable, int | None]]" = {
        "wave": (_wave_child, None),
        "subtree": (_fork_layered, budget_bytes),
    }
    best_elapsed: "dict[str, float]" = {}
    leaf_digests: "dict[str, list[str]]" = {}
    nodes = 0
    spilled_fragments = 0
    spill_bytes_written = 0
    for _ in range(max(1, repeats)):
        # A fresh base world and store per leg per round: the prefix is
        # deterministic (digests must agree across rounds and legs),
        # but sharing a store would let later rounds ride earlier
        # interning memos — each leg must pay its full cost.
        for name, (fork, budget) in legs.items():
            base, store, irq_name = _fork_tree_base(arrivals, budget)

            def fork_child(parent, fraction, fork=fork, irq=irq_name):
                return fork(parent, fraction, irq)

            gc.collect()
            started = time.perf_counter()
            snapshots = _build_fork_tree(base, fork_child, branching)
            elapsed = time.perf_counter() - started
            nodes = len(snapshots)
            digests = [snap.digest() for snap in snapshots[-branches:]]
            previous = leaf_digests.setdefault(name, digests)
            if previous != digests:
                raise RuntimeError(
                    f"subtree A/B {name} leg diverged between repeats")
            if name not in best_elapsed or elapsed < best_elapsed[name]:
                best_elapsed[name] = elapsed
            if name == "subtree":
                spilled_fragments = store.stats.fragments_spilled
                spill_bytes_written = store.stats.spill_bytes_written
            del snapshots, base
            store.clear()
    if leaf_digests["wave"] != leaf_digests["subtree"]:
        raise RuntimeError(
            "subtree A/B legs diverged: wave leaf digests do not match "
            "subtree leaf digests (byte-identity contract broken)"
        )

    peaks: "dict[str, int]" = {}
    memory_legs = dict(legs)
    memory_legs["unlimited"] = (_fork_layered, None)
    for name, (fork, budget) in memory_legs.items():
        base, store, irq_name = _fork_tree_base(arrivals, budget)

        def fork_child(parent, fraction, fork=fork, irq=irq_name):
            return fork(parent, fraction, irq)

        gc.collect()
        tracemalloc.start()
        try:
            snapshots = _build_fork_tree(base, fork_child, branching)
            gc.collect()
            _current, peaks[name] = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        del snapshots, base
        store.clear()

    return SubtreeABResult(
        results={
            name: SubtreeLegResult(nodes=nodes,
                                   elapsed_seconds=best_elapsed[name],
                                   peak_retained_bytes=peaks[name])
            for name in legs
        },
        branches=branches,
        nodes=nodes,
        leaf_digest=leaf_digests["subtree"][0],
        budget_bytes=budget_bytes,
        unlimited_peak_bytes=peaks["unlimited"],
        spilled_fragments=spilled_fragments,
        spill_bytes_written=spill_bytes_written,
    )
