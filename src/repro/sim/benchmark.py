"""Engine microbenchmark.

A deterministic, self-contained workload that measures how many event
callbacks per second :class:`~repro.sim.engine.SimulationEngine` can
dispatch.  Two phases exercise the two heap regimes real experiment
runs hit:

* **chain** — a self-rescheduling tick chain with a near-empty heap,
  the regime of a single replayed activation trace;
* **pool** — a fixed population of outstanding events (default 64)
  with constant schedule/fire churn, the regime of many concurrent
  timers/interpose windows where per-comparison heap costs dominate.

Both phases also schedule-and-immediately-cancel decoy events so the
lazy-deletion path (pop-and-skip in the run loop) is part of what is
measured.  Used by ``benchmarks/test_bench_engine.py`` and by the
``--bench-json`` option of ``python -m repro.experiments``, which
records the result in ``BENCH_experiments.json`` so engine-throughput
regressions are caught across PRs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.sim.engine import SimulationEngine


@dataclass(frozen=True)
class EngineBenchmarkResult:
    """Outcome of one engine-throughput measurement."""

    events_executed: int
    cancelled_events: int
    elapsed_seconds: float
    chain_events_per_second: float = 0.0
    pool_events_per_second: float = 0.0

    @property
    def events_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.events_executed / self.elapsed_seconds


def _run_chain(events: int, cancel_every: int) -> tuple[int, int, float]:
    """Tick chain: one live event at a time, plus cancelled decoys."""
    engine = SimulationEngine()
    remaining = [events]
    cancelled = [0]

    def noop() -> None:
        pass

    def tick() -> None:
        left = remaining[0]
        if left <= 0:
            return
        remaining[0] = left - 1
        engine.schedule(7, tick)
        if left % cancel_every == 0:
            engine.schedule(11, noop).cancel()
            cancelled[0] += 1

    engine.schedule(1, tick)
    started = time.perf_counter()
    engine.run()
    elapsed = time.perf_counter() - started
    return engine.events_executed, cancelled[0], elapsed


def _run_pool(events: int, pool_size: int,
              cancel_every: int) -> tuple[int, int, float]:
    """Outstanding-event pool: ``pool_size`` live events churn forever."""
    engine = SimulationEngine()
    remaining = [events]
    cancelled = [0]
    # Deterministic, varied delays so the heap keeps reordering.
    offsets = (3, 17, 29, 7, 41, 13, 23, 11)

    def noop() -> None:
        pass

    def tick() -> None:
        left = remaining[0]
        if left <= 0:
            return
        remaining[0] = left - 1
        engine.schedule(offsets[left & 7], tick)
        if left % cancel_every == 0:
            engine.schedule(19, noop).cancel()
            cancelled[0] += 1

    for i in range(pool_size):
        engine.schedule(1 + i, tick)
    started = time.perf_counter()
    engine.run()
    elapsed = time.perf_counter() - started
    return engine.events_executed, cancelled[0], elapsed


def measure_engine_throughput(events: int = 200_000,
                              cancel_every: int = 4,
                              repeats: int = 3,
                              pool_size: int = 64) -> EngineBenchmarkResult:
    """Measure raw engine dispatch throughput (best of ``repeats``).

    Each repeat runs the chain phase and the pool phase with
    ``events // 2`` ticks each; the headline ``events_per_second`` is
    total callbacks over total elapsed time.  Best-of-``repeats`` is
    reported because on a shared host interference only ever slows a
    run down, so the fastest repeat is the closest estimate of true
    engine speed.
    """
    if events <= 0:
        raise ValueError(f"events must be positive, got {events}")
    if cancel_every <= 0:
        raise ValueError(f"cancel_every must be positive, got {cancel_every}")
    if pool_size <= 0:
        raise ValueError(f"pool_size must be positive, got {pool_size}")
    per_phase = max(1, events // 2)
    best: EngineBenchmarkResult | None = None
    for _ in range(max(1, repeats)):
        chain_n, chain_c, chain_t = _run_chain(per_phase, cancel_every)
        pool_n, pool_c, pool_t = _run_pool(per_phase, pool_size, cancel_every)
        result = EngineBenchmarkResult(
            events_executed=chain_n + pool_n,
            cancelled_events=chain_c + pool_c,
            elapsed_seconds=chain_t + pool_t,
            chain_events_per_second=chain_n / chain_t if chain_t > 0 else 0.0,
            pool_events_per_second=pool_n / pool_t if pool_t > 0 else 0.0,
        )
        if best is None or result.events_per_second > best.events_per_second:
            best = result
    assert best is not None
    return best
