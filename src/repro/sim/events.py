"""Event records and handles for the discrete-event engine.

The engine hands out :class:`EventHandle` objects when callbacks are
scheduled.  A handle can be cancelled, which marks the underlying heap
entry dead without the cost of removing it from the heap (lazy
deletion).  Cancellation also notifies the owning engine so its live
pending-event counter stays exact without scanning the heap.
"""

from __future__ import annotations

from typing import Any, Callable, Optional


class EventHandle:
    """A cancellable reference to a scheduled simulation event.

    Instances are created by :meth:`repro.sim.engine.SimulationEngine.schedule`
    and friends; user code only ever cancels or inspects them.
    """

    __slots__ = ("time", "seq", "callback", "label", "_cancelled", "_fired",
                 "_engine")

    def __init__(self, time: int, seq: int, callback: Callable[[], Any],
                 label: Optional[str] = None, engine=None):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.label = label
        self._cancelled = False
        self._fired = False
        # Back-reference used to keep the engine's pending counter
        # exact on cancellation; None for free-standing handles.
        self._engine = engine

    def cancel(self) -> None:
        """Cancel the event.  Cancelling an already-fired event is a no-op."""
        if self._cancelled or self._fired:
            return
        self._cancelled = True
        engine = self._engine
        if engine is not None:
            # The backend keeps its pending counter exact and may
            # compact its storage when dead entries dominate.
            engine._event_cancelled()

    @property
    def cancelled(self) -> bool:
        """True if :meth:`cancel` was called before the event fired."""
        return self._cancelled

    @property
    def fired(self) -> bool:
        """True once the engine has executed the callback."""
        return self._fired

    @property
    def pending(self) -> bool:
        """True while the event is still waiting to fire."""
        return not self._cancelled and not self._fired

    def _mark_fired(self) -> None:
        self._fired = True

    def __lt__(self, other: "EventHandle") -> bool:
        # Heap ordering: by time, then by insertion sequence so that
        # events scheduled earlier at the same timestamp fire first.
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self._cancelled else ("fired" if self._fired else "pending")
        name = self.label or getattr(self.callback, "__name__", "callback")
        return f"EventHandle(t={self.time}, {name}, {state})"
