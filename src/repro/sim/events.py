"""Event records and handles for the discrete-event engine.

The engine hands out :class:`EventHandle` objects when callbacks are
scheduled.  A handle can be cancelled, which marks the underlying heap
entry dead without the cost of removing it from the heap (lazy
deletion).  Cancellation also notifies the owning engine so its live
pending-event counter stays exact without scanning the heap.
"""

from __future__ import annotations

from typing import Any, Callable, Optional


class BatchHandle:
    """A single cancellable handle covering a same-cycle event volley.

    Returned by :meth:`repro.sim.engine.SimulationEngine.schedule_batch`.
    The generic implementation wraps the per-event handles of the
    fallback path (one ``schedule`` call per callback); columnar
    backends return their own block-backed flavour with the same
    public surface (``time``, ``label``, ``count``, ``cancel()``,
    ``pending``/``fired``/``cancelled``).  A batch cancels as a unit —
    individual volley events are not separately addressable, which is
    exactly what lets a columnar backend dispatch the volley without
    per-event handle objects.
    """

    __slots__ = ("time", "label", "count", "_handles")

    def __init__(self, time: int, label: Optional[str],
                 handles: "list[EventHandle]"):
        self.time = time
        self.label = label
        self.count = len(handles)
        self._handles = handles

    def cancel(self) -> None:
        """Cancel every volley event that has not fired yet."""
        for handle in self._handles:
            handle.cancel()

    @property
    def pending(self) -> bool:
        """True while at least one volley event is still waiting."""
        return any(handle.pending for handle in self._handles)

    @property
    def cancelled(self) -> bool:
        """True if :meth:`cancel` reached at least one unfired event."""
        return any(handle.cancelled for handle in self._handles)

    @property
    def fired(self) -> bool:
        """True once every volley event has executed."""
        return all(handle.fired for handle in self._handles)

    def __repr__(self) -> str:
        state = ("cancelled" if self.cancelled
                 else ("fired" if self.fired else "pending"))
        return (f"BatchHandle(t={self.time}, count={self.count}, "
                f"{self.label or 'batch'}, {state})")


class EventHandle:
    """A cancellable reference to a scheduled simulation event.

    Instances are created by :meth:`repro.sim.engine.SimulationEngine.schedule`
    and friends; user code only ever cancels or inspects them.
    """

    __slots__ = ("time", "seq", "callback", "label", "_cancelled", "_fired",
                 "_engine")

    def __init__(self, time: int, seq: int, callback: Callable[[], Any],
                 label: Optional[str] = None, engine=None):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.label = label
        self._cancelled = False
        self._fired = False
        # Back-reference used to keep the engine's pending counter
        # exact on cancellation; None for free-standing handles.
        self._engine = engine

    def cancel(self) -> None:
        """Cancel the event.  Cancelling an already-fired event is a no-op."""
        if self._cancelled or self._fired:
            return
        self._cancelled = True
        engine = self._engine
        if engine is not None:
            # The backend keeps its pending counter exact and may
            # compact its storage when dead entries dominate.
            engine._event_cancelled()

    @property
    def cancelled(self) -> bool:
        """True if :meth:`cancel` was called before the event fired."""
        return self._cancelled

    @property
    def fired(self) -> bool:
        """True once the engine has executed the callback."""
        return self._fired

    @property
    def pending(self) -> bool:
        """True while the event is still waiting to fire."""
        return not self._cancelled and not self._fired

    def _mark_fired(self) -> None:
        self._fired = True

    def __lt__(self, other: "EventHandle") -> bool:
        # Heap ordering: by time, then by insertion sequence so that
        # events scheduled earlier at the same timestamp fire first.
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self._cancelled else ("fired" if self._fired else "pending")
        name = self.label or getattr(self.callback, "__name__", "callback")
        return f"EventHandle(t={self.time}, {name}, {state})"
