"""Simulated interrupt controller (VIC-style).

Models the essential behaviour the paper relies on:

* IRQ lines are *latched*: raising a line sets a pending flag; the flag
  is not a counter, so raising an already-pending line coalesces the
  two requests (paper, Section 4: "in most cases IRQ flags are not
  counting").
* While the CPU masks interrupts (hypervisor context: top handler,
  scheduler manipulation, context switches) pending lines are held and
  delivered once interrupts are unmasked again.
* Lower line numbers have higher priority; the hypervisor's TDMA slot
  timer conventionally uses line 0.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.engine import SimulationEngine
from repro.sim.trace import TraceKind, TraceRecorder


class InterruptController:
    """Latching, maskable interrupt controller with fixed line priorities.

    The *dispatcher* is the CPU-side IRQ entry point (installed by the
    hypervisor).  The controller calls it with the line number whenever
    an unmasked pending line should be serviced.  The dispatcher is
    expected to acknowledge the line via :meth:`acknowledge` from its
    top handler.
    """

    def __init__(self, engine: SimulationEngine, num_lines: int = 32,
                 trace: Optional[TraceRecorder] = None):
        if num_lines <= 0:
            raise ValueError(f"need at least one IRQ line, got {num_lines}")
        self._engine = engine
        self._trace = trace
        self._num_lines = num_lines
        self._pending = [False] * num_lines
        self._enabled = [True] * num_lines
        self._globally_masked = False
        self._dispatcher: Optional[Callable[[int], None]] = None
        self._dispatching = False
        self._raise_counts = [0] * num_lines
        self._coalesced_counts = [0] * num_lines
        self._delivered_counts = [0] * num_lines
        # Exact count of lines that are pending AND enabled.  The
        # delivery path runs on every unmask — almost always with
        # nothing pending — so the counter turns the common case into
        # an integer compare instead of a scan over all lines.
        self._live = 0

    @property
    def num_lines(self) -> int:
        return self._num_lines

    def set_dispatcher(self, dispatcher: Callable[[int], None]) -> None:
        """Install the CPU IRQ entry point."""
        self._dispatcher = dispatcher

    # ------------------------------------------------------------------
    # Line-side interface (devices)
    # ------------------------------------------------------------------

    def raise_line(self, line: int) -> None:
        """Assert an IRQ line.

        If the line is already pending the request is coalesced (the
        flag is not a counter).  Delivery happens immediately when the
        CPU is unmasked, otherwise when interrupts are next enabled.
        """
        self._check_line(line)
        self._raise_counts[line] += 1
        if self._pending[line]:
            self._coalesced_counts[line] += 1
            if self._trace is not None:
                self._trace.emit(self._engine.now, TraceKind.IRQ_COALESCED, line=line)
            return
        self._pending[line] = True
        if self._enabled[line]:
            self._live += 1
        if self._trace is not None:
            self._trace.emit(self._engine.now, TraceKind.IRQ_RAISED, line=line)
        self._maybe_deliver()

    # ------------------------------------------------------------------
    # CPU-side interface
    # ------------------------------------------------------------------

    def mask_all(self) -> None:
        """Disable interrupt delivery (hypervisor context entry)."""
        self._globally_masked = True

    def unmask_all(self) -> None:
        """Re-enable interrupt delivery and deliver any pending lines."""
        self._globally_masked = False
        if self._live:
            self._maybe_deliver()

    @property
    def masked(self) -> bool:
        return self._globally_masked

    def enable_line(self, line: int) -> None:
        """Enable a specific line (delivers if it was pending)."""
        self._check_line(line)
        if not self._enabled[line]:
            self._enabled[line] = True
            if self._pending[line]:
                self._live += 1
        self._maybe_deliver()

    def disable_line(self, line: int) -> None:
        """Disable a specific line; raises on it stay latched."""
        self._check_line(line)
        if self._enabled[line]:
            self._enabled[line] = False
            if self._pending[line]:
                self._live -= 1

    def acknowledge(self, line: int) -> None:
        """Clear the pending flag for a line (done by the top handler)."""
        self._check_line(line)
        if self._pending[line]:
            self._pending[line] = False
            if self._enabled[line]:
                self._live -= 1

    def is_pending(self, line: int) -> bool:
        self._check_line(line)
        return self._pending[line]

    def line_enabled(self, line: int) -> bool:
        self._check_line(line)
        return self._enabled[line]

    # ------------------------------------------------------------------
    # Idle-skip support (see Hypervisor._boundary_dispatch)
    # ------------------------------------------------------------------

    def can_deliver_before(self, time: Optional[int] = None) -> bool:
        """Whether an IRQ delivery can occur before ``time`` without any
        further engine event.

        Lines are *latched*: a live (pending AND enabled) line delivers
        at the next unmask, i.e. immediately on the idle-skip
        predicate's terms, while any *future* raise originates from a
        scheduled engine event — which the skip horizon
        (``engine.peek_next_time()``) already bounds.  The answer is
        therefore independent of ``time``; the parameter documents the
        question being asked.
        """
        return self._live > 0

    def account_slot_deliveries(self, line: int, count: int = 1,
                                time: Optional[int] = None) -> None:
        """Account ``count`` raise+deliver pairs applied analytically.

        The idle-skip fast-forward elides the per-boundary
        raise → acknowledge → deliver chain of the slot-timer line;
        this replays its observable residue (the raise and delivery
        counters — the pending flag and mask toggles cancel out) so
        controller state stays byte-identical to the tick-by-tick run.
        With ``time`` given, the IRQ_RAISED trace record of one raise
        is emitted at that timestamp (the bulk path passes no time:
        it only runs with tracing disabled).
        """
        self._check_line(line)
        self._raise_counts[line] += count
        self._delivered_counts[line] += count
        if time is not None and self._trace is not None:
            self._trace.emit(time, TraceKind.IRQ_RAISED, line=line)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def raise_count(self, line: int) -> int:
        """Total number of raise requests observed on a line."""
        self._check_line(line)
        return self._raise_counts[line]

    def coalesced_count(self, line: int) -> int:
        """Raise requests merged into an already-pending flag."""
        self._check_line(line)
        return self._coalesced_counts[line]

    def delivered_count(self, line: int) -> int:
        """Number of times the dispatcher was invoked for a line."""
        self._check_line(line)
        return self._delivered_counts[line]

    # ------------------------------------------------------------------
    # Snapshot/fork support (see repro.sim.snapshot)
    # ------------------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Plain-data controller state at a quiescent point."""
        if self._dispatching:
            raise RuntimeError("cannot snapshot mid-dispatch")
        return {
            "num_lines": self._num_lines,
            "pending": list(self._pending),
            "enabled": list(self._enabled),
            "globally_masked": self._globally_masked,
            "raise_counts": list(self._raise_counts),
            "coalesced_counts": list(self._coalesced_counts),
            "delivered_counts": list(self._delivered_counts),
        }

    def restore_state(self, state: dict) -> None:
        if state["num_lines"] != self._num_lines:
            raise ValueError(
                f"snapshot has {state['num_lines']} lines, controller has "
                f"{self._num_lines}"
            )
        self._pending = list(state["pending"])
        self._enabled = list(state["enabled"])
        self._globally_masked = state["globally_masked"]
        self._raise_counts = list(state["raise_counts"])
        self._coalesced_counts = list(state["coalesced_counts"])
        self._delivered_counts = list(state["delivered_counts"])
        self._live = sum(1 for pending, enabled
                         in zip(self._pending, self._enabled)
                         if pending and enabled)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _check_line(self, line: int) -> None:
        if not 0 <= line < self._num_lines:
            raise ValueError(f"IRQ line {line} out of range [0, {self._num_lines})")

    def _next_deliverable(self) -> Optional[int]:
        for line in range(self._num_lines):
            if self._pending[line] and self._enabled[line]:
                return line
        return None

    def _maybe_deliver(self) -> None:
        """Deliver the highest-priority pending line if allowed.

        Re-entrant raises from within a dispatcher call are deferred to
        the surrounding delivery loop, keeping the call stack flat.
        """
        if self._dispatcher is None or self._dispatching or not self._live:
            return
        self._dispatching = True
        try:
            while not self._globally_masked and self._live:
                line = self._next_deliverable()
                if line is None:
                    break
                self._delivered_counts[line] += 1
                self._dispatcher(line)
                # The dispatcher typically masks interrupts and returns;
                # the loop exits via the mask check.  If it left the line
                # pending and unmasked we would spin, so acknowledge any
                # dispatcher that failed to do so.
                if self._pending[line] and not self._globally_masked:
                    raise RuntimeError(
                        f"dispatcher returned with line {line} still pending "
                        "and interrupts unmasked (would livelock)"
                    )
        finally:
            self._dispatching = False
