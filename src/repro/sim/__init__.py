"""Discrete-event simulation substrate.

This package provides the "hardware platform" of the reproduction: a
deterministic event engine, an integer-cycle clock, a latching
interrupt controller, programmable timers, a single-core CPU execution
model and a trace recorder.  The hypervisor in
:mod:`repro.hypervisor` is built entirely on these primitives.
"""

from repro.sim.clock import Clock, DEFAULT_FREQUENCY_HZ
from repro.sim.cpu import Cpu, CpuBusyError, CpuSegment, Execution
from repro.sim.engine import SimulationEngine, SimulationError
from repro.sim.events import EventHandle
from repro.sim.intc import InterruptController
from repro.sim.timers import IntervalSequenceTimer, OneShotTimer, TimestampTimer
from repro.sim.trace import TraceEvent, TraceKind, TraceRecorder

__all__ = [
    "Clock",
    "DEFAULT_FREQUENCY_HZ",
    "Cpu",
    "CpuBusyError",
    "CpuSegment",
    "Execution",
    "SimulationEngine",
    "SimulationError",
    "EventHandle",
    "InterruptController",
    "IntervalSequenceTimer",
    "OneShotTimer",
    "TimestampTimer",
    "TraceEvent",
    "TraceKind",
    "TraceRecorder",
]
