"""Discrete-event simulation engine.

A minimal, deterministic event-driven kernel: a binary heap of
timestamped callbacks with stable FIFO ordering for simultaneous
events, lazy cancellation, and bounded-run helpers.  All timestamps
are integer CPU cycles (see :mod:`repro.sim.clock`).

The engine is deliberately free of any domain knowledge; the
hypervisor, timers and interrupt controller are built on top of it.

The dispatch loop is the hottest code in the whole reproduction —
every simulated IRQ costs a dozen engine events — so the
implementation is shaped around per-event constant factors:

* heap entries are ``(time, seq, handle)`` tuples, so sift
  comparisons are C-level tuple compares instead of a Python
  ``__lt__`` call per comparison;
* :meth:`run` and :meth:`run_until` inline the pop-skip-cancelled
  loop instead of calling :meth:`step` per event, and touch handle
  slots directly instead of going through properties;
* the pending-event count is a live counter updated on
  schedule/cancel/fire rather than an O(n) heap scan.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Any, Callable, Optional

from repro.sim.events import EventHandle

#: Minimum number of dead (lazily-cancelled) heap entries before a
#: compaction is considered.  Below this floor the dead entries are
#: cheaper to skip during pops than to filter out.
COMPACTION_FLOOR = 64


class SimulationError(RuntimeError):
    """Raised for invalid use of the simulation engine."""


class SimulationEngine:
    """Deterministic discrete-event simulation core.

    Events scheduled for the same timestamp fire in scheduling order
    (stable FIFO), which makes simulations reproducible regardless of
    heap internals: the unique, monotonically increasing ``seq`` in
    each heap entry breaks timestamp ties.
    """

    __slots__ = ("_heap", "_now", "_seq", "_events_executed", "_running",
                 "_stop_requested", "_pending", "_cancelled_count",
                 "_compactions", "_sentinel_seq")

    def __init__(self):
        # Heap of (time, seq, EventHandle); seq is unique, so the
        # handle itself is never compared.
        self._heap: list[tuple[int, int, EventHandle]] = []
        self._now: int = 0
        self._seq: int = 0
        self._events_executed: int = 0
        self._running = False
        self._stop_requested = False
        self._pending: int = 0
        self._cancelled_count: int = 0
        self._compactions: int = 0
        # Sentinel events (schedule_stop_at) use negative sequence
        # numbers so they never consume — or perturb — the FIFO
        # tie-break sequence of ordinary events.
        self._sentinel_seq: int = -1

    @property
    def now(self) -> int:
        """Current simulation time in cycles."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Total number of event callbacks executed so far."""
        return self._events_executed

    @property
    def events_scheduled(self) -> int:
        """Total number of events ever scheduled (fired or not)."""
        return self._seq

    @property
    def events_cancelled(self) -> int:
        """Total number of events cancelled before firing.

        Maintained by :meth:`~repro.sim.events.EventHandle.cancel`; the
        telemetry collectors sample this (and the other live counters)
        after a run, so the dispatch loop itself carries no
        instrumentation cost.
        """
        return self._cancelled_count

    @property
    def heap_depth(self) -> int:
        """Current heap size, including lazily-cancelled dead entries."""
        return len(self._heap)

    @property
    def compactions(self) -> int:
        """Number of heap compactions performed (dead-entry rebuilds)."""
        return self._compactions

    @property
    def pending_events(self) -> int:
        """Number of scheduled-but-not-yet-fired events (excluding cancelled).

        Maintained as an exact live counter (O(1)); the heap itself may
        still contain lazily-cancelled entries awaiting removal.
        """
        return self._pending

    # ``_push``/``_handle`` defaults bind heappush/EventHandle as fast
    # locals instead of per-call global lookups (stdlib-style hot-path
    # idiom; callers must not pass them).
    def schedule(self, delay: int, callback: Callable[[], Any],
                 label: Optional[str] = None, *,
                 _push=heappush, _handle=EventHandle) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event in the past (delay={delay})")
        time = self._now + delay
        seq = self._seq
        self._seq = seq + 1
        handle = _handle(time, seq, callback, label, self)
        self._pending += 1
        _push(self._heap, (time, seq, handle))
        dead = len(self._heap) - self._pending
        if dead > COMPACTION_FLOOR and dead > self._pending:
            self._compact()
        return handle

    def schedule_at(self, time: int, callback: Callable[[], Any],
                    label: Optional[str] = None, *,
                    _push=heappush, _handle=EventHandle) -> EventHandle:
        """Schedule ``callback`` to run at absolute time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event in the past (t={time}, now={self._now})"
            )
        seq = self._seq
        self._seq = seq + 1
        handle = _handle(time, seq, callback, label, self)
        self._pending += 1
        _push(self._heap, (time, seq, handle))
        dead = len(self._heap) - self._pending
        if dead > COMPACTION_FLOOR and dead > self._pending:
            self._compact()
        return handle

    def schedule_stop_at(self, time: int) -> EventHandle:
        """Schedule an out-of-band :meth:`stop` at absolute time ``time``.

        The sentinel uses a negative sequence number drawn from a
        separate counter, so — unlike a regular scheduled event — it
        neither consumes a FIFO tie-break sequence nor shifts the
        ordering of any simultaneous ordinary events.  That keeps a
        run that installs (and later cancels) a safety time limit
        byte-identical to one that never needed it, which is what lets
        a forked continuation re-install its own limit without
        diverging from the straight-line run (see
        :mod:`repro.sim.snapshot`).  A negative seq always fires
        before ordinary events at the same timestamp; at most one stop
        sentinel is meaningfully pending at a time, so sentinels never
        need to be ordered among themselves.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event in the past (t={time}, now={self._now})"
            )
        seq = self._sentinel_seq
        self._sentinel_seq = seq - 1
        handle = EventHandle(time, seq, self.stop, "stop-sentinel", self)
        self._pending += 1
        heappush(self._heap, (time, seq, handle))
        return handle

    def _compact(self) -> None:
        """Rebuild the heap without lazily-cancelled dead entries.

        Mutates the heap list *in place* — :meth:`run` holds a local
        alias to it — and preserves every live ``(time, seq, handle)``
        entry exactly, so event ordering (and therefore simulation
        output) is unchanged.
        """
        heap = self._heap
        heap[:] = [entry for entry in heap if not entry[2]._cancelled]
        heapify(heap)
        self._compactions += 1

    def step(self) -> bool:
        """Execute the next pending event.

        Returns True if an event was executed, False if the queue was
        exhausted (only cancelled or no events remained).
        """
        heap = self._heap
        while heap:
            time, _seq, handle = heappop(heap)
            if handle._cancelled:
                continue
            self._now = time
            handle._fired = True
            self._pending -= 1
            self._events_executed += 1
            handle.callback()
            return True
        return False

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the event queue is empty (or ``max_events`` fired).

        Returns the number of events executed by this call.
        """
        executed = 0
        self._running = True
        self._stop_requested = False
        dead = len(self._heap) - self._pending
        if dead > COMPACTION_FLOOR and dead > self._pending:
            self._compact()
        heap = self._heap
        try:
            if max_events is None:
                while heap and not self._stop_requested:
                    time, _seq, handle = heappop(heap)
                    if handle._cancelled:
                        continue
                    self._now = time
                    handle._fired = True
                    self._pending -= 1
                    self._events_executed += 1
                    handle.callback()
                    executed += 1
            else:
                while heap and not self._stop_requested and executed < max_events:
                    time, _seq, handle = heappop(heap)
                    if handle._cancelled:
                        continue
                    self._now = time
                    handle._fired = True
                    self._pending -= 1
                    self._events_executed += 1
                    handle.callback()
                    executed += 1
        finally:
            self._running = False
        return executed

    def run_until(self, time: int) -> int:
        """Run all events with timestamps <= ``time``; advance clock to ``time``.

        Returns the number of events executed by this call.
        """
        if time < self._now:
            raise SimulationError(f"cannot run backwards (t={time}, now={self._now})")
        executed = 0
        self._running = True
        self._stop_requested = False
        dead = len(self._heap) - self._pending
        if dead > COMPACTION_FLOOR and dead > self._pending:
            self._compact()
        heap = self._heap
        try:
            while not self._stop_requested:
                while heap and heap[0][2]._cancelled:
                    heappop(heap)
                if not heap or heap[0][0] > time:
                    break
                event_time, _seq, handle = heappop(heap)
                self._now = event_time
                handle._fired = True
                self._pending -= 1
                self._events_executed += 1
                handle.callback()
                executed += 1
        finally:
            self._running = False
        if not self._stop_requested:
            self._now = max(self._now, time)
        return executed

    def stop(self) -> None:
        """Request that the current :meth:`run`/:meth:`run_until` stop
        after the in-flight event completes."""
        self._stop_requested = True

    def _next_pending(self) -> Optional[EventHandle]:
        """Peek the earliest non-cancelled event, discarding dead entries."""
        heap = self._heap
        while heap:
            handle = heap[0][2]
            if handle._cancelled:
                heappop(heap)
                continue
            return handle
        return None

    def peek_next_time(self) -> Optional[int]:
        """Timestamp of the next pending event, or None if queue is empty."""
        handle = self._next_pending()
        return None if handle is None else handle.time

    # ------------------------------------------------------------------
    # Snapshot/fork support (see repro.sim.snapshot).
    #
    # The engine cannot serialize its heap directly — scheduled
    # callbacks are closures over the old world — so a snapshot
    # records the live (time, seq, label) entries, each component
    # *claims* the entries it owns, and on restore each component
    # re-binds a fresh callback with the original (time, seq).
    # Preserving the original sequence numbers (and the _seq counter)
    # keeps FIFO tie-breaks, and therefore the entire execution,
    # byte-identical to the straight-line run.
    # ------------------------------------------------------------------

    def live_entries(self) -> list[tuple[int, int, EventHandle]]:
        """All pending (non-cancelled) ``(time, seq, handle)`` heap entries."""
        return [entry for entry in self._heap if not entry[2]._cancelled]

    def snapshot_state(self) -> dict:
        """Plain-data counter state for a world snapshot.

        ``_sentinel_seq`` is deliberately *not* captured: sentinel
        sequence numbers are unobservable (a negative seq always fires
        before any ordinary event at the same time, and at most one
        stop sentinel is meaningfully pending), and a forked
        continuation must allocate sentinels exactly like the fresh
        engine of a straight-line run would.
        """
        return {
            "now": self._now,
            "seq": self._seq,
            "events_executed": self._events_executed,
            "events_cancelled": self._cancelled_count,
            "compactions": self._compactions,
            "pending": self._pending,
        }

    def restore_state(self, state: dict) -> None:
        """Restore counters onto a *fresh* engine.

        ``pending`` is not restored directly — it is rebuilt one
        :meth:`restore_event` at a time; the orchestrator asserts the
        final count against ``state["pending"]``.
        """
        if self._heap or self._seq or self._events_executed:
            raise SimulationError("can only restore state onto a fresh engine")
        self._now = state["now"]
        self._seq = state["seq"]
        self._events_executed = state["events_executed"]
        self._cancelled_count = state["events_cancelled"]
        self._compactions = state["compactions"]

    def restore_event(self, time: int, seq: int, callback: Callable[[], Any],
                      label: Optional[str] = None) -> EventHandle:
        """Re-schedule a snapshotted event with its *original* (time, seq).

        Unlike :meth:`schedule_at` this does not allocate a new
        sequence number: the restored entry must sort exactly where
        the original did among simultaneous events.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot restore an event in the past (t={time}, now={self._now})"
            )
        if seq >= self._seq:
            raise SimulationError(
                f"restored event seq {seq} not predated by the seq counter "
                f"({self._seq}); restore_state first"
            )
        handle = EventHandle(time, seq, callback, label, self)
        self._pending += 1
        heappush(self._heap, (time, seq, handle))
        return handle

    def __repr__(self) -> str:
        return f"SimulationEngine(now={self._now}, pending={self.pending_events})"
