"""Discrete-event simulation engine.

A minimal, deterministic event-driven kernel: a binary heap of
timestamped callbacks with stable FIFO ordering for simultaneous
events, lazy cancellation, and bounded-run helpers.  All timestamps
are integer CPU cycles (see :mod:`repro.sim.clock`).

The engine is deliberately free of any domain knowledge; the
hypervisor, timers and interrupt controller are built on top of it.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.sim.events import EventHandle


class SimulationError(RuntimeError):
    """Raised for invalid use of the simulation engine."""


class SimulationEngine:
    """Deterministic discrete-event simulation core.

    Events scheduled for the same timestamp fire in scheduling order
    (stable FIFO), which makes simulations reproducible regardless of
    heap internals.
    """

    def __init__(self):
        self._heap: list[EventHandle] = []
        self._now: int = 0
        self._seq: int = 0
        self._events_executed: int = 0
        self._running = False
        self._stop_requested = False

    @property
    def now(self) -> int:
        """Current simulation time in cycles."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Total number of event callbacks executed so far."""
        return self._events_executed

    @property
    def pending_events(self) -> int:
        """Number of scheduled-but-not-yet-fired events (including cancelled)."""
        return sum(1 for ev in self._heap if ev.pending)

    def schedule(self, delay: int, callback: Callable[[], Any],
                 label: Optional[str] = None) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, label)

    def schedule_at(self, time: int, callback: Callable[[], Any],
                    label: Optional[str] = None) -> EventHandle:
        """Schedule ``callback`` to run at absolute time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event in the past (t={time}, now={self._now})"
            )
        handle = EventHandle(time, self._seq, callback, label)
        self._seq += 1
        heapq.heappush(self._heap, handle)
        return handle

    def step(self) -> bool:
        """Execute the next pending event.

        Returns True if an event was executed, False if the queue was
        exhausted (only cancelled or no events remained).
        """
        while self._heap:
            handle = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            self._now = handle.time
            handle._mark_fired()
            self._events_executed += 1
            handle.callback()
            return True
        return False

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the event queue is empty (or ``max_events`` fired).

        Returns the number of events executed by this call.
        """
        executed = 0
        self._running = True
        self._stop_requested = False
        try:
            while not self._stop_requested:
                if max_events is not None and executed >= max_events:
                    break
                if not self.step():
                    break
                executed += 1
        finally:
            self._running = False
        return executed

    def run_until(self, time: int) -> int:
        """Run all events with timestamps <= ``time``; advance clock to ``time``.

        Returns the number of events executed by this call.
        """
        if time < self._now:
            raise SimulationError(f"cannot run backwards (t={time}, now={self._now})")
        executed = 0
        self._running = True
        self._stop_requested = False
        try:
            while not self._stop_requested:
                handle = self._next_pending()
                if handle is None or handle.time > time:
                    break
                self.step()
                executed += 1
        finally:
            self._running = False
        if not self._stop_requested:
            self._now = max(self._now, time)
        return executed

    def stop(self) -> None:
        """Request that the current :meth:`run`/:meth:`run_until` stop
        after the in-flight event completes."""
        self._stop_requested = True

    def _next_pending(self) -> Optional[EventHandle]:
        """Peek the earliest non-cancelled event, discarding dead entries."""
        while self._heap:
            handle = self._heap[0]
            if handle.cancelled:
                heapq.heappop(self._heap)
                continue
            return handle
        return None

    def peek_next_time(self) -> Optional[int]:
        """Timestamp of the next pending event, or None if queue is empty."""
        handle = self._next_pending()
        return None if handle is None else handle.time

    def __repr__(self) -> str:
        return f"SimulationEngine(now={self._now}, pending={self.pending_events})"
