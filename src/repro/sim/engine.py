"""Discrete-event simulation engine.

A minimal, deterministic event-driven kernel: a binary heap of
timestamped callbacks with stable FIFO ordering for simultaneous
events, lazy cancellation, and bounded-run helpers.  All timestamps
are integer CPU cycles (see :mod:`repro.sim.clock`).

The engine is deliberately free of any domain knowledge; the
hypervisor, timers and interrupt controller are built on top of it.

The dispatch loop is the hottest code in the whole reproduction —
every simulated IRQ costs a dozen engine events — so the
implementation is shaped around per-event constant factors:

* heap entries are ``(time, seq, handle)`` tuples, so sift
  comparisons are C-level tuple compares instead of a Python
  ``__lt__`` call per comparison;
* :meth:`run` and :meth:`run_until` inline the pop-skip-cancelled
  loop instead of calling :meth:`step` per event, and touch handle
  slots directly instead of going through properties;
* the pending-event count is a live counter updated on
  schedule/cancel/fire rather than an O(n) heap scan.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Optional

from repro.sim.events import EventHandle


class SimulationError(RuntimeError):
    """Raised for invalid use of the simulation engine."""


class SimulationEngine:
    """Deterministic discrete-event simulation core.

    Events scheduled for the same timestamp fire in scheduling order
    (stable FIFO), which makes simulations reproducible regardless of
    heap internals: the unique, monotonically increasing ``seq`` in
    each heap entry breaks timestamp ties.
    """

    __slots__ = ("_heap", "_now", "_seq", "_events_executed", "_running",
                 "_stop_requested", "_pending", "_cancelled_count")

    def __init__(self):
        # Heap of (time, seq, EventHandle); seq is unique, so the
        # handle itself is never compared.
        self._heap: list[tuple[int, int, EventHandle]] = []
        self._now: int = 0
        self._seq: int = 0
        self._events_executed: int = 0
        self._running = False
        self._stop_requested = False
        self._pending: int = 0
        self._cancelled_count: int = 0

    @property
    def now(self) -> int:
        """Current simulation time in cycles."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Total number of event callbacks executed so far."""
        return self._events_executed

    @property
    def events_scheduled(self) -> int:
        """Total number of events ever scheduled (fired or not)."""
        return self._seq

    @property
    def events_cancelled(self) -> int:
        """Total number of events cancelled before firing.

        Maintained by :meth:`~repro.sim.events.EventHandle.cancel`; the
        telemetry collectors sample this (and the other live counters)
        after a run, so the dispatch loop itself carries no
        instrumentation cost.
        """
        return self._cancelled_count

    @property
    def heap_depth(self) -> int:
        """Current heap size, including lazily-cancelled dead entries."""
        return len(self._heap)

    @property
    def pending_events(self) -> int:
        """Number of scheduled-but-not-yet-fired events (excluding cancelled).

        Maintained as an exact live counter (O(1)); the heap itself may
        still contain lazily-cancelled entries awaiting removal.
        """
        return self._pending

    # ``_push``/``_handle`` defaults bind heappush/EventHandle as fast
    # locals instead of per-call global lookups (stdlib-style hot-path
    # idiom; callers must not pass them).
    def schedule(self, delay: int, callback: Callable[[], Any],
                 label: Optional[str] = None, *,
                 _push=heappush, _handle=EventHandle) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event in the past (delay={delay})")
        time = self._now + delay
        seq = self._seq
        self._seq = seq + 1
        handle = _handle(time, seq, callback, label, self)
        self._pending += 1
        _push(self._heap, (time, seq, handle))
        return handle

    def schedule_at(self, time: int, callback: Callable[[], Any],
                    label: Optional[str] = None, *,
                    _push=heappush, _handle=EventHandle) -> EventHandle:
        """Schedule ``callback`` to run at absolute time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event in the past (t={time}, now={self._now})"
            )
        seq = self._seq
        self._seq = seq + 1
        handle = _handle(time, seq, callback, label, self)
        self._pending += 1
        _push(self._heap, (time, seq, handle))
        return handle

    def step(self) -> bool:
        """Execute the next pending event.

        Returns True if an event was executed, False if the queue was
        exhausted (only cancelled or no events remained).
        """
        heap = self._heap
        while heap:
            time, _seq, handle = heappop(heap)
            if handle._cancelled:
                continue
            self._now = time
            handle._fired = True
            self._pending -= 1
            self._events_executed += 1
            handle.callback()
            return True
        return False

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the event queue is empty (or ``max_events`` fired).

        Returns the number of events executed by this call.
        """
        executed = 0
        self._running = True
        self._stop_requested = False
        heap = self._heap
        try:
            if max_events is None:
                while heap and not self._stop_requested:
                    time, _seq, handle = heappop(heap)
                    if handle._cancelled:
                        continue
                    self._now = time
                    handle._fired = True
                    self._pending -= 1
                    self._events_executed += 1
                    handle.callback()
                    executed += 1
            else:
                while heap and not self._stop_requested and executed < max_events:
                    time, _seq, handle = heappop(heap)
                    if handle._cancelled:
                        continue
                    self._now = time
                    handle._fired = True
                    self._pending -= 1
                    self._events_executed += 1
                    handle.callback()
                    executed += 1
        finally:
            self._running = False
        return executed

    def run_until(self, time: int) -> int:
        """Run all events with timestamps <= ``time``; advance clock to ``time``.

        Returns the number of events executed by this call.
        """
        if time < self._now:
            raise SimulationError(f"cannot run backwards (t={time}, now={self._now})")
        executed = 0
        self._running = True
        self._stop_requested = False
        heap = self._heap
        try:
            while not self._stop_requested:
                while heap and heap[0][2]._cancelled:
                    heappop(heap)
                if not heap or heap[0][0] > time:
                    break
                event_time, _seq, handle = heappop(heap)
                self._now = event_time
                handle._fired = True
                self._pending -= 1
                self._events_executed += 1
                handle.callback()
                executed += 1
        finally:
            self._running = False
        if not self._stop_requested:
            self._now = max(self._now, time)
        return executed

    def stop(self) -> None:
        """Request that the current :meth:`run`/:meth:`run_until` stop
        after the in-flight event completes."""
        self._stop_requested = True

    def _next_pending(self) -> Optional[EventHandle]:
        """Peek the earliest non-cancelled event, discarding dead entries."""
        heap = self._heap
        while heap:
            handle = heap[0][2]
            if handle._cancelled:
                heappop(heap)
                continue
            return handle
        return None

    def peek_next_time(self) -> Optional[int]:
        """Timestamp of the next pending event, or None if queue is empty."""
        handle = self._next_pending()
        return None if handle is None else handle.time

    def __repr__(self) -> str:
        return f"SimulationEngine(now={self._now}, pending={self.pending_events})"
