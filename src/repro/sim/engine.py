"""Discrete-event simulation engine.

A minimal, deterministic event-driven kernel: timestamped callbacks
with stable FIFO ordering for simultaneous events, lazy cancellation,
and bounded-run helpers.  All timestamps are integer CPU cycles (see
:mod:`repro.sim.clock`).

The engine is deliberately free of any domain knowledge; the
hypervisor, timers and interrupt controller are built on top of it.

The dispatch loop is the hottest code in the whole reproduction —
every simulated IRQ costs a dozen engine events — so the *storage* of
pending events is pluggable (see :mod:`repro.sim.queue`): this module
defines the backend-independent contract (scheduling API, counters,
stop sentinels, snapshot/restore), and concrete queue backends supply
the hot ``schedule``/``run`` paths:

* ``heap`` — a binary heap of ``(time, seq, callback, handle)``
  tuples, so sift comparisons are C-level tuple compares;
* ``bucket`` — a calendar/timing-wheel hybrid bucketing simultaneous
  events per timestamp, so same-cycle batches dispatch without any
  heap sifts at all.

Both backends emit the exact same ``(time, seq)`` FIFO order, pinned
by the A/B property tests in ``tests/test_queue_backends.py`` —
traces, latency CSVs and world-snapshot digests are byte-identical
regardless of the backend.  ``SimulationEngine(...)`` transparently
constructs the configured backend: an explicit ``backend=`` argument
wins, then the ``REPRO_QUEUE_BACKEND`` environment variable, then the
measured-faster default (see ``repro.sim.queue.DEFAULT_QUEUE_BACKEND``).
"""

from __future__ import annotations

import os
from typing import Any, Callable, Optional

from repro.sim.events import BatchHandle, EventHandle

#: Minimum number of dead (lazily-cancelled) queue entries before a
#: compaction is considered.  Below this floor the dead entries are
#: cheaper to skip during dispatch than to filter out.
COMPACTION_FLOOR = 64

#: Idle-skip (analytic fast-forward across quiescent gaps) is on by
#: default; the tick-by-tick path stays selectable for A/B pinning.
DEFAULT_IDLE_SKIP = True

#: Environment variable consulted when no explicit ``idle_skip`` is
#: given.  Campaign workers inherit the parent process environment, so
#: ``--no-idle-skip`` (which sets this) propagates to every worker.
ENV_IDLE_SKIP = "REPRO_IDLE_SKIP"

#: Accepted spellings for :data:`ENV_IDLE_SKIP`.
_IDLE_SKIP_VALUES = {
    "1": True, "true": True, "on": True, "yes": True,
    "0": False, "false": False, "off": False, "no": False,
}

#: Spans recorded for trace export; a cap so a pathological run cannot
#: grow the diagnostic log without bound.
SKIP_SPAN_LOG_CAP = 4096


def resolve_idle_skip(explicit: Optional[bool] = None) -> bool:
    """Resolve the idle-skip toggle: explicit argument > environment > default.

    An empty environment value means "unset" (shell-style ``FOO=`` does
    not break); any other unrecognized value fails loudly, listing the
    accepted spellings.
    """
    if explicit is not None:
        return bool(explicit)
    raw = os.environ.get(ENV_IDLE_SKIP)
    if not raw:
        return DEFAULT_IDLE_SKIP
    value = _IDLE_SKIP_VALUES.get(raw.strip().lower())
    if value is None:
        valid = ", ".join(sorted(_IDLE_SKIP_VALUES))
        raise SimulationError(
            f"invalid {ENV_IDLE_SKIP} value {raw!r} (valid values: {valid})"
        )
    return value


class SimulationError(RuntimeError):
    """Raised for invalid use of the simulation engine."""


class SimulationEngine:
    """Deterministic discrete-event simulation core.

    Events scheduled for the same timestamp fire in scheduling order
    (stable FIFO), which makes simulations reproducible regardless of
    queue internals: the unique, monotonically increasing ``seq``
    attached to each event breaks timestamp ties.

    This base class holds everything backend-independent — counters,
    sentinels, snapshot/restore — while the queue backends
    (:mod:`repro.sim.queue`) implement event storage and the inlined
    dispatch loops.  Instantiating ``SimulationEngine`` directly
    returns the configured backend::

        engine = SimulationEngine()                  # resolved default
        engine = SimulationEngine(backend="heap")    # explicit choice
    """

    #: Overridden by each backend; used for telemetry and ``repr``.
    backend_name = "abstract"

    __slots__ = ("_now", "_seq", "_events_executed", "_running",
                 "_stop_requested", "_pending", "_cancelled_count",
                 "_compactions", "_sentinel_seq", "_dispatch_batches",
                 "_idle_skip", "_skip_allowed", "_in_batch", "_run_bound",
                 "_skip_spans", "_skipped_events", "_skipped_cycles",
                 "_skip_span_log")

    def __new__(cls, backend: Optional[str] = None,
                idle_skip: Optional[bool] = None):
        if cls is SimulationEngine:
            # Lazy import: queue.py subclasses this module's base class.
            from repro.sim.queue import resolve_backend_class

            cls = resolve_backend_class(backend)
        return object.__new__(cls)

    def __init__(self, backend: Optional[str] = None,
                 idle_skip: Optional[bool] = None):
        # ``backend`` was consumed by __new__'s dispatch; accepted (and
        # ignored) here so ``SimulationEngine(backend=...)`` initializes.
        self._now: int = 0
        self._seq: int = 0
        self._events_executed: int = 0
        self._running = False
        self._stop_requested = False
        self._pending: int = 0
        self._cancelled_count: int = 0
        self._compactions: int = 0
        # Number of distinct-timestamp batches the dispatch loops have
        # drained; with same-cycle batch dispatch the clock is written
        # once per batch, not once per event.
        self._dispatch_batches: int = 0
        # Sentinel events (schedule_stop_at) use negative sequence
        # numbers so they never consume — or perturb — the FIFO
        # tie-break sequence of ordinary events.
        self._sentinel_seq: int = -1
        # Idle-skip protocol state.  ``_skip_allowed`` is raised only
        # inside an unbounded run()/run_until() dispatch loop (never in
        # step() or a max_events-bounded run, where the caller observes
        # individual events); ``_run_bound`` is the run_until horizon.
        # ``_in_batch`` is set by the bucket backend while it drains a
        # multi-entry bucket, whose co-timestamped tail is invisible to
        # ``_next_pending`` — a skip decision must not trust the horizon
        # then.  The skip counters feed telemetry only; they are not
        # part of snapshot digests (spans are a diagnostic, like
        # ``compactions``).
        self._idle_skip: bool = resolve_idle_skip(idle_skip)
        self._skip_allowed = False
        self._in_batch = False
        self._run_bound: Optional[int] = None
        self._skip_spans: int = 0
        self._skipped_events: int = 0
        self._skipped_cycles: int = 0
        self._skip_span_log: list[tuple[int, int, int]] = []

    # ------------------------------------------------------------------
    # Counters and introspection
    # ------------------------------------------------------------------

    @property
    def now(self) -> int:
        """Current simulation time in cycles."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Total number of event callbacks executed so far."""
        return self._events_executed

    @property
    def events_scheduled(self) -> int:
        """Total number of events ever scheduled (fired or not)."""
        return self._seq

    @property
    def events_cancelled(self) -> int:
        """Total number of events cancelled before firing.

        Maintained by :meth:`~repro.sim.events.EventHandle.cancel` via
        the :meth:`_event_cancelled` hook; the telemetry collectors
        sample this (and the other live counters) after a run, so the
        dispatch loop itself carries no instrumentation cost.
        """
        return self._cancelled_count

    @property
    def heap_depth(self) -> int:
        """Stored entries, including lazily-cancelled dead ones.

        The name predates the pluggable backends: for the bucket
        backend this is the total entry count across all buckets.
        """
        raise NotImplementedError

    @property
    def compactions(self) -> int:
        """Number of queue compactions performed (dead-entry rebuilds)."""
        return self._compactions

    @property
    def dispatch_batches(self) -> int:
        """Distinct-timestamp batches drained by the dispatch loops.

        Events sharing a timestamp are dispatched as one batch with a
        single clock write; ``events_executed / dispatch_batches`` is
        the average same-cycle batch size.
        """
        return self._dispatch_batches

    @property
    def pending_events(self) -> int:
        """Number of scheduled-but-not-yet-fired events (excluding cancelled).

        Maintained as an exact live counter (O(1)); the queue itself
        may still contain lazily-cancelled entries awaiting removal.
        """
        return self._pending

    @property
    def activity_fingerprint(self) -> tuple[int, int, int, int, int]:
        """``(now, scheduled, executed, cancelled, pending)`` summary.

        Every queue mutation moves at least one *monotone* component —
        ``schedule``/``restore_event`` bump the seq counter or pending,
        dispatch bumps executed, ``cancel`` bumps cancelled,
        ``fast_forward`` moves seq/executed — so two equal fingerprints
        mean no event was scheduled, dispatched, cancelled, restored or
        fast-forwarded in between.  The layered world store
        (:mod:`repro.sim.worldstore`) uses this to prove that event
        ownership (heap claims) is unchanged since a capture basis and
        only pure component state can have mutated.
        """
        return (self._now, self._seq, self._events_executed,
                self._cancelled_count, self._pending)

    # ------------------------------------------------------------------
    # Idle-skip protocol (analytic fast-forward across quiescent gaps)
    # ------------------------------------------------------------------
    #
    # The engine does not decide *when* to skip — quiescence is domain
    # knowledge, owned by the hypervisor — it only provides the window
    # in which a skip is sound and the accounting to make the skipped
    # execution byte-identical to the tick-by-tick one:
    #
    # * ``skip_window()`` tells the in-flight callback whether it may
    #   advance the clock itself (only from an unbounded run()/
    #   run_until() loop, never mid-batch) and up to what bound;
    # * ``peek_next_time()`` is the skip horizon: no analytic span may
    #   reach the next pending queue event;
    # * ``fast_forward()`` applies the aggregate effect of the elided
    #   events — clock, seq counter and executed count move exactly as
    #   if each event had been scheduled and dispatched.

    @property
    def idle_skip_enabled(self) -> bool:
        """Whether callbacks may fast-forward across quiescent gaps."""
        return self._idle_skip

    @property
    def skip_spans(self) -> int:
        """Number of quiescent gaps crossed analytically."""
        return self._skip_spans

    @property
    def skipped_events(self) -> int:
        """Events elided (accounted analytically instead of dispatched)."""
        return self._skipped_events

    @property
    def skipped_cycles(self) -> int:
        """Simulated cycles crossed by fast-forwards."""
        return self._skipped_cycles

    @property
    def skip_span_log(self) -> list[tuple[int, int, int]]:
        """Recorded ``(start, end, events_elided)`` spans (capped)."""
        return list(self._skip_span_log)

    def skip_window(self) -> tuple[bool, Optional[int]]:
        """``(allowed, bound)`` for a skip decision at the current dispatch.

        ``allowed`` is True only while an unbounded ``run()`` or a
        ``run_until()`` loop is dispatching a fully drained timestamp;
        ``bound`` is the ``run_until`` horizon (None for ``run()``).
        """
        return (self._skip_allowed and not self._in_batch, self._run_bound)

    def fast_forward(self, now: int, elided_events: int) -> None:
        """Apply the aggregate accounting of an analytically skipped span.

        The caller has reproduced every *observable* side effect of the
        ``elided_events`` events it did not dispatch; this moves the
        clock to ``now`` and advances the seq/executed counters by
        exactly what those events would have consumed, so every later
        event keeps its tick-by-tick ``(time, seq)`` identity.
        """
        if now < self._now:
            raise SimulationError(
                f"cannot fast-forward backwards (t={now}, now={self._now})"
            )
        if elided_events < 0:
            raise SimulationError(
                f"elided event count must be >= 0, got {elided_events}"
            )
        self._skip_spans += 1
        self._skipped_events += elided_events
        self._skipped_cycles += now - self._now
        if len(self._skip_span_log) < SKIP_SPAN_LOG_CAP:
            self._skip_span_log.append((self._now, now, elided_events))
        self._now = now
        self._seq += elided_events
        self._events_executed += elided_events

    # ------------------------------------------------------------------
    # Backend contract (hot paths implemented per backend)
    # ------------------------------------------------------------------

    def schedule(self, delay: int, callback: Callable[[], Any],
                 label: Optional[str] = None) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` cycles from now."""
        raise NotImplementedError

    def schedule_at(self, time: int, callback: Callable[[], Any],
                    label: Optional[str] = None) -> EventHandle:
        """Schedule ``callback`` to run at absolute time ``time``."""
        raise NotImplementedError

    def schedule_batch(self, delay: int, callbacks,
                       label: Optional[str] = None) -> BatchHandle:
        """Schedule a same-cycle volley of callbacks as one unit.

        All callbacks fire at ``now + delay`` with consecutive sequence
        numbers in list order — byte-identical FIFO placement to
        ``len(callbacks)`` individual :meth:`schedule` calls — and the
        volley cancels as a unit through the single returned handle.

        This generic implementation *is* those individual calls;
        columnar backends override it with a block insert that fills
        whole column ranges per volley (no per-event handle objects),
        which is where dense same-cycle storms win big.  Order,
        counters and observable semantics are identical either way,
        pinned by the backend-equivalence tests.
        """
        if delay < 0:
            raise SimulationError(
                f"cannot schedule an event in the past (delay={delay})")
        handles = [self.schedule(delay, callback, label)
                   for callback in callbacks]
        return BatchHandle(self._now + delay, label, handles)

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the event queue is empty (or ``max_events`` fired).

        Returns the number of events executed by this call.
        """
        raise NotImplementedError

    def run_until(self, time: int) -> int:
        """Run all events with timestamps <= ``time``; advance clock to ``time``.

        Returns the number of events executed by this call.
        """
        raise NotImplementedError

    def step(self) -> bool:
        """Execute the next pending event.

        Returns True if an event was executed, False if the queue was
        exhausted (only cancelled or no events remained).
        """
        raise NotImplementedError

    def live_entries(self) -> list[tuple[int, int, EventHandle]]:
        """All pending (non-cancelled) ``(time, seq, handle)`` entries,
        sorted by ``(time, seq)`` — i.e. in dispatch order — so the
        listing is identical across queue backends."""
        raise NotImplementedError

    def _insert_entry(self, time: int, seq: int, callback: Callable[[], Any],
                      handle: EventHandle) -> None:
        """Insert a fully-built entry into backend storage.

        Cold path shared by :meth:`schedule_stop_at` (negative seqs)
        and :meth:`restore_event` (original seqs out of arrival order);
        backends must tolerate out-of-order sequence numbers here.
        """
        raise NotImplementedError

    def _event_cancelled(self) -> None:
        """Account a cancellation (called by :meth:`EventHandle.cancel`).

        Backends keep the ``pending`` counter exact here and may
        trigger a compaction when dead entries dominate live ones.
        """
        raise NotImplementedError

    def _compact(self) -> None:
        """Rebuild storage without lazily-cancelled dead entries."""
        raise NotImplementedError

    def _next_pending(self) -> Optional[EventHandle]:
        """Peek the earliest non-cancelled event, discarding dead entries."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Shared cold paths
    # ------------------------------------------------------------------

    def _make_handle(self, time: int, seq: int, callback: Callable[[], Any],
                     label: Optional[str]) -> EventHandle:
        """Build a handle for the cold out-of-band insert paths.

        Backends whose cancellation bookkeeping lives outside the
        handle (the array backend's cancelled column) override this so
        sentinels and restored events get handles wired to that
        bookkeeping too.
        """
        return EventHandle(time, seq, callback, label, self)

    def schedule_stop_at(self, time: int) -> EventHandle:
        """Schedule an out-of-band :meth:`stop` at absolute time ``time``.

        The sentinel uses a negative sequence number drawn from a
        separate counter, so — unlike a regular scheduled event — it
        neither consumes a FIFO tie-break sequence nor shifts the
        ordering of any simultaneous ordinary events.  That keeps a
        run that installs (and later cancels) a safety time limit
        byte-identical to one that never needed it, which is what lets
        a forked continuation re-install its own limit without
        diverging from the straight-line run (see
        :mod:`repro.sim.snapshot`).  A negative seq always fires
        before ordinary events at the same timestamp; at most one stop
        sentinel is meaningfully pending at a time, so sentinels never
        need to be ordered among themselves.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event in the past (t={time}, now={self._now})"
            )
        seq = self._sentinel_seq
        self._sentinel_seq = seq - 1
        handle = self._make_handle(time, seq, self.stop, "stop-sentinel")
        self._pending += 1
        self._insert_entry(time, seq, self.stop, handle)
        return handle

    def stop(self) -> None:
        """Request that the current :meth:`run`/:meth:`run_until` stop
        after the in-flight event completes."""
        self._stop_requested = True

    def peek_next_time(self) -> Optional[int]:
        """Timestamp of the next pending event, or None if queue is empty."""
        handle = self._next_pending()
        return None if handle is None else handle.time

    # ------------------------------------------------------------------
    # Snapshot/fork support (see repro.sim.snapshot).
    #
    # The engine cannot serialize its queue directly — scheduled
    # callbacks are closures over the old world — so a snapshot
    # records the live (time, seq, label) entries, each component
    # *claims* the entries it owns, and on restore each component
    # re-binds a fresh callback with the original (time, seq).
    # Preserving the original sequence numbers (and the _seq counter)
    # keeps FIFO tie-breaks, and therefore the entire execution,
    # byte-identical to the straight-line run.
    # ------------------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Plain-data counter state for a world snapshot.

        ``_sentinel_seq`` is deliberately *not* captured: sentinel
        sequence numbers are unobservable (a negative seq always fires
        before any ordinary event at the same time, and at most one
        stop sentinel is meaningfully pending), and a forked
        continuation must allocate sentinels exactly like the fresh
        engine of a straight-line run would.  The ``compactions`` and
        ``dispatch_batches`` diagnostics are likewise excluded: they
        depend on the queue backend, and snapshot digests must be
        backend-independent (both backends produce the same semantic
        state, so a world captured under ``heap`` restores — and
        digests — identically under ``bucket``).  The idle-skip span
        counters are excluded for the same reason: how many gaps were
        crossed analytically is a diagnostic of *how* the run executed,
        and digests must be identical with skip on or off.
        """
        return {
            "now": self._now,
            "seq": self._seq,
            "events_executed": self._events_executed,
            "events_cancelled": self._cancelled_count,
            "pending": self._pending,
        }

    def restore_state(self, state: dict) -> None:
        """Restore counters onto a *fresh* engine.

        ``pending`` is not restored directly — it is rebuilt one
        :meth:`restore_event` at a time; the orchestrator asserts the
        final count against ``state["pending"]``.
        """
        if self.heap_depth or self._seq or self._events_executed:
            raise SimulationError("can only restore state onto a fresh engine")
        self._now = state["now"]
        self._seq = state["seq"]
        self._events_executed = state["events_executed"]
        self._cancelled_count = state["events_cancelled"]

    def restore_event(self, time: int, seq: int, callback: Callable[[], Any],
                      label: Optional[str] = None) -> EventHandle:
        """Re-schedule a snapshotted event with its *original* (time, seq).

        Unlike :meth:`schedule_at` this does not allocate a new
        sequence number: the restored entry must sort exactly where
        the original did among simultaneous events.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot restore an event in the past (t={time}, now={self._now})"
            )
        if seq >= self._seq:
            raise SimulationError(
                f"restored event seq {seq} not predated by the seq counter "
                f"({self._seq}); restore_state first"
            )
        handle = self._make_handle(time, seq, callback, label)
        self._pending += 1
        self._insert_entry(time, seq, callback, handle)
        return handle

    def __repr__(self) -> str:
        return (f"SimulationEngine(backend={self.backend_name!r}, "
                f"now={self._now}, pending={self.pending_events})")
