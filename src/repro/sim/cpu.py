"""Single-core CPU execution model.

The CPU runs at most one :class:`Execution` at a time.  An execution is
a preemptible piece of work with a (possibly unbounded) cycle budget;
the hypervisor assigns executions for guest tasks, bottom handlers and
the idle loop, and preempts them when interrupts or slot boundaries
arrive.  Hypervisor code itself (top handlers, scheduler, context
switches) runs with interrupts masked and is modelled as timed event
chains rather than executions, mirroring a real microkernel's
non-preemptible sections.

Accounting invariant: every consumed cycle is charged to exactly one
execution, and the per-category totals plus hypervisor overhead cycles
always sum to elapsed simulation time.  Tests rely on this.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.engine import SimulationEngine
from repro.sim.events import EventHandle


class Execution:
    """A preemptible unit of work.

    Parameters
    ----------
    label:
        Human-readable name used in traces.
    remaining:
        Cycle budget; ``None`` means unbounded (idle loops, background
        tasks that never finish).
    on_complete:
        Callback fired when the budget reaches zero while on the CPU.
    category:
        Accounting bucket (e.g. ``"partition:P1"``, ``"bh:P2"``,
        ``"idle"``) used for utilization statistics.
    owner:
        Arbitrary back-reference for the component that created this
        execution (partition, guest job, interpose window, ...).
    """

    __slots__ = ("label", "remaining", "on_complete", "category", "owner", "executed")

    def __init__(self, label: str, remaining: Optional[int],
                 on_complete: Optional[Callable[[], None]] = None,
                 category: str = "other", owner: Any = None):
        if remaining is not None and remaining < 0:
            raise ValueError(f"execution budget must be >= 0, got {remaining}")
        self.label = label
        self.remaining = remaining
        self.on_complete = on_complete
        self.category = category
        self.owner = owner
        self.executed = 0

    @property
    def finished(self) -> bool:
        """True once a bounded execution has consumed its whole budget."""
        return self.remaining == 0

    def __repr__(self) -> str:
        budget = "inf" if self.remaining is None else str(self.remaining)
        return f"Execution({self.label}, remaining={budget}, executed={self.executed})"


class CpuBusyError(RuntimeError):
    """Raised when assigning work to a CPU that is already running."""


class CpuSegment:
    """One contiguous stint of CPU occupancy (for timeline rendering)."""

    __slots__ = ("start", "end", "category", "label")

    def __init__(self, start: int, end: int, category: str, label: str):
        self.start = start
        self.end = end
        self.category = category
        self.label = label

    @property
    def duration(self) -> int:
        return self.end - self.start

    def __repr__(self) -> str:
        return f"CpuSegment({self.start}..{self.end}, {self.category}, {self.label})"


class Cpu:
    """A single core executing one :class:`Execution` at a time.

    With ``record_segments=True`` every charged stint (execution or
    hypervisor overhead) is appended to :attr:`segments`, enabling
    Gantt-style timeline rendering (see :mod:`repro.metrics.timeline`).
    """

    def __init__(self, engine: SimulationEngine, record_segments: bool = False):
        self._engine = engine
        self._current: Optional[Execution] = None
        self._started_at: int = 0
        self._completion: Optional[EventHandle] = None
        self._consumed_by_category: dict[str, int] = {}
        self._preemptions: int = 0
        self.segments: Optional[list[CpuSegment]] = (
            [] if record_segments else None
        )

    @property
    def preemptions(self) -> int:
        """Number of executions stopped before completing their budget."""
        return self._preemptions

    @property
    def current(self) -> Optional[Execution]:
        """The execution currently on the CPU, if any."""
        return self._current

    @property
    def busy(self) -> bool:
        return self._current is not None

    def assign(self, execution: Execution) -> None:
        """Start (or resume) running ``execution``.

        The CPU must be free; callers preempt the current execution
        first.  A bounded execution completes after ``remaining``
        cycles unless preempted earlier.
        """
        if self._current is not None:
            raise CpuBusyError(
                f"CPU busy with {self._current.label}; preempt before assigning "
                f"{execution.label}"
            )
        if execution.finished:
            # Zero-budget work completes immediately without occupying
            # the CPU; this keeps degenerate configurations (C_BH = 0)
            # well-defined.
            if execution.on_complete is not None:
                execution.on_complete()
            return
        self._current = execution
        self._started_at = self._engine.now
        if execution.remaining is not None:
            self._completion = self._engine.schedule(
                execution.remaining, self._complete, label=f"complete-{execution.label}"
            )
        else:
            self._completion = None

    def preempt(self) -> Optional[Execution]:
        """Stop the current execution, charging elapsed cycles to it.

        Returns the preempted execution (with its ``remaining`` budget
        reduced) or ``None`` if the CPU was idle.
        """
        if self._current is None:
            return None
        execution = self._current
        self._charge(execution)
        if self._completion is not None:
            self._completion.cancel()
        self._current = None
        self._completion = None
        self._preemptions += 1
        return execution

    def charge_overhead(self, cycles: int, category: str = "hypervisor") -> None:
        """Account cycles consumed by non-execution (hypervisor) code.

        The CPU must be free: hypervisor chains run between preempt()
        and the next assign().
        """
        if cycles < 0:
            raise ValueError(f"overhead must be >= 0, got {cycles}")
        if self._current is not None:
            raise CpuBusyError("cannot charge overhead while an execution is running")
        self._bump(category, cycles)
        if self.segments is not None and cycles > 0:
            now = self._engine.now
            self.segments.append(
                CpuSegment(now - cycles, now, category, category)
            )

    # ------------------------------------------------------------------
    # Idle-skip support (see Hypervisor._boundary_dispatch)
    #
    # The fast-forward reproduces each elided preempt/overhead/stint
    # with an *explicit* clock — the engine clock only moves once, at
    # the end of the span — so these mirror preempt()/charge_overhead()
    # /_charge() exactly, timestamp by timestamp.
    # ------------------------------------------------------------------

    def skip_preempt(self, now: int) -> Optional[Execution]:
        """:meth:`preempt` as it would have run with the clock at ``now``.

        Only valid for an unbounded execution (no completion event to
        cancel) — the idle-skip quiescence predicate guarantees that.
        """
        if self._current is None:
            return None
        execution = self._current
        assert self._completion is None, "skip_preempt on a bounded execution"
        elapsed = now - self._started_at
        if elapsed:
            execution.executed += elapsed
            self._bump(execution.category, elapsed)
            if self.segments is not None:
                self.segments.append(CpuSegment(
                    self._started_at, now, execution.category, execution.label
                ))
        self._current = None
        self._preemptions += 1
        return execution

    def skip_overhead(self, cycles: int, end: int,
                      category: str = "hypervisor") -> None:
        """:meth:`charge_overhead` as of clock ``end`` (CPU must be free)."""
        if self._current is not None:
            raise CpuBusyError("cannot charge overhead while an execution is running")
        self._bump(category, cycles)
        if self.segments is not None and cycles > 0:
            self.segments.append(CpuSegment(end - cycles, end, category, category))

    def skip_stint(self, category: str, label: str, start: int, end: int) -> None:
        """One whole elided execution stint: assign at ``start``, run to
        ``end``, preempt — collapsed into its accounting residue."""
        elapsed = end - start
        if elapsed:
            self._bump(category, elapsed)
            if self.segments is not None:
                self.segments.append(CpuSegment(start, end, category, label))
        self._preemptions += 1

    def skip_account(self, consumed: "dict[str, int]", preemptions: int) -> None:
        """Bulk residue of many elided stints (closed-form tier; only
        used with segment recording off)."""
        for category, cycles in consumed.items():
            self._bump(category, cycles)
        self._preemptions += preemptions

    def consumed(self, category: str) -> int:
        """Total cycles charged to an accounting category."""
        return self._consumed_by_category.get(category, 0)

    @property
    def consumed_by_category(self) -> dict[str, int]:
        """Copy of the full accounting table."""
        return dict(self._consumed_by_category)

    def total_consumed(self) -> int:
        """Sum of all charged cycles (executions + overhead)."""
        return sum(self._consumed_by_category.values())

    # ------------------------------------------------------------------
    # Snapshot/fork support (see repro.sim.snapshot)
    # ------------------------------------------------------------------

    def snapshot_state(self, ctx, describe_owner) -> dict:
        """Capture plain-data CPU state; claims the completion event.

        ``describe_owner(execution)`` is supplied by the layer that
        created the execution (the hypervisor): it returns a plain-data
        spec of the execution's owner — or raises if the execution is
        not reconstructible — because owner semantics live above the
        CPU model.
        """
        current = None
        if self._current is not None:
            execution = self._current
            completion = None
            if self._completion is not None:
                completion = ctx.claim(self._completion)
            current = {
                "label": execution.label,
                "category": execution.category,
                "remaining": execution.remaining,
                "executed": execution.executed,
                "owner": describe_owner(execution),
                "started_at": self._started_at,
                "completion": completion,
            }
        return {
            "current": current,
            "consumed": dict(self._consumed_by_category),
            "preemptions": self._preemptions,
            "segments": (None if self.segments is None else
                         [(s.start, s.end, s.category, s.label)
                          for s in self.segments]),
        }

    def restore_state(self, state: dict, resolve_owner) -> None:
        """Rebuild CPU state on a fresh CPU bound to a restored engine.

        ``resolve_owner(spec)`` inverts ``describe_owner``: it returns
        ``(owner, on_complete)`` for the plain-data owner spec.
        """
        self._consumed_by_category = dict(state["consumed"])
        self._preemptions = state["preemptions"]
        if state["segments"] is not None:
            self.segments = [CpuSegment(*entry) for entry in state["segments"]]
        current = state["current"]
        if current is not None:
            owner, on_complete = resolve_owner(current["owner"])
            execution = Execution(current["label"], current["remaining"],
                                  on_complete, current["category"], owner)
            execution.executed = current["executed"]
            self._current = execution
            self._started_at = current["started_at"]
            if current["completion"] is not None:
                time, seq = current["completion"]
                self._completion = self._engine.restore_event(
                    time, seq, self._complete,
                    label=f"complete-{execution.label}",
                )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _charge(self, execution: Execution) -> None:
        elapsed = self._engine.now - self._started_at
        if elapsed == 0:
            return
        execution.executed += elapsed
        if execution.remaining is not None:
            if elapsed > execution.remaining:
                raise RuntimeError(
                    f"{execution.label} charged {elapsed} cycles with only "
                    f"{execution.remaining} remaining (engine bug)"
                )
            execution.remaining -= elapsed
        self._bump(execution.category, elapsed)
        if self.segments is not None:
            self.segments.append(CpuSegment(
                self._started_at, self._engine.now,
                execution.category, execution.label,
            ))
        self._started_at = self._engine.now

    def _bump(self, category: str, cycles: int) -> None:
        self._consumed_by_category[category] = (
            self._consumed_by_category.get(category, 0) + cycles
        )

    def _complete(self) -> None:
        execution = self._current
        assert execution is not None, "completion fired on idle CPU"
        self._charge(execution)
        assert execution.remaining == 0, "completion fired early"
        self._current = None
        self._completion = None
        if execution.on_complete is not None:
            execution.on_complete()

    def __repr__(self) -> str:
        running = self._current.label if self._current else "idle"
        return f"Cpu(running={running})"
