"""Array-calendar queue backend: columnar event storage.

The third pluggable queue backend (see :mod:`repro.sim.queue`).  Where
``heap`` and ``bucket`` store one tuple per pending event, this backend
stores events as *rows across parallel columns* indexed by an integer
slot:

* ``_time_col`` / ``_seq_col`` — integer columns (plain lists on the
  hot path; :meth:`ArrayQueueEngine.column_data` exports compact
  ``array('q')`` copies),
* ``_flags`` — the cancelled column, a ``bytearray`` so numpy can scan
  it zero-copy,
* ``_cbs`` / ``_handles`` — the callback and handle columns.

Slots are recycled through a freelist, so steady-state scheduling
allocates no queue storage: a fired event's slot is pushed onto
``_free`` and the next ``schedule`` overwrites its columns in place.
The calendar index is the same ``time -> entries`` dict + distinct-time
heap the bucket backend uses, but entries are bare slot integers (no
per-event tuples).

Per-call ``schedule`` still returns a fully classic, individually
cancellable handle (:class:`ArrayEventHandle`), so the per-event path
is roughly at parity with the bucket backend — CPython attribute-store
costs put a hard floor under any design that must hand out a live
handle per event.  The columnar payoff is the **volley path**:
:meth:`ArrayQueueEngine.schedule_batch` inserts a dense same-cycle
volley as one contiguous column block filled with C-level slice
assignment, covered by a single :class:`ArrayBatchHandle`, and the
monomorphic ``run()``/``run_until()`` loops dispatch the block straight
off the callback column — no per-event handle objects, tuples, or
attribute stores at all.  That is the dispatch-dominated fig6 low-load
regime (dense timer storms), where this backend clears the >=1.8x
events/s gate over ``bucket`` (see
``repro.sim.benchmark.measure_backend_ab``).

Optional numpy acceleration: compaction locates dead rows with a
vectorized ``flatnonzero`` scan over the cancelled column and selects
the affected calendar buckets through the time column, instead of
walking every stored entry in the interpreter.  When numpy is absent
everything degrades to the pure-python walk — behaviour is identical,
only compaction cost changes.

Ordering is byte-identical to the other backends — same ``(time,
seq)`` FIFO order, same counters, same snapshot digests — pinned by
``tests/test_queue_backends.py``.
"""

from __future__ import annotations

from array import array
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Optional

from repro.sim.engine import (COMPACTION_FLOOR, SimulationEngine,
                              SimulationError)
from repro.sim.events import EventHandle

try:  # pragma: no cover - exercised via the numpy-absent test matrix
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: Minimum column capacity before the numpy compaction scan is worth
#: the view setup; below this the python walk wins outright.
NUMPY_COMPACT_MIN = 1024


class ArrayEventHandle(EventHandle):
    """Classic event handle wired to the cancelled column.

    Carries the slot of its column row so :meth:`cancel` can flag the
    row dead without the dispatch loop ever loading the handle for
    dead entries.  State semantics (``pending``/``fired``/
    ``cancelled``) are exactly :class:`EventHandle`'s — the handle owns
    its lifecycle bits, so slot recycling never aliases a held handle.
    """

    __slots__ = ("_slot",)

    def cancel(self) -> None:
        """Cancel the event.  Cancelling an already-fired event is a no-op."""
        if self._cancelled or self._fired:
            return
        self._cancelled = True
        engine = self._engine
        if engine is not None:
            slot = self._slot
            if slot >= 0:
                engine._flags[slot] = 1
            engine._event_cancelled()


class ArrayBatchHandle:
    """Block-backed flavour of :class:`repro.sim.events.BatchHandle`.

    One object covers a whole contiguous column block; the volley
    cancels as a unit.  Public surface matches the generic fallback
    wrapper (``time``/``label``/``count``/``cancel()``/``pending``/
    ``fired``/``cancelled``), and the observable state transitions are
    equivalent: ``fired`` only once every volley event executed,
    ``cancelled`` once a cancel reached at least one unfired event.
    """

    __slots__ = ("time", "label", "count", "_engine", "_start",
                 "_remaining", "_cancelled", "_fired", "_draining",
                 "_released")

    def cancel(self) -> None:
        """Cancel every volley event that has not fired yet."""
        if self._cancelled or self._fired:
            return
        self._cancelled = True
        if self._draining:
            # The dispatch loop is inside this very block; it sees the
            # flag after the in-flight callback returns and settles the
            # accounting for the undispatched remainder itself.
            return
        engine = self._engine
        remaining = self._remaining
        if engine is not None and remaining:
            engine._batch_cancelled(self, remaining)

    @property
    def pending(self) -> bool:
        """True while at least one volley event is still waiting."""
        return not self._cancelled and not self._fired

    @property
    def cancelled(self) -> bool:
        """True if :meth:`cancel` reached at least one unfired event."""
        return self._cancelled

    @property
    def fired(self) -> bool:
        """True once every volley event has executed."""
        return self._fired

    def __repr__(self) -> str:
        state = ("cancelled" if self._cancelled
                 else ("fired" if self._fired else "pending"))
        return (f"ArrayBatchHandle(t={self.time}, count={self.count}, "
                f"{self.label or 'batch'}, {state})")


def _new_batch_handle(engine, time: int, label: Optional[str], count: int,
                      start: int) -> ArrayBatchHandle:
    handle = ArrayBatchHandle.__new__(ArrayBatchHandle)
    handle.time = time
    handle.label = label
    handle.count = count
    handle._engine = engine
    handle._start = start
    handle._remaining = count
    handle._cancelled = False
    handle._fired = False
    handle._draining = False
    handle._released = False
    return handle


class ArrayQueueEngine(SimulationEngine):
    """Columnar calendar-queue engine with an allocation-free volley path.

    Calendar entries are either a bare slot integer (one per-call
    event) or a ``(start, count, batch_handle)`` block covering a
    contiguous column range (one same-cycle volley); a bucket value is
    a single entry or a list of them, exactly like the bucket
    backend's tuple-or-list scheme.
    """

    backend_name = "array"

    __slots__ = ("_time_col", "_seq_col", "_flags", "_cbs", "_handles",
                 "_free", "_free_blocks", "_buckets", "_times",
                 "_dirty_times", "_dead_hint", "_dead_blocks")

    def __init__(self, backend: Optional[str] = None,
                 idle_skip: Optional[bool] = None):
        super().__init__(idle_skip=idle_skip)
        self._time_col: list[int] = []
        self._seq_col: list[int] = []
        self._flags = bytearray()
        self._cbs: list = []
        self._handles: list = []
        self._free: list[int] = []
        # Contiguous volley blocks recycle as whole ranges, keyed by
        # capacity; compaction folds unused blocks back into _free.
        self._free_blocks: dict[int, list[int]] = {}
        self._buckets: dict = {}
        self._times: list[int] = []
        self._dirty_times: set[int] = set()
        self._dead_hint = 0
        # (time, handle) of blocks cancelled before dispatch, so the
        # numpy compaction path can find their buckets without a full
        # walk (block rows never set the cancelled column).
        self._dead_blocks: list = []

    # -- scheduling (hot) ----------------------------------------------

    def schedule(self, delay: int, callback: Callable[[], Any],
                 label: Optional[str] = None, *,
                 _push=heappush, _new=ArrayEventHandle.__new__,
                 _cls=ArrayEventHandle) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(
                f"cannot schedule an event in the past (delay={delay})")
        time = self._now + delay
        seq = self._seq
        self._seq = seq + 1
        handle = _new(_cls)
        handle.time = time
        handle.seq = seq
        handle.callback = callback
        handle.label = label
        handle._cancelled = False
        handle._fired = False
        handle._engine = self
        free = self._free
        if free:
            slot = free.pop()
            self._time_col[slot] = time
            self._seq_col[slot] = seq
            self._cbs[slot] = callback
            self._handles[slot] = handle
        else:
            slot = len(self._cbs)
            self._time_col.append(time)
            self._seq_col.append(seq)
            self._flags.append(0)
            self._cbs.append(callback)
            self._handles.append(handle)
        handle._slot = slot
        self._pending += 1
        buckets = self._buckets
        bucket = buckets.get(time)
        if bucket is None:
            buckets[time] = slot
            _push(self._times, time)
        elif type(bucket) is list:
            bucket.append(slot)
        else:
            buckets[time] = [bucket, slot]
        return handle

    def schedule_at(self, time: int, callback: Callable[[], Any],
                    label: Optional[str] = None, *,
                    _push=heappush, _new=ArrayEventHandle.__new__,
                    _cls=ArrayEventHandle) -> EventHandle:
        """Schedule ``callback`` to run at absolute time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event in the past (t={time}, now={self._now})"
            )
        seq = self._seq
        self._seq = seq + 1
        handle = _new(_cls)
        handle.time = time
        handle.seq = seq
        handle.callback = callback
        handle.label = label
        handle._cancelled = False
        handle._fired = False
        handle._engine = self
        free = self._free
        if free:
            slot = free.pop()
            self._time_col[slot] = time
            self._seq_col[slot] = seq
            self._cbs[slot] = callback
            self._handles[slot] = handle
        else:
            slot = len(self._cbs)
            self._time_col.append(time)
            self._seq_col.append(seq)
            self._flags.append(0)
            self._cbs.append(callback)
            self._handles.append(handle)
        handle._slot = slot
        self._pending += 1
        buckets = self._buckets
        bucket = buckets.get(time)
        if bucket is None:
            buckets[time] = slot
            _push(self._times, time)
        elif type(bucket) is list:
            bucket.append(slot)
        else:
            buckets[time] = [bucket, slot]
        return handle

    def schedule_batch(self, delay: int, callbacks,
                       label: Optional[str] = None, *,
                       _push=heappush):
        """Insert a same-cycle volley as one contiguous column block.

        Sequence numbers are consecutive in list order — byte-identical
        FIFO placement to the generic per-call fallback — but storage
        is filled with C-level slice assignment and the whole volley is
        covered by a single :class:`ArrayBatchHandle`, so steady-state
        volleys neither allocate per-event objects nor store per-event
        attributes.  Volleys of fewer than two callbacks take the
        generic path (identical observable semantics, nothing to
        amortize).
        """
        callbacks = list(callbacks)
        count = len(callbacks)
        if count < 2:
            return SimulationEngine.schedule_batch(self, delay, callbacks,
                                                   label)
        if delay < 0:
            raise SimulationError(
                f"cannot schedule an event in the past (delay={delay})")
        time = self._now + delay
        seq = self._seq
        self._seq = seq + count
        cbs = self._cbs
        starts = self._free_blocks.get(count)
        if starts:
            start = starts.pop()
            end = start + count
            cbs[start:end] = callbacks
            self._seq_col[start:end] = range(seq, seq + count)
            self._time_col[start:end] = [time] * count
            # Block rows never set the cancelled column (the batch
            # handle carries liveness), so flags stay zero by invariant
            # and need no reset here.
        else:
            start = len(cbs)
            cbs.extend(callbacks)
            self._seq_col.extend(range(seq, seq + count))
            self._time_col.extend([time] * count)
            self._flags.extend(bytes(count))
            self._handles.extend([None] * count)
        handle = _new_batch_handle(self, time, label, count, start)
        self._pending += count
        entry = (start, count, handle)
        buckets = self._buckets
        bucket = buckets.get(time)
        if bucket is None:
            buckets[time] = entry
            _push(self._times, time)
        elif type(bucket) is list:
            bucket.append(entry)
        else:
            buckets[time] = [bucket, entry]
        return handle

    def _make_handle(self, time: int, seq: int, callback: Callable[[], Any],
                     label: Optional[str]) -> EventHandle:
        # Cold out-of-band paths (stop sentinels, snapshot restore)
        # must also hand out column-wired handles, or their cancels
        # would never reach the cancelled column.
        handle = ArrayEventHandle(time, seq, callback, label, self)
        handle._slot = -1
        return handle

    def _insert_entry(self, time: int, seq: int, callback: Callable[[], Any],
                      handle: EventHandle) -> None:
        # Cold path: sentinel/restored seqs arrive out of order, so the
        # bucket is flagged for a one-time sort before it drains.
        free = self._free
        if free:
            slot = free.pop()
            self._time_col[slot] = time
            self._seq_col[slot] = seq
            self._cbs[slot] = callback
            self._handles[slot] = handle
        else:
            slot = len(self._cbs)
            self._time_col.append(time)
            self._seq_col.append(seq)
            self._flags.append(0)
            self._cbs.append(callback)
            self._handles.append(handle)
        handle._slot = slot
        buckets = self._buckets
        bucket = buckets.get(time)
        if bucket is None:
            buckets[time] = slot
            heappush(self._times, time)
            return
        if self._running and time == self._now:
            # Same conservative refusal as the bucket backend: the
            # bucket at the current timestamp may be mid-drain and a
            # sort could not reorder its not-yet-dispatched tail.
            raise SimulationError(
                f"cannot insert an out-of-band event into the currently "
                f"dispatching timestamp (t={time})"
            )
        if type(bucket) is list:
            bucket.append(slot)
        else:
            buckets[time] = [bucket, slot]
        self._dirty_times.add(time)

    def _entry_seq(self, entry) -> int:
        """Sort key for dirty buckets: an entry's first sequence number."""
        if type(entry) is int:
            return self._seq_col[entry]
        return self._seq_col[entry[0]]

    # -- cancellation / compaction -------------------------------------

    def _event_cancelled(self) -> None:
        pending = self._pending - 1
        self._pending = pending
        self._cancelled_count += 1
        dead = self._dead_hint + 1
        self._dead_hint = dead
        if dead > COMPACTION_FLOOR and dead > pending:
            self._compact()

    def _batch_cancelled(self, handle: ArrayBatchHandle,
                         remaining: int) -> None:
        """Account a volley cancelled before (or between) dispatches."""
        pending = self._pending - remaining
        self._pending = pending
        self._cancelled_count += remaining
        dead = self._dead_hint + remaining
        self._dead_hint = dead
        self._dead_blocks.append((handle.time, handle))
        if dead > COMPACTION_FLOOR and dead > pending:
            self._compact()

    def _release_block(self, handle: ArrayBatchHandle) -> None:
        """Recycle a block's column range (idempotent)."""
        if handle._released:
            return
        handle._released = True
        self._free_blocks.setdefault(handle.count, []).append(handle._start)

    def _purge_entry(self, entry) -> bool:
        """Free a dead entry's storage; True when the entry was dead."""
        if type(entry) is int:
            if self._flags[entry]:
                self._flags[entry] = 0
                self._cbs[entry] = None
                self._handles[entry] = None
                self._free.append(entry)
                return True
            return False
        handle = entry[2]
        if handle._cancelled:
            self._release_block(handle)
            return True
        return False

    def _compact(self) -> None:
        """Drop dead rows and fold idle blocks back into the freelist.

        With numpy, dead per-call rows are located by a vectorized
        ``flatnonzero`` scan over the cancelled column and only the
        calendar buckets their time column points at are visited —
        O(dead + affected buckets) interpreter work instead of a walk
        over every stored entry.  The pure-python fallback walks all
        buckets, exactly like the bucket backend.  The bucket at the
        current timestamp is skipped while running (its drain index is
        a loop local); its dead entries keep their flags and are caught
        by the drain itself or the next compaction.
        """
        buckets = self._buckets
        draining = self._now if self._running else None
        if _np is not None and len(self._flags) >= NUMPY_COMPACT_MIN:
            # bytes() snapshots the column so the ndarray never holds a
            # buffer export over the live (resizable) bytearray.
            dead_slots = _np.flatnonzero(
                _np.frombuffer(bytes(self._flags), dtype=_np.uint8)).tolist()
            time_col = self._time_col
            affected = {time_col[slot] for slot in dead_slots}
            affected.update(t for t, _handle in self._dead_blocks)
            candidates = [t for t in affected
                          if t != draining and t in buckets]
        else:
            candidates = [t for t in buckets if t != draining]
        for t in candidates:
            bucket = buckets[t]
            if type(bucket) is not list:
                if self._purge_entry(bucket):
                    del buckets[t]
                continue
            bucket[:] = [entry for entry in bucket
                         if not self._purge_entry(entry)]
            if not bucket:
                del buckets[t]
        self._dead_blocks.clear()
        # Memory hygiene: free rows keep no references to dead
        # callbacks/handles across the (rare) compactions.
        cbs = self._cbs
        handles = self._handles
        for slot in self._free:
            cbs[slot] = None
            handles[slot] = None
        # Idle volley blocks become ordinary free slots, so capacity is
        # shared across volley widths and per-call load.
        for count, starts in self._free_blocks.items():
            for start in starts:
                end = start + count
                cbs[start:end] = [None] * count
                handles[start:end] = [None] * count
                self._free.extend(range(start, end))
        self._free_blocks.clear()
        times = self._times
        times[:] = list(buckets)
        heapify(times)
        self._dirty_times.intersection_update(buckets)
        self._dead_hint = 0
        self._compactions += 1

    # -- dispatch (hot) ------------------------------------------------

    def run(self, max_events: Optional[int] = None, *,
            _pop=heappop, _push=heappush) -> int:
        """Run until the event queue is empty (or ``max_events`` fired).

        Returns the number of events executed by this call.
        """
        executed = 0
        self._running = True
        self._stop_requested = False
        times = self._times
        buckets = self._buckets
        get = buckets.get
        dirty = self._dirty_times
        flags = self._flags
        cbs = self._cbs
        handles = self._handles
        free_append = self._free.append
        now = self._now
        batches = 0
        bounded = max_events is not None
        self._skip_allowed = not bounded
        self._run_bound = None
        try:
            while times:
                if bounded and executed == max_events:
                    break
                t = _pop(times)
                bucket = get(t)
                if bucket is None:
                    continue        # stale duplicate timestamp
                kind = type(bucket)
                if kind is int:
                    # Singleton fast path (mirrors the bucket backend:
                    # the dict entry is removed *before* the callback).
                    slot = bucket
                    del buckets[t]
                    if flags[slot]:
                        flags[slot] = 0
                        free_append(slot)
                        continue
                    if t != now:
                        self._now = now = t
                        batches += 1
                    handle = handles[slot]
                    callback = cbs[slot]
                    free_append(slot)
                    handle._fired = True
                    executed += 1
                    callback()
                    if self._stop_requested:
                        break
                    continue
                if kind is not list:
                    # Lone volley block: promote to a live list so
                    # same-cycle follow-ups appended by its callbacks
                    # drain in this very batch, exactly like the
                    # fallback path's k-entry list bucket.
                    bucket = [bucket]
                    buckets[t] = bucket
                if dirty and t in dirty:
                    bucket.sort(key=self._entry_seq)
                    dirty.discard(t)
                # Skip (and free) leading dead entries before touching
                # the clock: an all-cancelled bucket must not advance
                # time.
                i = 0
                n = len(bucket)
                while i < n:
                    entry = bucket[i]
                    if type(entry) is int:
                        if not flags[entry]:
                            break
                        flags[entry] = 0
                        free_append(entry)
                    elif not entry[2]._cancelled:
                        break
                    else:
                        self._release_block(entry[2])
                    i += 1
                if i == n:
                    del buckets[t]
                    continue
                if t != now:
                    self._now = now = t
                    batches += 1
                # The bucket's timestamp is already popped off the
                # times heap, so its co-timestamped tail is invisible
                # to _next_pending: close the skip window for the
                # duration of the batch drain.
                self._in_batch = True
                while i < n:
                    entry = bucket[i]
                    i += 1
                    if type(entry) is int:
                        slot = entry
                        if flags[slot]:
                            flags[slot] = 0
                            free_append(slot)
                            if i == n:
                                n = len(bucket)   # callbacks may append
                            continue
                        handle = handles[slot]
                        callback = cbs[slot]
                        free_append(slot)
                        handle._fired = True
                        executed += 1
                        callback()
                        if (self._stop_requested
                                or (bounded and executed == max_events)):
                            break
                        if i == n:
                            n = len(bucket)
                        continue
                    start, count, bh = entry
                    if bh._cancelled:
                        self._release_block(bh)
                        if i == n:
                            n = len(bucket)
                        continue
                    # Volley block: dispatch straight off the callback
                    # column — no per-event objects or attribute stores.
                    j = start
                    end = start + count
                    bh._draining = True
                    while j < end:
                        callback = cbs[j]
                        j += 1
                        executed += 1
                        callback()
                        if (self._stop_requested or bh._cancelled
                                or (bounded and executed == max_events)):
                            break
                    bh._draining = False
                    if bh._cancelled:
                        remaining = end - j
                        if remaining:
                            # A volley callback cancelled its own
                            # block; the undispatched remainder is
                            # settled here (cancel() deferred to us).
                            self._pending -= remaining
                            self._cancelled_count += remaining
                        self._release_block(bh)
                    elif j < end:
                        # Suspended mid-block: keep the undispatched
                        # tail as a fragment at this entry's position.
                        bh._remaining = end - j
                        i -= 1
                        bucket[i] = (j, end - j, bh)
                        break
                    else:
                        bh._remaining = 0
                        bh._fired = True
                        self._release_block(bh)
                    if (self._stop_requested
                            or (bounded and executed == max_events)):
                        break
                    if i == n:
                        n = len(bucket)
                self._in_batch = False
                if i < len(bucket):
                    # Suspended mid-bucket: keep the undispatched tail
                    # and requeue the timestamp.
                    del bucket[:i]
                    _push(times, t)
                else:
                    del buckets[t]
                if self._stop_requested:
                    break
        finally:
            self._running = False
            self._skip_allowed = False
            self._in_batch = False
            self._events_executed += executed
            self._pending -= executed
            self._dispatch_batches += batches
        return executed

    def run_until(self, time: int, *, _pop=heappop, _push=heappush) -> int:
        """Run all events with timestamps <= ``time``; advance clock to ``time``.

        Returns the number of events executed by this call.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot run backwards (t={time}, now={self._now})")
        executed = 0
        self._running = True
        self._stop_requested = False
        times = self._times
        buckets = self._buckets
        get = buckets.get
        dirty = self._dirty_times
        flags = self._flags
        cbs = self._cbs
        handles = self._handles
        free_append = self._free.append
        now = self._now
        batches = 0
        self._skip_allowed = True
        self._run_bound = time
        try:
            while times:
                t = times[0]
                if t > time:
                    break
                _pop(times)
                bucket = get(t)
                if bucket is None:
                    continue
                kind = type(bucket)
                if kind is int:
                    slot = bucket
                    del buckets[t]
                    if flags[slot]:
                        flags[slot] = 0
                        free_append(slot)
                        continue
                    if t != now:
                        self._now = now = t
                        batches += 1
                    handle = handles[slot]
                    callback = cbs[slot]
                    free_append(slot)
                    handle._fired = True
                    executed += 1
                    callback()
                    if self._stop_requested:
                        break
                    continue
                if kind is not list:
                    bucket = [bucket]
                    buckets[t] = bucket
                if dirty and t in dirty:
                    bucket.sort(key=self._entry_seq)
                    dirty.discard(t)
                i = 0
                n = len(bucket)
                while i < n:
                    entry = bucket[i]
                    if type(entry) is int:
                        if not flags[entry]:
                            break
                        flags[entry] = 0
                        free_append(entry)
                    elif not entry[2]._cancelled:
                        break
                    else:
                        self._release_block(entry[2])
                    i += 1
                if i == n:
                    del buckets[t]
                    continue
                if t != now:
                    self._now = now = t
                    batches += 1
                self._in_batch = True
                while i < n:
                    entry = bucket[i]
                    i += 1
                    if type(entry) is int:
                        slot = entry
                        if flags[slot]:
                            flags[slot] = 0
                            free_append(slot)
                            if i == n:
                                n = len(bucket)
                            continue
                        handle = handles[slot]
                        callback = cbs[slot]
                        free_append(slot)
                        handle._fired = True
                        executed += 1
                        callback()
                        if self._stop_requested:
                            break
                        if i == n:
                            n = len(bucket)
                        continue
                    start, count, bh = entry
                    if bh._cancelled:
                        self._release_block(bh)
                        if i == n:
                            n = len(bucket)
                        continue
                    j = start
                    end = start + count
                    bh._draining = True
                    while j < end:
                        callback = cbs[j]
                        j += 1
                        executed += 1
                        callback()
                        if self._stop_requested or bh._cancelled:
                            break
                    bh._draining = False
                    if bh._cancelled:
                        remaining = end - j
                        if remaining:
                            self._pending -= remaining
                            self._cancelled_count += remaining
                        self._release_block(bh)
                    elif j < end:
                        bh._remaining = end - j
                        i -= 1
                        bucket[i] = (j, end - j, bh)
                        break
                    else:
                        bh._remaining = 0
                        bh._fired = True
                        self._release_block(bh)
                    if self._stop_requested:
                        break
                    if i == n:
                        n = len(bucket)
                self._in_batch = False
                if i < len(bucket):
                    del bucket[:i]
                    _push(times, t)
                else:
                    del buckets[t]
                if self._stop_requested:
                    break
        finally:
            self._running = False
            self._skip_allowed = False
            self._in_batch = False
            self._events_executed += executed
            self._pending -= executed
            self._dispatch_batches += batches
        if not self._stop_requested:
            self._now = max(self._now, time)
        return executed

    def step(self) -> bool:
        """Execute the next pending event.

        Returns True if an event was executed, False if the queue was
        exhausted (only cancelled or no events remained).
        """
        times = self._times
        buckets = self._buckets
        dirty = self._dirty_times
        flags = self._flags
        while times:
            t = times[0]
            bucket = buckets.get(t)
            if bucket is None:
                heappop(times)
                continue
            kind = type(bucket)
            if kind is int:
                heappop(times)
                del buckets[t]
                slot = bucket
                if flags[slot]:
                    flags[slot] = 0
                    self._free.append(slot)
                    continue
                return self._step_fire(t, self._handles[slot],
                                       self._cbs[slot], slot)
            if kind is not list:
                start, count, bh = bucket
                if bh._cancelled:
                    heappop(times)
                    del buckets[t]
                    self._release_block(bh)
                    continue
                if count == 1:
                    heappop(times)
                    del buckets[t]
                else:
                    buckets[t] = (start + 1, count - 1, bh)
                    bh._remaining = count - 1
                return self._step_fire_block(t, bh, start, count)
            if t in dirty:
                bucket.sort(key=self._entry_seq)
                dirty.discard(t)
            entry = bucket[0]
            if type(entry) is int:
                del bucket[0]
                if not bucket:
                    heappop(times)
                    del buckets[t]
                slot = entry
                if flags[slot]:
                    flags[slot] = 0
                    self._free.append(slot)
                    continue
                return self._step_fire(t, self._handles[slot],
                                       self._cbs[slot], slot)
            start, count, bh = entry
            if bh._cancelled:
                del bucket[0]
                if not bucket:
                    heappop(times)
                    del buckets[t]
                self._release_block(bh)
                continue
            if count == 1:
                del bucket[0]
                if not bucket:
                    heappop(times)
                    del buckets[t]
            else:
                bucket[0] = (start + 1, count - 1, bh)
                bh._remaining = count - 1
            return self._step_fire_block(t, bh, start, count)
        return False

    def _step_fire(self, t: int, handle, callback, slot: int) -> bool:
        self._free.append(slot)
        if t != self._now:
            self._now = t
            self._dispatch_batches += 1
        handle._fired = True
        self._pending -= 1
        self._events_executed += 1
        callback()
        return True

    def _step_fire_block(self, t: int, bh, start: int, count: int) -> bool:
        callback = self._cbs[start]
        if count == 1:
            bh._remaining = 0
            bh._fired = True
            self._release_block(bh)
        if t != self._now:
            self._now = t
            self._dispatch_batches += 1
        self._pending -= 1
        self._events_executed += 1
        callback()
        return True

    # -- introspection -------------------------------------------------

    @property
    def heap_depth(self) -> int:
        depth = 0
        for bucket in self._buckets.values():
            kind = type(bucket)
            if kind is int:
                depth += 1
            elif kind is not list:
                depth += bucket[1]
            else:
                for entry in bucket:
                    depth += 1 if type(entry) is int else entry[1]
        return depth

    @property
    def numpy_accelerated(self) -> bool:
        """Whether the numpy compaction-scan path is active."""
        return _np is not None

    def column_data(self) -> dict:
        """Compact ``array('q')``/bytes copies of the columns.

        Diagnostic export (full column capacity, including recycled
        rows): the integer columns as typed arrays, the cancelled
        column as bytes, plus capacity/freelist occupancy.
        """
        free_slots = len(self._free)
        block_slots = sum(count * len(starts) for count, starts
                          in self._free_blocks.items())
        return {
            "time": array("q", self._time_col),
            "seq": array("q", self._seq_col),
            "cancelled": bytes(self._flags),
            "capacity": len(self._cbs),
            "free_slots": free_slots + block_slots,
        }

    def _next_pending(self) -> Optional[EventHandle]:
        times = self._times
        buckets = self._buckets
        dirty = self._dirty_times
        flags = self._flags
        while times:
            t = times[0]
            bucket = buckets.get(t)
            if bucket is None:
                heappop(times)
                continue
            kind = type(bucket)
            if kind is int:
                if flags[bucket]:
                    heappop(times)
                    del buckets[t]
                    flags[bucket] = 0
                    self._free.append(bucket)
                    continue
                return self._handles[bucket]
            if kind is not list:
                bh = bucket[2]
                if bh._cancelled:
                    heappop(times)
                    del buckets[t]
                    self._release_block(bh)
                    continue
                return bh
            if t in dirty:
                bucket.sort(key=self._entry_seq)
                dirty.discard(t)
            while bucket:
                entry = bucket[0]
                if type(entry) is int:
                    if flags[entry]:
                        flags[entry] = 0
                        self._free.append(entry)
                        del bucket[0]
                        continue
                    return self._handles[entry]
                bh = entry[2]
                if bh._cancelled:
                    self._release_block(bh)
                    del bucket[0]
                    continue
                return bh
            heappop(times)
            del buckets[t]
        return None

    def live_entries(self) -> list[tuple[int, int, EventHandle]]:
        entries = []
        flags = self._flags
        seq_col = self._seq_col
        handles = self._handles
        for t, bucket in self._buckets.items():
            if type(bucket) is not list:
                bucket = (bucket,)
            for entry in bucket:
                if type(entry) is int:
                    if not flags[entry]:
                        entries.append((t, seq_col[entry], handles[entry]))
                else:
                    start, count, bh = entry
                    if not bh._cancelled:
                        entries.extend((t, seq_col[j], bh)
                                       for j in range(start, start + count))
        # (time, seq) pairs are unique, so plain tuple sort never
        # reaches the (uncomparable-in-general) handle element.
        entries.sort()
        return entries
