"""Programmable timer devices.

The paper's evaluation (Section 6.1) drives IRQ load with one of the
processor's timers, re-programmed from within the IRQ top handler using
a pre-generated array of interarrival times.  A second free-running
timer provides timestamps for latency measurement.  Both devices are
modelled here.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.sim.engine import SimulationEngine
from repro.sim.events import EventHandle
from repro.sim.intc import InterruptController


class OneShotTimer:
    """A one-shot down-counting timer raising an IRQ line on expiry.

    Mirrors the re-arm-from-top-handler protocol of the paper: the
    handler calls :meth:`program` with the next interarrival time.
    """

    def __init__(self, engine: SimulationEngine, intc: InterruptController,
                 line: int, name: str = "timer"):
        self._engine = engine
        self._intc = intc
        self._line = line
        self.name = name
        self._handle: Optional[EventHandle] = None
        self._expirations = 0
        self._epoch = 0

    @property
    def line(self) -> int:
        return self._line

    @property
    def snapshot_epoch(self) -> int:
        """Change counter bumped by every timer mutation.

        Lets the layered world store (:mod:`repro.sim.worldstore`) skip
        re-serializing the device (and, for interval timers, its whole
        interarrival array) when the timer was not re-programmed since
        the previous capture.
        """
        return self._epoch

    @property
    def expirations(self) -> int:
        """Number of times the timer has expired."""
        return self._expirations

    @property
    def armed(self) -> bool:
        return self._handle is not None and self._handle.pending

    def program(self, delay_cycles: int) -> None:
        """Arm the timer to fire ``delay_cycles`` from now.

        Reprogramming an armed timer replaces the previous deadline.
        """
        if delay_cycles < 0:
            raise ValueError(f"timer delay must be >= 0, got {delay_cycles}")
        self.cancel()
        self._handle = self._engine.schedule(delay_cycles, self._expire,
                                             label=f"{self.name}-expiry")
        self._epoch += 1

    def cancel(self) -> None:
        """Disarm the timer if armed."""
        if self._handle is not None and self._handle.pending:
            self._handle.cancel()
        self._handle = None
        self._epoch += 1

    def _expire(self) -> None:
        self._handle = None
        self._expirations += 1
        self._epoch += 1
        self._intc.raise_line(self._line)

    def on_irq_top(self, event) -> None:
        """Top-handler hook: no-op for a plain one-shot timer.

        Exists as a *bound method* (rather than an ad-hoc lambda at
        the wiring site) so world snapshots can record the hook as
        ``(device, method-name)`` and re-bind it on restore — closures
        over the old world cannot be serialized.
        """

    def snapshot_state(self, ctx) -> dict:
        """Capture plain-data timer state; claims the armed heap entry."""
        armed = None
        if self._handle is not None and self._handle.pending:
            armed = ctx.claim(self._handle)
        return {
            "line": self._line,
            "name": self.name,
            "expirations": self._expirations,
            "armed": armed,
        }

    @classmethod
    def restore_from_snapshot(cls, state: dict, engine: SimulationEngine,
                              intc: InterruptController) -> "OneShotTimer":
        timer = cls(engine, intc, state["line"], name=state["name"])
        timer._apply_snapshot(state)
        return timer

    def _apply_snapshot(self, state: dict) -> None:
        self._expirations = state["expirations"]
        self._epoch += 1
        if state["armed"] is not None:
            time, seq = state["armed"]
            self._handle = self._engine.restore_event(
                time, seq, self._expire, label=f"{self.name}-expiry"
            )


class IntervalSequenceTimer(OneShotTimer):
    """A one-shot timer fed from a pre-generated interarrival sequence.

    Calling :meth:`arm_next` programs the timer with the next value of
    the sequence; once the sequence is exhausted the timer stays
    disarmed.  This is exactly the experiment protocol of Section 6.1
    (interarrival arrays generated before the run to keep generation
    cost out of the top handler).
    """

    def __init__(self, engine: SimulationEngine, intc: InterruptController,
                 line: int, intervals: Sequence[int], name: str = "irq-gen"):
        super().__init__(engine, intc, line, name)
        self._intervals = list(intervals)
        self._index = 0
        for value in self._intervals:
            if value < 0:
                raise ValueError("interarrival times must be >= 0")

    @property
    def remaining(self) -> int:
        """Number of unconsumed interarrival values."""
        return len(self._intervals) - self._index

    @property
    def exhausted(self) -> bool:
        return self._index >= len(self._intervals)

    @property
    def interval_count(self) -> int:
        """Total length of the interarrival sequence (consumed or not)."""
        return len(self._intervals)

    def arm_next(self) -> bool:
        """Program the timer with the next interarrival value.

        Returns True if the timer was armed, False if the sequence is
        exhausted.
        """
        if self.exhausted:
            return False
        self.program(self._intervals[self._index])
        self._index += 1
        return True

    def on_irq_top(self, event) -> None:
        """Top-handler hook: re-arm with the next interarrival value.

        This is the Section 6.1 measurement protocol (the timer is
        re-programmed from within each top handler); a bound method so
        world snapshots can re-bind it on restore.
        """
        self.arm_next()

    def snapshot_state(self, ctx) -> dict:
        state = super().snapshot_state(ctx)
        state["intervals"] = list(self._intervals)
        state["index"] = self._index
        return state

    @classmethod
    def restore_from_snapshot(cls, state: dict, engine: SimulationEngine,
                              intc: InterruptController) -> "IntervalSequenceTimer":
        timer = cls(engine, intc, state["line"], state["intervals"],
                    name=state["name"])
        timer._index = state["index"]
        timer._apply_snapshot(state)
        return timer


class TimestampTimer:
    """Free-running up-counter used for latency timestamps.

    In the simulation the engine clock *is* the free-running counter,
    so reading the timer is just reading the current time.  The class
    exists to keep the measurement protocol of the paper explicit in
    experiment code.
    """

    def __init__(self, engine: SimulationEngine):
        self._engine = engine

    def read(self) -> int:
        """Current counter value (cycles since simulation start)."""
        return self._engine.now
