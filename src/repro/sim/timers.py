"""Programmable timer devices.

The paper's evaluation (Section 6.1) drives IRQ load with one of the
processor's timers, re-programmed from within the IRQ top handler using
a pre-generated array of interarrival times.  A second free-running
timer provides timestamps for latency measurement.  Both devices are
modelled here.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.sim.engine import SimulationEngine
from repro.sim.events import EventHandle
from repro.sim.intc import InterruptController


class OneShotTimer:
    """A one-shot down-counting timer raising an IRQ line on expiry.

    Mirrors the re-arm-from-top-handler protocol of the paper: the
    handler calls :meth:`program` with the next interarrival time.
    """

    def __init__(self, engine: SimulationEngine, intc: InterruptController,
                 line: int, name: str = "timer"):
        self._engine = engine
        self._intc = intc
        self._line = line
        self.name = name
        self._handle: Optional[EventHandle] = None
        self._expirations = 0

    @property
    def line(self) -> int:
        return self._line

    @property
    def expirations(self) -> int:
        """Number of times the timer has expired."""
        return self._expirations

    @property
    def armed(self) -> bool:
        return self._handle is not None and self._handle.pending

    def program(self, delay_cycles: int) -> None:
        """Arm the timer to fire ``delay_cycles`` from now.

        Reprogramming an armed timer replaces the previous deadline.
        """
        if delay_cycles < 0:
            raise ValueError(f"timer delay must be >= 0, got {delay_cycles}")
        self.cancel()
        self._handle = self._engine.schedule(delay_cycles, self._expire,
                                             label=f"{self.name}-expiry")

    def cancel(self) -> None:
        """Disarm the timer if armed."""
        if self._handle is not None and self._handle.pending:
            self._handle.cancel()
        self._handle = None

    def _expire(self) -> None:
        self._handle = None
        self._expirations += 1
        self._intc.raise_line(self._line)


class IntervalSequenceTimer(OneShotTimer):
    """A one-shot timer fed from a pre-generated interarrival sequence.

    Calling :meth:`arm_next` programs the timer with the next value of
    the sequence; once the sequence is exhausted the timer stays
    disarmed.  This is exactly the experiment protocol of Section 6.1
    (interarrival arrays generated before the run to keep generation
    cost out of the top handler).
    """

    def __init__(self, engine: SimulationEngine, intc: InterruptController,
                 line: int, intervals: Sequence[int], name: str = "irq-gen"):
        super().__init__(engine, intc, line, name)
        self._intervals = list(intervals)
        self._index = 0
        for value in self._intervals:
            if value < 0:
                raise ValueError("interarrival times must be >= 0")

    @property
    def remaining(self) -> int:
        """Number of unconsumed interarrival values."""
        return len(self._intervals) - self._index

    @property
    def exhausted(self) -> bool:
        return self._index >= len(self._intervals)

    def arm_next(self) -> bool:
        """Program the timer with the next interarrival value.

        Returns True if the timer was armed, False if the sequence is
        exhausted.
        """
        if self.exhausted:
            return False
        self.program(self._intervals[self._index])
        self._index += 1
        return True


class TimestampTimer:
    """Free-running up-counter used for latency timestamps.

    In the simulation the engine clock *is* the free-running counter,
    so reading the timer is just reading the current time.  The class
    exists to keep the measurement protocol of the paper explicit in
    experiment code.
    """

    def __init__(self, engine: SimulationEngine):
        self._engine = engine

    def read(self) -> int:
        """Current counter value (cycles since simulation start)."""
        return self._engine.now
