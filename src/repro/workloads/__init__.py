"""IRQ workload generation: exponential (Section 6.1) and automotive
trace (Appendix A substitute) workloads, plus trace containers."""

from repro.workloads.automotive import (
    AutomotiveTraceConfig,
    DEFAULT_PERIODIC_SOURCES,
    DEFAULT_SPORADIC_SOURCES,
    PeriodicActivationSource,
    SporadicActivationSource,
    generate_automotive_trace,
)
from repro.workloads.synthetic import (
    bursty_interarrivals,
    clip_to_dmin,
    exponential_interarrivals,
    exponential_trace,
    lambda_for_load,
)
from repro.workloads.traces import ActivationTrace
from repro.workloads.transforms import (
    add_jitter,
    merge,
    offset,
    scale,
    thin,
    window,
)

__all__ = [
    "AutomotiveTraceConfig",
    "DEFAULT_PERIODIC_SOURCES",
    "DEFAULT_SPORADIC_SOURCES",
    "PeriodicActivationSource",
    "SporadicActivationSource",
    "generate_automotive_trace",
    "bursty_interarrivals",
    "clip_to_dmin",
    "exponential_interarrivals",
    "exponential_trace",
    "lambda_for_load",
    "ActivationTrace",
    "add_jitter",
    "merge",
    "offset",
    "scale",
    "thin",
    "window",
]
