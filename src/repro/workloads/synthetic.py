"""Synthetic IRQ workloads (Section 6.1).

The paper triggers IRQs with interarrival distances following an
exponential distribution with mean λ, chosen from the target long-term
bottom-handler load U_IRQ via

    λ = C'_BH / U_IRQ                                     (Eq. 17)

For the d_min-adherent scenario the pseudo-random interarrival times
are clipped from below to d_min so the monitoring condition is always
satisfied.  All generators are seeded and produce integer cycle
distances, so experiment runs are exactly reproducible.

Because generation is deterministic in its arguments, the distance
arrays are memoized (as immutable tuples, copied to fresh lists on
return): campaign runs regenerate the same (count, mean, seed)
workload for several scenarios and sweep points, and regeneration is
pure overhead.
"""

from __future__ import annotations

import random
from functools import lru_cache
from typing import Sequence

from repro.hypervisor.config import CostModel
from repro.workloads.traces import ActivationTrace


def lambda_for_load(c_bh: int, load: float,
                    costs: "CostModel | None" = None) -> int:
    """Mean interarrival time for a target interposed load — Eq. (17).

    ``load`` is the long-term bottom-handler utilization U_IRQ
    (e.g. 0.01, 0.05, 0.10 in the paper); the effective cost C'_BH
    includes the interposing overheads of Eq. 13.
    """
    if not 0.0 < load <= 1.0:
        raise ValueError(f"load must be in (0, 1], got {load}")
    costs = costs or CostModel()
    return round(costs.effective_bottom_handler_cycles(c_bh) / load)


@lru_cache(maxsize=128)
def _exponential_cached(count: int, mean: int, seed: int,
                        minimum: int) -> tuple[int, ...]:
    rng = random.Random(seed)
    rate = 1.0 / mean
    return tuple(max(minimum, round(rng.expovariate(rate)))
                 for _ in range(count))


def exponential_interarrivals(count: int, mean: int, seed: int,
                              minimum: int = 1) -> list[int]:
    """``count`` exponentially distributed interarrival distances.

    Distances are rounded to integer cycles and floored at ``minimum``
    (a hardware timer cannot be armed with a zero delay).  Memoized on
    (count, mean, seed, minimum); callers get a fresh list each time.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if mean <= 0:
        raise ValueError(f"mean interarrival must be positive, got {mean}")
    return list(_exponential_cached(count, mean, seed, minimum))


def clip_to_dmin(intervals: Sequence[int], dmin: int) -> list[int]:
    """Clip interarrival distances from below to d_min (scenario 3).

    With the timer re-armed from the top handler, consecutive IRQ
    activations are then always at least d_min apart and every
    interrupt satisfies the monitoring condition.
    """
    if dmin <= 0:
        raise ValueError(f"d_min must be positive, got {dmin}")
    return [max(int(value), dmin) for value in intervals]


def exponential_trace(count: int, mean: int, seed: int,
                      dmin: "int | None" = None) -> ActivationTrace:
    """Convenience: build an :class:`ActivationTrace` directly."""
    intervals = exponential_interarrivals(count, mean, seed)
    if dmin is not None:
        intervals = clip_to_dmin(intervals, dmin)
    return ActivationTrace.from_interarrivals(intervals)


@lru_cache(maxsize=64)
def _bursty_cached(count: int, burst_length: int, intra_burst: int,
                   inter_burst: int, seed: int) -> tuple[int, ...]:
    rng = random.Random(seed)
    intervals: list[int] = []
    while len(intervals) < count:
        intervals.append(max(1, round(rng.expovariate(1.0 / inter_burst))))
        for _ in range(burst_length - 1):
            if len(intervals) >= count:
                break
            intervals.append(intra_burst)
    return tuple(intervals[:count])


def bursty_interarrivals(count: int, burst_length: int, intra_burst: int,
                         inter_burst: int, seed: int) -> list[int]:
    """Bursts of closely spaced IRQs separated by long gaps.

    A stress pattern for the monitor: within a burst, distances are
    ``intra_burst``; between bursts, exponentially distributed with
    mean ``inter_burst``.  Useful for overload/enforcement tests and
    the throttling baseline.  Memoized like
    :func:`exponential_interarrivals`.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if burst_length <= 0:
        raise ValueError(f"burst length must be positive, got {burst_length}")
    if intra_burst <= 0 or inter_burst <= 0:
        raise ValueError("burst distances must be positive")
    return list(_bursty_cached(count, burst_length, intra_burst,
                               inter_burst, seed))
