"""Trace transformations.

Utilities for composing IRQ workloads out of existing traces: merging
several sources onto one line, time-scaling, offsetting, jitter
injection and windowing.  All transforms are pure (they return new
traces) and preserve monotonicity by construction.
"""

from __future__ import annotations

import random
from repro.workloads.traces import ActivationTrace


def merge(*traces: ActivationTrace,
          min_separation: int = 0) -> ActivationTrace:
    """Merge several traces into one (sorted) activation stream.

    With ``min_separation > 0``, coincident or near-coincident
    activations from different traces are serialized at least that far
    apart (the interrupt controller cannot deliver two requests at the
    same instant; cf. the automotive generator).
    """
    if not traces:
        raise ValueError("need at least one trace to merge")
    if min_separation < 0:
        raise ValueError(f"min separation must be >= 0, got {min_separation}")
    times = sorted(t for trace in traces for t in trace.times)
    if min_separation:
        serialized: list[int] = []
        for t in times:
            if serialized and t - serialized[-1] < min_separation:
                t = serialized[-1] + min_separation
            serialized.append(t)
        times = serialized
    return ActivationTrace(times)


def scale(trace: ActivationTrace, factor: float) -> ActivationTrace:
    """Scale all activation times (and hence gaps) by ``factor``.

    Scaling by 0.5 doubles the event rate; by 2.0 halves it.
    """
    if factor <= 0:
        raise ValueError(f"scale factor must be positive, got {factor}")
    return ActivationTrace([round(t * factor) for t in trace.times])


def offset(trace: ActivationTrace, shift: int) -> ActivationTrace:
    """Shift all activation times by ``shift`` cycles (must stay >= 0)."""
    times = [t + shift for t in trace.times]
    if times and times[0] < 0:
        raise ValueError(
            f"offset {shift} would move the first activation below zero"
        )
    return ActivationTrace(times)


def add_jitter(trace: ActivationTrace, max_jitter: int,
               seed: int) -> ActivationTrace:
    """Add independent uniform jitter in ``[0, max_jitter]`` per event.

    The jittered stream is re-sorted, so heavy jitter may reorder
    events — exactly what release jitter does to activation streams.
    """
    if max_jitter < 0:
        raise ValueError(f"jitter must be >= 0, got {max_jitter}")
    rng = random.Random(seed)
    times = sorted(t + rng.randint(0, max_jitter) for t in trace.times)
    return ActivationTrace(times)


def window(trace: ActivationTrace, start: int, end: int,
           rebase: bool = False) -> ActivationTrace:
    """Keep only activations with ``start <= t < end``.

    With ``rebase=True`` the kept activations are shifted so the
    window start becomes time zero.
    """
    if end <= start:
        raise ValueError(f"need end > start, got [{start}, {end})")
    kept = [t for t in trace.times if start <= t < end]
    if len(kept) < 2:
        raise ValueError("window keeps fewer than two activations")
    if rebase:
        kept = [t - start for t in kept]
    return ActivationTrace(kept)


def thin(trace: ActivationTrace, keep_every: int) -> ActivationTrace:
    """Keep every ``keep_every``-th activation (rate division)."""
    if keep_every <= 0:
        raise ValueError(f"keep_every must be >= 1, got {keep_every}")
    kept = trace.times[::keep_every]
    if len(kept) < 2:
        raise ValueError("thinning keeps fewer than two activations")
    return ActivationTrace(kept)
