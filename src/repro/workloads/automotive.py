"""Synthetic automotive ECU activation trace (Appendix A substitute).

The paper's Appendix A uses a measured task-activation trace from an
automotive ECU (~11000 activations); each activation is assumed to
generate an IRQ for a hypervisor partition (e.g. via CAN or Ethernet).
The measured trace is not available, so we synthesize the closest
equivalent: a superposition of jittered periodic tasks with typical
automotive periods (1/5/10/20/50/100 ms rate-group structure) plus a
sporadic event channel.  What the Appendix-A mechanism exercises is a
bursty, non-Poisson distance profile that the self-learning δ⁻ monitor
can learn and that the 25 %/12.5 %/6.25 % load bounds then clip — the
superposition reproduces exactly that structure (simultaneous releases
of several rate groups create the small-distance bursts, the base
periods the long tail).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.sim.clock import Clock
from repro.workloads.traces import ActivationTrace


@dataclass(frozen=True)
class PeriodicActivationSource:
    """One periodic contributor to the ECU trace."""

    name: str
    period_us: float
    jitter_us: float = 0.0
    offset_us: float = 0.0

    def __post_init__(self):
        if self.period_us <= 0:
            raise ValueError(f"period must be positive, got {self.period_us}")
        if self.jitter_us < 0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter_us}")
        if self.offset_us < 0:
            raise ValueError(f"offset must be >= 0, got {self.offset_us}")


@dataclass(frozen=True)
class SporadicActivationSource:
    """A sporadic contributor (e.g. event-triggered CAN frames)."""

    name: str
    mean_interarrival_us: float
    min_interarrival_us: float

    def __post_init__(self):
        if self.mean_interarrival_us <= 0:
            raise ValueError("mean interarrival must be positive")
        if not 0 < self.min_interarrival_us <= self.mean_interarrival_us:
            raise ValueError(
                "min interarrival must be positive and <= mean"
            )


#: A typical body ECU rate-group structure with staggered offsets.
#: Rates sum to ~110 activations/s, so ~100 s of operation yields the
#: Appendix-A trace size of ~11000 activations; occasional
#: near-coincident releases produce the small-distance bursts the
#: learning monitor keys on, while most gaps stay in the
#: millisecond range (so the Fig. 7 load bounds deny the
#: paper-consistent fractions of the trace).
DEFAULT_PERIODIC_SOURCES: tuple[PeriodicActivationSource, ...] = (
    PeriodicActivationSource("can_rx_fast", period_us=20_000, jitter_us=400),
    PeriodicActivationSource("can_rx_slow", period_us=50_000, jitter_us=800,
                             offset_us=3_000),
    PeriodicActivationSource("sensor_fusion", period_us=100_000,
                             jitter_us=1_500, offset_us=7_000),
    PeriodicActivationSource("diagnostics", period_us=200_000,
                             jitter_us=3_000, offset_us=13_000),
)

DEFAULT_SPORADIC_SOURCES: tuple[SporadicActivationSource, ...] = (
    SporadicActivationSource("driver_events", mean_interarrival_us=40_000,
                             min_interarrival_us=1_000),
)


@dataclass
class AutomotiveTraceConfig:
    """Configuration of the synthetic ECU trace generator."""

    periodic: Sequence[PeriodicActivationSource] = DEFAULT_PERIODIC_SOURCES
    sporadic: Sequence[SporadicActivationSource] = DEFAULT_SPORADIC_SOURCES
    #: Target number of activations (the paper's trace has ~11000).
    activation_count: int = 11_000
    seed: int = 20140601   # DAC'14 started June 1, 2014
    #: Minimum distance between merged activations.  Appendix A assumes
    #: each activation reaches the hypervisor via CAN or Ethernet; a
    #: CAN frame occupies the bus for ~250 us at 500 kbit/s, so
    #: coincident task releases arrive serialized by at least a frame
    #: time.
    min_separation_us: float = 250.0


# Generation is deterministic in (sources, count, seed, separation,
# clock frequency); fig7 runs the same trace through four monitor
# configurations, so regeneration is memoized.  Values are immutable
# timestamp tuples; each call returns a freshly built trace.
_TRACE_CACHE: dict[tuple, tuple[int, ...]] = {}


def generate_automotive_trace(config: "AutomotiveTraceConfig | None" = None,
                              clock: "Clock | None" = None) -> ActivationTrace:
    """Generate the synthetic ECU activation trace (times in cycles)."""
    config = config or AutomotiveTraceConfig()
    clock = clock or Clock()
    if config.activation_count < 2:
        raise ValueError("need at least two activations")
    cache_key = (tuple(config.periodic), tuple(config.sporadic),
                 config.activation_count, config.seed,
                 config.min_separation_us, clock.frequency_hz)
    cached = _TRACE_CACHE.get(cache_key)
    if cached is not None:
        return ActivationTrace(cached)
    rng = random.Random(config.seed)

    rate_per_us = sum(1.0 / src.period_us for src in config.periodic)
    rate_per_us += sum(1.0 / src.mean_interarrival_us for src in config.sporadic)
    horizon_us = 1.2 * config.activation_count / rate_per_us

    raw_times_us: list[float] = []
    for source in config.periodic:
        t = source.offset_us
        while t <= horizon_us:
            jitter = rng.uniform(0.0, source.jitter_us)
            raw_times_us.append(t + jitter)
            t += source.period_us
    for source in config.sporadic:
        t = 0.0
        while t <= horizon_us:
            gap = max(
                source.min_interarrival_us,
                rng.expovariate(1.0 / source.mean_interarrival_us),
            )
            t += gap
            raw_times_us.append(t)

    raw_times_us.sort()
    min_sep = config.min_separation_us
    merged_us: list[float] = []
    for t in raw_times_us:
        if merged_us and t - merged_us[-1] < min_sep:
            t = merged_us[-1] + min_sep
        merged_us.append(t)

    selected = merged_us[:config.activation_count]
    if len(selected) < config.activation_count:
        raise RuntimeError(
            f"generator produced only {len(selected)} activations; "
            "increase the horizon factor or source rates"
        )
    times = tuple(clock.us_to_cycles(t) for t in selected)
    _TRACE_CACHE[cache_key] = times
    return ActivationTrace(times)
