"""Activation trace containers.

The experiment protocol of Section 6.1/Appendix A drives the IRQ
timer from a pre-generated array of interarrival distances.  An
:class:`ActivationTrace` holds the absolute activation times and
converts to/from distance arrays, computes basic statistics, and
persists to JSON for repeatable runs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence, Union


class ActivationTrace:
    """A monotone sequence of activation timestamps (cycles)."""

    def __init__(self, times: Sequence[int]):
        previous = None
        cleaned = []
        for value in times:
            value = int(value)
            if previous is not None and value < previous:
                raise ValueError(
                    f"activation times must be monotone: {value} after {previous}"
                )
            cleaned.append(value)
            previous = value
        self._times = cleaned

    @classmethod
    def from_interarrivals(cls, intervals: Sequence[int],
                           start: int = 0) -> "ActivationTrace":
        """Build a trace from a distance array (first event at ``start``)."""
        times = []
        current = start
        times.append(current)
        for gap in intervals:
            if gap < 0:
                raise ValueError(f"interarrival times must be >= 0, got {gap}")
            current += int(gap)
            times.append(current)
        return cls(times)

    @property
    def times(self) -> list[int]:
        return list(self._times)

    def __len__(self) -> int:
        return len(self._times)

    def __iter__(self):
        return iter(self._times)

    def __getitem__(self, index):
        return self._times[index]

    def distance_array(self) -> list[int]:
        """Consecutive interarrival distances (the timer reload array)."""
        return [b - a for a, b in zip(self._times, self._times[1:])]

    @property
    def duration(self) -> int:
        if len(self._times) < 2:
            return 0
        return self._times[-1] - self._times[0]

    def min_distance(self) -> int:
        gaps = self.distance_array()
        if not gaps:
            raise ValueError("trace has fewer than two activations")
        return min(gaps)

    def max_distance(self) -> int:
        gaps = self.distance_array()
        if not gaps:
            raise ValueError("trace has fewer than two activations")
        return max(gaps)

    def mean_distance(self) -> float:
        gaps = self.distance_array()
        if not gaps:
            raise ValueError("trace has fewer than two activations")
        return sum(gaps) / len(gaps)

    def split(self, fraction: float) -> tuple["ActivationTrace", "ActivationTrace"]:
        """Split into a head (learning) part and a tail (run) part.

        Appendix A uses the first 10 % of the trace for the learning
        phase: ``learn, run = trace.split(0.10)``.
        """
        if not 0.0 < fraction < 1.0:
            raise ValueError(f"fraction must be in (0, 1), got {fraction}")
        cut = max(1, round(len(self._times) * fraction))
        return (ActivationTrace(self._times[:cut]),
                ActivationTrace(self._times[cut:]))

    def save(self, path: Union[str, Path]) -> None:
        """Persist the trace to a JSON file."""
        payload = {"format": "repro-activation-trace-v1", "times": self._times}
        Path(path).write_text(json.dumps(payload))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ActivationTrace":
        """Load a trace saved with :meth:`save`."""
        payload = json.loads(Path(path).read_text())
        if payload.get("format") != "repro-activation-trace-v1":
            raise ValueError(f"{path} is not a repro activation trace")
        return cls(payload["times"])

    def __repr__(self) -> str:
        return f"ActivationTrace(n={len(self._times)}, duration={self.duration})"
