"""Fixed-priority preemptive guest OS kernel (uC/OS-like).

The kernel manages the ready queue of its partition's tasks.  The
*hypervisor* decides when the partition is allowed to run at all (TDMA
slots); the kernel only picks which of its ready jobs runs whenever its
partition has the CPU.  Periodic releases are driven by simulation
events (standing in for the guest's virtualized tick interrupt — we do
not model the guest tick itself, which the paper treats as part of
ordinary partition execution).

Per-task statistics (response times, deadline misses) feed the
temporal-independence checks: under monitored interposing, a victim
partition's guest tasks must keep their deadlines whenever the
analysis of Section 5.1 says the bounded interference fits their
slack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.guestos.tasks import GuestJob, GuestTask
from repro.sim.engine import SimulationEngine


@dataclass
class TaskStats:
    """Aggregated per-task statistics."""

    released: int = 0
    completed: int = 0
    deadline_misses: int = 0
    overruns: int = 0          # releases while the previous job was unfinished
    max_response: int = 0
    total_response: int = 0
    response_times: list = field(default_factory=list)

    @property
    def avg_response(self) -> float:
        if self.completed == 0:
            return 0.0
        return self.total_response / self.completed


class GuestKernel:
    """Per-partition fixed-priority scheduler and job bookkeeping."""

    def __init__(self, name: str):
        self.name = name
        self._tasks: dict[str, GuestTask] = {}
        self._ready: list[GuestJob] = []
        self._stats: dict[str, TaskStats] = {}
        self._engine: Optional[SimulationEngine] = None
        self._notify: Optional[Callable[[], None]] = None
        self._seq = 0
        self._attached = False

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------

    def add_task(self, task: GuestTask) -> None:
        if self._attached:
            raise RuntimeError("cannot add tasks after the kernel is attached")
        if task.name in self._tasks:
            raise ValueError(f"duplicate task name {task.name!r}")
        self._tasks[task.name] = task
        self._stats[task.name] = TaskStats()

    @property
    def tasks(self) -> list[GuestTask]:
        return list(self._tasks.values())

    def attach(self, engine: SimulationEngine,
               notify: Callable[[], None]) -> None:
        """Wire the kernel to the simulation.

        ``notify`` is invoked whenever new work becomes ready, so the
        hypervisor can preempt a lower-priority job if this partition
        is currently executing.
        """
        if self._attached:
            raise RuntimeError("kernel already attached")
        self._engine = engine
        self._notify = notify
        self._attached = True
        for task in self._tasks.values():
            if task.is_background:
                self._release(task)       # single infinite job, ready at t0
            elif task.is_sporadic:
                pass                      # released via release_task()
            else:
                engine.schedule(task.offset_cycles,
                                self._make_release(task),
                                label=f"release-{task.name}")

    def release_task(self, name: str) -> GuestJob:
        """Release one job of a sporadic task (e.g. from a bottom
        handler processing the IRQ that activates it)."""
        task = self._tasks[name]
        if not task.is_sporadic:
            raise ValueError(
                f"task {name!r} is not sporadic; only sporadic tasks are "
                "released externally"
            )
        self._release(task)
        return self._ready[-1]

    # ------------------------------------------------------------------
    # Scheduling interface (called by the hypervisor)
    # ------------------------------------------------------------------

    def pick(self) -> Optional[GuestJob]:
        """Highest-priority ready job, or None if the kernel is idle.

        Ties are broken by release order (FIFO within a priority).
        """
        best: Optional[GuestJob] = None
        for job in self._ready:
            if best is None or (job.task.priority, job.seq) < (
                best.task.priority, best.seq
            ):
                best = job
        return best

    def job_finished(self, job: GuestJob, now: int) -> None:
        """Record completion of a job and remove it from the ready set."""
        if job not in self._ready:
            raise ValueError(f"{job!r} is not a ready job of kernel {self.name}")
        if job.remaining != 0:
            raise ValueError(f"{job!r} finished with work remaining")
        self._ready.remove(job)
        job.completed_at = now
        stats = self._stats[job.task.name]
        stats.completed += 1
        response = job.response_time
        stats.total_response += response
        stats.max_response = max(stats.max_response, response)
        stats.response_times.append(response)
        if job.missed_deadline:
            stats.deadline_misses += 1

    @property
    def ready_jobs(self) -> list[GuestJob]:
        return list(self._ready)

    def stats(self, task_name: str) -> TaskStats:
        return self._stats[task_name]

    @property
    def all_stats(self) -> dict[str, TaskStats]:
        return dict(self._stats)

    def total_deadline_misses(self) -> int:
        return sum(stats.deadline_misses for stats in self._stats.values())

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _make_release(self, task: GuestTask) -> Callable[[], None]:
        def release() -> None:
            self._release(task)
            assert self._engine is not None
            self._engine.schedule(task.period_cycles,
                                  self._make_release(task),
                                  label=f"release-{task.name}")
        return release

    def _release(self, task: GuestTask) -> None:
        stats = self._stats[task.name]
        if any(job.task is task for job in self._ready) and not task.is_background:
            stats.overruns += 1
        job = GuestJob(task, self._seq, 0 if self._engine is None else self._engine.now)
        self._seq += 1
        self._ready.append(job)
        stats.released += 1
        if self._notify is not None:
            self._notify()

    def __repr__(self) -> str:
        return f"GuestKernel({self.name}, tasks={len(self._tasks)}, ready={len(self._ready)})"
