"""Guest task and job model.

Each application partition may run a guest operating system
(Section 3; the paper uses para-virtualized uC/OS guests).  We model
the guest workload as a set of fixed-priority tasks: periodic tasks
release jobs with a given period and offset, and a *background* task
(``period=None``) models an always-ready compute loop that soaks up
remaining slot time — the "current task" of Fig. 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class GuestTask:
    """A task inside a guest OS.

    Parameters
    ----------
    name:
        Task identifier (unique within its kernel).
    priority:
        Fixed priority; numerically lower is more important.
    wcet_cycles:
        Execution demand of each job; ``None`` for background tasks
        that never finish.
    period_cycles:
        Release period.  ``None`` with a WCET makes the task
        *sporadic* — released externally (e.g. by a bottom handler via
        :meth:`repro.guestos.kernel.GuestKernel.release_task`); ``None``
        without a WCET makes it a *background* task (a single,
        always-ready, infinite job).
    offset_cycles:
        Release offset of the first job (periodic tasks only).
    deadline_cycles:
        Relative deadline; defaults to the period (implicit deadlines);
        optional for sporadic tasks.
    """

    name: str
    priority: int
    wcet_cycles: Optional[int] = None
    period_cycles: Optional[int] = None
    offset_cycles: int = 0
    deadline_cycles: Optional[int] = None

    def __post_init__(self):
        if self.period_cycles is not None and self.period_cycles <= 0:
            raise ValueError(f"period must be positive, got {self.period_cycles}")
        if self.wcet_cycles is not None and self.wcet_cycles <= 0:
            raise ValueError(f"WCET must be positive, got {self.wcet_cycles}")
        if self.offset_cycles < 0:
            raise ValueError(f"offset must be >= 0, got {self.offset_cycles}")
        if self.period_cycles is not None and self.wcet_cycles is None:
            raise ValueError(f"periodic task {self.name!r} needs a WCET")
        if self.deadline_cycles is not None and self.deadline_cycles <= 0:
            raise ValueError(f"deadline must be positive, got {self.deadline_cycles}")

    @property
    def is_background(self) -> bool:
        """An always-ready infinite compute loop (no period, no WCET)."""
        return self.period_cycles is None and self.wcet_cycles is None

    @property
    def is_sporadic(self) -> bool:
        """Released externally (no period, but a finite WCET)."""
        return self.period_cycles is None and self.wcet_cycles is not None

    def relative_deadline(self) -> Optional[int]:
        """Relative deadline (defaults to the period)."""
        if self.deadline_cycles is not None:
            return self.deadline_cycles
        return self.period_cycles


class GuestJob:
    """One released instance of a guest task."""

    __slots__ = ("task", "seq", "release_time", "remaining",
                 "absolute_deadline", "completed_at", "first_start")

    def __init__(self, task: GuestTask, seq: int, release_time: int):
        self.task = task
        self.seq = seq
        self.release_time = release_time
        self.remaining: Optional[int] = task.wcet_cycles
        deadline = task.relative_deadline()
        self.absolute_deadline = (
            None if deadline is None else release_time + deadline
        )
        self.completed_at: Optional[int] = None
        self.first_start: Optional[int] = None

    @property
    def done(self) -> bool:
        return self.remaining == 0

    @property
    def response_time(self) -> Optional[int]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.release_time

    @property
    def missed_deadline(self) -> bool:
        return (
            self.completed_at is not None
            and self.absolute_deadline is not None
            and self.completed_at > self.absolute_deadline
        )

    def __repr__(self) -> str:
        return (
            f"GuestJob({self.task.name}#{self.seq}, release={self.release_time}, "
            f"remaining={self.remaining})"
        )
