"""Guest operating system substrate (uC/OS-like fixed-priority kernel)."""

from repro.guestos.kernel import GuestKernel, TaskStats
from repro.guestos.tasks import GuestJob, GuestTask

__all__ = ["GuestKernel", "TaskStats", "GuestJob", "GuestTask"]
