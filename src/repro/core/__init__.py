"""The paper's primary contribution: monitored interposed IRQ handling.

* :mod:`repro.core.monitor` — δ⁻-based activation monitoring (Section 5).
* :mod:`repro.core.learning` — self-learning δ⁻ tables (Appendix A,
  Algorithms 1 and 2).
* :mod:`repro.core.policy` — interposing decision policies plugged into
  the modified top handler (Fig. 4b).
* :mod:`repro.core.independence` — interference accounting and the
  sufficient-temporal-independence property (Eqs. 1, 2 and 14).
"""

from repro.core.independence import (
    DminInterferenceBound,
    IndependenceClass,
    IndependenceReport,
    InterferenceInterval,
    InterferenceKind,
    InterferenceLedger,
    classify_independence,
    verify_sufficient_independence,
)
from repro.core.learning import (
    UNLEARNED,
    DeltaLearner,
    build_monitor,
    clamp_to_bound,
    scale_table_to_load_fraction,
)
from repro.core.monitor import (
    DeltaMinusMonitor,
    normalize_delta_table,
    verify_accepted_stream,
)
from repro.core.policy import (
    AlwaysInterpose,
    HandlingMode,
    InterposingPolicy,
    LearningPhase,
    MonitoredInterposing,
    NeverInterpose,
    SelfLearningInterposing,
)

__all__ = [
    "DminInterferenceBound",
    "IndependenceClass",
    "IndependenceReport",
    "InterferenceInterval",
    "InterferenceKind",
    "InterferenceLedger",
    "classify_independence",
    "verify_sufficient_independence",
    "UNLEARNED",
    "DeltaLearner",
    "build_monitor",
    "clamp_to_bound",
    "scale_table_to_load_fraction",
    "DeltaMinusMonitor",
    "normalize_delta_table",
    "verify_accepted_stream",
    "AlwaysInterpose",
    "HandlingMode",
    "InterposingPolicy",
    "LearningPhase",
    "MonitoredInterposing",
    "NeverInterpose",
    "SelfLearningInterposing",
]
