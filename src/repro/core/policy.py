"""Interposing policies — the decision logic of the modified top handler.

The hypervisor consults a policy whenever an IRQ arrives for a
partition other than the one whose TDMA slot is active ("foreign
slot").  The policy answers the Fig. 4b question "Interposing IRQ
denied?" and is where the δ⁻ monitor, the Appendix-A learning flow
and baseline behaviours (never interpose / always boost) plug in.

Policies are *per IRQ source*: each source has its own activation
pattern and its own monitoring condition (the paper's test setup
monitors the activation pattern of one IRQ source; Section 5 defines
``d_min`` per monitored source).
"""

from __future__ import annotations

import enum
from typing import Optional, Sequence

from repro.core.learning import (
    DeltaLearner,
    build_monitor,
    scale_table_to_load_fraction,
)
from repro.core.monitor import DeltaMinusMonitor


class HandlingMode(enum.Enum):
    """How a particular IRQ invocation ended up being handled."""

    DIRECT = "direct"          # subscriber's own slot was active
    INTERPOSED = "interposed"  # executed inside a foreign slot
    DELAYED = "delayed"        # waited for the subscriber's own slot


class InterposingPolicy:
    """Interface for foreign-slot interposing decisions.

    ``observe_arrival`` is called for *every* IRQ arrival of the source
    (needed by learning policies); ``request_interpose`` is called only
    for foreign-slot arrivals and returns whether the bottom handler
    may run interposed right now.
    """

    def observe_arrival(self, time: int) -> None:
        """Notify the policy of an IRQ arrival (any slot)."""

    def request_interpose(self, time: int) -> bool:
        """Decide whether a foreign-slot IRQ may be interposed.

        A True return *commits* the activation: the policy records it
        as accepted and subsequent decisions account for it.
        """
        raise NotImplementedError

    @property
    def monitoring_cost_applies(self) -> bool:
        """Whether the top handler pays ``C_Mon`` for this policy.

        The unmodified top handler (Fig. 4a) has no monitoring call at
        all, so the baseline policy reports False and the hypervisor
        charges plain ``C_TH``.
        """
        return True

    # ------------------------------------------------------------------
    # Snapshot/fork support (see repro.sim.snapshot).  The defaults
    # serve stateless policies; stateful subclasses override both.
    # ------------------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Plain-data policy state for a world snapshot."""
        return {}

    @classmethod
    def restore_from_snapshot(cls, state: dict) -> "InterposingPolicy":
        return cls()


class NeverInterpose(InterposingPolicy):
    """The unmodified uC/OS-MMU behaviour (Fig. 4a): always delay.

    This is the paper's baseline ("monitoring disabled", Fig. 6a).
    """

    def request_interpose(self, time: int) -> bool:
        return False

    @property
    def monitoring_cost_applies(self) -> bool:
        return False


class AlwaysInterpose(InterposingPolicy):
    """Interpose every foreign-slot IRQ, without any shaping.

    Models the Xen-style "boost" schedulers discussed in Section 2
    (Ongaro et al.): good latency, but the interference on other
    partitions is unbounded — exactly the property the paper's monitor
    exists to prevent.  Used by :mod:`repro.baselines.boost`.
    """

    def request_interpose(self, time: int) -> bool:
        return True

    @property
    def monitoring_cost_applies(self) -> bool:
        return False


class MonitoredInterposing(InterposingPolicy):
    """Interpose when the δ⁻ monitor permits it (Section 5).

    The basic paper setup is ``MonitoredInterposing(DeltaMinusMonitor.from_dmin(d))``.
    """

    def __init__(self, monitor: DeltaMinusMonitor):
        self.monitor = monitor

    def request_interpose(self, time: int) -> bool:
        return self.monitor.check_and_accept(time)

    def snapshot_state(self) -> dict:
        return {"monitor": self.monitor.snapshot_state()}

    @classmethod
    def restore_from_snapshot(cls, state: dict) -> "MonitoredInterposing":
        return cls(DeltaMinusMonitor.restore_from_snapshot(state["monitor"]))

    def __repr__(self) -> str:
        return f"MonitoredInterposing({self.monitor!r})"


class LearningPhase(enum.Enum):
    LEARN = "learn"
    RUN = "run"


class SelfLearningInterposing(InterposingPolicy):
    """Appendix-A flow: learn δ⁻ online, then monitor against it.

    During the learning phase (the first ``learn_count`` arrivals) only
    direct and delayed handling are active: every interpose request is
    denied while Algorithm 1 records the observed δ⁻ table.  When the
    learning phase completes, the learned table is clamped to the
    configured bound (Algorithm 2) and the policy switches to run mode
    with a :class:`DeltaMinusMonitor` on the resulting table.

    Parameters
    ----------
    depth:
        Table length ``l`` (the paper uses 5).
    learn_count:
        Number of arrivals in the learning phase (the paper uses the
        first 10 % of the trace).
    bound:
        Explicit δ⁻ bound table (Algorithm 2 input), or None.
    load_fraction:
        Alternative to ``bound``: derive the bound from the *learned*
        table such that only this fraction of the recorded load is
        admitted (Fig. 7 uses 0.25, 0.125 and 0.0625).  A value of
        None or 1.0 with no explicit bound reproduces Fig. 7 case (a):
        the bound does not bind.
    """

    def __init__(self, depth: int, learn_count: int,
                 bound: Optional[Sequence[int]] = None,
                 load_fraction: Optional[float] = None):
        if learn_count <= depth:
            raise ValueError(
                f"learning phase of {learn_count} events cannot populate a "
                f"depth-{depth} table"
            )
        if bound is not None and load_fraction is not None:
            raise ValueError("give either an explicit bound or a load fraction")
        self._learner = DeltaLearner(depth)
        self._learn_count = learn_count
        self._bound = list(bound) if bound is not None else None
        self._load_fraction = load_fraction
        self._phase = LearningPhase.LEARN
        self.monitor: Optional[DeltaMinusMonitor] = None

    @property
    def phase(self) -> LearningPhase:
        return self._phase

    @property
    def learned_table(self) -> list[int]:
        return self._learner.table()

    def observe_arrival(self, time: int) -> None:
        if self._phase is not LearningPhase.LEARN:
            return
        self._learner.observe(time)
        if self._learner.observed_count >= self._learn_count:
            self._enter_run_mode()

    def request_interpose(self, time: int) -> bool:
        if self._phase is LearningPhase.LEARN or self.monitor is None:
            return False
        return self.monitor.check_and_accept(time)

    def _enter_run_mode(self) -> None:
        bound = self._bound
        if bound is None and self._load_fraction is not None:
            bound = scale_table_to_load_fraction(
                self._learner.table(), self._load_fraction
            )
        self.monitor = build_monitor(self._learner.table(), bound)
        self._phase = LearningPhase.RUN

    def set_load_fraction(self, load_fraction: Optional[float]) -> None:
        """Re-target the run-mode bound of a still-learning policy.

        This is the fig7 fork hook: the four bound cases a–d share one
        learning prefix (the fraction is only read at the
        learning→run transition), so a forked continuation sets its
        case's fraction before the transition fires.  Once run mode
        has derived the monitor the fraction is baked in, so changing
        it then would silently do nothing — refuse instead.
        """
        if self._phase is not LearningPhase.LEARN:
            raise ValueError(
                "load fraction can only be changed during the learning phase"
            )
        if self._bound is not None and load_fraction is not None:
            raise ValueError("policy already carries an explicit bound")
        self._load_fraction = load_fraction

    def snapshot_state(self) -> dict:
        return {
            "depth": self._learner.depth,
            "learn_count": self._learn_count,
            "bound": list(self._bound) if self._bound is not None else None,
            "load_fraction": self._load_fraction,
            "phase": self._phase.value,
            "learner": self._learner.snapshot_state(),
            "monitor": (self.monitor.snapshot_state()
                        if self.monitor is not None else None),
        }

    @classmethod
    def restore_from_snapshot(cls, state: dict) -> "SelfLearningInterposing":
        policy = cls(depth=state["depth"], learn_count=state["learn_count"],
                     bound=state["bound"],
                     load_fraction=state["load_fraction"])
        policy._learner = DeltaLearner.restore_from_snapshot(state["learner"])
        policy._phase = LearningPhase(state["phase"])
        if state["monitor"] is not None:
            policy.monitor = DeltaMinusMonitor.restore_from_snapshot(
                state["monitor"]
            )
        return policy

    def __repr__(self) -> str:
        return (
            f"SelfLearningInterposing(l={self._learner.depth}, "
            f"phase={self._phase.value})"
        )
