"""Self-learning δ⁻ functions (Appendix A, Algorithms 1 and 2).

Algorithm 1 of the paper learns a δ⁻ table online from observed IRQ
timestamps: for each of the last ``l`` events it records the smallest
distance ever seen between an event and its ``(k+1)``-th predecessor.
Algorithm 2 then clamps the learned table to a predefined lower bound
``δ⁻_b`` so the admitted load cannot exceed a configured budget even
if the observed trace was denser.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.monitor import DeltaMinusMonitor, normalize_delta_table

#: Initialization value for unlearned table entries ("large positive
#: numbers" in Algorithm 1).  Any real distance observed replaces it.
UNLEARNED = 2**62


class DeltaLearner:
    """Online learner for a δ⁻ table of depth ``l`` (Algorithm 1).

    Feed every observed activation timestamp to :meth:`observe`; the
    learned table is available from :meth:`table` at any point.

    The implementation mirrors the paper's pseudo-code: a trace buffer
    of the last ``l`` timestamps (``tracebuffer[0]`` most recent) and a
    table ``delta[i]`` holding the minimum observed distance between an
    event and ``tracebuffer[i]``.
    """

    def __init__(self, depth: int):
        if depth <= 0:
            raise ValueError(f"learner depth must be >= 1, got {depth}")
        self._depth = depth
        self._delta = [UNLEARNED] * depth
        self._tracebuffer: list[Optional[int]] = [None] * depth
        self._observed = 0

    @property
    def depth(self) -> int:
        return self._depth

    @property
    def observed_count(self) -> int:
        """Number of timestamps fed to the learner."""
        return self._observed

    def observe(self, timestamp: int) -> None:
        """Process one activation timestamp (Algorithm 1 body)."""
        if self._tracebuffer[0] is not None and timestamp < self._tracebuffer[0]:
            raise ValueError(
                f"timestamps must be monotone: got {timestamp} after "
                f"{self._tracebuffer[0]}"
            )
        for i in range(self._depth):
            previous = self._tracebuffer[i]
            if previous is None:
                continue
            distance = timestamp - previous
            if distance < self._delta[i]:
                self._delta[i] = distance
        # right-shift the trace buffer and insert the new timestamp
        self._tracebuffer = [timestamp] + self._tracebuffer[:-1]
        self._observed += 1

    def table(self) -> list[int]:
        """The learned δ⁻ table so far.

        Entries never exercised (fewer than ``i + 2`` observations)
        remain at :data:`UNLEARNED`, i.e. maximally restrictive until
        evidence arrives — the same semantics as the paper's
        "initialized with large positive numbers".
        """
        return list(self._delta)

    def is_complete(self) -> bool:
        """True once every table entry has been learned from data."""
        return all(value != UNLEARNED for value in self._delta)

    def snapshot_state(self) -> dict:
        """Plain-data learner state (see :mod:`repro.sim.snapshot`)."""
        return {
            "depth": self._depth,
            "delta": list(self._delta),
            "tracebuffer": list(self._tracebuffer),
            "observed": self._observed,
        }

    @classmethod
    def restore_from_snapshot(cls, state: dict) -> "DeltaLearner":
        learner = cls(state["depth"])
        learner._delta = list(state["delta"])
        learner._tracebuffer = list(state["tracebuffer"])
        learner._observed = state["observed"]
        return learner

    def __repr__(self) -> str:
        return f"DeltaLearner(l={self._depth}, observed={self._observed})"


def clamp_to_bound(learned: Sequence[int], bound: Sequence[int]) -> list[int]:
    """Clamp a learned δ⁻ table to a predefined upper-load bound
    (Algorithm 2).

    Every entry of the result is ``max(learned[i], bound[i])``: where
    the observed trace was denser (smaller distance) than the bound
    allows, the bound wins, limiting the admissible interposing load.
    """
    if len(learned) != len(bound):
        raise ValueError(
            f"table length mismatch: learned has {len(learned)} entries, "
            f"bound has {len(bound)}"
        )
    return [max(int(a), int(b)) for a, b in zip(learned, bound)]


def scale_table_to_load_fraction(table: Sequence[int], fraction: float) -> list[int]:
    """Derive a bound table admitting only ``fraction`` of a table's load.

    Admissible event density is inversely proportional to the δ⁻
    distances, so allowing e.g. 25 % of the recorded load means scaling
    every distance by 1/0.25 = 4.  This is how the Fig. 7 bounds
    (b) 25 %, (c) 12.5 %, (d) 6.25 % are constructed from the recorded
    δ⁻ table.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"load fraction must be in (0, 1], got {fraction}")
    scaled = []
    for value in table:
        if value >= UNLEARNED:
            scaled.append(UNLEARNED)
        else:
            scaled.append(round(value / fraction))
    return scaled


def build_monitor(learned: Sequence[int],
                  bound: Optional[Sequence[int]] = None) -> DeltaMinusMonitor:
    """Construct the run-mode monitor from a learned table.

    Applies Algorithm 2 if a bound is given, then normalizes the table
    (δ⁻ must be non-decreasing) and instantiates the monitor.  Entries
    still at :data:`UNLEARNED` are rejected: running a monitor with an
    unlearned table would deny everything silently.
    """
    table = list(learned)
    if bound is not None:
        table = clamp_to_bound(table, bound)
    if any(value >= UNLEARNED for value in table):
        raise ValueError(
            "δ⁻ table has unlearned entries; extend the learning phase "
            "or provide a finite bound for every entry"
        )
    return DeltaMinusMonitor(normalize_delta_table(table))
